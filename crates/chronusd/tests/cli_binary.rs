//! Process-level test of the `chronus` binary: the paper's §3.3 workflow
//! run as a real CLI across separate invocations, with state persisting in
//! `$CHRONUS_HOME`.

use std::path::PathBuf;
use std::process::Command;

fn chronus(home: &PathBuf, args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_chronus"))
        .args(args)
        .env("CHRONUS_HOME", home)
        .env("CHRONUS_SCALE", "0.005")
        .output()
        .expect("spawn chronus");
    let text = format!("{}{}", String::from_utf8_lossy(&out.stdout), String::from_utf8_lossy(&out.stderr));
    (out.status.success(), text)
}

#[test]
fn workflow_across_separate_processes() {
    let home = std::env::temp_dir().join(format!("eco-clibin-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&home);
    std::fs::create_dir_all(&home).unwrap();

    // benchmark three configurations
    let cfg = home.join("configurations.json");
    std::fs::write(
        &cfg,
        r#"[{"cores": 32, "threads_per_core": 1, "frequency": 2500000},
            {"cores": 32, "threads_per_core": 1, "frequency": 2200000},
            {"cores": 16, "threads_per_core": 2, "frequency": 1500000}]"#,
    )
    .unwrap();
    let (ok, out) = chronus(&home, &["benchmark", "/opt/hpcg/bin/xhpcg", "--configurations", cfg.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("3 benchmark(s) complete"), "{out}");

    // a separate process sees the persisted benchmarks and trains
    let (ok, out) = chronus(&home, &["init-model", "--model", "brute-force", "--system", "1"]);
    assert!(ok, "{out}");
    assert!(out.contains("Model 1 saved"), "{out}");

    // stage the model
    let (ok, out) = chronus(&home, &["load-model", "--model", "1"]);
    assert!(ok, "{out}");
    assert!(out.contains("downloaded to"), "{out}");

    // grab the hashes, then predict from yet another process
    let (ok, hashes) = chronus(&home, &["hashes"]);
    assert!(ok, "{hashes}");
    let sys = hashes.lines().next().unwrap().rsplit(' ').next().unwrap().to_string();
    let bin = hashes.lines().nth(1).unwrap().rsplit(' ').next().unwrap().to_string();
    let (ok, json) = chronus(&home, &["slurm-config", &sys, &bin]);
    assert!(ok, "{json}");
    let v: serde_json::Value = serde_json::from_str(json.trim()).expect("plugin-protocol JSON");
    assert_eq!(v["cores"], 32, "{json}");
    assert_eq!(v["frequency"], 2_200_000, "{json}");

    // a bad command exits non-zero
    let (ok, _) = chronus(&home, &["frobnicate"]);
    assert!(!ok);
}
