//! Process-level test of the `chronus` binary: the paper's §3.3 workflow
//! run as a real CLI across separate invocations, with state persisting in
//! `$CHRONUS_HOME`.

use std::path::PathBuf;
use std::process::Command;

fn chronus(home: &PathBuf, args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_chronus"))
        .args(args)
        .env("CHRONUS_HOME", home)
        .env("CHRONUS_SCALE", "0.005")
        .output()
        .expect("spawn chronus");
    let text = format!("{}{}", String::from_utf8_lossy(&out.stdout), String::from_utf8_lossy(&out.stderr));
    (out.status.success(), text)
}

#[test]
fn workflow_across_separate_processes() {
    let home = std::env::temp_dir().join(format!("eco-clibin-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&home);
    std::fs::create_dir_all(&home).unwrap();

    // benchmark three configurations
    let cfg = home.join("configurations.json");
    std::fs::write(
        &cfg,
        r#"[{"cores": 32, "threads_per_core": 1, "frequency": 2500000},
            {"cores": 32, "threads_per_core": 1, "frequency": 2200000},
            {"cores": 16, "threads_per_core": 2, "frequency": 1500000}]"#,
    )
    .unwrap();
    let (ok, out) = chronus(&home, &["benchmark", "/opt/hpcg/bin/xhpcg", "--configurations", cfg.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("3 benchmark(s) complete"), "{out}");

    // a separate process sees the persisted benchmarks and trains
    let (ok, out) = chronus(&home, &["init-model", "--model", "brute-force", "--system", "1"]);
    assert!(ok, "{out}");
    assert!(out.contains("Model 1 saved"), "{out}");

    // stage the model
    let (ok, out) = chronus(&home, &["load-model", "--model", "1"]);
    assert!(ok, "{out}");
    assert!(out.contains("downloaded to"), "{out}");

    // grab the hashes, then predict from yet another process
    let (ok, hashes) = chronus(&home, &["hashes"]);
    assert!(ok, "{hashes}");
    let sys = hashes.lines().next().unwrap().rsplit(' ').next().unwrap().to_string();
    let bin = hashes.lines().nth(1).unwrap().rsplit(' ').next().unwrap().to_string();
    let (ok, json) = chronus(&home, &["slurm-config", &sys, &bin]);
    assert!(ok, "{json}");
    let v: serde_json::Value = serde_json::from_str(json.trim()).expect("plugin-protocol JSON");
    assert_eq!(v["cores"], 32, "{json}");
    assert_eq!(v["frequency"], 2_200_000, "{json}");

    // a bad command exits non-zero
    let (ok, _) = chronus(&home, &["frobnicate"]);
    assert!(!ok);
}

/// The model-store audit surface as separate processes: `chronus models
/// list|show|verify|rollback` against a store directory on disk,
/// including a deliberately corrupted blob that `verify` must catch
/// with a non-zero exit.
#[test]
fn models_cli_audits_and_rolls_back_a_store() {
    use chronusd::store::{ModelBlob, ModelStore, Provenance};
    use eco_sim_node::cpu::CpuConfig;

    let home = std::env::temp_dir().join(format!("eco-clibin-models-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&home);
    std::fs::create_dir_all(&home).unwrap();
    let dir = home.join("store");
    let dir_s = dir.to_str().unwrap().to_string();

    // Two committed generations, written the way a campaign would.
    let blob = |config| ModelBlob {
        model_type: "brute-force".into(),
        system_hash: 10,
        binary_hash: 20,
        config,
        benchmarks: Vec::new(),
    };
    let gen2_hash = {
        let mut store = ModelStore::open_dir(&dir_s).unwrap();
        store
            .commit(
                &blob(CpuConfig::new(32, 2_200_000, 1)),
                1,
                Provenance { campaign: "night-1".into(), ..Provenance::default() },
            )
            .unwrap();
        store
            .commit(
                &blob(CpuConfig::new(16, 1_500_000, 2)),
                2,
                Provenance { campaign: "night-2".into(), ..Provenance::default() },
            )
            .unwrap()
            .blob_hash
    };

    let (ok, out) = chronus(&home, &["models", "list", "--store", &dir_s]);
    assert!(ok, "{out}");
    assert!(out.contains("2 commit(s), high-water generation 2, serving generation 2"), "{out}");
    assert!(out.contains("campaign \"night-1\""), "{out}");

    let (ok, out) = chronus(&home, &["models", "show", "2", "--store", &dir_s]);
    assert!(ok, "{out}");
    assert!(out.contains("[serving]"), "{out}");
    assert!(out.contains("verified (0 benchmark row(s))"), "{out}");

    let (ok, out) = chronus(&home, &["models", "verify", "--store", &dir_s]);
    assert!(ok, "{out}");
    assert!(out.contains("0 issue(s)"), "{out}");

    // Rollback appends to the ledger; the next list shows both the
    // rollback record and the restored serving generation.
    let (ok, out) = chronus(&home, &["models", "rollback", "1", "--store", &dir_s, "--reason", "regression"]);
    assert!(ok, "{out}");
    assert!(out.contains("rolled back to generation 1"), "{out}");
    let (ok, out) = chronus(&home, &["models", "list", "--store", &dir_s]);
    assert!(ok, "{out}");
    assert!(out.contains("serving generation 1"), "{out}");
    assert!(out.contains("rollback -> gen 1  (\"regression\")"), "{out}");
    assert!(out.contains("high-water generation 2"), "{out}");

    // Flip one byte in generation 2's blob: verify must name the
    // damaged generation and exit non-zero.
    let blob_path = dir.join("blobs").join(&gen2_hash);
    let mut bytes = std::fs::read(&blob_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&blob_path, bytes).unwrap();
    let (ok, out) = chronus(&home, &["models", "verify", "--store", &dir_s]);
    assert!(!ok, "verify must fail on a corrupt blob: {out}");
    assert!(out.contains("failed verification"), "{out}");

    // But a generation whose blob is intact still shows verified.
    let (ok, out) = chronus(&home, &["models", "show", "1", "--store", &dir_s]);
    assert!(ok, "{out}");
    assert!(out.contains("verified"), "{out}");

    let _ = std::fs::remove_dir_all(&home);
}

/// Adaptation lineage on the audit surface: a re-fit committed by the
/// adaptation loop names the generation it superseded, and `show`
/// walks a refit-of-refit chain back to the original campaign.
#[test]
fn models_cli_shows_adaptation_lineage() {
    use chronusd::store::{ModelBlob, ModelStore, Provenance, ProvenanceSource};
    use eco_sim_node::cpu::CpuConfig;

    let home = std::env::temp_dir().join(format!("eco-clibin-lineage-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&home);
    std::fs::create_dir_all(&home).unwrap();
    let dir = home.join("store");
    let dir_s = dir.to_str().unwrap().to_string();

    let blob = |config| ModelBlob {
        model_type: "brute-force".into(),
        system_hash: 10,
        binary_hash: 20,
        config,
        benchmarks: Vec::new(),
    };
    {
        let mut store = ModelStore::open_dir(&dir_s).unwrap();
        store
            .commit(
                &blob(CpuConfig::new(32, 2_200_000, 1)),
                1,
                Provenance { campaign: "night-1".into(), ..Provenance::default() },
            )
            .unwrap();
        store
            .commit(
                &blob(CpuConfig::new(32, 1_500_000, 1)),
                2,
                Provenance {
                    campaign: "adapt:night-1".into(),
                    plan: "incremental-refit".into(),
                    source: ProvenanceSource::Adaptation,
                    refit_of: 1,
                    ..Provenance::default()
                },
            )
            .unwrap();
        store
            .commit(
                &blob(CpuConfig::new(32, 1_500_000, 1)),
                3,
                Provenance {
                    campaign: "adapt:night-1".into(),
                    plan: "incremental-refit".into(),
                    source: ProvenanceSource::Adaptation,
                    refit_of: 2,
                    ..Provenance::default()
                },
            )
            .unwrap();
    }

    // list: campaign rows stay unchanged, refits carry their lineage tag
    let (ok, out) = chronus(&home, &["models", "list", "--store", &dir_s]);
    assert!(ok, "{out}");
    let night1 = out.lines().find(|l| l.contains("campaign \"night-1\"")).expect("gen 1 row");
    assert!(!night1.contains("refit"), "{night1}");
    assert!(out.contains("[refit of gen 1]"), "{out}");
    assert!(out.contains("[refit of gen 2]"), "{out}");

    // show: the source line plus the chain back to the campaign
    let (ok, out) = chronus(&home, &["models", "show", "1", "--store", &dir_s]);
    assert!(ok, "{out}");
    assert!(out.contains("source:     campaign"), "{out}");
    assert!(!out.contains("lineage:"), "{out}");

    let (ok, out) = chronus(&home, &["models", "show", "3", "--store", &dir_s]);
    assert!(ok, "{out}");
    assert!(out.contains("source:     adaptation"), "{out}");
    assert!(out.contains("lineage:    adaptation refit of gen 2 (originally campaign \"night-1\", gen 1)"), "{out}");

    let _ = std::fs::remove_dir_all(&home);
}
