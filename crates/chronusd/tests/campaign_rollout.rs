//! Campaign → model → daemon, end to end: an adaptive campaign on a
//! simulated multi-node cluster produces benchmarks, the Chronus
//! application layer rebuilds and stages a model from them, and the
//! campaign hot-rolls it into a live chronusd through the versioned
//! `Preload` flow — after which the daemon predicts the paper's optimum
//! for the eco plugin's hash pair.

use chronus::application::Chronus;
use chronus::integrations::record_store::RecordStore;
use chronus::integrations::storage::{EtcStorage, LocalBlobStore};
use chronus::remote::{CallOptions, PredictClient};
use chronusd::campaign::{
    rebuild_model, roll_into, CampaignEngine, CampaignSpec, PlanSpec, RecordJournal, RunOptions,
};
use chronusd::{PredictServer, ServerConfig, StorageBackend};
use eco_hpcg::PerfModel;
use eco_sim_node::cpu::{CpuConfig, CpuSpec};
use eco_sim_node::SimNode;
use eco_slurm_sim::Cluster;
use std::path::PathBuf;
use std::sync::Arc;

fn home(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("eco-campaign-rollout-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    root
}

#[test]
fn campaign_model_rolls_hot_into_a_live_daemon() {
    let root = home("hot");
    let perf = Arc::new(PerfModel::sr650());
    let full_work = perf.gflops(&perf.standard_config()) * 25.0;
    let spec = CampaignSpec {
        name: "hpcg-rollout".into(),
        configs: CpuSpec::epyc_7502p().all_configurations(),
        plan: PlanSpec::default_halving(),
        seed: 3,
        sample_interval_ms: 2000,
        full_work_gflop: full_work,
        nx: 104,
        node_class: String::new(),
    };

    // 1. the campaign produces final-round benchmarks in the repository
    let mut cluster = Cluster::new((0..4).map(|_| SimNode::sr650()).collect());
    let system_hash = chronus::system_hash(cluster.node(0).spec(), cluster.node(0).ram_gb());
    let outcome = {
        let mut journal = RecordJournal::open(root.join("campaign/journal.db")).unwrap();
        let mut repo = RecordStore::open(root.join("database/data.db")).unwrap();
        CampaignEngine::new(&mut cluster, &mut journal, &mut repo, Arc::clone(&perf), spec)
            .run(RunOptions::default())
            .unwrap()
    };
    assert_eq!(outcome.best, CpuConfig::new(32, 2_200_000, 1), "paper Table 2 optimum");

    // 2. rebuild and stage a model from them (the repository handle above
    //    is closed; the app opens its own)
    let mut app = Chronus::new(
        Box::new(RecordStore::open(root.join("database/data.db")).unwrap()),
        Box::new(LocalBlobStore::new(root.join("optimizers")).unwrap()),
        Box::new(EtcStorage::new(&root)),
    );
    let staged = rebuild_model(&mut app, "brute-force", outcome.system_id, outcome.binary_hash, 1).unwrap();
    assert_eq!(staged.system_hash, system_hash);

    // 3. hot-roll into a live daemon over TCP
    let server = PredictServer::start(
        ServerConfig { addr: "127.0.0.1:0".to_string(), ..ServerConfig::default() },
        Arc::new(StorageBackend::new(Box::new(EtcStorage::new(&root)))),
    )
    .unwrap();
    let mut client = PredictClient::builder().endpoint(server.addr().to_string()).build().unwrap();
    let ack = roll_into(&mut client, staged.model_id, None).unwrap();
    assert_eq!(ack.model_id, staged.model_id);
    assert_eq!(ack.model_type, "brute-force");
    assert_eq!(ack.generation, 1, "first committed rollout generation");

    // 4. the daemon now serves the campaign's optimum
    let predicted = client.predict(system_hash, outcome.binary_hash, &CallOptions::default()).unwrap();
    assert_eq!(predicted, outcome.best);

    // generation accounting is visible in stats and nothing stale served
    let stats = client.stats().unwrap();
    assert_eq!(stats.model_generation, 1);
    assert_eq!(stats.stale_generation_hits, 0);
    assert_eq!(stats.generation_rollbacks, 0);

    // 5. a second campaign-driven rollout advances the generation
    let ack2 = roll_into(&mut client, staged.model_id, Some(ack.generation)).unwrap();
    assert_eq!(ack2.generation, 2);
    server.shutdown();
}

#[test]
fn rollout_against_a_dead_daemon_is_a_typed_error_and_retry_succeeds() {
    let root = home("dead");
    // a model staged but nothing listening yet
    let mut dead = PredictClient::builder().endpoint("127.0.0.1:1").build().unwrap();
    let err = roll_into(&mut dead, 1, None).unwrap_err();
    assert!(
        matches!(err, chronusd::campaign::CampaignError::Rollout(_)),
        "unreachable daemon surfaces a typed rollout error: {err}"
    );

    // bring a daemon up with a staged model; the retry then commits
    let perf = Arc::new(PerfModel::sr650());
    let spec = CampaignSpec {
        name: "retry".into(),
        configs: CpuSpec::epyc_7502p().all_configurations().into_iter().step_by(24).collect(),
        plan: PlanSpec::BruteForce,
        seed: 9,
        sample_interval_ms: 2000,
        full_work_gflop: perf.gflops(&perf.standard_config()) * 25.0,
        nx: 104,
        node_class: String::new(),
    };
    let mut cluster = Cluster::new(vec![SimNode::sr650(), SimNode::sr650()]);
    let outcome = {
        let mut journal = RecordJournal::open(root.join("campaign/journal.db")).unwrap();
        let mut repo = RecordStore::open(root.join("database/data.db")).unwrap();
        CampaignEngine::new(&mut cluster, &mut journal, &mut repo, perf, spec).run(RunOptions::default()).unwrap()
    };
    let mut app = Chronus::new(
        Box::new(RecordStore::open(root.join("database/data.db")).unwrap()),
        Box::new(LocalBlobStore::new(root.join("optimizers")).unwrap()),
        Box::new(EtcStorage::new(&root)),
    );
    let staged = rebuild_model(&mut app, "brute-force", outcome.system_id, outcome.binary_hash, 2).unwrap();
    let server = PredictServer::start(
        ServerConfig { addr: "127.0.0.1:0".to_string(), ..ServerConfig::default() },
        Arc::new(StorageBackend::new(Box::new(EtcStorage::new(&root)))),
    )
    .unwrap();
    let mut client = PredictClient::builder().endpoint(server.addr().to_string()).build().unwrap();
    let ack = roll_into(&mut client, staged.model_id, None).unwrap();
    assert_eq!(ack.generation, 1);
    server.shutdown();
}
