//! Integration tests of the daemon's shared-memory listener: a real
//! `PredictServer` with `shm_path` set, dialed by a real client over
//! `shm://` — singles, batches (the binary fast path), fallback to TCP
//! when the ring is gone, and ring-file cleanup at shutdown.

// The ring is Linux-only (raw mmap/futex); elsewhere the transport
// reports Unsupported and these tests have nothing to exercise.
#![cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]

use std::sync::Arc;
use std::time::Duration;

use chronus::remote::{CallOptions, PredictClient, RemoteError};
use chronusd::{PredictServer, PreparedModel, ServerConfig, StaticBackend};
use eco_sim_node::cpu::CpuConfig;

fn model(id: i64, sys: u64, bin: u64, cores: u32) -> PreparedModel {
    PreparedModel {
        model_id: id,
        model_type: "brute-force".into(),
        system_hash: sys,
        binary_hash: bin,
        config: CpuConfig::new(cores, 2_200_000, 1),
    }
}

fn ring_path(tag: &str) -> String {
    let path = std::env::temp_dir().join(format!("chronus-shm-test-{tag}-{}.ring", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path.to_string_lossy().into_owned()
}

fn shm_server(tag: &str, backend: StaticBackend) -> PredictServer {
    let cfg =
        ServerConfig { addr: "127.0.0.1:0".to_string(), shm_path: Some(ring_path(tag)), ..ServerConfig::default() };
    PredictServer::start(cfg, Arc::new(backend)).expect("bind ephemeral port + shm ring")
}

const OPTS: &CallOptions = &CallOptions { trace: None, deadline_ms: None };

#[test]
fn shm_singles_and_stats_round_trip() {
    let server = shm_server("singles", StaticBackend::new(vec![model(1, 10, 20, 32)]));
    let endpoint = format!("shm://{}", server.shm_path().unwrap());
    let mut c = PredictClient::builder().endpoint(&endpoint).build().unwrap();

    assert!(c.ping().unwrap() < Duration::from_secs(1));
    assert_eq!(c.predict(10, 20, OPTS).unwrap(), CpuConfig::new(32, 2_200_000, 1));
    match c.predict(99, 99, OPTS).unwrap_err() {
        RemoteError::Miss { system_hash, binary_hash } => assert_eq!((system_hash, binary_hash), (99, 99)),
        other => panic!("expected Miss, got {other}"),
    }

    let stats = c.stats().unwrap();
    assert_eq!(stats.predictions, 2);
    assert!(stats.requests_total >= 4, "{stats:?}");
}

#[test]
fn shm_batches_ride_the_binary_fast_path() {
    let server = shm_server("batch", StaticBackend::new(vec![model(1, 10, 20, 32), model(2, 30, 40, 16)]));
    let endpoint = format!("shm://{}", server.shm_path().unwrap());
    let mut c = PredictClient::builder().endpoint(&endpoint).build().unwrap();

    let keys: Vec<(u64, u64)> = (0..600).map(|i| if i % 2 == 0 { (10, 20) } else { (30, 40) }).collect();
    let results = c.predict_many(&keys, OPTS);
    assert_eq!(results.len(), keys.len());
    for (i, res) in results.iter().enumerate() {
        let cores = if i % 2 == 0 { 32 } else { 16 };
        assert_eq!(res.as_ref().unwrap().cores, cores, "key {i}");
    }

    // a miss inside a batch stays a per-key miss, not a batch failure
    let mixed = c.predict_many(&[(10, 20), (5, 5)], OPTS);
    assert!(mixed[0].is_ok());
    assert!(matches!(mixed[1], Err(RemoteError::Miss { .. })), "{:?}", mixed[1]);

    let stats = c.stats().unwrap();
    assert_eq!(stats.predictions, 602, "both batches counted per key: {stats:?}");
}

#[test]
fn dead_ring_falls_back_to_tcp() {
    let server = shm_server("fallback", StaticBackend::new(vec![model(1, 10, 20, 32)]));
    let missing = ring_path("fallback-missing"); // never created
    let mut c = PredictClient::builder()
        .endpoints([format!("shm://{missing}"), format!("tcp://{}", server.addr())])
        .build()
        .unwrap();

    // shm dial fails fast (no ring file) and the fleet fails over to TCP
    assert_eq!(c.predict(10, 20, OPTS).unwrap(), CpuConfig::new(32, 2_200_000, 1));
}

#[test]
fn shutdown_removes_the_ring_file_and_serves_new_sessions_until_then() {
    let server = shm_server("turnover", StaticBackend::new(vec![model(1, 10, 20, 32)]));
    let path = server.shm_path().unwrap().to_string();
    let endpoint = format!("shm://{path}");

    // sessions turn over: each client takes and releases the one seat
    for _ in 0..3 {
        let mut c = PredictClient::builder().endpoint(&endpoint).build().unwrap();
        assert_eq!(c.predict(10, 20, OPTS).unwrap(), CpuConfig::new(32, 2_200_000, 1));
    }

    assert!(std::path::Path::new(&path).exists());
    server.shutdown();
    assert!(!std::path::Path::new(&path).exists(), "ring file must be unlinked at shutdown");
}
