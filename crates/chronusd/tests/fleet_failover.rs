//! Fleet failover over real TCP: a client spanning several live
//! daemons keeps answering through the loss of one replica, and a
//! restarted replica is probed back onto the ring and re-preloaded
//! with the committed model before it serves again.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use chronus::remote::{CallOptions, Connection, PredictClient, TcpTransport, Transport};
use chronusd::{PredictServer, PreparedModel, ServerConfig, StaticBackend};
use eco_sim_node::cpu::CpuConfig;

const OPTS: &CallOptions = &CallOptions { trace: None, deadline_ms: None };

fn models() -> Vec<PreparedModel> {
    vec![
        PreparedModel {
            model_id: 1,
            model_type: "brute-force".into(),
            system_hash: 10,
            binary_hash: 20,
            config: CpuConfig::new(32, 2_200_000, 1),
        },
        PreparedModel {
            model_id: 2,
            model_type: "brute-force".into(),
            system_hash: 30,
            binary_hash: 40,
            config: CpuConfig::new(16, 1_500_000, 2),
        },
    ]
}

fn replica(id: &str) -> PredictServer {
    let cfg = ServerConfig { addr: "127.0.0.1:0".into(), replica_id: id.into(), ..ServerConfig::default() };
    PredictServer::start(cfg, Arc::new(StaticBackend::new(models()))).expect("bind ephemeral port")
}

/// A transport whose target address can be swapped at runtime, standing
/// in for a replica that restarts on a new port (rebinding the exact
/// old port races TIME_WAIT on busy CI boxes). The description stays
/// stable so the client treats old and new processes as one replica.
struct RedirectTransport {
    label: String,
    target: Arc<Mutex<String>>,
}

impl Transport for RedirectTransport {
    fn connect(&mut self) -> std::io::Result<Box<dyn Connection>> {
        let addr = self.target.lock().unwrap().clone();
        TcpTransport::new(addr, Duration::from_millis(200), Duration::from_millis(500)).connect()
    }

    fn describe(&self) -> String {
        self.label.clone()
    }
}

#[test]
fn killing_a_replica_mid_load_loses_no_predictions() {
    let mut servers = vec![replica("r0"), replica("r1"), replica("r2")];
    let mut client = PredictClient::builder()
        .endpoints(servers.iter().map(|s| s.addr().to_string()))
        .max_retries(4)
        .backoff(Duration::from_millis(2))
        .build()
        .unwrap();

    client.preload(1, OPTS).expect("rollout to a healthy fleet");
    client.preload(2, OPTS).expect("rollout to a healthy fleet");
    for _ in 0..20 {
        assert_eq!(client.predict(10, 20, OPTS).unwrap(), CpuConfig::new(32, 2_200_000, 1));
        assert_eq!(client.predict(30, 40, OPTS).unwrap(), CpuConfig::new(16, 1_500_000, 2));
    }
    assert_eq!(client.replicas_in_ring(), 3);

    // Kill one replica in place; every in-flight key it owned must fail
    // over without a single lost prediction.
    servers.remove(1).shutdown();
    for _ in 0..40 {
        assert_eq!(client.predict(10, 20, OPTS).unwrap(), CpuConfig::new(32, 2_200_000, 1));
        assert_eq!(client.predict(30, 40, OPTS).unwrap(), CpuConfig::new(16, 1_500_000, 2));
    }
    assert_eq!(client.replicas_in_ring(), 2, "the dead replica must leave the ring");

    // The survivors answer stats under their own identities; the dead
    // one reports an error instead of hanging the sweep.
    let all = client.stats_all();
    assert_eq!(all.len(), 3);
    let mut alive: Vec<String> = Vec::new();
    let mut dead = 0;
    for (endpoint, outcome) in all {
        match outcome {
            Ok(snap) => alive.push(format!("{endpoint}={}", snap.replica)),
            Err(_) => dead += 1,
        }
    }
    assert_eq!(dead, 1, "exactly the killed replica is unreachable: {alive:?}");
    assert_eq!(alive.len(), 2);
    assert!(alive.iter().any(|s| s.ends_with("=r0")) && alive.iter().any(|s| s.ends_with("=r2")), "{alive:?}");
}

#[test]
fn restarted_replica_rejoins_and_is_repreloaded() {
    let stable = replica("r0");
    let flappy = replica("r1");
    let target = Arc::new(Mutex::new(flappy.addr().to_string()));

    let mut client = PredictClient::builder()
        .endpoint(stable.addr().to_string())
        .transport(Box::new(RedirectTransport { label: "fleet://r1".into(), target: Arc::clone(&target) }))
        .max_retries(4)
        .backoff(Duration::from_millis(2))
        .build()
        .unwrap();

    let ack = client.preload(1, OPTS).expect("rollout to both replicas");
    assert_eq!(ack.generation, 1);
    assert_eq!(client.replica_health().iter().filter(|r| r.generation >= 1).count(), 2);

    // Take r1 down; traffic continues and the ring shrinks to r0.
    flappy.shutdown();
    for _ in 0..40 {
        assert_eq!(client.predict(10, 20, OPTS).unwrap(), CpuConfig::new(32, 2_200_000, 1));
        if client.replicas_in_ring() == 1 {
            break;
        }
    }
    assert_eq!(client.replicas_in_ring(), 1);

    // r1 restarts as a fresh process on a new port: no cached state, no
    // committed model. The client must probe it back, re-preload the
    // rolled model, and only then route to it again.
    let reborn = replica("r1");
    *target.lock().unwrap() = reborn.addr().to_string();

    let mut rejoined = false;
    for _ in 0..200 {
        assert_eq!(client.predict(10, 20, OPTS).unwrap(), CpuConfig::new(32, 2_200_000, 1));
        if client.replicas_in_ring() == 2 {
            rejoined = true;
            break;
        }
    }
    assert!(rejoined, "restarted replica never rejoined the ring");

    // The rejoin path re-preloaded the committed model before the
    // replica re-entered the ring: the new process already holds it.
    let health = client.replica_health();
    let r1 = health.iter().find(|r| r.endpoint == "fleet://r1").expect("r1 tracked");
    assert!(r1.in_ring);
    assert!(r1.generation >= 1, "rejoined replica must have re-acknowledged the rollout: {r1:?}");
    assert!(reborn.snapshot().model_generation >= 1, "the fresh process committed the re-preloaded model");

    // And predictions against its share of the keyspace come from a
    // warm registry, not a backend trip per request.
    for _ in 0..20 {
        assert_eq!(client.predict(10, 20, OPTS).unwrap(), CpuConfig::new(32, 2_200_000, 1));
        assert_eq!(client.predict(30, 40, OPTS).unwrap(), CpuConfig::new(16, 1_500_000, 2));
    }
    stable.shutdown();
    reborn.shutdown();
}
