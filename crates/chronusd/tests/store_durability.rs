//! Durable-model E2E over real TCP: replicas booted with `--store`
//! self-serve catch-up from the shared ledger (zero Preload RPCs), a
//! store-less replica pulls missing generations from a ring peer, and a
//! ledger rollback restores the prior generation fleet-wide under
//! quorum.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use chronus::remote::{CallOptions, PredictClient};
use chronusd::store::{ModelBlob, ModelStore, Provenance};
use chronusd::{PredictServer, PreparedModel, ServerConfig, StaticBackend};
use eco_campaign::roll_into_fleet;
use eco_sim_node::cpu::CpuConfig;

const OPTS: &CallOptions = &CallOptions { trace: None, deadline_ms: None };

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eco-store-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn blob(config: CpuConfig) -> ModelBlob {
    ModelBlob { model_type: "brute-force".into(), system_hash: 10, binary_hash: 20, config, benchmarks: Vec::new() }
}

fn store_replica(id: &str, dir: &Path, backend: StaticBackend) -> PredictServer {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        replica_id: id.into(),
        store_dir: Some(dir.to_str().unwrap().to_string()),
        ..ServerConfig::default()
    };
    PredictServer::start(cfg, Arc::new(backend)).expect("bind ephemeral port")
}

/// The ISSUE's headline scenario: campaign commits land in the store,
/// the fleet boots warm from it, and a killed replica restarts
/// still-warm with **zero** Preload traffic — catch-up is self-served.
#[test]
fn restarted_replica_self_serves_current_generation_with_zero_preloads() {
    let dir = temp_store("catchup");
    let gen1 = CpuConfig::new(32, 2_200_000, 1);
    let gen2 = CpuConfig::new(16, 1_500_000, 2);
    {
        let mut store = ModelStore::open_dir(dir.to_str().unwrap()).unwrap();
        store.commit(&blob(gen1), 1, Provenance::default()).unwrap();
    }

    // Both replicas boot from the shared store: one model installed,
    // nothing rejected, no Preload RPC ever sent.
    let r0 = store_replica("r0", &dir, StaticBackend::new(vec![]));
    let r1 = store_replica("r1", &dir, StaticBackend::new(vec![]));
    for server in [&r0, &r1] {
        assert_eq!(server.boot_recovery().store.installed, 1, "boot catch-up installs the serving ledger");
        assert!(server.boot_recovery().store.rejected.is_empty());
    }
    let mut client =
        PredictClient::builder().endpoints([r0.addr().to_string(), r1.addr().to_string()]).build().unwrap();
    for _ in 0..8 {
        assert_eq!(client.predict(10, 20, OPTS).unwrap(), gen1);
    }
    let snap = r0.snapshot();
    assert_eq!(snap.preloads, 0, "catch-up must not ride the Preload RPC");
    assert_eq!(snap.store_catchups, 1);
    assert_eq!(snap.model_generation, 1);
    assert_eq!(snap.store_dir, dir.to_str().unwrap());

    // A new campaign generation lands in the store while r1 is down.
    drop(client);
    r1.shutdown();
    {
        let mut store = ModelStore::open_dir(dir.to_str().unwrap()).unwrap();
        store.commit(&blob(gen2), 2, Provenance::default()).unwrap();
        assert_eq!(store.current_generation(), 2);
    }

    // r1 restarts with NO client traffic at all: its local store alone
    // must bring it to the current generation.
    let reborn = store_replica("r1", &dir, StaticBackend::new(vec![]));
    assert_eq!(reborn.boot_recovery().store.installed, 1);
    let snap = reborn.snapshot();
    assert_eq!(snap.preloads, 0, "restart must be self-served, not re-preloaded");
    assert_eq!(snap.store_generation, 2, "the ledger high-water is visible in stats");

    // And it answers the current generation's config straight away.
    let mut direct = PredictClient::builder().endpoint(reborn.addr().to_string()).build().unwrap();
    assert_eq!(direct.predict(10, 20, OPTS).unwrap(), gen2);
    assert_eq!(reborn.snapshot().preloads, 0);

    r0.shutdown();
    reborn.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Anti-entropy: a replica with no store of its own syncs missing
/// generations from a ring peer at boot and serves them.
#[test]
fn store_less_replica_pulls_models_from_peer_at_boot() {
    let dir = temp_store("sync");
    let config = CpuConfig::new(32, 2_500_000, 2);
    {
        let mut store = ModelStore::open_dir(dir.to_str().unwrap()).unwrap();
        store.commit(&blob(config), 1, Provenance::default()).unwrap();
    }
    let seeded = store_replica("r0", &dir, StaticBackend::new(vec![]));

    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        replica_id: "r1".into(),
        sync_from: Some(seeded.addr().to_string()),
        ..ServerConfig::default()
    };
    let cold = PredictServer::start(cfg, Arc::new(StaticBackend::new(vec![]))).expect("bind ephemeral port");
    assert_eq!(cold.boot_recovery().synced, 1, "one generation pulled from the peer");
    assert!(cold.boot_recovery().sync_error.is_none());

    let mut direct = PredictClient::builder().endpoint(cold.addr().to_string()).build().unwrap();
    assert_eq!(direct.predict(10, 20, OPTS).unwrap(), config);

    // A dead peer is a warning, not a boot failure: the daemon still
    // comes up cold rather than refusing to serve.
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        replica_id: "r2".into(),
        sync_from: Some("127.0.0.1:9".into()),
        ..ServerConfig::default()
    };
    let orphan = PredictServer::start(cfg, Arc::new(StaticBackend::new(vec![]))).expect("boot survives a dead peer");
    assert!(orphan.boot_recovery().sync_error.is_some());
    assert_eq!(orphan.boot_recovery().synced, 0);

    seeded.shutdown();
    cold.shutdown();
    orphan.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `chronus models rollback GEN --rollout` semantics at the library
/// layer: the ledger records the rollback first, then the prior
/// generation's model is re-preloaded fleet-wide under quorum.
#[test]
fn ledger_rollback_restores_prior_generation_fleet_wide() {
    let dir = temp_store("rollback");
    let gen1 = CpuConfig::new(32, 2_200_000, 1);
    let gen2 = CpuConfig::new(16, 1_500_000, 2);
    {
        let mut store = ModelStore::open_dir(dir.to_str().unwrap()).unwrap();
        store.commit(&blob(gen1), 1, Provenance::default()).unwrap();
        store.commit(&blob(gen2), 2, Provenance::default()).unwrap();
    }

    // The fleet backend can materialize either model by id, the way the
    // daemon's storage backend rebuilds any archived model.
    let prepared = vec![
        PreparedModel {
            model_id: 1,
            model_type: "brute-force".into(),
            system_hash: 10,
            binary_hash: 20,
            config: gen1,
        },
        PreparedModel {
            model_id: 2,
            model_type: "brute-force".into(),
            system_hash: 10,
            binary_hash: 20,
            config: gen2,
        },
    ];
    let r0 = store_replica("r0", &dir, StaticBackend::new(prepared.clone()));
    let r1 = store_replica("r1", &dir, StaticBackend::new(prepared));
    let mut client =
        PredictClient::builder().endpoints([r0.addr().to_string(), r1.addr().to_string()]).build().unwrap();
    for _ in 0..8 {
        assert_eq!(client.predict(10, 20, OPTS).unwrap(), gen2, "fleet boots at the current generation");
    }

    // Operator decision: generation 2 regressed. The ledger append is
    // the source of truth; the fleet push follows it.
    let record = {
        let mut store = ModelStore::open_dir(dir.to_str().unwrap()).unwrap();
        let record = store.rollback_to(1, "regression").unwrap();
        assert_eq!(store.current_generation(), 1);
        assert_eq!(store.high_water(), 2, "rollback never lowers the high-water mark");
        record
    };
    let report = roll_into_fleet(&mut client, record.model_id, None, 2).expect("quorum rollout of the prior model");
    assert_eq!(report.acks.len(), 2);

    for _ in 0..8 {
        assert_eq!(client.predict(10, 20, OPTS).unwrap(), gen1, "both replicas serve the rolled-back generation");
    }

    // A replica restarted after the rollback lands on generation 1
    // straight from its store — the ledger fold, not the fleet push, is
    // what it trusts.
    r1.shutdown();
    let reborn = store_replica("r1", &dir, StaticBackend::new(vec![]));
    assert_eq!(reborn.boot_recovery().store.installed, 1);
    let mut direct = PredictClient::builder().endpoint(reborn.addr().to_string()).build().unwrap();
    assert_eq!(direct.predict(10, 20, OPTS).unwrap(), gen1);

    r0.shutdown();
    reborn.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
