//! End to end over the daemon: the paper's Figure 4 sequence with
//! prediction served by chronusd instead of the in-process staged
//! model — benchmark, train, pre-load into the daemon, submit an
//! opted-in job through the cluster, and verify the rewritten
//! descriptor. Plus the failure half of the design: a dead or slow
//! daemon degrades to vanilla Slurm without rejecting the job or
//! blowing the scheduler's plugin budget.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use chronus::application::{Chronus, DEFAULT_SAMPLE_INTERVAL};
use chronus::integrations::hpcg_runner::HpcgRunner;
use chronus::integrations::monitoring::{IpmiService, LscpuInfo};
use chronus::integrations::record_store::RecordStore;
use chronus::integrations::storage::{EtcStorage, LocalBlobStore};
use chronus::interfaces::ApplicationRunner;
use chronus::remote::{CallOptions, PredictClient, RemotePrediction};
use chronusd::{PredictServer, PreparedModel, ServerConfig, StaticBackend, StorageBackend};
use eco_hpcg::perf_model::PerfModel;
use eco_hpcg::workload::{HpcgWorkload, Workload};
use eco_plugin::JobSubmitEco;
use eco_sim_node::cpu::CpuConfig;
use eco_sim_node::SimNode;
use eco_slurm_sim::{Cluster, PluginHost};

const SCRIPT_OPTED_IN: &str = "#!/bin/bash\n\
    #SBATCH --nodes=1\n\
    #SBATCH --ntasks=32\n\
    #SBATCH --comment \"chronus\"\n\
    \n\
    srun --mpi=pmix_v4 --ntasks-per-core=1 /opt/hpcg/bin/xhpcg\n";

struct World {
    root: PathBuf,
    cluster: Cluster,
    app: Chronus,
    runner: HpcgRunner,
    sampler: IpmiService,
    info: LscpuInfo,
    workload: Arc<HpcgWorkload>,
}

fn world(tag: &str) -> World {
    let root = std::env::temp_dir().join(format!("eco-e2e-remote-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let mut cluster = Cluster::single_node(SimNode::sr650());
    // The default 100ms plugin budget is wall-clock and shared with the
    // network round trip; on a loaded CI host it can expire spuriously.
    // The timing property these tests actually care about — the client
    // gives up long before a slow backend answers — is asserted
    // explicitly per test, so the budget itself just needs headroom.
    cluster.set_plugin_host(PluginHost::new().with_budget_ms(10_000));
    let perf = Arc::new(PerfModel::sr650());
    let work = perf.gflops(&perf.standard_config()) * 20.0;
    let workload = Arc::new(HpcgWorkload::with_work(perf, work, 104));
    let runner = HpcgRunner::install(&mut cluster, "/opt/hpcg/bin/xhpcg", workload.clone());
    let app = Chronus::new(
        Box::new(RecordStore::open(root.join("database/data.db")).unwrap()),
        Box::new(LocalBlobStore::new(root.join("blobs")).unwrap()),
        Box::new(EtcStorage::new(&root)),
    );
    World { root, cluster, app, runner, sampler: IpmiService::new(0, 23), info: LscpuInfo::new(0), workload }
}

/// Benchmarks, trains and stages a brute-force model in `w.root`,
/// returning its repository id.
fn stage_model(w: &mut World) -> i64 {
    let configs =
        vec![CpuConfig::new(32, 2_500_000, 1), CpuConfig::new(32, 2_200_000, 1), CpuConfig::new(16, 1_500_000, 2)];
    w.app
        .benchmark(&mut w.cluster, &w.runner, &mut w.sampler, &w.info, Some(&configs), DEFAULT_SAMPLE_INTERVAL)
        .unwrap();
    let meta = w.app.init_model("brute-force", 1, w.runner.binary_hash(), 7).unwrap();
    w.app.load_model(meta.id).unwrap();
    meta.id
}

fn eco_plugin(w: &World) -> JobSubmitEco {
    let mut plugin =
        JobSubmitEco::new(Arc::new(EtcStorage::new(&w.root)), w.cluster.node(0).spec(), w.cluster.node(0).ram_gb());
    plugin.register_binary("/opt/hpcg/bin/xhpcg", w.workload.binary_id());
    plugin
}

#[test]
fn submission_is_rewritten_through_the_daemon() {
    let mut w = world("happy");
    let model_id = stage_model(&mut w);

    // serve the staged model on an ephemeral port
    let server = PredictServer::start(
        ServerConfig { addr: "127.0.0.1:0".to_string(), ..ServerConfig::default() },
        Arc::new(StorageBackend::new(Box::new(EtcStorage::new(&w.root)))),
    )
    .unwrap();
    let addr = server.addr().to_string();

    // pre-load so the submit path is a pure cache hit
    let mut admin = PredictClient::builder().endpoint(addr.clone()).build().unwrap();
    let ack = admin.preload(model_id, &CallOptions::default()).unwrap();
    assert_eq!(ack.model_type, "brute-force");

    // the plugin predicts via the daemon, with a submit-path-sized budget
    let source = PredictClient::builder()
        .endpoint(addr)
        .connect_timeout(Duration::from_millis(100))
        .read_timeout(Duration::from_millis(100))
        .max_retries(1)
        .deadline_ms(50)
        .build()
        .unwrap();
    let mut plugin = eco_plugin(&w);
    plugin.set_source(Arc::new(RemotePrediction::from_client(source)));
    assert!(plugin.source_description().contains("chronusd"));
    w.cluster.register_plugin(Box::new(plugin));

    let submitted = Instant::now();
    let job = w.cluster.sbatch(SCRIPT_OPTED_IN, "alice").unwrap();
    let submit_latency = submitted.elapsed();

    let desc = &w.cluster.job(job).unwrap().descriptor;
    assert_eq!(desc.num_tasks, 32, "paper's most efficient config: 32 cores");
    assert_eq!(desc.max_frequency_khz, Some(2_200_000), "… at 2.2 GHz");
    assert_eq!(desc.min_frequency_khz, Some(2_200_000));
    assert_eq!(desc.threads_per_cpu, 1, "… one thread per core");
    // One preloaded cache hit over loopback: generous bound for loaded
    // CI, but still far below anything a human would call "stuck".
    assert!(
        submit_latency < Duration::from_secs(5),
        "submit path took {submit_latency:?}; a preloaded cache hit over loopback must not approach the plugin \
         budget"
    );

    let stats = admin.stats().unwrap();
    assert!(stats.predictions >= 1, "{stats:?}");
    assert_eq!(stats.cache_misses, 0, "preload made the submit a pure hit: {stats:?}");
    assert_eq!(
        (ack.system_hash, ack.binary_hash),
        (stats_key(&w)),
        "daemon served the identity the plugin asked for"
    );
}

fn stats_key(w: &World) -> (u64, u64) {
    use chronus::interfaces::SystemInfoProvider;
    (w.info.system_hash(&w.cluster), w.runner.binary_hash())
}

#[test]
fn dead_daemon_falls_back_to_untouched_submission() {
    let mut w = world("dead");
    stage_model(&mut w);

    // a port that was just closed: connections are refused immediately
    let dead_port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let source = PredictClient::builder()
        .endpoint(format!("127.0.0.1:{dead_port}"))
        .connect_timeout(Duration::from_millis(50))
        .read_timeout(Duration::from_millis(50))
        .max_retries(1)
        .backoff(Duration::from_millis(2))
        .build()
        .unwrap();
    let mut plugin = eco_plugin(&w);
    plugin.set_source(Arc::new(RemotePrediction::from_client(source)));
    w.cluster.register_plugin(Box::new(plugin));

    // the job is accepted (not rejected, not timed out) and untouched
    let submitted = Instant::now();
    let job = w.cluster.sbatch(SCRIPT_OPTED_IN, "alice").expect("dead daemon must not reject submissions");
    let elapsed = submitted.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "refused connections must fail fast, not hang the submit path ({elapsed:?} elapsed; client budget is 2 \
         dials x 50ms + 2ms backoff)"
    );
    let desc = &w.cluster.job(job).unwrap().descriptor;
    assert_eq!(desc.max_frequency_khz, None, "no prediction, no rewrite");
    assert_eq!(desc.min_frequency_khz, None, "descriptor left as submitted");
}

#[test]
fn slow_daemon_times_out_and_falls_back() {
    let mut w = world("slow");
    stage_model(&mut w);
    let (sys, bin) = stats_key(&w);

    // a daemon whose model source takes far longer than the client waits
    let laggard = StaticBackend::with_delay(
        vec![PreparedModel {
            model_id: 1,
            model_type: "brute-force".into(),
            system_hash: sys,
            binary_hash: bin,
            config: CpuConfig::new(32, 2_200_000, 1),
        }],
        Duration::from_millis(1200),
    );
    let server = PredictServer::start(
        ServerConfig { addr: "127.0.0.1:0".to_string(), ..ServerConfig::default() },
        Arc::new(laggard),
    )
    .unwrap();

    let source = PredictClient::builder()
        .endpoint(server.addr().to_string())
        .connect_timeout(Duration::from_millis(50))
        .read_timeout(Duration::from_millis(30))
        .max_retries(0)
        .build()
        .unwrap();
    let mut plugin = eco_plugin(&w);
    plugin.set_source(Arc::new(RemotePrediction::from_client(source)));
    w.cluster.register_plugin(Box::new(plugin));

    let submitted = Instant::now();
    let job = w.cluster.sbatch(SCRIPT_OPTED_IN, "alice").expect("slow daemon must not reject submissions");
    let elapsed = submitted.elapsed();
    // The client's whole budget is one dial (50ms) + one read timeout
    // (30ms); asserting half the backend's 1200ms stall leaves a wide
    // margin for CI scheduling noise while still proving the plugin gave
    // up instead of waiting the backend out.
    assert!(
        elapsed < Duration::from_millis(600),
        "submit took {elapsed:?}: the client must abandon a 1200ms-slow backend at its 30ms read timeout"
    );
    assert_eq!(w.cluster.job(job).unwrap().descriptor.max_frequency_khz, None, "timed out, so no rewrite");
}

#[test]
fn concurrent_submitters_coalesce_into_batched_frames() {
    // Many submit threads sharing one RemotePrediction: whichever
    // caller wins the client lock leads a batch, draining the others'
    // keys into a single PredictMany exchange. Every caller must get
    // its own key's config back (never a coalescing cross-wire), and
    // the daemon's counters must show batched frames carrying more
    // keys than frames.
    const THREADS: usize = 6;
    const PREDICTS_PER_THREAD: usize = 200;

    let keys: Vec<(u64, u64)> = (0..8u64).map(|i| (0x5eed_0000 + i, 0xb1a5_0000 + i)).collect();
    let configs: Vec<CpuConfig> = (0..8u32).map(|i| CpuConfig::new(4 + i * 4, 1_500_000, 1)).collect();
    let models: Vec<PreparedModel> = keys
        .iter()
        .zip(&configs)
        .enumerate()
        .map(|(i, (&(system_hash, binary_hash), &config))| PreparedModel {
            model_id: 1 + i as i64,
            model_type: "brute-force".into(),
            system_hash,
            binary_hash,
            config,
        })
        .collect();
    let server = PredictServer::start(
        ServerConfig { addr: "127.0.0.1:0".to_string(), ..ServerConfig::default() },
        Arc::new(StaticBackend::new(models)),
    )
    .unwrap();
    let addr = server.addr().to_string();

    let telemetry = Arc::new(chronus::telemetry::Telemetry::wall());
    let client = PredictClient::builder().endpoint(&addr).build().unwrap();
    let source = Arc::new(RemotePrediction::from_client(client));
    source.set_telemetry(Arc::clone(&telemetry));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let source = Arc::clone(&source);
            let keys = &keys;
            let configs = &configs;
            s.spawn(move || {
                use chronus::remote::PredictionSource;
                for i in 0..PREDICTS_PER_THREAD {
                    let pick = (t + i) % keys.len();
                    let (sys, bin) = keys[pick];
                    let cfg = source.predict(sys, bin).expect("warm predict through the coalescer");
                    assert_eq!(cfg, configs[pick], "thread {t} predict {i} got another caller's answer");
                }
            });
        }
    });

    let stats = PredictClient::builder().endpoint(addr).build().unwrap().stats().unwrap();
    assert_eq!(
        stats.predictions,
        (THREADS * PREDICTS_PER_THREAD) as u64,
        "every submitted key predicted exactly once: {stats:?}"
    );
    assert!(stats.batches > 0, "a {THREADS}-thread storm must coalesce into batched frames: {stats:?}");
    assert!(
        stats.batched_keys >= 2 * stats.batches,
        "every PredictMany frame carries at least two coalesced keys: {stats:?}"
    );
    let coalesced = telemetry.counter("client.coalesced").get();
    assert!(coalesced > 0, "riders that skipped their own round trip must be counted");
}
