//! Batched-protocol benchmark + regression gate: `PredictMany` batches
//! at pipeline depths 1/4/16 against a warm daemon — over loopback TCP
//! and, where the platform supports it, over the shared-memory ring
//! (`shm://`, binary batch fast path) — compared with the
//! single-request baseline.
//!
//! This is a self-measuring harness (not criterion) because it has two
//! jobs criterion doesn't do here:
//!
//! 1. **persist** a machine-readable result file (`BENCH_pr10.json` at
//!    the repo root by default, `BENCH_OUT` to override) so the repo
//!    carries its throughput trajectory in-tree;
//! 2. **gate**: when `BENCH_BASELINE` points at a previous result file,
//!    exit non-zero if warm keys/s drops or the single-request p99
//!    rises by more than 10% — the CI bench gate. Pre-shm baselines
//!    (e.g. `BENCH_pr7.json`) parse fine: the shm fields default.
//!
//! It also enforces the PR acceptance floors directly: batched warm
//! TCP throughput must reach at least 3x the single-request baseline,
//! the single-request daemon-side p50/p99 must stay in the same class
//! as before batching existed (p99 < 100 µs on an idle runner), and
//! the local transport must carry at least 1M keys/s warm at batch
//! 512 — the tentpole's headline number.
//!
//! Run with `cargo bench -p chronusd --bench predict_batch`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use chronus::remote::{CallOptions, PredictClient};
use chronusd::{PredictServer, PreparedModel, ServerConfig, StaticBackend};
use eco_sim_node::cpu::CpuConfig;
use serde::{Deserialize, Serialize};

/// Distinct warm keys the batches cycle through (well under the
/// registry capacity below, so every benched request is a cache hit).
const WARM_KEYS: usize = 64;

/// Minimum keys measured per (batch, depth) cell.
const KEYS_PER_CELL: u64 = 40_000;

/// Minimum keys per shm cell — larger than the TCP cells so the
/// 1M keys/s gate measures a window well past timer granularity.
const SHM_KEYS_PER_CELL: u64 = 200_000;

/// Minimum single requests for the baseline.
const SINGLE_REQUESTS: u64 = 30_000;

const BATCH_SIZES: [usize; 4] = [1, 8, 64, 512];
const DEPTHS: [u32; 3] = [1, 4, 16];

#[derive(Debug, Serialize, Deserialize)]
struct Cell {
    batch: usize,
    depth: u32,
    keys_per_sec: u64,
    keys: u64,
    wall_ms: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchResult {
    bench: String,
    single_req_per_sec: u64,
    /// Daemon-side service latency for the single-request baseline.
    single_p50_us: u64,
    single_p99_us: u64,
    cells: Vec<Cell>,
    best_keys_per_sec: u64,
    best_batch: usize,
    best_depth: u32,
    /// best_keys_per_sec / single_req_per_sec, in hundredths.
    speedup_x100: u64,
    /// The same grid over the shared-memory ring (binary fast path).
    /// Empty on platforms without the shm transport; every shm field
    /// defaults so pre-shm baseline files still parse for the gate.
    #[serde(default)]
    shm_cells: Vec<Cell>,
    #[serde(default)]
    shm_best_keys_per_sec: u64,
    #[serde(default)]
    shm_best_batch: usize,
    #[serde(default)]
    shm_best_depth: u32,
    /// Warm keys/s over the ring at batch 512 (best depth) — the
    /// tentpole's gated number.
    #[serde(default)]
    shm_batch512_keys_per_sec: u64,
}

fn keys() -> Vec<(u64, u64)> {
    (0..WARM_KEYS as u64).map(|i| (0x5eed_cafe ^ i, 0xb1a5_ed15 + i)).collect()
}

/// Ring file for the shm cells, on platforms where the transport
/// exists; `None` elsewhere (the shm section is skipped, the TCP gates
/// still run).
fn ring_path() -> Option<String> {
    if cfg!(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))) {
        let path = std::env::temp_dir().join(format!("chronus-bench-{}.shm", std::process::id()));
        Some(path.to_string_lossy().into_owned())
    } else {
        None
    }
}

fn start_server() -> PredictServer {
    let models: Vec<PreparedModel> = keys()
        .into_iter()
        .enumerate()
        .map(|(i, (system_hash, binary_hash))| PreparedModel {
            model_id: 1 + i as i64,
            model_type: "brute-force".into(),
            system_hash,
            binary_hash,
            config: CpuConfig::new(32, 2_200_000, 1),
        })
        .collect();
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        queue_cap: 128,
        cache_cap: 4096,
        shm_path: ring_path(),
        ..ServerConfig::default()
    };
    PredictServer::start(cfg, Arc::new(StaticBackend::new(models))).expect("bind ephemeral port")
}

fn out_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("BENCH_OUT") {
        return p.into();
    }
    // repo root: crates/chronusd/../..
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_pr10.json")
}

/// Measures the warm (batch × depth) grid against `endpoint`. One
/// fresh client per cell — for `shm://` that also exercises session
/// seat turnover twelve times in a row.
fn run_grid(endpoint: &str, label: &str, keys_per_cell: u64, warm: &[(u64, u64)], opts: &CallOptions) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &batch in &BATCH_SIZES {
        for &depth in &DEPTHS {
            let mut client = PredictClient::builder().endpoint(endpoint).pipeline_depth(depth).build().unwrap();
            let ask: Vec<(u64, u64)> = (0..batch).map(|i| warm[i % WARM_KEYS]).collect();
            // one unmeasured call to settle corr negotiation + connection
            for r in client.predict_many(&ask, opts) {
                r.expect("warm batched predict");
            }
            let calls = keys_per_cell.div_ceil(batch as u64);
            let t0 = Instant::now();
            for _ in 0..calls {
                for r in client.predict_many(&ask, opts) {
                    std::hint::black_box(r.expect("warm batched predict"));
                }
            }
            let wall = t0.elapsed();
            let keys_done = calls * batch as u64;
            let keys_per_sec = (keys_done as f64 / wall.as_secs_f64()) as u64;
            println!(
                "{label} batch {batch:>3} x depth {depth:>2}: {keys_per_sec:>8} keys/s ({keys_done} keys in {wall:?})"
            );
            cells.push(Cell { batch, depth, keys_per_sec, keys: keys_done, wall_ms: wall.as_millis() as u64 });
        }
    }
    cells
}

fn main() {
    let server = start_server();
    let addr = server.addr().to_string();
    let opts = CallOptions::default();
    let warm = keys();

    // Warm every key into the registry so the measured path is all
    // cache hits (one full pass through the key set).
    let mut client = PredictClient::builder().endpoint(&addr).build().unwrap();
    for &(s, b) in &warm {
        client.predict(s, b, &opts).expect("warm-up predict");
    }

    // --- single-request baseline ---------------------------------
    let t0 = Instant::now();
    for i in 0..SINGLE_REQUESTS {
        let (s, b) = warm[(i as usize) % WARM_KEYS];
        let cfg = client.predict(s, b, &opts).expect("warm predict");
        std::hint::black_box(cfg);
    }
    let single_wall = t0.elapsed();
    let single_req_per_sec = (SINGLE_REQUESTS as f64 / single_wall.as_secs_f64()) as u64;
    let stats = client.stats().expect("stats after baseline");
    let (single_p50_us, single_p99_us) = (stats.latency_p50_us, stats.latency_p99_us);
    println!(
        "single baseline: {single_req_per_sec} req/s over {SINGLE_REQUESTS} requests, daemon p50 \
         {single_p50_us} µs p99 {single_p99_us} µs"
    );

    // --- batched cells, TCP then shm -----------------------------
    let cells = run_grid(&addr, "tcp", KEYS_PER_CELL, &warm, &opts);
    let shm_cells = match server.shm_path() {
        Some(ring) => run_grid(&format!("shm://{ring}"), "shm", SHM_KEYS_PER_CELL, &warm, &opts),
        None => {
            println!("shm: transport unavailable on this platform, skipping the local-transport grid");
            Vec::new()
        }
    };

    let best = cells.iter().max_by_key(|c| c.keys_per_sec).expect("at least one cell");
    let (best_keys_per_sec, best_batch, best_depth) = (best.keys_per_sec, best.batch, best.depth);
    let speedup_x100 = best_keys_per_sec * 100 / single_req_per_sec.max(1);
    let shm_best = shm_cells.iter().max_by_key(|c| c.keys_per_sec);
    let (shm_best_keys_per_sec, shm_best_batch, shm_best_depth) =
        shm_best.map(|c| (c.keys_per_sec, c.batch, c.depth)).unwrap_or((0, 0, 0));
    let shm_batch512_keys_per_sec =
        shm_cells.iter().filter(|c| c.batch == 512).map(|c| c.keys_per_sec).max().unwrap_or(0);
    let result = BenchResult {
        bench: "predict_batch".to_string(),
        single_req_per_sec,
        single_p50_us,
        single_p99_us,
        cells,
        best_keys_per_sec,
        best_batch,
        best_depth,
        speedup_x100,
        shm_cells,
        shm_best_keys_per_sec,
        shm_best_batch,
        shm_best_depth,
        shm_batch512_keys_per_sec,
    };
    println!(
        "best: batch {best_batch} x depth {best_depth} = {best_keys_per_sec} keys/s ({}.{:02}x the single \
         baseline)",
        speedup_x100 / 100,
        speedup_x100 % 100
    );
    if shm_best_keys_per_sec > 0 {
        println!(
            "shm best: batch {shm_best_batch} x depth {shm_best_depth} = {shm_best_keys_per_sec} keys/s; batch 512 \
             = {shm_batch512_keys_per_sec} keys/s"
        );
    }

    let path = out_path();
    std::fs::write(&path, serde_json::to_string_pretty(&result).expect("result serializes"))
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("persisted {}", path.display());

    // --- acceptance floors ---------------------------------------
    let mut failures = Vec::new();
    if speedup_x100 < 300 {
        failures.push(format!(
            "batched warm throughput {best_keys_per_sec} keys/s is under 3x the single baseline \
             {single_req_per_sec} req/s"
        ));
    }
    if single_p99_us >= 100_000 {
        failures.push(format!("single-request daemon p99 {single_p99_us} µs blows the 100 ms bar"));
    }
    if result.shm_cells.is_empty() {
        // platform without the transport — the 1M floor cannot apply
    } else if shm_batch512_keys_per_sec < 1_000_000 {
        failures.push(format!(
            "local transport carried {shm_batch512_keys_per_sec} keys/s warm at batch 512, under the 1M keys/s floor"
        ));
    }

    // --- regression gate vs a committed baseline -----------------
    if let Ok(baseline_path) = std::env::var("BENCH_BASELINE") {
        let raw = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading BENCH_BASELINE {baseline_path}: {e}"));
        let baseline: BenchResult =
            serde_json::from_str(&raw).unwrap_or_else(|e| panic!("parsing BENCH_BASELINE {baseline_path}: {e}"));
        println!(
            "gate vs {baseline_path}: baseline {} keys/s best, {} req/s single, p99 {} µs",
            baseline.best_keys_per_sec, baseline.single_req_per_sec, baseline.single_p99_us
        );
        if best_keys_per_sec * 10 < baseline.best_keys_per_sec * 9 {
            failures.push(format!(
                "best batched throughput regressed >10%: {best_keys_per_sec} vs baseline {} keys/s",
                baseline.best_keys_per_sec
            ));
        }
        if single_req_per_sec * 10 < baseline.single_req_per_sec * 9 {
            failures.push(format!(
                "single-request throughput regressed >10%: {single_req_per_sec} vs baseline {} req/s",
                baseline.single_req_per_sec
            ));
        }
        if single_p99_us * 10 > baseline.single_p99_us.max(1) * 11 && single_p99_us > baseline.single_p99_us + 10 {
            failures.push(format!(
                "single-request p99 regressed >10%: {single_p99_us} µs vs baseline {} µs",
                baseline.single_p99_us
            ));
        }
        // Pre-shm baselines carry zeros here (serde defaults); the shm
        // regression check only arms once a baseline has shm numbers.
        if baseline.shm_best_keys_per_sec > 0 && shm_best_keys_per_sec * 10 < baseline.shm_best_keys_per_sec * 9 {
            failures.push(format!(
                "shm batched throughput regressed >10%: {shm_best_keys_per_sec} vs baseline {} keys/s",
                baseline.shm_best_keys_per_sec
            ));
        }
    }

    drop(client);
    server.shutdown();
    if !failures.is_empty() {
        eprintln!("bench gate FAILED:\n  {}", failures.join("\n  "));
        std::process::exit(1);
    }
    println!("bench gate passed");
    // Keep a tiny grace period so the OS reclaims the loopback sockets
    // before a following bench binds its own.
    std::thread::sleep(Duration::from_millis(50));
}
