//! Throughput/latency benchmark of the prediction service: N
//! concurrent clients hammering a warm-cache daemon over loopback TCP.
//!
//! Run with `cargo bench -p chronusd`. Throughput is reported in
//! requests/second (criterion `elem/s`); the daemon's own latency
//! histogram (p50/p99) is printed at the end via the `stats` RPC.
//! Acceptance floor for this repo: ≥ 10k predict req/s warm-cache with
//! p99 under 100 ms.

use std::sync::Arc;
use std::time::Duration;

use chronus::remote::{CallOptions, PredictClient};
use chronusd::{PredictServer, PreparedModel, ServerConfig, StaticBackend};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eco_sim_node::cpu::CpuConfig;

const SYSTEM_HASH: u64 = 0x5eed_cafe;
const BINARY_HASH: u64 = 0xb1a5_ed15;

fn start_server(workers: usize) -> PredictServer {
    let model = PreparedModel {
        model_id: 1,
        model_type: "brute-force".into(),
        system_hash: SYSTEM_HASH,
        binary_hash: BINARY_HASH,
        config: CpuConfig::new(32, 2_200_000, 1),
    };
    let cfg = ServerConfig { addr: "127.0.0.1:0".to_string(), workers, queue_cap: 128, ..ServerConfig::default() };
    PredictServer::start(cfg, Arc::new(StaticBackend::new(vec![model]))).expect("bind ephemeral port")
}

fn predict_service(c: &mut Criterion) {
    let server = start_server(8);
    let addr = server.addr().to_string();

    // warm the registry so every benched request is a cache hit
    let opts = CallOptions::default();
    PredictClient::builder().endpoint(&addr).build().unwrap().predict(SYSTEM_HASH, BINARY_HASH, &opts).unwrap();

    const BATCH: u64 = 512;
    let mut group = c.benchmark_group("predict_service");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(BATCH));

    for &clients in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("warm_predict", clients), &clients, |b, &clients| {
            b.iter(|| {
                // each iteration: BATCH requests split across N
                // persistent connections
                crossbeam::scope(|s| {
                    for _ in 0..clients {
                        let addr = addr.clone();
                        let per_client = BATCH / clients as u64;
                        s.spawn(move |_| {
                            let mut client = PredictClient::builder().endpoint(addr).build().unwrap();
                            let opts = CallOptions::default();
                            for _ in 0..per_client {
                                let cfg = client.predict(SYSTEM_HASH, BINARY_HASH, &opts).expect("warm predict");
                                criterion::black_box(cfg);
                            }
                        });
                    }
                })
                .unwrap();
            });
        });
    }
    group.finish();

    let stats = PredictClient::builder().endpoint(addr).build().unwrap().stats().unwrap();
    println!(
        "daemon after bench: {} requests, {} hits / {} misses, latency p50 {} µs, p99 {} µs, max {} µs",
        stats.requests_total,
        stats.cache_hits,
        stats.cache_misses,
        stats.latency_p50_us,
        stats.latency_p99_us,
        stats.latency_max_us
    );
    assert!(stats.latency_p99_us < 100_000, "p99 {} µs blows the 100 ms acceptance bar", stats.latency_p99_us);
}

criterion_group!(benches, predict_service);
criterion_main!(benches);
