//! The `chronus` command-line interface, runnable against the simulated
//! SR650 testbed (the paper's §3.3 CLI, end to end).
//!
//! State (database, blob storage, settings, staged models) persists in
//! `$CHRONUS_HOME` (default `./chronus-home`), so the paper's workflow
//! works across invocations:
//!
//! ```text
//! chronus benchmark /opt/hpcg/bin/xhpcg --configurations configs.json
//! chronus init-model --model random-tree --system 1
//! chronus load-model --model 1
//! chronus slurm-config <SYSTEM_HASH> <BINARY_HASH>
//! chronus set state active
//! ```
//!
//! Two daemon-era commands extend the workflow:
//!
//! ```text
//! chronus serve --addr 127.0.0.1:4517 --workers 4 --cache-cap 64
//! chronus slurm-config --remote 127.0.0.1:4517 <SYSTEM_HASH> <BINARY_HASH>
//! ```
//!
//! `serve` runs chronusd over this `$CHRONUS_HOME`'s staged model;
//! `--remote` answers the prediction from a running daemon instead of
//! reading the staged model in-process.
//!
//! The benchmark command drives a freshly booted simulated cluster; the
//! simulated HPCG run length can be scaled with `$CHRONUS_SCALE`
//! (default 0.02 of the paper's 18.5-minute run, for a snappy CLI).

use chronus::application::Chronus;
use chronus::cli::{run_command, CliContext};
use chronus::integrations::hpcg_runner::HpcgRunner;
use chronus::integrations::monitoring::{IpmiService, LscpuInfo};
use chronus::integrations::record_store::RecordStore;
use chronus::integrations::storage::{EtcStorage, LocalBlobStore};
use chronus::interfaces::{ApplicationRunner, SystemInfoProvider};
use chronus::presenter;
use chronus::remote::PredictClient;
use chronusd::{PredictServer, ServerConfig, StorageBackend};
use eco_hpcg::perf_model::PerfModel;
use eco_hpcg::workload::{HpcgWorkload, PAPER_STANDARD_RUNTIME_S};
use eco_sim_node::SimNode;
use eco_slurm_sim::Cluster;
use std::sync::Arc;

fn flag_value<'a>(argv: &[&'a str], flag: &str) -> Option<&'a str> {
    argv.iter().position(|a| *a == flag).and_then(|i| argv.get(i + 1).copied())
}

fn parse_hash(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// `chronus serve`: run chronusd over this home's staged model until
/// killed.
fn cmd_serve(home: &str, argv: &[&str]) -> ! {
    let cfg = ServerConfig {
        addr: flag_value(argv, "--addr").unwrap_or("127.0.0.1:4517").to_string(),
        workers: flag_value(argv, "--workers").and_then(|v| v.parse().ok()).unwrap_or(4),
        cache_cap: flag_value(argv, "--cache-cap").and_then(|v| v.parse().ok()).unwrap_or(64),
        ..ServerConfig::default()
    };
    let backend = Arc::new(StorageBackend::new(Box::new(EtcStorage::new(home))));
    let server = match PredictServer::start(cfg.clone(), backend) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("chronus serve: cannot bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    println!("chronusd listening on {} ({} workers, cache {})", server.addr(), cfg.workers, cfg.cache_cap);
    loop {
        std::thread::park();
    }
}

/// `chronus slurm-config --remote ADDR SYS BIN`: predict via a daemon.
fn cmd_remote_config(addr: &str, argv: &[&str]) -> ! {
    let hashes: Vec<u64> = argv.iter().filter_map(|a| parse_hash(a)).collect();
    let [system_hash, binary_hash] = hashes[..] else {
        eprintln!("chronus: usage: chronus slurm-config --remote ADDR SYSTEM_HASH BINARY_HASH");
        std::process::exit(1);
    };
    let mut client = PredictClient::new(addr);
    match client.predict(system_hash, binary_hash) {
        Ok(config) => {
            print!("{}", presenter::config_json(&config));
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("chronus: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let home = std::env::var("CHRONUS_HOME").unwrap_or_else(|_| "./chronus-home".to_string());
    let scale: f64 = std::env::var("CHRONUS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.02);
    std::fs::create_dir_all(&home).expect("create CHRONUS_HOME");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();

    // daemon-era commands short-circuit before the simulated testbed
    // boots: `serve` needs only the staged model, and `--remote`
    // delegates prediction to a daemon that already has it.
    if argv.first() == Some(&"serve") {
        cmd_serve(&home, &argv[1..]);
    }
    if argv.first() == Some(&"slurm-config") {
        if let Some(addr) = flag_value(&argv, "--remote") {
            let rest: Vec<&str> = argv[1..].iter().copied().filter(|a| *a != "--remote" && *a != addr).collect();
            cmd_remote_config(addr, &rest);
        }
    }

    let mut cluster = Cluster::single_node(SimNode::sr650());
    let perf = Arc::new(PerfModel::sr650());
    let work = perf.gflops(&perf.standard_config()) * PAPER_STANDARD_RUNTIME_S * scale;
    let workload = Arc::new(HpcgWorkload::with_work(perf, work, 104));
    let runner = HpcgRunner::install(&mut cluster, "/opt/hpcg/bin/xhpcg", workload);

    let mut app = Chronus::new(
        Box::new(RecordStore::open(format!("{home}/database/data.db")).expect("open database")),
        Box::new(LocalBlobStore::new(format!("{home}/optimizers")).expect("open blob storage")),
        Box::new(EtcStorage::new(&home)),
    );
    let mut sampler = IpmiService::new(0, 0xc11);
    let info = LscpuInfo::new(0);

    // convenience: `chronus hashes` prints the identifiers the plugin uses
    if argv.first() == Some(&"hashes") {
        println!("system hash: {}", info.system_hash(&cluster));
        println!("binary hash: {}", runner.binary_hash());
        return;
    }

    let mut ctx = CliContext {
        app: &mut app,
        cluster: &mut cluster,
        runner: &runner,
        sampler: &mut sampler,
        info: &info,
        now_ms: 0,
    };
    match run_command(&mut ctx, &argv) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("chronus: {e}");
            std::process::exit(1);
        }
    }
}
