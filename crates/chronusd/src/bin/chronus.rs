//! The `chronus` command-line interface, runnable against the simulated
//! SR650 testbed (the paper's §3.3 CLI, end to end).
//!
//! State (database, blob storage, settings, staged models) persists in
//! `$CHRONUS_HOME` (default `./chronus-home`), so the paper's workflow
//! works across invocations:
//!
//! ```text
//! chronus benchmark /opt/hpcg/bin/xhpcg --configurations configs.json
//! chronus init-model --model random-tree --system 1
//! chronus load-model --model 1
//! chronus slurm-config <SYSTEM_HASH> <BINARY_HASH>
//! chronus set state active
//! ```
//!
//! Daemon-era commands extend the workflow:
//!
//! ```text
//! chronus serve --addr 127.0.0.1:4517 --workers 4 --cache-cap 64 [--fleet 3] [--store DIR] [--sync-from ADDR] [--shm PATH]
//! chronus slurm-config --remote 127.0.0.1:4517[,127.0.0.1:4518,...] <SYSTEM_HASH> <BINARY_HASH>
//! chronus stats --remote 127.0.0.1:4517[,...] [--all-replicas]
//! chronus trace job.sh [--user alice] [--remote 127.0.0.1:4517]
//! chronus models list|show GEN|verify|rollback GEN --store DIR [--rollout ADDR[,...] --quorum N]
//! ```
//!
//! Everywhere an address is accepted, a comma-separated list names a
//! replicated fleet: the client routes each prediction key over a
//! consistent-hash ring and fails over when a replica goes dark.
//! Endpoints take URI schemes — `tcp://host:port` (also bare
//! `host:port`) and `shm://path` for a same-host daemon's
//! shared-memory ring, which the client prefers when one is healthy:
//! `--remote shm:///run/chronusd.shm,127.0.0.1:4517`.
//!
//! The campaign engine automates the whole loop — adaptive sweep,
//! journaled trials, model rebuild, hot rollout into a running daemon:
//!
//! ```text
//! chronus campaign run [--plan halving|brute-force] [--nodes 4] [--rollout 127.0.0.1:4517[,...]] [--quorum N]
//! chronus campaign status
//! chronus campaign resume
//! ```
//!
//! `serve` runs chronusd over this `$CHRONUS_HOME`'s staged model;
//! `--remote` answers the prediction from a running daemon instead of
//! reading the staged model in-process. `stats` renders a daemon's
//! telemetry counters and latency percentiles. `trace` submits an
//! sbatch script to the simulated testbed with tracing attached and
//! prints the resulting span tree — parse, plugin decision, prediction
//! and (with `--remote`) every client attempt against the daemon.
//!
//! The benchmark command drives a freshly booted simulated cluster; the
//! simulated HPCG run length can be scaled with `$CHRONUS_SCALE`
//! (default 0.02 of the paper's 18.5-minute run, for a snappy CLI).

use chronus::application::Chronus;
use chronus::cli::{run_command, CliContext};
use chronus::integrations::hpcg_runner::HpcgRunner;
use chronus::integrations::monitoring::{IpmiService, LscpuInfo};
use chronus::integrations::record_store::RecordStore;
use chronus::integrations::storage::{EtcStorage, LocalBlobStore};
use chronus::interfaces::{ApplicationRunner, LocalStorage, SystemInfoProvider};
use chronus::presenter;
use chronus::remote::{CallOptions, PredictClient, RemotePrediction};
use chronus::telemetry::{render_trace, Telemetry, TraceId};
use chronusd::campaign::{
    commit_to_store, rebuild_model, roll_into, roll_into_fleet, CampaignEngine, CampaignError, CampaignSpec, Journal,
    PlanSpec, RecordJournal, RunOptions, TrialStatus,
};
use chronusd::store::{LedgerRecord, ModelStore, ProvenanceSource};
use chronusd::{PredictServer, ServerConfig, StorageBackend};
use eco_hpcg::perf_model::PerfModel;
use eco_hpcg::workload::{HpcgWorkload, Workload, PAPER_STANDARD_RUNTIME_S};
use eco_plugin::JobSubmitEco;
use eco_sim_node::cpu::CpuSpec;
use eco_sim_node::SimNode;
use eco_slurm_sim::Cluster;
use std::sync::Arc;

fn flag_value<'a>(argv: &[&'a str], flag: &str) -> Option<&'a str> {
    argv.iter().position(|a| *a == flag).and_then(|i| argv.get(i + 1).copied())
}

fn parse_hash(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Builds a client from a `--remote`/`--rollout` value: one `host:port`,
/// or a comma-separated list for a replicated fleet.
fn client_for(addrs: &str) -> PredictClient {
    PredictClient::builder()
        .endpoints(addrs.split(',').map(str::trim).filter(|a| !a.is_empty()))
        .build()
        .unwrap_or_else(|e| {
            eprintln!("chronus: bad endpoint list '{addrs}': {e}");
            std::process::exit(1);
        })
}

/// `chronus serve`: run chronusd over this home's staged model until
/// killed. `--fleet N` starts N replicas on consecutive ports, each
/// with its own identity (`r0`, `r1`, ...) stamped on `Stats` answers;
/// point clients at the comma-separated list it prints. `--store DIR`
/// attaches the durable model store: every replica catches up from it
/// at boot (blob-verified, zero Preload traffic) before accepting
/// connections. `--sync-from ADDR` additionally pulls committed models
/// a fresh replica is missing from a running ring peer. `--shm PATH`
/// additionally serves a shared-memory ring at PATH for same-host
/// clients (dial `shm://PATH`); with `--fleet N`, replica `i` serves
/// `PATH.r<i>`.
fn cmd_serve(home: &str, argv: &[&str]) -> ! {
    let base = ServerConfig {
        addr: flag_value(argv, "--addr").unwrap_or("127.0.0.1:4517").to_string(),
        workers: flag_value(argv, "--workers").and_then(|v| v.parse().ok()).unwrap_or(4),
        cache_cap: flag_value(argv, "--cache-cap").and_then(|v| v.parse().ok()).unwrap_or(64),
        store_dir: flag_value(argv, "--store").map(str::to_string),
        sync_from: flag_value(argv, "--sync-from").map(str::to_string),
        shm_path: flag_value(argv, "--shm").map(str::to_string),
        ..ServerConfig::default()
    };
    let fleet: usize = flag_value(argv, "--fleet").and_then(|v| v.parse().ok()).unwrap_or(1).max(1);
    let (host, port) = match base.addr.rsplit_once(':').and_then(|(h, p)| p.parse::<u16>().ok().map(|p| (h, p))) {
        Some(split) => split,
        None => {
            eprintln!("chronus serve: bad --addr '{}' (expected host:port)", base.addr);
            std::process::exit(1);
        }
    };
    let mut servers = Vec::with_capacity(fleet);
    let mut endpoints = Vec::with_capacity(fleet);
    for i in 0..fleet {
        let cfg = ServerConfig {
            // port 0 asks the OS for an ephemeral port per replica;
            // otherwise replicas take consecutive ports from the base
            addr: if port == 0 { format!("{host}:0") } else { format!("{host}:{}", port + i as u16) },
            replica_id: if fleet > 1 { format!("r{i}") } else { String::new() },
            // one ring file per replica: the seat protocol is strictly
            // one daemon per ring
            shm_path: base.shm_path.as_ref().map(|p| if fleet > 1 { format!("{p}.r{i}") } else { p.clone() }),
            ..base.clone()
        };
        let backend = Arc::new(StorageBackend::new(Box::new(EtcStorage::new(home))));
        match PredictServer::start(cfg.clone(), backend) {
            Ok(s) => {
                println!(
                    "chronusd{} listening on {} ({} workers, cache {})",
                    if fleet > 1 { format!(" replica r{i}") } else { String::new() },
                    s.addr(),
                    cfg.workers,
                    cfg.cache_cap
                );
                let boot = s.boot_recovery();
                if cfg.store_dir.is_some() {
                    println!("  store catch-up: {} model(s) installed from the ledger", boot.store.installed);
                    for rejected in &boot.store.rejected {
                        println!("  store rejected {rejected}");
                    }
                }
                if cfg.sync_from.is_some() {
                    match &boot.sync_error {
                        Some(e) => println!("  peer sync failed (continuing cold): {e}"),
                        None => println!("  peer sync: {} model(s) pulled", boot.synced),
                    }
                }
                if let Some(ring) = s.shm_path() {
                    println!("  local transport: shm://{ring}");
                    // same-host clients list the ring first: the client
                    // prefers local replicas and keeps TCP as fallback
                    endpoints.push(format!("shm://{ring}"));
                }
                endpoints.push(s.addr().to_string());
                servers.push(s);
            }
            Err(e) => {
                eprintln!("chronus serve: cannot bind {}: {e}", cfg.addr);
                std::process::exit(1);
            }
        }
    }
    if fleet > 1 || endpoints.len() > 1 {
        println!("fleet endpoints: {}", endpoints.join(","));
    }
    loop {
        std::thread::park();
    }
}

/// `chronus slurm-config --remote ADDR SYS BIN`: predict via a daemon.
fn cmd_remote_config(addr: &str, argv: &[&str]) -> ! {
    let hashes: Vec<u64> = argv.iter().filter_map(|a| parse_hash(a)).collect();
    let [system_hash, binary_hash] = hashes[..] else {
        eprintln!("chronus: usage: chronus slurm-config --remote ADDR SYSTEM_HASH BINARY_HASH");
        std::process::exit(1);
    };
    let mut client = client_for(addr);
    match client.predict(system_hash, binary_hash, &CallOptions::default()) {
        Ok(config) => {
            print!("{}", presenter::config_json(&config));
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("chronus: {e}");
            std::process::exit(1);
        }
    }
}

/// `chronus stats --remote ADDR[,ADDR...] [--all-replicas]`: fetch and
/// render daemon counters. With several endpoints (or `--all-replicas`)
/// every replica is queried and rendered in turn; a replica that cannot
/// answer reports its error without hiding the others.
fn cmd_stats(argv: &[&str]) -> ! {
    let Some(addr) = flag_value(argv, "--remote") else {
        eprintln!("chronus: usage: chronus stats --remote ADDR[,ADDR...] [--all-replicas]");
        std::process::exit(1);
    };
    let mut client = client_for(addr);
    let all = argv.contains(&"--all-replicas") || client.replicas_total() > 1;
    if all {
        let mut failed = false;
        for (endpoint, outcome) in client.stats_all() {
            println!("== {endpoint} ==");
            match outcome {
                Ok(snap) => print!("{}", presenter::stats_table(&snap)),
                Err(e) => {
                    failed = true;
                    println!("unreachable: {e}");
                }
            }
        }
        std::process::exit(if failed { 1 } else { 0 });
    }
    match client.stats() {
        Ok(snap) => {
            print!("{}", presenter::stats_table(&snap));
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("chronus: {e}");
            std::process::exit(1);
        }
    }
}

/// `chronus trace SCRIPT [--user NAME] [--remote ADDR]`: submit the
/// script to the simulated testbed with telemetry attached and render
/// the submission's span tree.
fn cmd_trace(
    home: &str,
    cluster: &mut Cluster,
    binary_path: &str,
    binary_contents: &str,
    argv: &[&str],
) -> Result<String, String> {
    let mut script_path = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i] {
            "--user" | "--remote" => i += 1, // skip the flag's value
            a if !a.starts_with("--") && script_path.is_none() => script_path = Some(a),
            _ => {}
        }
        i += 1;
    }
    let Some(path) = script_path else {
        return Err("usage: chronus trace SCRIPT [--user NAME] [--remote ADDR]".to_string());
    };
    let script = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let user = flag_value(argv, "--user").unwrap_or("operator");

    let telemetry = Arc::new(Telemetry::wall());
    cluster.set_telemetry(Arc::clone(&telemetry));
    let storage = Arc::new(EtcStorage::new(home));
    let mut eco = JobSubmitEco::new(storage as Arc<dyn LocalStorage + Send + Sync>, &CpuSpec::epyc_7502p(), 256);
    eco.register_binary(binary_path, binary_contents);
    eco.set_telemetry(Arc::clone(&telemetry));
    if let Some(addr) = flag_value(argv, "--remote") {
        let source =
            Arc::new(RemotePrediction::from_endpoints(addr).map_err(|e| format!("bad endpoint list '{addr}': {e}"))?);
        source.set_telemetry(Arc::clone(&telemetry));
        eco.set_source(source);
    }
    cluster.register_plugin(Box::new(eco));

    let submitted = cluster.sbatch(&script, user);
    let mut out = match &submitted {
        Ok(id) => format!("job {id} submitted by {user}\n"),
        Err(e) => format!("submission rejected: {e}\n"),
    };
    let events = telemetry.recorder().events();
    match events.iter().find(|e| e.layer == "slurm" && e.name == "sbatch" && e.parent.is_none()) {
        Some(root) => out.push_str(&render_trace(&events, TraceId(root.trace))),
        None => out.push_str("no trace recorded\n"),
    }
    Ok(out)
}

/// Builds a fresh campaign spec from `chronus campaign run` flags. The
/// sampling cadence comes from settings (`chronus set sample-interval`).
fn campaign_spec_from_flags(home: &str, scale: f64, argv: &[&str]) -> Result<CampaignSpec, String> {
    let plan = match flag_value(argv, "--plan").unwrap_or("halving") {
        "halving" => PlanSpec::default_halving(),
        "brute-force" => PlanSpec::BruteForce,
        other => return Err(format!("unknown plan '{other}' (use halving or brute-force)")),
    };
    let seed = flag_value(argv, "--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    // `--node-class NAME` characterises one hardware class of a
    // heterogeneous cluster; the resulting model commits under the
    // classed key and the store provenance records the class
    let node_class = flag_value(argv, "--node-class").unwrap_or("").to_string();
    let settings = EtcStorage::new(home).load_settings().map_err(|e| e.to_string())?;
    let perf = PerfModel::sr650();
    Ok(CampaignSpec {
        name: "hpcg-campaign".to_string(),
        configs: CpuSpec::epyc_7502p().all_configurations(),
        plan,
        seed,
        sample_interval_ms: settings.sample_interval.as_millis(),
        full_work_gflop: perf.gflops(&perf.standard_config()) * PAPER_STANDARD_RUNTIME_S * scale,
        nx: 104,
        node_class,
    })
}

/// `chronus campaign status`: summarize the journal without running
/// anything.
fn campaign_status(journal: &RecordJournal) -> Result<String, String> {
    let Some(spec) = journal.load_spec().map_err(|e| e.to_string())? else {
        return Ok("no campaign journal\n".to_string());
    };
    let entries = journal.entries().map_err(|e| e.to_string())?;
    let mut out = format!(
        "campaign \"{}\" (plan {}, seed {}, {} configurations)\n",
        spec.name,
        spec.plan.name(),
        spec.seed,
        spec.configs.len()
    );
    let rounds = entries.iter().map(|(_, e)| e.round).max().map(|r| r + 1).unwrap_or(0);
    for round in 0..rounds {
        let (mut done, mut failed, mut started) = (0, 0, 0);
        for (_, e) in entries.iter().filter(|(_, e)| e.round == round) {
            match e.status {
                TrialStatus::Done { .. } => done += 1,
                TrialStatus::Failed { .. } => failed += 1,
                TrialStatus::Started => started += 1,
            }
        }
        out.push_str(&format!("  round {round}: {done} done, {failed} failed, {started} in flight\n"));
    }
    out.push_str(&format!("  {} trial entries journaled\n", entries.len()));
    Ok(out)
}

/// `chronus campaign run|resume|status`: the adaptive benchmark campaign.
fn cmd_campaign(home: &str, scale: f64, argv: &[&str]) -> Result<String, String> {
    const USAGE: &str = "usage: chronus campaign run [--plan halving|brute-force] [--seed N] \
                         [--nodes N] [--max-trials N] [--model TYPE] [--store DIR] [--rollout ADDR[,ADDR...]] [--quorum N]\n       \
                         chronus campaign resume [--nodes N] [--max-trials N] [--model TYPE] [--store DIR] [--rollout ADDR[,ADDR...]]\n       \
                         chronus campaign status\n";
    let sub = *argv.first().ok_or_else(|| USAGE.to_string())?;
    std::fs::create_dir_all(format!("{home}/campaign")).map_err(|e| e.to_string())?;
    let mut journal = RecordJournal::open(format!("{home}/campaign/journal.db")).map_err(|e| e.to_string())?;
    if sub == "status" {
        return campaign_status(&journal);
    }
    if sub != "run" && sub != "resume" {
        return Err(USAGE.to_string());
    }

    let spec = match (sub, journal.load_spec().map_err(|e| e.to_string())?) {
        ("resume", None) => return Err("no campaign journal to resume; start one with `chronus campaign run`".into()),
        (_, Some(existing)) => existing, // continue the journaled campaign
        ("run", None) => campaign_spec_from_flags(home, scale, argv)?,
        _ => unreachable!(),
    };

    let nodes = flag_value(argv, "--nodes").and_then(|v| v.parse().ok()).unwrap_or(4usize).max(1);
    let max_trials = flag_value(argv, "--max-trials").and_then(|v| v.parse().ok());
    let mut cluster = Cluster::new((0..nodes).map(|_| SimNode::sr650()).collect());
    let perf = Arc::new(PerfModel::sr650());

    let outcome = {
        let mut repo = RecordStore::open(format!("{home}/database/data.db")).map_err(|e| e.to_string())?;
        CampaignEngine::new(&mut cluster, &mut journal, &mut repo, perf, spec.clone())
            .run(RunOptions { max_trials, on_tick: None })
    };
    let outcome = match outcome {
        Ok(o) => o,
        Err(CampaignError::Interrupted { finished }) => {
            return Ok(format!(
            "campaign interrupted after {finished} trial(s); `chronus campaign resume` continues from the journal\n"
        ))
        }
        Err(e) => return Err(e.to_string()),
    };

    let mut out = format!(
        "campaign \"{}\" complete: {} round(s), {} trial(s) run, {} resumed from journal, \
         {} failed, {:.0} trial-seconds\nbest configuration: {}\n",
        spec.name,
        outcome.rounds,
        outcome.trials_run,
        outcome.trials_skipped,
        outcome.trials_failed,
        outcome.trial_seconds,
        outcome.best
    );

    // rebuild and stage the model from the fresh benchmarks (the engine's
    // repository handle is closed; the app opens its own)
    let model_type = flag_value(argv, "--model").unwrap_or("brute-force");
    let mut app = Chronus::new(
        Box::new(RecordStore::open(format!("{home}/database/data.db")).map_err(|e| e.to_string())?),
        Box::new(LocalBlobStore::new(format!("{home}/optimizers")).map_err(|e| e.to_string())?),
        Box::new(EtcStorage::new(home)),
    );
    let staged =
        rebuild_model(&mut app, model_type, outcome.system_id, outcome.binary_hash, 0).map_err(|e| e.to_string())?;
    out.push_str(&format!("model {} ({}) staged for serving\n", staged.model_id, staged.model_type));

    // the durable commit comes BEFORE any replica is asked to serve the
    // model: a store failure aborts the rollout, never the reverse
    if let Some(dir) = flag_value(argv, "--store") {
        let mut store = ModelStore::open_dir(dir).map_err(|e| e.to_string())?;
        let record = commit_to_store(&mut store, &staged, &spec, &outcome).map_err(|e| e.to_string())?;
        out.push_str(&format!(
            "model committed to store {dir}: generation {} (parent {}, blob {})\n",
            record.generation, record.parent, record.blob_hash
        ));
    }

    if let Some(addr) = flag_value(argv, "--rollout") {
        let mut client = client_for(addr);
        if client.replicas_total() > 1 {
            // fleet rollout: fan out to every replica, demand a quorum
            // (default: majority) before declaring the model live
            let quorum =
                flag_value(argv, "--quorum").and_then(|v| v.parse().ok()).unwrap_or(client.replicas_total() / 2 + 1);
            match roll_into_fleet(&mut client, staged.model_id, None, quorum) {
                Ok(report) => {
                    out.push_str(&format!(
                        "fleet rollout into {addr}: model {} committed on {}/{} replicas at generation {}\n",
                        staged.model_id,
                        report.acks.len(),
                        report.acks.len() + report.failures.len(),
                        report.committed_generation()
                    ));
                    for (ep, e) in &report.failures {
                        out.push_str(&format!("  replica {ep} did not commit: {e}\n"));
                    }
                }
                Err(e) => out.push_str(&format!(
                    "fleet rollout into {addr} failed: {e}\n\
                     (committed replicas keep the new model; retry with `chronus campaign resume --rollout {addr}`)\n"
                )),
            }
        } else {
            match roll_into(&mut client, staged.model_id, None) {
                Ok(ack) => out.push_str(&format!(
                    "hot rollout into {addr}: model {} committed at generation {}\n",
                    ack.model_id, ack.generation
                )),
                Err(e) => out.push_str(&format!(
                    "rollout into {addr} failed: {e}\n\
                     (the daemon keeps serving its previous model; retry with `chronus campaign run --rollout {addr}`)\n"
                )),
            }
        }
    }
    Ok(out)
}

/// `chronus models list|show|verify|rollback`: audit and operate the
/// durable model store without touching any daemon memory.
fn cmd_models(argv: &[&str]) -> Result<String, String> {
    const USAGE: &str = "usage: chronus models list --store DIR\n       \
                         chronus models show GEN --store DIR\n       \
                         chronus models verify --store DIR\n       \
                         chronus models rollback GEN --store DIR [--reason TEXT] \
                         [--rollout ADDR[,ADDR...]] [--quorum N]\n";
    let sub = *argv.first().ok_or_else(|| USAGE.to_string())?;
    let dir = flag_value(argv, "--store").ok_or_else(|| USAGE.to_string())?;
    let mut store = ModelStore::open_dir(dir).map_err(|e| e.to_string())?;
    if store.recovered_truncation() {
        eprintln!("chronus models: store {dir} had a torn journal tail; recovered to the last valid record");
    }
    match sub {
        "list" => {
            let serving = store.current_generation();
            let mut out = format!(
                "store {dir}: {} commit(s), high-water generation {}, serving generation {}\n",
                store.commits().count(),
                store.high_water(),
                serving
            );
            for record in store.ledger() {
                match record {
                    LedgerRecord::Commit(m) => out.push_str(&format!(
                        "{} gen {:>3}  parent {:>3}  model {:>4} ({})  key {:#x}/{:#x}  blob {}  campaign \"{}\" seed {}{}\n",
                        if m.generation == serving { "*" } else { " " },
                        m.generation,
                        m.parent,
                        m.model_id,
                        m.model_type,
                        m.system_hash,
                        m.binary_hash,
                        m.blob_hash,
                        m.provenance.campaign,
                        m.provenance.seed,
                        if m.provenance.source == ProvenanceSource::Adaptation {
                            format!("  [refit of gen {}]", m.provenance.refit_of)
                        } else {
                            String::new()
                        },
                    )),
                    LedgerRecord::Rollback { to_generation, reason } => {
                        out.push_str(&format!("  rollback -> gen {to_generation}  (\"{reason}\")\n"))
                    }
                }
            }
            Ok(out)
        }
        "show" => {
            let generation =
                argv.get(1).and_then(|v| v.parse().ok()).ok_or("models show: expected a generation number")?;
            let m = store.record(generation).ok_or_else(|| format!("generation {generation} was never committed"))?;
            let blob_state = match store.load_blob(m) {
                Ok(blob) => format!("verified ({} benchmark row(s))", blob.benchmarks.len()),
                Err(e) => format!("FAILED: {e}"),
            };
            // adaptation refits carry their lineage: the live generation
            // the re-fit superseded, walked back to the original campaign
            let lineage = if m.provenance.source == ProvenanceSource::Adaptation {
                let mut chain = format!("adaptation refit of gen {}", m.provenance.refit_of);
                let mut at = m.provenance.refit_of;
                while let Some(parent) = store.record(at) {
                    if parent.provenance.source != ProvenanceSource::Adaptation {
                        chain.push_str(&format!(
                            " (originally campaign \"{}\", gen {})",
                            parent.provenance.campaign, parent.generation
                        ));
                        break;
                    }
                    at = parent.provenance.refit_of;
                }
                format!("lineage:    {chain}\n")
            } else {
                String::new()
            };
            Ok(format!(
                "generation {} (parent {}){}\n\
                 model:      {} ({})\n\
                 key:        system {:#x} / binary {:#x}\n\
                 config:     {}\n\
                 blob:       {}  {}\n\
                 source:     {}\n\
                 {lineage}campaign:   \"{}\" (plan {}, seed {})\n\
                 trials:     {} run, {} resumed from journal, {:.0} trial-seconds\n\
                 calibration: best {:.4} GFLOP/s per watt\n",
                m.generation,
                m.parent,
                if m.generation == store.current_generation() { "  [serving]" } else { "" },
                m.model_id,
                m.model_type,
                m.system_hash,
                m.binary_hash,
                m.config,
                m.blob_hash,
                blob_state,
                m.provenance.source,
                m.provenance.campaign,
                m.provenance.plan,
                m.provenance.seed,
                m.provenance.trials_run,
                m.provenance.trials_skipped,
                m.provenance.trial_seconds,
                m.provenance.best_gflops_per_watt,
            ))
        }
        "verify" => {
            let issues = store.verify();
            let mut out =
                format!("store {dir}: {} commit(s) audited, {} issue(s)\n", store.commits().count(), issues.len());
            let mut fatal = 0;
            for issue in &issues {
                out.push_str(&format!("  {}\n", issue.detail));
                if issue.generation > 0 {
                    fatal += 1;
                }
            }
            // orphan blobs (generation 0) are crash residue, not damage;
            // anything anchored to a committed generation is
            if fatal > 0 {
                return Err(format!("{out}{fatal} committed generation(s) failed verification"));
            }
            Ok(out)
        }
        "rollback" => {
            let generation =
                argv.get(1).and_then(|v| v.parse().ok()).ok_or("models rollback: expected a generation number")?;
            let reason = flag_value(argv, "--reason").unwrap_or("operator rollback");
            let record = store.rollback_to(generation, reason).map_err(|e| e.to_string())?;
            let mut out = format!(
                "store {dir} rolled back to generation {}: model {} ({}) is the serving record\n",
                record.generation, record.model_id, record.model_type
            );
            if let Some(addr) = flag_value(argv, "--rollout") {
                let mut client = client_for(addr);
                let quorum = flag_value(argv, "--quorum")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(client.replicas_total() / 2 + 1);
                match roll_into_fleet(&mut client, record.model_id, None, quorum) {
                    Ok(report) => out.push_str(&format!(
                        "fleet rollback into {addr}: model {} restored on {}/{} replicas (quorum {})\n",
                        record.model_id,
                        report.acks.len(),
                        report.acks.len() + report.failures.len(),
                        report.quorum
                    )),
                    Err(e) => {
                        return Err(format!(
                            "{out}fleet rollback into {addr} failed: {e}\n\
                             (the store ledger already records the rollback; re-run with --rollout to retry)"
                        ))
                    }
                }
            }
            Ok(out)
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() {
    let home = std::env::var("CHRONUS_HOME").unwrap_or_else(|_| "./chronus-home".to_string());
    let scale: f64 = std::env::var("CHRONUS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.02);
    std::fs::create_dir_all(&home).expect("create CHRONUS_HOME");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();

    // daemon-era commands short-circuit before the simulated testbed
    // boots: `serve` needs only the staged model, and `--remote`
    // delegates prediction to a daemon that already has it.
    if argv.first() == Some(&"serve") {
        cmd_serve(&home, &argv[1..]);
    }
    if argv.first() == Some(&"slurm-config") {
        if let Some(addr) = flag_value(&argv, "--remote") {
            let rest: Vec<&str> = argv[1..].iter().copied().filter(|a| *a != "--remote" && *a != addr).collect();
            cmd_remote_config(addr, &rest);
        }
    }
    if argv.first() == Some(&"stats") {
        cmd_stats(&argv[1..]);
    }
    // the store CLI needs neither the testbed nor the database
    if argv.first() == Some(&"models") {
        match cmd_models(&argv[1..]) {
            Ok(out) => {
                print!("{out}");
                return;
            }
            Err(e) => {
                eprintln!("chronus: {e}");
                std::process::exit(1);
            }
        }
    }
    // the campaign drives its own multi-node cluster and opens the
    // database itself, so it must run before the app below takes the
    // record store
    if argv.first() == Some(&"campaign") {
        match cmd_campaign(&home, scale, &argv[1..]) {
            Ok(out) => {
                print!("{out}");
                return;
            }
            Err(e) => {
                eprintln!("chronus: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut cluster = Cluster::single_node(SimNode::sr650());
    let perf = Arc::new(PerfModel::sr650());
    let work = perf.gflops(&perf.standard_config()) * PAPER_STANDARD_RUNTIME_S * scale;
    let workload = Arc::new(HpcgWorkload::with_work(perf, work, 104));
    let runner = HpcgRunner::install(&mut cluster, "/opt/hpcg/bin/xhpcg", Arc::clone(&workload) as Arc<dyn Workload>);

    let mut app = Chronus::new(
        Box::new(RecordStore::open(format!("{home}/database/data.db")).expect("open database")),
        Box::new(LocalBlobStore::new(format!("{home}/optimizers")).expect("open blob storage")),
        Box::new(EtcStorage::new(&home)),
    );
    let mut sampler = IpmiService::new(0, 0xc11);
    let info = LscpuInfo::new(0);

    if argv.first() == Some(&"trace") {
        match cmd_trace(&home, &mut cluster, runner.binary_path(), workload.binary_id(), &argv[1..]) {
            Ok(out) => {
                print!("{out}");
                return;
            }
            Err(e) => {
                eprintln!("chronus: {e}");
                std::process::exit(1);
            }
        }
    }

    // convenience: `chronus hashes` prints the identifiers the plugin uses
    if argv.first() == Some(&"hashes") {
        println!("system hash: {}", info.system_hash(&cluster));
        println!("binary hash: {}", runner.binary_hash());
        return;
    }

    let mut ctx = CliContext {
        app: &mut app,
        cluster: &mut cluster,
        runner: &runner,
        sampler: &mut sampler,
        info: &info,
        now_ms: 0,
    };
    match run_command(&mut ctx, &argv) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("chronus: {e}");
            std::process::exit(1);
        }
    }
}
