//! # chronusd — the Chronus prediction daemon
//!
//! The paper's eco plugin shells out to `chronus slurm-config` on
//! every opted-in submission. That works on a single head node, but it
//! re-reads the staged model from disk on every query and serializes
//! submissions behind one process. `chronusd` moves prediction behind
//! a small TCP service so the answer is computed once (at preload, or
//! on first miss) and then served from memory by a worker pool:
//!
//! ```text
//!  sbatch ──► job_submit_eco ──► PredictClient ──► chronusd
//!                 (plugin)        length-prefixed     accept thread
//!                    │            JSON over TCP          │ bounded queue
//!                    │                                   ▼ (Busy when full)
//!                    │                               worker pool
//!                    │                                   │
//!                    ▼                                   ▼
//!             rewritten job              sharded LRU model registry
//!         (cores, freq, threads)        (system_hash, binary_hash) →
//!                                        pre-computed best CpuConfig
//! ```
//!
//! Failure behaviour is the design's centre: the daemon answers
//! `Busy`/`Miss`/`DeadlineExceeded` explicitly, the client times out
//! and retries with bounded backoff, and the plugin treats every
//! failure as "leave the job untouched" — a dead daemon degrades to
//! vanilla Slurm, never to a stuck scheduler.
//!
//! * [`server`] — accept loop, worker pool, Busy back-pressure;
//! * [`service`] — the transport-free request engine (deadlines,
//!   miss/error classification, counters) shared by the TCP server and
//!   the deterministic simulation harness;
//! * [`registry`] — sharded LRU map of pre-computed answers;
//! * [`backend`] — where models come from (staged disk layout, or a
//!   static set for tests);
//! * [`stats`] — counters and latency histogram behind the `stats` RPC.
//!
//! The wire protocol and the client live in [`chronus::remote`] so the
//! plugin does not depend on this crate.

pub mod backend;
pub mod registry;
pub mod server;
pub mod service;
pub mod stats;

/// The benchmark-campaign engine (re-exported from `eco-campaign`): plans
/// sweeps, journals trials write-ahead, and hot-rolls rebuilt models into
/// this daemon through the versioned `Preload` flow.
pub mod campaign {
    pub use eco_campaign::*;
}

/// The online-adaptation loop (re-exported from `eco-adapt`): outcome
/// reservoirs fed by the `ReportOutcome` verb, drift detection against
/// the serving generation, incremental re-fit and the canary rollout
/// controller.
pub mod adapt {
    pub use eco_adapt::*;
}

/// The durable model store (re-exported from `eco-store`): the
/// content-addressed blob area and append-only provenance ledger behind
/// `chronusd --store`, the campaign's pre-rollout commit, and the
/// `chronus models` audit/rollback CLI.
pub mod store {
    pub use eco_store::*;
}

pub use backend::{ModelBackend, PreparedModel, StaticBackend, StorageBackend};
pub use registry::{ModelKey, ModelRegistry, ResidentModel};
pub use server::{BootRecovery, PredictServer, ServerConfig};
pub use service::{PredictService, QueueGauges, ServiceClock, StoreCatchUp, WallClock};
pub use stats::ServerStats;
