//! The daemon's model registry: a sharded, LRU-bounded map from
//! `(system_hash, binary_hash)` to the pre-computed most
//! energy-efficient configuration.
//!
//! Predictions are read-mostly and latency-critical (they sit on the
//! scheduler's submit path), so the registry stores the *answer* — the
//! optimizer's argmax over the system's configuration space, computed
//! once at preload — rather than the optimizer itself. Since the
//! batching PR, reads are **lock-free**: each shard publishes an
//! immutable snapshot of its map behind an atomic pointer, and a
//! lookup pins the snapshot with one counter increment, reads it, and
//! unpins — no lock, no writer can ever block a reader. Writers
//! (preloads, cold-miss inserts, evictions) are rare; each one builds
//! the next snapshot off to the side under a per-shard mutex, swaps it
//! in, and reclaims the old snapshot only after every reader pinned to
//! it has left.
//!
//! ## Reclamation protocol
//!
//! Each shard keeps an `epoch` counter and two reader counts indexed by
//! epoch parity. A reader pins the current parity, re-checks the epoch
//! (retrying if a writer slipped in between), reads the snapshot
//! pointer, and unpins. A writer — alone, under the shard's write
//! mutex — swaps the snapshot pointer, bumps the epoch (flipping the
//! parity new readers pin), waits for the *old* parity's pin count to
//! drain to zero, and only then frees the old snapshot. The next
//! writer cannot run until this one releases the mutex, so the only
//! thread that could free the *new* snapshot is gated behind the drain
//! of everyone who might still be reading the old one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use eco_sim_node::cpu::CpuConfig;
use parking_lot::Mutex;

/// Registry key: the plugin's identity pair (§4.2.1).
pub type ModelKey = (u64, u64);

/// One resident model. Entries are shared between successive snapshots
/// via `Arc`, so the LRU stamp lives in one place no matter how many
/// snapshots an entry survives.
#[derive(Debug)]
pub struct ResidentModel {
    /// The repository id of the model this answer came from.
    pub model_id: i64,
    /// The optimizer type string.
    pub model_type: String,
    /// The pre-computed best configuration.
    pub config: CpuConfig,
    /// The rollout generation this entry was installed under.
    pub generation: u64,
    /// Logical timestamp of the last lookup (LRU).
    last_used: AtomicU64,
}

/// Outcome of a generation-aware registry lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// A committed entry answered.
    Hit { model_id: i64, model_type: String, config: CpuConfig },
    /// No entry for the key.
    Miss,
    /// An entry exists but belongs to an uncommitted rollout generation;
    /// it must never be served (the caller should fall back to a miss).
    Stale,
}

/// The immutable map a shard publishes to readers. Cloning one (to
/// build the next) clones `Arc`s, not models.
type Snapshot = HashMap<ModelKey, Arc<ResidentModel>>;

struct Shard {
    /// The live snapshot. Owned by the shard; freed by the writer that
    /// replaces it (after draining readers) or by `Drop`.
    current: AtomicPtr<Snapshot>,
    /// Bumped once per published snapshot; its parity picks which
    /// reader count new readers pin.
    epoch: AtomicU64,
    /// Pinned-reader counts, indexed by epoch parity.
    readers: [AtomicU64; 2],
    /// Serializes writers. Readers never touch it.
    write: Mutex<()>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            current: AtomicPtr::new(Box::into_raw(Box::new(Snapshot::new()))),
            epoch: AtomicU64::new(0),
            readers: [AtomicU64::new(0), AtomicU64::new(0)],
            write: Mutex::new(()),
        }
    }

    /// Runs `f` against the live snapshot, lock-free. Pin → re-check →
    /// read → unpin; the re-check retries if a writer published between
    /// the epoch load and the pin, so a pinned parity always covers the
    /// pointer the reader is about to load (or a newer one, which is
    /// also safe: the newer snapshot cannot be freed until the *next*
    /// writer runs, and that writer is blocked behind this pin's drain).
    fn read<R>(&self, f: impl FnOnce(&Snapshot) -> R) -> R {
        let parity = loop {
            let e = self.epoch.load(Ordering::Acquire);
            let p = (e & 1) as usize;
            self.readers[p].fetch_add(1, Ordering::AcqRel);
            if self.epoch.load(Ordering::Acquire) == e {
                break p;
            }
            // a writer flipped the epoch mid-pin: unpin and retry on
            // the fresh parity so we never hold up the wrong drain
            self.readers[p].fetch_sub(1, Ordering::Release);
        };
        // SAFETY: `current` is never null, and the snapshot it points
        // to outlives this borrow: it is freed only by a writer that
        // first drains the parity we are pinned on (or, for a snapshot
        // published after our pin, by a later writer serialized behind
        // that drain).
        let result = f(unsafe { &*self.current.load(Ordering::Acquire) });
        self.readers[parity].fetch_sub(1, Ordering::Release);
        result
    }

    /// Clones the live snapshot, lets `f` mutate the clone, publishes
    /// it, and frees the old snapshot once no reader can still hold it.
    fn update<R>(&self, f: impl FnOnce(&mut Snapshot) -> R) -> R {
        let _writer = self.write.lock();
        // SAFETY: only writers free snapshots, writers are serialized
        // by `write`, and we hold it — the pointer is live.
        let mut next = unsafe { (*self.current.load(Ordering::Relaxed)).clone() };
        let result = f(&mut next);
        let old = self.current.swap(Box::into_raw(Box::new(next)), Ordering::AcqRel);
        let flipped = self.epoch.fetch_add(1, Ordering::AcqRel);
        let old_parity = (flipped & 1) as usize;
        let mut spins = 0u32;
        while self.readers[old_parity].load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // SAFETY: every reader that could have loaded `old` pinned the
        // old parity before the epoch flip, and that count just hit
        // zero; readers pinned since the flip load the new pointer.
        drop(unsafe { Box::from_raw(old) });
        result
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        // SAFETY: `&mut self` means no reader or writer is live.
        drop(unsafe { Box::from_raw(*self.current.get_mut()) });
    }
}

/// Sharded LRU registry with lock-free reads. Capacity is budgeted per
/// shard (`max(1, capacity / shards)`), so eviction never needs a
/// global lock.
pub struct ModelRegistry {
    shards: Vec<Shard>,
    per_shard_cap: usize,
    clock: AtomicU64,
    evictions: AtomicU64,
    /// Latest committed rollout generation; entries above it are invisible.
    committed_gen: AtomicU64,
    /// Generation allocator for in-flight rollouts.
    next_gen: AtomicU64,
}

impl ModelRegistry {
    /// A registry with `shards` shards and room for roughly `capacity`
    /// models in total. Both are clamped to at least 1.
    pub fn new(shards: usize, capacity: usize) -> ModelRegistry {
        let shards = shards.max(1);
        let per_shard_cap = capacity.max(1).div_ceil(shards);
        ModelRegistry {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            per_shard_cap,
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            committed_gen: AtomicU64::new(0),
            next_gen: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &ModelKey) -> &Shard {
        // cheap mix of both hashes; the shard count is small
        let mixed = key.0 ^ key.1.rotate_left(17);
        &self.shards[(mixed % self.shards.len() as u64) as usize]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The latest committed rollout generation (0 before any rollout).
    pub fn generation(&self) -> u64 {
        self.committed_gen.load(Ordering::Acquire)
    }

    /// Allocates a fresh, *uncommitted* rollout generation. Entries
    /// inserted under it stay invisible to lookups until
    /// [`Self::commit_rollout`] publishes the generation.
    pub fn begin_rollout(&self) -> u64 {
        self.next_gen.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Publishes a rollout generation: entries tagged `gen` (and below)
    /// become servable atomically.
    pub fn commit_rollout(&self, gen: u64) {
        self.committed_gen.fetch_max(gen, Ordering::AcqRel);
    }

    /// Removes the key's entry if it still belongs to the aborted
    /// rollout `gen`, so a later commit can never resurrect it. Returns
    /// true if an entry was removed.
    pub fn abort_rollout(&self, key: &ModelKey, gen: u64) -> bool {
        self.shard_for(key).update(|entries| {
            if entries.get(key).is_some_and(|m| m.generation == gen) {
                entries.remove(key);
                return true;
            }
            false
        })
    }

    /// Generation-aware lookup, refreshing the LRU stamp. Entries from
    /// an uncommitted generation are reported as [`Lookup::Stale`] and
    /// never served. Lock-free: pins the shard's snapshot, never blocks
    /// on a concurrent preload or eviction.
    pub fn lookup(&self, key: &ModelKey) -> Lookup {
        let committed = self.generation();
        self.shard_for(key).read(|entries| match entries.get(key) {
            None => Lookup::Miss,
            Some(m) if m.generation > committed => Lookup::Stale,
            Some(m) => {
                m.last_used.store(self.tick(), Ordering::Relaxed);
                Lookup::Hit { model_id: m.model_id, model_type: m.model_type.clone(), config: m.config }
            }
        })
    }

    /// Looks up the best configuration for a key, refreshing its LRU
    /// stamp. Lock-free.
    pub fn get(&self, key: &ModelKey) -> Option<CpuConfig> {
        match self.lookup(key) {
            Lookup::Hit { config, .. } => Some(config),
            _ => None,
        }
    }

    /// Like [`Self::get`] but also reports which model answered.
    pub fn get_full(&self, key: &ModelKey) -> Option<(i64, String, CpuConfig)> {
        match self.lookup(key) {
            Lookup::Hit { model_id, model_type, config } => Some((model_id, model_type, config)),
            _ => None,
        }
    }

    /// Inserts (or replaces) a model at the current committed
    /// generation, evicting the least recently used entry of the key's
    /// shard if it is full.
    pub fn insert(&self, key: ModelKey, model_id: i64, model_type: String, config: CpuConfig) {
        self.insert_at(key, model_id, model_type, config, self.generation());
    }

    /// Inserts (or replaces) a model tagged with rollout generation
    /// `gen`. If `gen` is uncommitted the entry stays invisible until
    /// [`Self::commit_rollout`].
    pub fn insert_at(&self, key: ModelKey, model_id: i64, model_type: String, config: CpuConfig, gen: u64) {
        let stamp = self.tick();
        self.shard_for(&key).update(|entries| {
            if !entries.contains_key(&key) && entries.len() >= self.per_shard_cap {
                if let Some(victim) =
                    entries.iter().min_by_key(|(_, m)| m.last_used.load(Ordering::Relaxed)).map(|(k, _)| *k)
                {
                    entries.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            entries.insert(
                key,
                Arc::new(ResidentModel {
                    model_id,
                    model_type,
                    config,
                    generation: gen,
                    last_used: AtomicU64::new(stamp),
                }),
            );
        });
    }

    /// Models resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read(|entries| entries.len())).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// LRU evictions since start.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Every *committed* resident entry as
    /// `(key, model_id, model_type, config, generation)`, sorted by
    /// generation then key. This is the daemon's answer to an
    /// anti-entropy `SyncModels` pull, so uncommitted (stale) entries
    /// are excluded — a peer must never catch up onto a half-rolled-out
    /// model.
    pub fn committed_entries(&self) -> Vec<(ModelKey, i64, String, CpuConfig, u64)> {
        let committed = self.generation();
        let mut out = Vec::new();
        for shard in &self.shards {
            shard.read(|entries| {
                for (key, m) in entries {
                    if m.generation <= committed {
                        out.push((*key, m.model_id, m.model_type.clone(), m.config, m.generation));
                    }
                }
            });
        }
        out.sort_by_key(|a| (a.4, a.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cores: u32) -> CpuConfig {
        CpuConfig::new(cores, 2_200_000, 1)
    }

    #[test]
    fn get_returns_what_insert_stored() {
        let reg = ModelRegistry::new(4, 8);
        assert!(reg.get(&(1, 2)).is_none());
        reg.insert((1, 2), 7, "brute-force".into(), cfg(32));
        assert_eq!(reg.get(&(1, 2)), Some(cfg(32)));
        let (id, ty, c) = reg.get_full(&(1, 2)).unwrap();
        assert_eq!((id, ty.as_str(), c), (7, "brute-force", cfg(32)));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn replacing_a_key_does_not_evict() {
        let reg = ModelRegistry::new(1, 1);
        reg.insert((1, 1), 1, "a".into(), cfg(8));
        reg.insert((1, 1), 2, "b".into(), cfg(16));
        assert_eq!(reg.evictions(), 0);
        assert_eq!(reg.get_full(&(1, 1)).unwrap().0, 2);
    }

    #[test]
    fn lru_eviction_picks_the_coldest_entry() {
        // single shard so all keys compete for the same slots
        let reg = ModelRegistry::new(1, 2);
        reg.insert((1, 0), 1, "a".into(), cfg(1));
        reg.insert((2, 0), 2, "a".into(), cfg(2));
        // touch (1,0) so (2,0) becomes the LRU victim
        assert!(reg.get(&(1, 0)).is_some());
        reg.insert((3, 0), 3, "a".into(), cfg(3));
        assert_eq!(reg.evictions(), 1);
        assert!(reg.get(&(1, 0)).is_some(), "recently used entry survives");
        assert!(reg.get(&(2, 0)).is_none(), "cold entry was evicted");
        assert!(reg.get(&(3, 0)).is_some());
    }

    #[test]
    fn uncommitted_generation_is_stale_until_committed() {
        let reg = ModelRegistry::new(2, 8);
        assert_eq!(reg.generation(), 0);
        let gen = reg.begin_rollout();
        assert_eq!(gen, 1);
        reg.insert_at((1, 2), 9, "auto".into(), cfg(32), gen);
        // half-rolled-out: visible as Stale, never served
        assert_eq!(reg.lookup(&(1, 2)), Lookup::Stale);
        assert!(reg.get(&(1, 2)).is_none());
        assert!(reg.get_full(&(1, 2)).is_none());
        reg.commit_rollout(gen);
        assert_eq!(reg.generation(), 1);
        assert_eq!(reg.get(&(1, 2)), Some(cfg(32)));
    }

    #[test]
    fn abort_rollout_removes_only_its_own_entry() {
        let reg = ModelRegistry::new(1, 8);
        reg.insert((1, 2), 1, "bf".into(), cfg(8));
        let gen = reg.begin_rollout();
        reg.insert_at((1, 2), 2, "bf".into(), cfg(16), gen);
        assert!(reg.abort_rollout(&(1, 2), gen), "aborted entry removed");
        // a later successful rollout cannot resurrect the aborted model
        let gen2 = reg.begin_rollout();
        reg.insert_at((3, 4), 3, "bf".into(), cfg(32), gen2);
        reg.commit_rollout(gen2);
        assert!(reg.get(&(1, 2)).is_none());
        assert_eq!(reg.get_full(&(3, 4)).unwrap().0, 3);
        // abort of an entry already replaced is a no-op
        assert!(!reg.abort_rollout(&(3, 4), gen));
    }

    #[test]
    fn plain_inserts_serve_at_the_current_generation() {
        let reg = ModelRegistry::new(1, 8);
        let gen = reg.begin_rollout();
        reg.commit_rollout(gen);
        // cold-miss repopulation during/after rollouts stays servable
        reg.insert((5, 6), 4, "lr".into(), cfg(16));
        assert_eq!(reg.lookup(&(5, 6)), Lookup::Hit { model_id: 4, model_type: "lr".into(), config: cfg(16) });
        assert_eq!(reg.lookup(&(9, 9)), Lookup::Miss);
    }

    #[test]
    fn committed_entries_exclude_uncommitted_generations() {
        let reg = ModelRegistry::new(2, 8);
        reg.insert((1, 1), 1, "bf".into(), cfg(8));
        let gen = reg.begin_rollout();
        reg.insert_at((2, 2), 2, "bf".into(), cfg(16), gen);
        reg.commit_rollout(gen);
        let half = reg.begin_rollout();
        reg.insert_at((3, 3), 3, "bf".into(), cfg(32), half); // never committed
        let entries = reg.committed_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, (1, 1), "sorted by generation then key");
        assert_eq!(entries[1].0, (2, 2));
        assert!(entries.iter().all(|(_, _, _, _, g)| *g <= reg.generation()));
    }

    #[test]
    fn concurrent_readers_and_writers_do_not_lose_entries() {
        let reg = std::sync::Arc::new(ModelRegistry::new(8, 1024));
        crossbeam::scope(|s| {
            for t in 0..4u64 {
                let reg = std::sync::Arc::clone(&reg);
                s.spawn(move |_| {
                    for i in 0..100u64 {
                        let key = (t, i);
                        reg.insert(key, (t * 100 + i) as i64, "bf".into(), cfg(32));
                        assert!(reg.get(&key).is_some());
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(reg.len(), 400);
        assert_eq!(reg.evictions(), 0);
    }

    #[test]
    fn lru_stamps_survive_snapshot_republishes() {
        // the Arc'd entries share one LRU cell across snapshots, so a
        // touch recorded in one snapshot still protects the entry after
        // an unrelated write republishes the shard
        let reg = ModelRegistry::new(1, 3);
        reg.insert((1, 0), 1, "a".into(), cfg(1));
        reg.insert((2, 0), 2, "a".into(), cfg(2));
        reg.insert((3, 0), 3, "a".into(), cfg(3));
        assert!(reg.get(&(1, 0)).is_some()); // stamp lands in the live snapshot
        reg.insert((3, 0), 3, "a".into(), cfg(3)); // republish: clones the map, carrying the stamp
        reg.insert((4, 0), 4, "a".into(), cfg(4)); // now someone must go
        assert!(reg.get(&(1, 0)).is_some(), "the touched entry survived the republish");
        assert!(reg.get(&(2, 0)).is_none(), "the untouched entry was the LRU victim");
        assert_eq!(reg.evictions(), 1);
    }

    #[test]
    fn readers_racing_hot_rollouts_see_only_complete_committed_generations() {
        // The arc-swap contract: a reader may see the generation before
        // or after a racing rollout, never a half-rolled-out one — and
        // what it observes moves monotonically. Each rollout installs
        // model_id == generation for every key, so a served model_id
        // *is* the generation the answer belongs to.
        const KEYS: u64 = 8;
        const ROLLOUTS: i64 = 200;
        let reg = std::sync::Arc::new(ModelRegistry::new(2, 64));
        for k in 0..KEYS {
            reg.insert((k, k), 0, "bf".into(), cfg(8));
        }
        crossbeam::scope(|s| {
            let writer = std::sync::Arc::clone(&reg);
            s.spawn(move |_| {
                for _ in 0..ROLLOUTS {
                    let gen = writer.begin_rollout();
                    for k in 0..KEYS {
                        writer.insert_at((k, k), gen as i64, "bf".into(), cfg(8), gen);
                    }
                    writer.commit_rollout(gen);
                }
            });
            for _ in 0..3 {
                let reg = std::sync::Arc::clone(&reg);
                s.spawn(move |_| {
                    let mut last_gen = 0u64;
                    let mut last_seen = vec![0i64; KEYS as usize];
                    loop {
                        let before = reg.generation();
                        assert!(before >= last_gen, "committed generation went backwards: {before} < {last_gen}");
                        last_gen = before;
                        for k in 0..KEYS {
                            match reg.lookup(&(k, k)) {
                                Lookup::Hit { model_id, .. } => {
                                    // a hit is always a *committed* generation…
                                    assert!(
                                        model_id as u64 <= reg.generation(),
                                        "served uncommitted generation {model_id}"
                                    );
                                    // …and per reader, a key never goes back in time
                                    assert!(
                                        model_id >= last_seen[k as usize],
                                        "key {k} regressed from {} to {model_id}",
                                        last_seen[k as usize]
                                    );
                                    last_seen[k as usize] = model_id;
                                }
                                // mid-rollout, the replaced entry is stale: refused, never served
                                Lookup::Stale => {}
                                Lookup::Miss => panic!("key {k} vanished during rollout"),
                            }
                        }
                        if last_gen >= ROLLOUTS as u64 {
                            break;
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(reg.generation(), ROLLOUTS as u64);
        for k in 0..KEYS {
            assert_eq!(reg.get_full(&(k, k)).unwrap().0, ROLLOUTS, "every key ends on the final generation");
        }
    }
}
