//! The daemon's model registry: a sharded, LRU-bounded map from
//! `(system_hash, binary_hash)` to the pre-computed most
//! energy-efficient configuration.
//!
//! Predictions are read-mostly and latency-critical (they sit on the
//! scheduler's submit path), so the registry stores the *answer* — the
//! optimizer's argmax over the system's configuration space, computed
//! once at preload — rather than the optimizer itself. Lookups take a
//! shard read lock and touch one atomic for LRU bookkeeping; only
//! preloads and evictions take a write lock, and only on one shard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use eco_sim_node::cpu::CpuConfig;
use parking_lot::RwLock;

/// Registry key: the plugin's identity pair (§4.2.1).
pub type ModelKey = (u64, u64);

/// One resident model.
#[derive(Debug)]
pub struct ResidentModel {
    /// The repository id of the model this answer came from.
    pub model_id: i64,
    /// The optimizer type string.
    pub model_type: String,
    /// The pre-computed best configuration.
    pub config: CpuConfig,
    /// Logical timestamp of the last lookup (LRU).
    last_used: AtomicU64,
}

struct Shard {
    entries: HashMap<ModelKey, ResidentModel>,
}

/// Sharded LRU registry. Capacity is budgeted per shard
/// (`max(1, capacity / shards)`), so eviction never needs a global
/// lock.
pub struct ModelRegistry {
    shards: Vec<RwLock<Shard>>,
    per_shard_cap: usize,
    clock: AtomicU64,
    evictions: AtomicU64,
}

impl ModelRegistry {
    /// A registry with `shards` shards and room for roughly `capacity`
    /// models in total. Both are clamped to at least 1.
    pub fn new(shards: usize, capacity: usize) -> ModelRegistry {
        let shards = shards.max(1);
        let per_shard_cap = capacity.max(1).div_ceil(shards);
        ModelRegistry {
            shards: (0..shards).map(|_| RwLock::new(Shard { entries: HashMap::new() })).collect(),
            per_shard_cap,
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &ModelKey) -> &RwLock<Shard> {
        // cheap mix of both hashes; the shard count is small
        let mixed = key.0 ^ key.1.rotate_left(17);
        &self.shards[(mixed % self.shards.len() as u64) as usize]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks up the best configuration for a key, refreshing its LRU
    /// stamp. Read-lock only.
    pub fn get(&self, key: &ModelKey) -> Option<CpuConfig> {
        let shard = self.shard_for(key).read();
        shard.entries.get(key).map(|m| {
            m.last_used.store(self.tick(), Ordering::Relaxed);
            m.config
        })
    }

    /// Like [`Self::get`] but also reports which model answered.
    pub fn get_full(&self, key: &ModelKey) -> Option<(i64, String, CpuConfig)> {
        let shard = self.shard_for(key).read();
        shard.entries.get(key).map(|m| {
            m.last_used.store(self.tick(), Ordering::Relaxed);
            (m.model_id, m.model_type.clone(), m.config)
        })
    }

    /// Inserts (or replaces) a model, evicting the least recently used
    /// entry of the key's shard if it is full.
    pub fn insert(&self, key: ModelKey, model_id: i64, model_type: String, config: CpuConfig) {
        let stamp = self.tick();
        let mut shard = self.shard_for(&key).write();
        if !shard.entries.contains_key(&key) && shard.entries.len() >= self.per_shard_cap {
            if let Some(victim) =
                shard.entries.iter().min_by_key(|(_, m)| m.last_used.load(Ordering::Relaxed)).map(|(k, _)| *k)
            {
                shard.entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.entries.insert(key, ResidentModel { model_id, model_type, config, last_used: AtomicU64::new(stamp) });
    }

    /// Models resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().entries.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// LRU evictions since start.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cores: u32) -> CpuConfig {
        CpuConfig::new(cores, 2_200_000, 1)
    }

    #[test]
    fn get_returns_what_insert_stored() {
        let reg = ModelRegistry::new(4, 8);
        assert!(reg.get(&(1, 2)).is_none());
        reg.insert((1, 2), 7, "brute-force".into(), cfg(32));
        assert_eq!(reg.get(&(1, 2)), Some(cfg(32)));
        let (id, ty, c) = reg.get_full(&(1, 2)).unwrap();
        assert_eq!((id, ty.as_str(), c), (7, "brute-force", cfg(32)));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn replacing_a_key_does_not_evict() {
        let reg = ModelRegistry::new(1, 1);
        reg.insert((1, 1), 1, "a".into(), cfg(8));
        reg.insert((1, 1), 2, "b".into(), cfg(16));
        assert_eq!(reg.evictions(), 0);
        assert_eq!(reg.get_full(&(1, 1)).unwrap().0, 2);
    }

    #[test]
    fn lru_eviction_picks_the_coldest_entry() {
        // single shard so all keys compete for the same slots
        let reg = ModelRegistry::new(1, 2);
        reg.insert((1, 0), 1, "a".into(), cfg(1));
        reg.insert((2, 0), 2, "a".into(), cfg(2));
        // touch (1,0) so (2,0) becomes the LRU victim
        assert!(reg.get(&(1, 0)).is_some());
        reg.insert((3, 0), 3, "a".into(), cfg(3));
        assert_eq!(reg.evictions(), 1);
        assert!(reg.get(&(1, 0)).is_some(), "recently used entry survives");
        assert!(reg.get(&(2, 0)).is_none(), "cold entry was evicted");
        assert!(reg.get(&(3, 0)).is_some());
    }

    #[test]
    fn concurrent_readers_and_writers_do_not_lose_entries() {
        let reg = std::sync::Arc::new(ModelRegistry::new(8, 1024));
        crossbeam::scope(|s| {
            for t in 0..4u64 {
                let reg = std::sync::Arc::clone(&reg);
                s.spawn(move |_| {
                    for i in 0..100u64 {
                        let key = (t, i);
                        reg.insert(key, (t * 100 + i) as i64, "bf".into(), cfg(32));
                        assert!(reg.get(&key).is_some());
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(reg.len(), 400);
        assert_eq!(reg.evictions(), 0);
    }
}
