//! The daemon's model registry: a sharded, LRU-bounded map from
//! `(system_hash, binary_hash)` to the pre-computed most
//! energy-efficient configuration.
//!
//! Predictions are read-mostly and latency-critical (they sit on the
//! scheduler's submit path), so the registry stores the *answer* — the
//! optimizer's argmax over the system's configuration space, computed
//! once at preload — rather than the optimizer itself. Lookups take a
//! shard read lock and touch one atomic for LRU bookkeeping; only
//! preloads and evictions take a write lock, and only on one shard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use eco_sim_node::cpu::CpuConfig;
use parking_lot::RwLock;

/// Registry key: the plugin's identity pair (§4.2.1).
pub type ModelKey = (u64, u64);

/// One resident model.
#[derive(Debug)]
pub struct ResidentModel {
    /// The repository id of the model this answer came from.
    pub model_id: i64,
    /// The optimizer type string.
    pub model_type: String,
    /// The pre-computed best configuration.
    pub config: CpuConfig,
    /// The rollout generation this entry was installed under.
    pub generation: u64,
    /// Logical timestamp of the last lookup (LRU).
    last_used: AtomicU64,
}

/// Outcome of a generation-aware registry lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// A committed entry answered.
    Hit { model_id: i64, model_type: String, config: CpuConfig },
    /// No entry for the key.
    Miss,
    /// An entry exists but belongs to an uncommitted rollout generation;
    /// it must never be served (the caller should fall back to a miss).
    Stale,
}

struct Shard {
    entries: HashMap<ModelKey, ResidentModel>,
}

/// Sharded LRU registry. Capacity is budgeted per shard
/// (`max(1, capacity / shards)`), so eviction never needs a global
/// lock.
pub struct ModelRegistry {
    shards: Vec<RwLock<Shard>>,
    per_shard_cap: usize,
    clock: AtomicU64,
    evictions: AtomicU64,
    /// Latest committed rollout generation; entries above it are invisible.
    committed_gen: AtomicU64,
    /// Generation allocator for in-flight rollouts.
    next_gen: AtomicU64,
}

impl ModelRegistry {
    /// A registry with `shards` shards and room for roughly `capacity`
    /// models in total. Both are clamped to at least 1.
    pub fn new(shards: usize, capacity: usize) -> ModelRegistry {
        let shards = shards.max(1);
        let per_shard_cap = capacity.max(1).div_ceil(shards);
        ModelRegistry {
            shards: (0..shards).map(|_| RwLock::new(Shard { entries: HashMap::new() })).collect(),
            per_shard_cap,
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            committed_gen: AtomicU64::new(0),
            next_gen: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &ModelKey) -> &RwLock<Shard> {
        // cheap mix of both hashes; the shard count is small
        let mixed = key.0 ^ key.1.rotate_left(17);
        &self.shards[(mixed % self.shards.len() as u64) as usize]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The latest committed rollout generation (0 before any rollout).
    pub fn generation(&self) -> u64 {
        self.committed_gen.load(Ordering::Acquire)
    }

    /// Allocates a fresh, *uncommitted* rollout generation. Entries
    /// inserted under it stay invisible to lookups until
    /// [`Self::commit_rollout`] publishes the generation.
    pub fn begin_rollout(&self) -> u64 {
        self.next_gen.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Publishes a rollout generation: entries tagged `gen` (and below)
    /// become servable atomically.
    pub fn commit_rollout(&self, gen: u64) {
        self.committed_gen.fetch_max(gen, Ordering::AcqRel);
    }

    /// Removes the key's entry if it still belongs to the aborted
    /// rollout `gen`, so a later commit can never resurrect it. Returns
    /// true if an entry was removed.
    pub fn abort_rollout(&self, key: &ModelKey, gen: u64) -> bool {
        let mut shard = self.shard_for(key).write();
        if shard.entries.get(key).is_some_and(|m| m.generation == gen) {
            shard.entries.remove(key);
            return true;
        }
        false
    }

    /// Generation-aware lookup, refreshing the LRU stamp. Entries from
    /// an uncommitted generation are reported as [`Lookup::Stale`] and
    /// never served.
    pub fn lookup(&self, key: &ModelKey) -> Lookup {
        let committed = self.generation();
        let shard = self.shard_for(key).read();
        match shard.entries.get(key) {
            None => Lookup::Miss,
            Some(m) if m.generation > committed => Lookup::Stale,
            Some(m) => {
                m.last_used.store(self.tick(), Ordering::Relaxed);
                Lookup::Hit { model_id: m.model_id, model_type: m.model_type.clone(), config: m.config }
            }
        }
    }

    /// Looks up the best configuration for a key, refreshing its LRU
    /// stamp. Read-lock only.
    pub fn get(&self, key: &ModelKey) -> Option<CpuConfig> {
        match self.lookup(key) {
            Lookup::Hit { config, .. } => Some(config),
            _ => None,
        }
    }

    /// Like [`Self::get`] but also reports which model answered.
    pub fn get_full(&self, key: &ModelKey) -> Option<(i64, String, CpuConfig)> {
        match self.lookup(key) {
            Lookup::Hit { model_id, model_type, config } => Some((model_id, model_type, config)),
            _ => None,
        }
    }

    /// Inserts (or replaces) a model at the current committed
    /// generation, evicting the least recently used entry of the key's
    /// shard if it is full.
    pub fn insert(&self, key: ModelKey, model_id: i64, model_type: String, config: CpuConfig) {
        self.insert_at(key, model_id, model_type, config, self.generation());
    }

    /// Inserts (or replaces) a model tagged with rollout generation
    /// `gen`. If `gen` is uncommitted the entry stays invisible until
    /// [`Self::commit_rollout`].
    pub fn insert_at(&self, key: ModelKey, model_id: i64, model_type: String, config: CpuConfig, gen: u64) {
        let stamp = self.tick();
        let mut shard = self.shard_for(&key).write();
        if !shard.entries.contains_key(&key) && shard.entries.len() >= self.per_shard_cap {
            if let Some(victim) =
                shard.entries.iter().min_by_key(|(_, m)| m.last_used.load(Ordering::Relaxed)).map(|(k, _)| *k)
            {
                shard.entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.entries.insert(
            key,
            ResidentModel { model_id, model_type, config, generation: gen, last_used: AtomicU64::new(stamp) },
        );
    }

    /// Models resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().entries.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// LRU evictions since start.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Every *committed* resident entry as
    /// `(key, model_id, model_type, config, generation)`, sorted by
    /// generation then key. This is the daemon's answer to an
    /// anti-entropy `SyncModels` pull, so uncommitted (stale) entries
    /// are excluded — a peer must never catch up onto a half-rolled-out
    /// model.
    pub fn committed_entries(&self) -> Vec<(ModelKey, i64, String, CpuConfig, u64)> {
        let committed = self.generation();
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            for (key, m) in &shard.entries {
                if m.generation <= committed {
                    out.push((*key, m.model_id, m.model_type.clone(), m.config, m.generation));
                }
            }
        }
        out.sort_by_key(|a| (a.4, a.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cores: u32) -> CpuConfig {
        CpuConfig::new(cores, 2_200_000, 1)
    }

    #[test]
    fn get_returns_what_insert_stored() {
        let reg = ModelRegistry::new(4, 8);
        assert!(reg.get(&(1, 2)).is_none());
        reg.insert((1, 2), 7, "brute-force".into(), cfg(32));
        assert_eq!(reg.get(&(1, 2)), Some(cfg(32)));
        let (id, ty, c) = reg.get_full(&(1, 2)).unwrap();
        assert_eq!((id, ty.as_str(), c), (7, "brute-force", cfg(32)));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn replacing_a_key_does_not_evict() {
        let reg = ModelRegistry::new(1, 1);
        reg.insert((1, 1), 1, "a".into(), cfg(8));
        reg.insert((1, 1), 2, "b".into(), cfg(16));
        assert_eq!(reg.evictions(), 0);
        assert_eq!(reg.get_full(&(1, 1)).unwrap().0, 2);
    }

    #[test]
    fn lru_eviction_picks_the_coldest_entry() {
        // single shard so all keys compete for the same slots
        let reg = ModelRegistry::new(1, 2);
        reg.insert((1, 0), 1, "a".into(), cfg(1));
        reg.insert((2, 0), 2, "a".into(), cfg(2));
        // touch (1,0) so (2,0) becomes the LRU victim
        assert!(reg.get(&(1, 0)).is_some());
        reg.insert((3, 0), 3, "a".into(), cfg(3));
        assert_eq!(reg.evictions(), 1);
        assert!(reg.get(&(1, 0)).is_some(), "recently used entry survives");
        assert!(reg.get(&(2, 0)).is_none(), "cold entry was evicted");
        assert!(reg.get(&(3, 0)).is_some());
    }

    #[test]
    fn uncommitted_generation_is_stale_until_committed() {
        let reg = ModelRegistry::new(2, 8);
        assert_eq!(reg.generation(), 0);
        let gen = reg.begin_rollout();
        assert_eq!(gen, 1);
        reg.insert_at((1, 2), 9, "auto".into(), cfg(32), gen);
        // half-rolled-out: visible as Stale, never served
        assert_eq!(reg.lookup(&(1, 2)), Lookup::Stale);
        assert!(reg.get(&(1, 2)).is_none());
        assert!(reg.get_full(&(1, 2)).is_none());
        reg.commit_rollout(gen);
        assert_eq!(reg.generation(), 1);
        assert_eq!(reg.get(&(1, 2)), Some(cfg(32)));
    }

    #[test]
    fn abort_rollout_removes_only_its_own_entry() {
        let reg = ModelRegistry::new(1, 8);
        reg.insert((1, 2), 1, "bf".into(), cfg(8));
        let gen = reg.begin_rollout();
        reg.insert_at((1, 2), 2, "bf".into(), cfg(16), gen);
        assert!(reg.abort_rollout(&(1, 2), gen), "aborted entry removed");
        // a later successful rollout cannot resurrect the aborted model
        let gen2 = reg.begin_rollout();
        reg.insert_at((3, 4), 3, "bf".into(), cfg(32), gen2);
        reg.commit_rollout(gen2);
        assert!(reg.get(&(1, 2)).is_none());
        assert_eq!(reg.get_full(&(3, 4)).unwrap().0, 3);
        // abort of an entry already replaced is a no-op
        assert!(!reg.abort_rollout(&(3, 4), gen));
    }

    #[test]
    fn plain_inserts_serve_at_the_current_generation() {
        let reg = ModelRegistry::new(1, 8);
        let gen = reg.begin_rollout();
        reg.commit_rollout(gen);
        // cold-miss repopulation during/after rollouts stays servable
        reg.insert((5, 6), 4, "lr".into(), cfg(16));
        assert_eq!(reg.lookup(&(5, 6)), Lookup::Hit { model_id: 4, model_type: "lr".into(), config: cfg(16) });
        assert_eq!(reg.lookup(&(9, 9)), Lookup::Miss);
    }

    #[test]
    fn committed_entries_exclude_uncommitted_generations() {
        let reg = ModelRegistry::new(2, 8);
        reg.insert((1, 1), 1, "bf".into(), cfg(8));
        let gen = reg.begin_rollout();
        reg.insert_at((2, 2), 2, "bf".into(), cfg(16), gen);
        reg.commit_rollout(gen);
        let half = reg.begin_rollout();
        reg.insert_at((3, 3), 3, "bf".into(), cfg(32), half); // never committed
        let entries = reg.committed_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, (1, 1), "sorted by generation then key");
        assert_eq!(entries[1].0, (2, 2));
        assert!(entries.iter().all(|(_, _, _, _, g)| *g <= reg.generation()));
    }

    #[test]
    fn concurrent_readers_and_writers_do_not_lose_entries() {
        let reg = std::sync::Arc::new(ModelRegistry::new(8, 1024));
        crossbeam::scope(|s| {
            for t in 0..4u64 {
                let reg = std::sync::Arc::clone(&reg);
                s.spawn(move |_| {
                    for i in 0..100u64 {
                        let key = (t, i);
                        reg.insert(key, (t * 100 + i) as i64, "bf".into(), cfg(32));
                        assert!(reg.get(&key).is_some());
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(reg.len(), 400);
        assert_eq!(reg.evictions(), 0);
    }
}
