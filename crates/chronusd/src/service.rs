//! The daemon's request engine, independent of any transport.
//!
//! [`PredictService`] owns the registry, backend, counters and shutdown
//! flag, and turns one request frame into one response. The TCP server
//! in [`crate::server`] feeds it frames read off worker-owned sockets;
//! the `simtest` harness feeds it frames over an in-memory channel on
//! virtual time. Keeping the engine transport-free is what makes the
//! daemon's semantics (deadline accounting, miss/error classification,
//! counter conservation) testable deterministically.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chronus::error::ChronusError;
use chronus::remote::{
    fastpath, KeyOutcome, ModelSync, ObservedOutcome, Request, RequestFrame, Response, StatsSnapshot, MAX_BATCH_KEYS,
};
use chronus::telemetry::{Telemetry, TraceContext};
use eco_adapt::Monitor;
use eco_store::ModelStore;
use parking_lot::Mutex;

use crate::backend::ModelBackend;
use crate::registry::{Lookup, ModelRegistry};
use crate::stats::ServerStats;

/// How long a burn request may hold a worker (keeps the diagnostics
/// verb from being a denial-of-service tool).
const MAX_BURN_MS: u64 = 10_000;

/// How often a burning worker wakes to check for shutdown.
const BURN_TICK: Duration = Duration::from_millis(25);

/// The clock the service measures request handling time with — since
/// the telemetry refactor, the telemetry spine's own clock trait under
/// its historical daemon-side name. Deadline enforcement, the latency
/// histogram and span timing all go through this, so a simulated clock
/// makes `DeadlineExceeded` a deterministic function of injected delays
/// rather than of host scheduling jitter.
pub use chronus::telemetry::TelemetryClock as ServiceClock;

/// The production clock: monotonic wall time via `Instant`.
pub use chronus::telemetry::WallClock;

/// Accept-side gauges the service cannot see itself: they describe the
/// transport's connection queue, so whoever owns the transport samples
/// them and passes them in for `Stats` answers.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueGauges {
    /// Connections waiting between accept and a worker right now.
    pub depth: u64,
    /// Accept-queue capacity.
    pub capacity: u64,
    /// Worker threads serving connections.
    pub workers: u64,
}

/// A service's attached durable store: the handle itself plus the
/// operator-facing directory label stamped on `Stats` answers. The
/// daemon is a read-only consumer — the campaign CLI is the writer —
/// so every use is either a boot catch-up or a gauge read.
struct StoreHandle {
    store: Arc<Mutex<ModelStore>>,
    dir: String,
}

/// What [`PredictService::catch_up_from_store`] installed and refused.
#[derive(Debug, Default)]
pub struct StoreCatchUp {
    /// Models installed, one committed registry generation each.
    pub installed: usize,
    /// Serving records refused because their blob failed verification
    /// (missing, hash mismatch, or unparseable) — never installed.
    pub rejected: Vec<String>,
}

/// The transport-independent daemon core: one instance per daemon,
/// shared by every worker (all methods take `&self`).
pub struct PredictService {
    registry: ModelRegistry,
    stats: ServerStats,
    backend: Arc<dyn ModelBackend>,
    clock: Arc<dyn ServiceClock>,
    telemetry: Arc<Telemetry>,
    shutdown: AtomicBool,
    replica: String,
    store: Option<StoreHandle>,
    adapt: Monitor,
    /// The canary phase label stamped on `Stats` answers. The canary
    /// *controller* lives with whoever drives rollouts (the adaptation
    /// driver, the simulation world); the daemon only reports the label
    /// so `chronus stats` shows where the fleet is mid-judgment.
    canary_state: Mutex<String>,
}

impl PredictService {
    /// A service on the wall clock.
    pub fn new(cache_shards: usize, cache_cap: usize, backend: Arc<dyn ModelBackend>) -> PredictService {
        PredictService::with_clock(cache_shards, cache_cap, backend, Arc::new(WallClock::new()))
    }

    /// A service on an explicit clock (virtual time in simulation),
    /// with its own private telemetry over that clock.
    pub fn with_clock(
        cache_shards: usize,
        cache_cap: usize,
        backend: Arc<dyn ModelBackend>,
        clock: Arc<dyn ServiceClock>,
    ) -> PredictService {
        PredictService::with_telemetry(cache_shards, cache_cap, backend, Arc::new(Telemetry::with_clock(clock)))
    }

    /// A service emitting through an externally owned [`Telemetry`] —
    /// counters, the latency histogram and request spans all land in
    /// its namespace, and the service's clock is the telemetry clock.
    /// The simulation harness hands successive daemon incarnations
    /// fresh `Telemetry` instances sharing one recorder, so counters
    /// reset on restart while the trace timeline persists.
    pub fn with_telemetry(
        cache_shards: usize,
        cache_cap: usize,
        backend: Arc<dyn ModelBackend>,
        telemetry: Arc<Telemetry>,
    ) -> PredictService {
        PredictService {
            registry: ModelRegistry::new(cache_shards, cache_cap),
            stats: ServerStats::over(&telemetry),
            backend,
            clock: telemetry.clock(),
            telemetry,
            shutdown: AtomicBool::new(false),
            replica: String::new(),
            store: None,
            adapt: Monitor::default(),
            canary_state: Mutex::new(String::from("idle")),
        }
    }

    /// Names this daemon within a fleet; the identity is stamped on
    /// every `Stats` answer, which is how clients and operators tell
    /// replicas apart without any daemon-to-daemon gossip.
    pub fn with_replica(mut self, replica: impl Into<String>) -> PredictService {
        self.replica = replica.into();
        self
    }

    /// This daemon's fleet identity (empty when unnamed).
    pub fn replica(&self) -> &str {
        &self.replica
    }

    /// Attaches a durable model store. `dir` is the operator-facing
    /// directory label stamped on `Stats` answers (how `chronus stats`
    /// distinguishes store-backed replicas from memory-only ones). The
    /// caller runs [`PredictService::catch_up_from_store`] afterwards;
    /// attaching alone installs nothing.
    pub fn with_store(mut self, store: Arc<Mutex<ModelStore>>, dir: impl Into<String>) -> PredictService {
        self.store = Some(StoreHandle { store, dir: dir.into() });
        self
    }

    /// Self-serve catch-up: installs every record the attached store
    /// says should be serving ([`ModelStore::serving`] — the ledger
    /// folded with rollback-rewind semantics), each under its own
    /// committed registry generation, oldest first. Every blob is
    /// loaded and hash-verified *before* its record installs: a model
    /// whose blob fails verification is reported and never served.
    /// No-op without a store.
    pub fn catch_up_from_store(&self) -> StoreCatchUp {
        let mut report = StoreCatchUp::default();
        let Some(handle) = &self.store else { return report };
        let mut store = handle.store.lock();
        let _ = store.refresh();
        for record in store.serving() {
            if let Err(e) = store.load_blob(record) {
                report.rejected.push(format!("generation {}: {e}", record.generation));
                continue;
            }
            let gen = self.registry.begin_rollout();
            self.registry.insert_at(
                (record.system_hash, record.binary_hash),
                record.model_id,
                record.model_type.clone(),
                record.config,
                gen,
            );
            self.registry.commit_rollout(gen);
            self.stats.store_catchup();
            report.installed += 1;
        }
        report
    }

    /// Installs models pulled from a ring peer's `SyncModels` answer
    /// (the anti-entropy path for store-less replicas), one committed
    /// registry generation per model. Returns how many were installed.
    pub fn apply_sync(&self, models: &[ModelSync]) -> usize {
        for m in models {
            let gen = self.registry.begin_rollout();
            self.registry.insert_at((m.system_hash, m.binary_hash), m.model_id, m.model_type.clone(), m.config, gen);
            self.registry.commit_rollout(gen);
            self.stats.store_catchup();
        }
        models.len()
    }

    /// The model registry (tests, preload-at-boot).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The operational counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The outcome monitor: reservoirs, drift expectations and trip
    /// state. The adaptation driver drains reservoirs from here.
    pub fn adapt(&self) -> &Monitor {
        &self.adapt
    }

    /// Records that an incremental re-fit was committed from this
    /// daemon's outcome reservoirs (called by the adaptation driver —
    /// the daemon itself never writes the store).
    pub fn note_adapt_refit(&self) {
        self.stats.adapt_refit();
    }

    /// Records a canary verdict: promoted fleet-wide, or rolled back
    /// to the baseline generation.
    pub fn note_canary_verdict(&self, promoted: bool) {
        if promoted {
            self.stats.canary_promotion();
        } else {
            self.stats.canary_rollback();
        }
    }

    /// Updates the canary phase label stamped on `Stats` answers (the
    /// driver's [`eco_adapt::CanaryController::state_label`]).
    pub fn set_canary_state(&self, label: impl Into<String>) {
        *self.canary_state.lock() = label.into();
    }

    /// The telemetry the service emits through.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Raises the shutdown flag; burning workers notice within a tick.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// A counters snapshot; queue gauges come from the transport.
    pub fn snapshot(&self, gauges: QueueGauges) -> StatsSnapshot {
        let mut snap = self.stats.snapshot(
            gauges.depth,
            gauges.capacity,
            gauges.workers,
            self.registry.len() as u64,
            self.registry.evictions(),
            self.registry.generation(),
        );
        snap.replica = self.replica.clone();
        if let Some(handle) = &self.store {
            snap.store_dir = handle.dir.clone();
            let store = handle.store.lock();
            snap.store_generation = store.high_water();
            // serving-model counts per node class, from the ledger's
            // provenance (records predating classes land in `default`)
            let mut by_class: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
            for record in store.serving() {
                let class = &record.provenance.node_class;
                let name = if class.is_empty() { "default" } else { class.as_str() };
                *by_class.entry(name.to_string()).or_insert(0) += 1;
            }
            snap.models_by_class = by_class.into_iter().collect();
        }
        let adapt = self.adapt.snapshot();
        snap.outcomes_ingested = adapt.ingested;
        snap.outcomes_rejected = adapt.rejected;
        snap.outcome_reservoirs = adapt.reservoirs;
        snap.drift_score_milli = adapt.drift_score_milli;
        snap.canary_state = self.canary_state.lock().clone();
        snap
    }

    /// Handles one complete frame payload end to end: counts it,
    /// parses it, serves it under a `daemon/handle` span when the frame
    /// carries a propagated trace context, enforces its deadline budget
    /// and records its latency.
    ///
    /// Tracing is head-sampled: the caller decides at the root whether
    /// a request is traced, and the daemon follows that decision.
    /// Untraced frames pay only the counter/histogram cost, so the warm
    /// predict path stays flat when no one is watching. Malformed
    /// frames are the exception — they root their own error span
    /// because there is no parseable context to follow, and visibility
    /// into garbage matters more than its cost.
    pub fn handle_frame(&self, payload: &[u8], gauges: QueueGauges) -> Response {
        self.handle_frame_enveloped(payload, gauges).1
    }

    /// [`PredictService::handle_frame`] for envelope-aware transports:
    /// additionally returns the frame's correlation id, if it carried
    /// one, so the caller can wrap the response in a
    /// [`chronus::remote::ResponseFrame`]. Un-corr'd (and malformed)
    /// frames return `None` and must be answered bare — that asymmetry
    /// is the whole negotiation: a daemon that echoes corr ids proves
    /// it is safe to pipeline against.
    pub fn handle_frame_enveloped(&self, payload: &[u8], gauges: QueueGauges) -> (Option<u64>, Response) {
        let started = self.clock.now_micros();
        self.stats.request();
        let (corr, response, span) = match serde_json::from_slice::<RequestFrame>(payload) {
            Ok(frame) => {
                let corr = frame.corr;
                let mut span = frame.trace.map(|ctx| {
                    let mut s = self.telemetry.span_under(ctx, "daemon", "handle");
                    s.attr("verb", verb_of(&frame.body));
                    s
                });
                let ctx = span.as_ref().map(|s| s.context());
                let response = self.handle_request(frame.body, gauges, ctx);
                let elapsed_us = self.clock.now_micros().saturating_sub(started);
                let response = match frame.deadline_ms {
                    Some(budget) if elapsed_us > budget * 1000 => {
                        self.stats.deadline_exceeded();
                        if let Some(s) = &mut span {
                            s.set_error(format!("deadline exceeded: {elapsed_us}us over a {budget}ms budget"));
                        }
                        Response::DeadlineExceeded
                    }
                    _ => {
                        if let Response::Error { message } = &response {
                            if let Some(s) = &mut span {
                                s.set_error(message.clone());
                            }
                        }
                        response
                    }
                };
                (corr, response, span)
            }
            Err(e) => {
                self.stats.error();
                // nothing to join: a malformed frame roots its own trace
                let mut span = self.telemetry.root_span("daemon", "handle");
                let message = format!("malformed request: {e}");
                span.set_error(message.clone());
                (None, Response::Error { message }, Some(span))
            }
        };
        drop(span);
        self.stats.record_latency_us(self.clock.now_micros().saturating_sub(started));
        (corr, response)
    }

    /// The binary `PredictMany` fast path (see
    /// [`chronus::remote::fastpath`]): spoken only by frame-level
    /// transports that negotiate it, today the shared-memory ring.
    /// Returns `None` when `payload` is JSON — the caller then goes
    /// through [`PredictService::handle_frame_enveloped`] — and the
    /// fully encoded binary reply otherwise. Counters, deadline
    /// accounting and latency buckets match the JSON path exactly;
    /// only serialization differs, which is the point.
    pub fn handle_fast_frame(&self, payload: &[u8], gauges: QueueGauges) -> Option<Vec<u8>> {
        if !fastpath::is_binary(payload) {
            return None;
        }
        let started = self.clock.now_micros();
        self.stats.request();
        let reply = match fastpath::decode_request(payload) {
            Ok(batch) => {
                let response = self.handle_request(Request::PredictMany { keys: batch.keys }, gauges, None);
                let elapsed_us = self.clock.now_micros().saturating_sub(started);
                let response = match batch.deadline_ms {
                    Some(budget) if elapsed_us > budget * 1000 => {
                        self.stats.deadline_exceeded();
                        Response::DeadlineExceeded
                    }
                    _ => response,
                };
                fastpath::encode_reply(batch.corr, &response)
            }
            Err(e) => {
                self.stats.error();
                // corr 0: an undecodable frame has no id to echo, and
                // the client treats the error as frame-fatal anyway
                fastpath::encode_reply(0, &Response::Error { message: format!("malformed request: {e}") })
            }
        };
        self.stats.record_latency_us(self.clock.now_micros().saturating_sub(started));
        Some(reply)
    }

    fn handle_request(&self, request: Request, gauges: QueueGauges, ctx: Option<TraceContext>) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::Predict { system_hash, binary_hash } => match self.predict_key(system_hash, binary_hash, ctx) {
                KeyOutcome::Config(config) => Response::Config(config),
                KeyOutcome::Miss => Response::Miss { system_hash, binary_hash },
                KeyOutcome::Error { message } => Response::Error { message },
            },
            Request::PredictMany { keys } => {
                if keys.len() > MAX_BATCH_KEYS {
                    self.stats.error();
                    return Response::Error {
                        message: format!("batch of {} keys exceeds the {MAX_BATCH_KEYS}-key limit", keys.len()),
                    };
                }
                // Frame-level shape first, then the per-key loop bumps
                // the same prediction/hit/miss counters a single-key
                // Predict would: conservation counts keys, not frames.
                self.stats.batch(keys.len() as u64);
                let results =
                    keys.iter().map(|&(system_hash, binary_hash)| self.predict_key(system_hash, binary_hash, ctx));
                Response::ManyConfigs { results: results.collect() }
            }
            Request::Preload { model_id } => {
                // versioned rollout: the new model becomes visible only
                // when its generation commits, so a load that fails (or a
                // daemon observed mid-flow) can never serve a half-loaded
                // answer
                self.stats.preload();
                let generation = self.registry.begin_rollout();
                match self.backend.load(model_id) {
                    Ok(model) => {
                        let key = (model.system_hash, model.binary_hash);
                        let response = Response::Preloaded {
                            model_id: model.model_id,
                            model_type: model.model_type.clone(),
                            system_hash: model.system_hash,
                            binary_hash: model.binary_hash,
                            generation,
                        };
                        self.registry.insert_at(key, model.model_id, model.model_type, model.config, generation);
                        self.registry.commit_rollout(generation);
                        response
                    }
                    Err(e) => {
                        self.stats.error();
                        self.stats.generation_rollback();
                        Response::Error { message: e.to_string() }
                    }
                }
            }
            Request::Stats => {
                // the campaign CLI may have appended to a shared store
                // dir since boot; refresh (read-only — refresh never
                // truncates) so the generation gauge is current
                if let Some(handle) = &self.store {
                    let _ = handle.store.lock().refresh();
                }
                Response::Stats(Box::new(self.snapshot(gauges)))
            }
            Request::SyncModels { have_generation } => {
                let store = self.store.as_ref().map(|h| h.store.lock());
                let models: Vec<ModelSync> = self
                    .registry
                    .committed_entries()
                    .into_iter()
                    .filter(|(_, _, _, _, generation)| *generation > have_generation)
                    .map(|((system_hash, binary_hash), model_id, model_type, config, generation)| ModelSync {
                        model_id,
                        model_type,
                        system_hash,
                        binary_hash,
                        config,
                        generation,
                        blob_hash: store
                            .as_ref()
                            .and_then(|s| {
                                s.commits()
                                    .filter(|r| {
                                        r.model_id == model_id
                                            && r.system_hash == system_hash
                                            && r.binary_hash == binary_hash
                                    })
                                    .last()
                                    .map(|r| r.blob_hash.clone())
                            })
                            .unwrap_or_default(),
                    })
                    .collect();
                Response::Models { models }
            }
            Request::Burn { ms } => {
                let budget = Duration::from_millis(ms.min(MAX_BURN_MS));
                let started = Instant::now();
                while started.elapsed() < budget && !self.is_shutting_down() {
                    std::thread::sleep(BURN_TICK.min(budget - started.elapsed().min(budget)));
                }
                Response::Burned
            }
            Request::ReportOutcome { system_hash, binary_hash, outcome } => {
                self.report_outcome(system_hash, binary_hash, &outcome)
            }
        }
    }

    /// The `ReportOutcome` verb: validates and folds one observed
    /// (GFLOPS, watts, duration) into the key's reservoir, feeding the
    /// drift detector. The detector's expectation is calibrated lazily
    /// from the serving generation's fitted efficiency when a store
    /// knows it; store-less daemons self-calibrate from the first full
    /// window of observations instead.
    fn report_outcome(&self, system_hash: u64, binary_hash: u64, outcome: &ObservedOutcome) -> Response {
        let key = (system_hash, binary_hash);
        if !self.adapt.has_expectation(key) {
            if let Some(handle) = &self.store {
                let expected = handle
                    .store
                    .lock()
                    .serving()
                    .into_iter()
                    .rfind(|r| r.system_hash == system_hash && r.binary_hash == binary_hash)
                    .map(|r| r.provenance.best_gflops_per_watt);
                if let Some(expected) = expected {
                    if expected.is_finite() && expected > 0.0 {
                        self.adapt.set_expectation(key, expected);
                    }
                }
            }
        }
        let report = self.adapt.ingest(key, outcome);
        match report.event {
            Some(eco_adapt::DriftEvent::Trip { score, .. }) => {
                self.stats.drift_trip();
                self.telemetry.gauge("daemon.adapt.drift_score_milli").set_max((score * 1000.0).round() as u64);
            }
            Some(eco_adapt::DriftEvent::Clear { .. }) => self.stats.drift_clear(),
            None => {}
        }
        Response::OutcomeAck { accepted: report.accepted }
    }

    /// One key's prediction, shared verbatim between `Predict` and the
    /// per-key loop of `PredictMany` so the two paths can never drift:
    /// registry lookup (hit / stale-refusal / miss), backend fallback
    /// on miss, and exactly one `prediction` + one `hit`-or-`miss`
    /// counter bump per key regardless of framing.
    fn predict_key(&self, system_hash: u64, binary_hash: u64, ctx: Option<TraceContext>) -> KeyOutcome {
        self.stats.prediction();
        {
            let mut lookup = ctx.map(|c| self.telemetry.span_under(c, "daemon", "registry_lookup"));
            match self.registry.lookup(&(system_hash, binary_hash)) {
                Lookup::Hit { config, .. } => {
                    self.stats.cache_hit();
                    if let Some(s) = &mut lookup {
                        s.attr("result", "hit");
                    }
                    return KeyOutcome::Config(config);
                }
                Lookup::Stale => {
                    // a half-rolled-out model must never answer;
                    // fall through to the backend like a miss
                    self.stats.stale_generation_hit();
                    self.stats.cache_miss();
                    if let Some(s) = &mut lookup {
                        s.attr("result", "stale");
                    }
                }
                Lookup::Miss => {
                    self.stats.cache_miss();
                    if let Some(s) = &mut lookup {
                        s.attr("result", "miss");
                    }
                }
            }
        }
        let mut backend_span = ctx.map(|c| self.telemetry.span_under(c, "daemon", "backend_lookup"));
        match self.backend.lookup(system_hash, binary_hash) {
            Ok(model) => {
                let config = model.config;
                self.registry.insert(
                    (model.system_hash, model.binary_hash),
                    model.model_id,
                    model.model_type,
                    config,
                );
                KeyOutcome::Config(config)
            }
            // "no answer for this key" is a protocol-level miss …
            Err(ChronusError::NotFound(_)) | Err(ChronusError::Model(_)) => {
                if let Some(s) = &mut backend_span {
                    s.attr("result", "miss");
                }
                KeyOutcome::Miss
            }
            // … anything else is the daemon's own problem
            Err(e) => {
                self.stats.error();
                if let Some(s) = &mut backend_span {
                    s.set_error(e.to_string());
                }
                KeyOutcome::Error { message: e.to_string() }
            }
        }
    }
}

/// The request's verb as a span attribute value.
fn verb_of(request: &Request) -> &'static str {
    match request {
        Request::Ping => "ping",
        Request::Predict { .. } => "predict",
        Request::PredictMany { .. } => "predict_many",
        Request::Preload { .. } => "preload",
        Request::Stats => "stats",
        Request::SyncModels { .. } => "sync_models",
        Request::Burn { .. } => "burn",
        Request::ReportOutcome { .. } => "report_outcome",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StaticBackend;
    use eco_sim_node::cpu::CpuConfig;
    use std::sync::atomic::AtomicU64;

    fn service_with_one_model() -> PredictService {
        let backend = StaticBackend::new(vec![crate::backend::PreparedModel {
            model_id: 1,
            model_type: "brute-force".into(),
            system_hash: 10,
            binary_hash: 20,
            config: CpuConfig::new(16, 2_200_000, 1),
        }]);
        PredictService::new(2, 8, Arc::new(backend))
    }

    fn frame_bytes(frame: &RequestFrame) -> Vec<u8> {
        serde_json::to_vec(frame).unwrap()
    }

    #[test]
    fn predict_hits_backend_then_registry() {
        let svc = service_with_one_model();
        let payload = frame_bytes(&RequestFrame::new(Request::Predict { system_hash: 10, binary_hash: 20 }));
        assert!(matches!(svc.handle_frame(&payload, QueueGauges::default()), Response::Config(_)));
        assert!(matches!(svc.handle_frame(&payload, QueueGauges::default()), Response::Config(_)));
        let snap = svc.snapshot(QueueGauges::default());
        assert_eq!((snap.cache_misses, snap.cache_hits), (1, 1));
        assert_eq!(snap.requests_total, 2);
    }

    #[test]
    fn unknown_key_is_a_miss_not_an_error() {
        let svc = service_with_one_model();
        let payload = frame_bytes(&RequestFrame::new(Request::Predict { system_hash: 9, binary_hash: 9 }));
        assert!(matches!(
            svc.handle_frame(&payload, QueueGauges::default()),
            Response::Miss { system_hash: 9, binary_hash: 9 }
        ));
        assert_eq!(svc.snapshot(QueueGauges::default()).errors, 0);
    }

    #[test]
    fn predict_many_answers_every_key_in_order_and_counts_keys_not_frames() {
        let svc = service_with_one_model();
        // known, unknown, known-again: the reply must be positional
        let keys = vec![(10, 20), (9, 9), (10, 20)];
        let payload = frame_bytes(&RequestFrame::new(Request::PredictMany { keys }));
        let results = match svc.handle_frame(&payload, QueueGauges::default()) {
            Response::ManyConfigs { results } => results,
            other => panic!("expected ManyConfigs, got {other:?}"),
        };
        assert_eq!(results.len(), 3, "one outcome per key, in key order");
        assert!(matches!(results[0], KeyOutcome::Config(_)));
        assert!(matches!(results[1], KeyOutcome::Miss));
        assert!(matches!(results[2], KeyOutcome::Config(_)), "second occurrence is a registry hit");
        let snap = svc.snapshot(QueueGauges::default());
        assert_eq!(snap.requests_total, 1, "one frame");
        assert_eq!(snap.predictions, 3, "three keys");
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 2));
        assert_eq!((snap.batches, snap.batched_keys), (1, 3));
    }

    #[test]
    fn predict_many_conserves_counters_like_singles_would() {
        // the conservation law counts batched keys, not frames:
        // hits + misses == predictions whatever the framing
        let svc = service_with_one_model();
        let batch =
            frame_bytes(&RequestFrame::new(Request::PredictMany { keys: vec![(10, 20), (1, 1), (2, 2), (10, 20)] }));
        let single = frame_bytes(&RequestFrame::new(Request::Predict { system_hash: 10, binary_hash: 20 }));
        assert!(matches!(svc.handle_frame(&batch, QueueGauges::default()), Response::ManyConfigs { .. }));
        assert!(matches!(svc.handle_frame(&single, QueueGauges::default()), Response::Config(_)));
        let snap = svc.snapshot(QueueGauges::default());
        assert_eq!(snap.predictions, 5);
        assert_eq!(snap.cache_hits + snap.cache_misses, snap.predictions);
        assert_eq!((snap.batches, snap.batched_keys), (1, 4), "the single Predict is not a batch");
    }

    #[test]
    fn empty_batch_is_answered_with_an_empty_reply() {
        let svc = service_with_one_model();
        let payload = frame_bytes(&RequestFrame::new(Request::PredictMany { keys: vec![] }));
        match svc.handle_frame(&payload, QueueGauges::default()) {
            Response::ManyConfigs { results } => assert!(results.is_empty()),
            other => panic!("expected ManyConfigs, got {other:?}"),
        }
        let snap = svc.snapshot(QueueGauges::default());
        assert_eq!((snap.batches, snap.batched_keys, snap.predictions), (1, 0, 0));
    }

    #[test]
    fn oversize_batch_is_rejected_whole_with_a_typed_error() {
        let svc = service_with_one_model();
        let keys: Vec<(u64, u64)> = (0..=MAX_BATCH_KEYS as u64).map(|i| (i, i)).collect();
        let payload = frame_bytes(&RequestFrame::new(Request::PredictMany { keys }));
        match svc.handle_frame(&payload, QueueGauges::default()) {
            Response::Error { message } => assert!(message.contains("exceeds"), "typed limit error: {message}"),
            other => panic!("expected Error, got {other:?}"),
        }
        let snap = svc.snapshot(QueueGauges::default());
        assert_eq!(snap.predictions, 0, "no key in a rejected batch is served");
        assert_eq!((snap.batches, snap.batched_keys), (0, 0), "a rejected frame is not a batch");
        assert_eq!(snap.errors, 1);
    }

    #[test]
    fn corr_id_is_surfaced_for_enveloped_transports_and_absent_otherwise() {
        let svc = service_with_one_model();
        let corrd =
            frame_bytes(&RequestFrame::new(Request::Predict { system_hash: 10, binary_hash: 20 }).with_corr(42));
        let (corr, resp) = svc.handle_frame_enveloped(&corrd, QueueGauges::default());
        assert_eq!(corr, Some(42), "the daemon echoes the frame's correlation id");
        assert!(matches!(resp, Response::Config(_)));

        let bare = frame_bytes(&RequestFrame::new(Request::Predict { system_hash: 10, binary_hash: 20 }));
        let (corr, _) = svc.handle_frame_enveloped(&bare, QueueGauges::default());
        assert_eq!(corr, None, "un-corr'd frames are answered bare");

        let (corr, resp) = svc.handle_frame_enveloped(b"not json", QueueGauges::default());
        assert_eq!(corr, None, "malformed frames have no parseable corr");
        assert!(matches!(resp, Response::Error { .. }));
    }

    #[test]
    fn traced_batch_parents_per_key_spans_under_one_handle_span() {
        let svc = service_with_one_model();
        let telemetry = svc.telemetry().clone();
        let caller = telemetry.root_span("client", "attempt");
        let ctx = caller.context();
        let payload =
            frame_bytes(&RequestFrame::new(Request::PredictMany { keys: vec![(10, 20), (9, 9)] }).traced(Some(ctx)));
        assert!(matches!(svc.handle_frame(&payload, QueueGauges::default()), Response::ManyConfigs { .. }));
        drop(caller);
        let events = telemetry.recorder().trace_events(ctx.trace);
        let handle =
            events.iter().find(|e| e.layer == "daemon" && e.name == "handle").expect("daemon/handle span recorded");
        assert!(handle.attrs.iter().any(|a| a == "verb=predict_many"));
        let lookups: Vec<_> = events.iter().filter(|e| e.name == "registry_lookup").collect();
        assert_eq!(lookups.len(), 2, "one registry_lookup span per key");
        assert!(lookups.iter().all(|e| e.parent == Some(handle.span)));
    }

    #[test]
    fn malformed_payload_is_counted_and_answered() {
        let svc = service_with_one_model();
        let resp = svc.handle_frame(b"not json", QueueGauges::default());
        assert!(matches!(resp, Response::Error { .. }));
        let snap = svc.snapshot(QueueGauges::default());
        assert_eq!((snap.requests_total, snap.errors), (1, 1));
    }

    #[test]
    fn traced_frame_parents_daemon_spans_under_the_wire_context() {
        let svc = service_with_one_model();
        let telemetry = svc.telemetry().clone();
        // pretend a remote client stamped this attempt context on the frame
        let caller = telemetry.root_span("client", "attempt");
        let ctx = caller.context();
        let payload =
            frame_bytes(&RequestFrame::new(Request::Predict { system_hash: 10, binary_hash: 20 }).traced(Some(ctx)));
        assert!(matches!(svc.handle_frame(&payload, QueueGauges::default()), Response::Config(_)));
        drop(caller);

        let events = telemetry.recorder().trace_events(ctx.trace);
        let handle =
            events.iter().find(|e| e.layer == "daemon" && e.name == "handle").expect("daemon/handle span recorded");
        assert_eq!(handle.parent, Some(ctx.span.0), "handle joins the wire context");
        assert!(handle.attrs.iter().any(|a| a == "verb=predict"));
        let lookup = events.iter().find(|e| e.name == "registry_lookup").expect("registry_lookup span recorded");
        assert_eq!(lookup.parent, Some(handle.span), "lookup nests under handle");
        let backend = events.iter().find(|e| e.name == "backend_lookup").expect("cold key also consults the backend");
        assert_eq!(backend.parent, Some(handle.span));
    }

    #[test]
    fn untraced_frame_records_no_spans_but_still_counts() {
        // head-based sampling: the caller's trace decision propagates,
        // so an untraced warm-path request must not touch the recorder
        let svc = service_with_one_model();
        let payload = frame_bytes(&RequestFrame::new(Request::Predict { system_hash: 10, binary_hash: 20 }));
        assert!(matches!(svc.handle_frame(&payload, QueueGauges::default()), Response::Config(_)));
        assert!(svc.telemetry().recorder().events().is_empty(), "untraced frames open no spans");
        let snap = svc.snapshot(QueueGauges::default());
        assert_eq!(snap.requests_total, 1, "counters still see untraced traffic");
        assert_eq!(snap.predictions, 1);
    }

    #[test]
    fn malformed_frame_roots_an_error_span() {
        let svc = service_with_one_model();
        let response = svc.handle_frame(b"not json", QueueGauges::default());
        assert!(matches!(response, Response::Error { .. }));
        let events = svc.telemetry().recorder().events();
        let handle = events.iter().find(|e| e.name == "handle").expect("error span recorded");
        assert_eq!(handle.parent, None, "no parseable context, so the daemon roots the trace");
        assert!(!handle.is_ok());
    }

    #[test]
    fn preload_commits_a_new_generation() {
        let svc = service_with_one_model();
        assert_eq!(svc.snapshot(QueueGauges::default()).model_generation, 0);
        let payload = frame_bytes(&RequestFrame::new(Request::Preload { model_id: 1 }));
        match svc.handle_frame(&payload, QueueGauges::default()) {
            Response::Preloaded { generation, model_id, .. } => {
                assert_eq!(generation, 1);
                assert_eq!(model_id, 1);
            }
            other => panic!("expected Preloaded, got {other:?}"),
        }
        let snap = svc.snapshot(QueueGauges::default());
        assert_eq!(snap.model_generation, 1);
        assert_eq!(snap.generation_rollbacks, 0);
        // and the committed model serves straight from the registry
        let predict = frame_bytes(&RequestFrame::new(Request::Predict { system_hash: 10, binary_hash: 20 }));
        assert!(matches!(svc.handle_frame(&predict, QueueGauges::default()), Response::Config(_)));
        assert_eq!(svc.snapshot(QueueGauges::default()).cache_hits, 1);
    }

    #[test]
    fn failed_preload_rolls_back_without_moving_the_generation() {
        let svc = service_with_one_model();
        let payload = frame_bytes(&RequestFrame::new(Request::Preload { model_id: 999 }));
        assert!(matches!(svc.handle_frame(&payload, QueueGauges::default()), Response::Error { .. }));
        let snap = svc.snapshot(QueueGauges::default());
        assert_eq!(snap.model_generation, 0, "failed rollout never commits");
        assert_eq!(snap.generation_rollbacks, 1);
        // the next successful rollout still gets a fresh generation number
        let ok = frame_bytes(&RequestFrame::new(Request::Preload { model_id: 1 }));
        match svc.handle_frame(&ok, QueueGauges::default()) {
            Response::Preloaded { generation, .. } => assert_eq!(generation, 2),
            other => panic!("expected Preloaded, got {other:?}"),
        }
        assert_eq!(svc.snapshot(QueueGauges::default()).model_generation, 2);
    }

    #[test]
    fn stale_registry_entries_fall_back_to_the_backend() {
        let svc = service_with_one_model();
        // plant an uncommitted entry, as if a rollout died mid-flight
        let gen = svc.registry().begin_rollout();
        svc.registry().insert_at((10, 20), 7, "auto".into(), CpuConfig::new(8, 1_500_000, 2), gen);
        let predict = frame_bytes(&RequestFrame::new(Request::Predict { system_hash: 10, binary_hash: 20 }));
        match svc.handle_frame(&predict, QueueGauges::default()) {
            // served from the backend, not the half-rolled-out entry
            Response::Config(c) => assert_eq!(c, CpuConfig::new(16, 2_200_000, 1)),
            other => panic!("expected Config, got {other:?}"),
        }
        let snap = svc.snapshot(QueueGauges::default());
        assert_eq!(snap.stale_generation_hits, 1);
        assert_eq!(snap.cache_misses, 1, "a stale refusal is also a miss");
    }

    #[test]
    fn catch_up_from_store_installs_only_hash_verified_models() {
        use eco_store::{blob_hash, MemBackend, ModelBlob, Provenance, BLOB_DIR};

        let mem = MemBackend::new();
        let mut store = ModelStore::open(Box::new(mem.clone())).unwrap();
        let good = ModelBlob {
            model_type: "brute-force".into(),
            system_hash: 10,
            binary_hash: 20,
            config: CpuConfig::new(16, 2_200_000, 1),
            benchmarks: Vec::new(),
        };
        let bad = ModelBlob { binary_hash: 21, ..good.clone() };
        store.commit(&good, 1, Provenance::default()).unwrap();
        let bad_record = store.commit(&bad, 2, Provenance::default()).unwrap();
        // Corrupt the second blob on disk after commit.
        let name = format!("{BLOB_DIR}/{}", blob_hash(&bad));
        let mut bytes = mem.get_raw(&name).unwrap();
        bytes[0] ^= 0x01;
        mem.put_raw(&name, bytes);

        let svc = PredictService::new(2, 8, Arc::new(StaticBackend::new(vec![])))
            .with_store(Arc::new(Mutex::new(store)), "/var/lib/chronus/store");
        let report = svc.catch_up_from_store();
        assert_eq!(report.installed, 1);
        assert_eq!(report.rejected.len(), 1);
        assert!(report.rejected[0].contains(&format!("generation {}", bad_record.generation)));

        // The verified model serves; the corrupt one was never installed.
        let ok = frame_bytes(&RequestFrame::new(Request::Predict { system_hash: 10, binary_hash: 20 }));
        assert!(matches!(svc.handle_frame(&ok, QueueGauges::default()), Response::Config(_)));
        let corrupt = frame_bytes(&RequestFrame::new(Request::Predict { system_hash: 10, binary_hash: 21 }));
        assert!(matches!(svc.handle_frame(&corrupt, QueueGauges::default()), Response::Miss { .. }));

        let snap = svc.snapshot(QueueGauges::default());
        assert_eq!(snap.store_catchups, 1);
        assert_eq!(snap.preloads, 0, "catch-up involves no Preload RPC");
        assert_eq!(snap.store_dir, "/var/lib/chronus/store");
        assert_eq!(snap.store_generation, 2, "high-water gauge counts the corrupt commit too");
        assert_eq!(snap.model_generation, 1);
    }

    #[test]
    fn snapshot_counts_serving_models_per_node_class() {
        use eco_store::{MemBackend, ModelBlob, Provenance};

        let mut store = ModelStore::open(Box::new(MemBackend::new())).unwrap();
        let blob = |system: u64, binary: u64| ModelBlob {
            model_type: "brute-force".into(),
            system_hash: system,
            binary_hash: binary,
            config: CpuConfig::new(16, 2_200_000, 1),
            benchmarks: Vec::new(),
        };
        // one legacy (classless) model, two dense64 models
        store.commit(&blob(10, 20), 1, Provenance::default()).unwrap();
        store.commit(&blob(11, 20), 2, Provenance { node_class: "dense64".into(), ..Provenance::default() }).unwrap();
        store.commit(&blob(11, 21), 3, Provenance { node_class: "dense64".into(), ..Provenance::default() }).unwrap();

        let svc = PredictService::new(2, 8, Arc::new(StaticBackend::new(vec![])))
            .with_store(Arc::new(Mutex::new(store)), "/var/lib/chronus/store");
        let snap = svc.snapshot(QueueGauges::default());
        assert_eq!(snap.models_by_class, vec![("default".to_string(), 1), ("dense64".to_string(), 2)]);

        // a store-less daemon reports no class line at all
        let bare = PredictService::new(2, 8, Arc::new(StaticBackend::new(vec![])));
        assert!(bare.snapshot(QueueGauges::default()).models_by_class.is_empty());
    }

    #[test]
    fn sync_models_answers_newer_committed_entries_and_peer_applies_them() {
        let svc = service_with_one_model();
        let preload = frame_bytes(&RequestFrame::new(Request::Preload { model_id: 1 }));
        assert!(matches!(svc.handle_frame(&preload, QueueGauges::default()), Response::Preloaded { .. }));

        // A peer that already has generation 1 gets nothing…
        let caught_up = frame_bytes(&RequestFrame::new(Request::SyncModels { have_generation: 1 }));
        match svc.handle_frame(&caught_up, QueueGauges::default()) {
            Response::Models { models } => assert!(models.is_empty()),
            other => panic!("expected Models, got {other:?}"),
        }
        // …a cold peer gets the committed model and installs it.
        let cold = frame_bytes(&RequestFrame::new(Request::SyncModels { have_generation: 0 }));
        let models = match svc.handle_frame(&cold, QueueGauges::default()) {
            Response::Models { models } => models,
            other => panic!("expected Models, got {other:?}"),
        };
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].generation, 1);

        let peer = PredictService::new(2, 8, Arc::new(StaticBackend::new(vec![])));
        assert_eq!(peer.apply_sync(&models), 1);
        let predict = frame_bytes(&RequestFrame::new(Request::Predict { system_hash: 10, binary_hash: 20 }));
        assert!(matches!(peer.handle_frame(&predict, QueueGauges::default()), Response::Config(_)));
        let snap = peer.snapshot(QueueGauges::default());
        assert_eq!(snap.store_catchups, 1);
        assert_eq!(snap.model_generation, 1);
        assert!(snap.store_dir.is_empty(), "the pulling peer is memory-only");
    }

    #[test]
    fn report_outcome_acks_and_feeds_the_monitor() {
        let svc = service_with_one_model();
        let outcome = ObservedOutcome {
            config: CpuConfig::new(16, 2_200_000, 1),
            gflops: 30.0,
            watts: 200.0,
            duration_s: 60.0,
            node_class: String::new(),
        };
        let payload =
            frame_bytes(&RequestFrame::new(Request::ReportOutcome { system_hash: 10, binary_hash: 20, outcome }));
        assert!(matches!(
            svc.handle_frame(&payload, QueueGauges::default()),
            Response::OutcomeAck { accepted: true }
        ));
        let snap = svc.snapshot(QueueGauges::default());
        assert_eq!(snap.outcomes_ingested, 1);
        assert_eq!(snap.outcome_reservoirs, 1);
        assert_eq!(snap.predictions, 0, "an outcome report is not a prediction");
        assert_eq!(snap.canary_state, "idle");
        assert_eq!(svc.adapt().drain((10, 20)).len(), 1, "the driver can drain what was reported");
    }

    #[test]
    fn malformed_outcome_is_rejected_not_erred() {
        let svc = service_with_one_model();
        // zero watts is physically impossible for a running job: the
        // measurement is invalid, though the frame parses fine
        let outcome = ObservedOutcome {
            config: CpuConfig::new(16, 2_200_000, 1),
            gflops: 30.0,
            watts: 0.0,
            duration_s: 60.0,
            node_class: String::new(),
        };
        let payload =
            frame_bytes(&RequestFrame::new(Request::ReportOutcome { system_hash: 10, binary_hash: 20, outcome }));
        assert!(matches!(
            svc.handle_frame(&payload, QueueGauges::default()),
            Response::OutcomeAck { accepted: false }
        ));
        let snap = svc.snapshot(QueueGauges::default());
        assert_eq!((snap.outcomes_ingested, snap.outcomes_rejected), (0, 1));
        assert_eq!(snap.errors, 0, "a bad measurement is the reporter's problem, not the daemon's");
    }

    #[test]
    fn store_backed_daemon_calibrates_drift_from_serving_provenance() {
        use eco_store::{MemBackend, ModelBlob, Provenance};

        let mut store = ModelStore::open(Box::new(MemBackend::new())).unwrap();
        let blob = ModelBlob {
            model_type: "brute-force".into(),
            system_hash: 10,
            binary_hash: 20,
            config: CpuConfig::new(16, 2_200_000, 1),
            benchmarks: Vec::new(),
        };
        store.commit(&blob, 1, Provenance { best_gflops_per_watt: 0.20, ..Provenance::default() }).unwrap();
        let svc = PredictService::new(2, 8, Arc::new(StaticBackend::new(vec![])))
            .with_store(Arc::new(Mutex::new(store)), "/var/lib/chronus/store");

        // sustained 50% shortfall vs the fitted 0.20 GFLOPS/W trips the
        // detector within the default 16-observation window x 2 windows
        let drifted = ObservedOutcome {
            config: CpuConfig::new(16, 2_200_000, 1),
            gflops: 20.0,
            watts: 200.0,
            duration_s: 60.0,
            node_class: String::new(),
        };
        for _ in 0..32 {
            let payload = frame_bytes(&RequestFrame::new(Request::ReportOutcome {
                system_hash: 10,
                binary_hash: 20,
                outcome: drifted.clone(),
            }));
            svc.handle_frame(&payload, QueueGauges::default());
        }
        assert!(svc.adapt().has_expectation((10, 20)), "expectation came from the store, not self-calibration");
        assert!(svc.adapt().is_tripped((10, 20)));
        let snap = svc.snapshot(QueueGauges::default());
        assert_eq!(snap.drift_trips, 1, "hysteresis trips exactly once");
        assert_eq!(snap.drift_score_milli, 500);
        assert_eq!(svc.telemetry().gauge("daemon.adapt.drift_score_milli").get(), 500);
    }

    #[test]
    fn driver_notes_surface_in_the_snapshot() {
        let svc = service_with_one_model();
        svc.note_adapt_refit();
        svc.note_canary_verdict(true);
        svc.note_canary_verdict(false);
        svc.set_canary_state("canary gen 5 vs 4 (0/8 canary, 0/8 control)");
        let snap = svc.snapshot(QueueGauges::default());
        assert_eq!(snap.adapt_refits, 1);
        assert_eq!((snap.canary_promotions, snap.canary_rollbacks), (1, 1));
        assert!(snap.canary_state.starts_with("canary gen 5 vs 4"));
    }

    #[test]
    fn deadline_is_enforced_on_the_injected_clock() {
        struct JumpClock(std::sync::atomic::AtomicU64);
        impl ServiceClock for JumpClock {
            fn now_micros(&self) -> u64 {
                // every observation moves time forward 30 ms
                self.0.fetch_add(30_000, Ordering::Relaxed)
            }
        }
        let backend = StaticBackend::new(vec![]);
        let svc = PredictService::with_clock(1, 4, Arc::new(backend), Arc::new(JumpClock(AtomicU64::new(0))));
        let payload = frame_bytes(&RequestFrame::with_deadline(Request::Ping, 10));
        assert!(matches!(svc.handle_frame(&payload, QueueGauges::default()), Response::DeadlineExceeded));
        assert_eq!(svc.snapshot(QueueGauges::default()).deadline_exceeded, 1);
    }
}
