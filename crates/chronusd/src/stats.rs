//! Operational counters for the daemon — since the telemetry refactor,
//! a *view* over `daemon.*` telemetry counters and the shared
//! `daemon.service_us` latency histogram. The hot-path API (one atomic
//! bump per event, no locks) and the `stats` RPC snapshot shape are
//! unchanged; the handles now point into a [`Telemetry`] namespace so
//! the same numbers appear in `chronus stats`, trace exports and the
//! simulation harness's conservation audits.

use chronus::remote::StatsSnapshot;
use chronus::telemetry::{Counter, Histogram, Telemetry};

/// The daemon's counters. Every handle is an atomic cell — the hot path
/// never takes a lock for bookkeeping.
pub struct ServerStats {
    requests_total: Counter,
    predictions: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    busy_rejections: Counter,
    deadline_exceeded: Counter,
    errors: Counter,
    stale_generation_hits: Counter,
    generation_rollbacks: Counter,
    preloads: Counter,
    store_catchups: Counter,
    batches: Counter,
    batched_keys: Counter,
    drift_trips: Counter,
    drift_clears: Counter,
    adapt_refits: Counter,
    canary_promotions: Counter,
    canary_rollbacks: Counter,
    batch_keys_hist: Histogram,
    latency: Histogram,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats::new()
    }
}

impl ServerStats {
    /// Free-standing counters, registered nowhere (unit tests, ad-hoc
    /// use). Daemons go through [`ServerStats::over`] so the numbers
    /// are visible to the rest of the telemetry surface.
    pub fn new() -> ServerStats {
        ServerStats {
            requests_total: Counter::new(),
            predictions: Counter::new(),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            busy_rejections: Counter::new(),
            deadline_exceeded: Counter::new(),
            errors: Counter::new(),
            stale_generation_hits: Counter::new(),
            generation_rollbacks: Counter::new(),
            preloads: Counter::new(),
            store_catchups: Counter::new(),
            batches: Counter::new(),
            batched_keys: Counter::new(),
            drift_trips: Counter::new(),
            drift_clears: Counter::new(),
            adapt_refits: Counter::new(),
            canary_promotions: Counter::new(),
            canary_rollbacks: Counter::new(),
            batch_keys_hist: Histogram::new(),
            latency: Histogram::new(),
        }
    }

    /// The view over a telemetry instance: handles resolve once, here,
    /// and the hot path bumps bare atomics thereafter.
    pub fn over(telemetry: &Telemetry) -> ServerStats {
        ServerStats {
            requests_total: telemetry.counter("daemon.requests_total"),
            predictions: telemetry.counter("daemon.predictions"),
            cache_hits: telemetry.counter("daemon.cache_hits"),
            cache_misses: telemetry.counter("daemon.cache_misses"),
            busy_rejections: telemetry.counter("daemon.busy_rejections"),
            deadline_exceeded: telemetry.counter("daemon.deadline_exceeded"),
            errors: telemetry.counter("daemon.errors"),
            stale_generation_hits: telemetry.counter("daemon.stale_generation_hits"),
            generation_rollbacks: telemetry.counter("daemon.generation_rollbacks"),
            preloads: telemetry.counter("daemon.preloads"),
            store_catchups: telemetry.counter("daemon.store_catchups"),
            batches: telemetry.counter("daemon.batches"),
            batched_keys: telemetry.counter("daemon.batched_keys"),
            drift_trips: telemetry.counter("daemon.drift_trips"),
            drift_clears: telemetry.counter("daemon.drift_clears"),
            adapt_refits: telemetry.counter("daemon.adapt_refits"),
            canary_promotions: telemetry.counter("daemon.canary_promotions"),
            canary_rollbacks: telemetry.counter("daemon.canary_rollbacks"),
            batch_keys_hist: telemetry.histogram("daemon.batch_keys"),
            latency: telemetry.histogram("daemon.service_us"),
        }
    }

    pub fn request(&self) {
        self.requests_total.bump();
    }

    pub fn prediction(&self) {
        self.predictions.bump();
    }

    pub fn cache_hit(&self) {
        self.cache_hits.bump();
    }

    pub fn cache_miss(&self) {
        self.cache_misses.bump();
    }

    pub fn busy_rejection(&self) {
        self.busy_rejections.bump();
    }

    pub fn deadline_exceeded(&self) {
        self.deadline_exceeded.bump();
    }

    pub fn error(&self) {
        self.errors.bump();
    }

    /// A lookup refused because the entry's rollout generation was
    /// never committed (a half-rolled-out model was *not* served).
    pub fn stale_generation_hit(&self) {
        self.stale_generation_hits.bump();
    }

    /// A rollout that allocated a generation and then failed to commit.
    pub fn generation_rollback(&self) {
        self.generation_rollbacks.bump();
    }

    /// A `Preload` request was handled (committed or rolled back).
    pub fn preload(&self) {
        self.preloads.bump();
    }

    /// A model was installed outside any `Preload` RPC: boot catch-up
    /// from the configured store, or an anti-entropy `SyncModels` pull.
    pub fn store_catchup(&self) {
        self.store_catchups.bump();
    }

    /// One `PredictMany` frame carrying `keys` keys was handled. The
    /// per-key prediction/hit/miss counters are bumped separately by
    /// the per-key loop; this records the *frame*-level shape so the
    /// batch-size distribution is visible in `chronus stats`.
    pub fn batch(&self, keys: u64) {
        self.batches.bump();
        self.batched_keys.add(keys);
        self.batch_keys_hist.record_us(keys);
    }

    /// A drift detector tripped: sustained divergence between observed
    /// efficiency and the serving model's expectation.
    pub fn drift_trip(&self) {
        self.drift_trips.bump();
    }

    /// A tripped drift detector recovered below the clear threshold.
    pub fn drift_clear(&self) {
        self.drift_clears.bump();
    }

    /// An incremental re-fit was committed from outcome reservoirs.
    pub fn adapt_refit(&self) {
        self.adapt_refits.bump();
    }

    /// A canary comparison promoted its candidate fleet-wide.
    pub fn canary_promotion(&self) {
        self.canary_promotions.bump();
    }

    /// A canary comparison rolled its candidate back to the baseline.
    pub fn canary_rollback(&self) {
        self.canary_rollbacks.bump();
    }

    /// Records one request's handling latency.
    pub fn record_latency_us(&self, us: u64) {
        self.latency.record_us(us);
    }

    /// A consistent-enough copy for the `stats` RPC. The gauge-style
    /// fields (queue depth, resident models, …) are sampled by the
    /// caller because they live outside this struct.
    pub fn snapshot(
        &self,
        queue_depth: u64,
        queue_capacity: u64,
        workers: u64,
        models_resident: u64,
        evictions: u64,
        model_generation: u64,
    ) -> StatsSnapshot {
        StatsSnapshot {
            replica: String::new(), // stamped by the service, which knows its fleet identity
            requests_total: self.requests_total.get(),
            predictions: self.predictions.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            busy_rejections: self.busy_rejections.get(),
            deadline_exceeded: self.deadline_exceeded.get(),
            errors: self.errors.get(),
            queue_depth,
            queue_capacity,
            workers,
            models_resident,
            evictions,
            model_generation,
            stale_generation_hits: self.stale_generation_hits.get(),
            generation_rollbacks: self.generation_rollbacks.get(),
            preloads: self.preloads.get(),
            store_catchups: self.store_catchups.get(),
            batches: self.batches.get(),
            batched_keys: self.batched_keys.get(),
            // store gauges live with the service, which stamps them
            store_dir: String::new(),
            store_generation: 0,
            models_by_class: Vec::new(),
            // adaptation gauges (ingested/rejected/reservoirs/score and
            // the canary label) are stamped by the service from its
            // Monitor; the transition counters live here
            outcomes_ingested: 0,
            outcomes_rejected: 0,
            outcome_reservoirs: 0,
            drift_score_milli: 0,
            drift_trips: self.drift_trips.get(),
            drift_clears: self.drift_clears.get(),
            adapt_refits: self.adapt_refits.get(),
            canary_promotions: self.canary_promotions.get(),
            canary_rollbacks: self.canary_rollbacks.get(),
            canary_state: String::new(),
            latency_p50_us: self.latency.percentile_us(0.50),
            latency_p99_us: self.latency.percentile_us(0.99),
            latency_max_us: self.latency.max_us(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus::telemetry::Histogram;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(Histogram::bucket_for(0), 0);
        assert_eq!(Histogram::bucket_for(1), 0);
        assert_eq!(Histogram::bucket_for(2), 1);
        assert_eq!(Histogram::bucket_for(3), 2);
        assert_eq!(Histogram::bucket_for(4), 2);
        assert_eq!(Histogram::bucket_for(5), 3);
        assert_eq!(Histogram::bucket_for(1024), 10);
        assert_eq!(Histogram::bucket_for(u64::MAX), chronus::telemetry::HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn percentiles_walk_the_histogram() {
        let stats = ServerStats::new();
        for _ in 0..99 {
            stats.record_latency_us(3); // bucket 2, upper bound 4
        }
        stats.record_latency_us(100_000); // bucket 17, upper bound 131072
        let snap = stats.snapshot(0, 0, 0, 0, 0, 0);
        assert_eq!(snap.latency_p50_us, 4);
        assert_eq!(snap.latency_p99_us, 4, "99th of 100 samples is still the fast bucket");
        assert_eq!(snap.latency_max_us, 100_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let snap = ServerStats::new().snapshot(1, 2, 3, 4, 5, 6);
        assert_eq!(snap.latency_p50_us, 0);
        assert_eq!(snap.latency_p99_us, 0);
        assert_eq!((snap.queue_depth, snap.queue_capacity, snap.workers), (1, 2, 3));
        assert_eq!((snap.models_resident, snap.evictions), (4, 5));
        assert_eq!(snap.model_generation, 6);
    }

    #[test]
    fn generation_counters_accumulate_and_share_the_namespace() {
        let telemetry = Telemetry::wall();
        let stats = ServerStats::over(&telemetry);
        stats.stale_generation_hit();
        stats.stale_generation_hit();
        stats.generation_rollback();
        let snap = stats.snapshot(0, 0, 0, 0, 0, 3);
        assert_eq!(snap.stale_generation_hits, 2);
        assert_eq!(snap.generation_rollbacks, 1);
        assert_eq!(snap.model_generation, 3);
        assert_eq!(telemetry.counter("daemon.stale_generation_hits").get(), 2);
        assert_eq!(telemetry.counter("daemon.generation_rollbacks").get(), 1);
    }

    #[test]
    fn store_counters_accumulate_and_share_the_namespace() {
        let telemetry = Telemetry::wall();
        let stats = ServerStats::over(&telemetry);
        stats.preload();
        stats.store_catchup();
        stats.store_catchup();
        let snap = stats.snapshot(0, 0, 0, 0, 0, 0);
        assert_eq!(snap.preloads, 1);
        assert_eq!(snap.store_catchups, 2);
        assert!(snap.store_dir.is_empty(), "store gauges are stamped by the service, not here");
        assert_eq!(snap.store_generation, 0);
        assert_eq!(telemetry.counter("daemon.preloads").get(), 1);
        assert_eq!(telemetry.counter("daemon.store_catchups").get(), 2);
    }

    #[test]
    fn batch_counters_count_frames_and_keys_separately() {
        let telemetry = Telemetry::wall();
        let stats = ServerStats::over(&telemetry);
        stats.batch(8);
        stats.batch(64);
        let snap = stats.snapshot(0, 0, 0, 0, 0, 0);
        assert_eq!(snap.batches, 2, "two frames");
        assert_eq!(snap.batched_keys, 72, "72 keys across them");
        assert_eq!(telemetry.counter("daemon.batches").get(), 2);
        assert_eq!(telemetry.counter("daemon.batched_keys").get(), 72);
        assert_eq!(telemetry.histogram("daemon.batch_keys").count(), 2);
    }

    #[test]
    fn adaptation_counters_accumulate_and_share_the_namespace() {
        let telemetry = Telemetry::wall();
        let stats = ServerStats::over(&telemetry);
        stats.drift_trip();
        stats.drift_trip();
        stats.drift_clear();
        stats.adapt_refit();
        stats.canary_promotion();
        stats.canary_rollback();
        let snap = stats.snapshot(0, 0, 0, 0, 0, 0);
        assert_eq!(snap.drift_trips, 2);
        assert_eq!(snap.drift_clears, 1);
        assert_eq!(snap.adapt_refits, 1);
        assert_eq!(snap.canary_promotions, 1);
        assert_eq!(snap.canary_rollbacks, 1);
        assert_eq!(snap.outcomes_ingested, 0, "monitor gauges are stamped by the service, not here");
        assert!(snap.canary_state.is_empty());
        assert_eq!(telemetry.counter("daemon.drift_trips").get(), 2);
        assert_eq!(telemetry.counter("daemon.canary_rollbacks").get(), 1);
    }

    #[test]
    fn counters_accumulate() {
        let stats = ServerStats::new();
        stats.request();
        stats.request();
        stats.prediction();
        stats.cache_hit();
        stats.cache_miss();
        stats.busy_rejection();
        stats.deadline_exceeded();
        stats.error();
        let snap = stats.snapshot(0, 0, 0, 0, 0, 0);
        assert_eq!(snap.requests_total, 2);
        assert_eq!(snap.predictions, 1);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.busy_rejections, 1);
        assert_eq!(snap.deadline_exceeded, 1);
        assert_eq!(snap.errors, 1);
    }

    #[test]
    fn view_shares_the_telemetry_namespace() {
        let telemetry = Telemetry::wall();
        let stats = ServerStats::over(&telemetry);
        stats.request();
        stats.cache_hit();
        stats.record_latency_us(5);
        assert_eq!(telemetry.counter("daemon.requests_total").get(), 1);
        assert_eq!(telemetry.counter("daemon.cache_hits").get(), 1);
        assert_eq!(telemetry.histogram("daemon.service_us").count(), 1);
        // and the snapshot reads the very same cells
        let snap = stats.snapshot(0, 0, 0, 0, 0, 0);
        assert_eq!(snap.requests_total, 1);
        assert_eq!(snap.cache_hits, 1);
    }
}
