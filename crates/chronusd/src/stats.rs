//! Lock-free operational counters for the daemon: per-verb request
//! counts, registry hit/miss rates, back-pressure rejections, and a
//! power-of-two latency histogram from which the `stats` RPC derives
//! p50/p99.

use std::sync::atomic::{AtomicU64, Ordering};

use chronus::remote::StatsSnapshot;

/// Histogram buckets: bucket `i` counts latencies in `(2^(i-1), 2^i]`
/// microseconds (bucket 0 is `<= 1 µs`). 2^39 µs is ~6 days — more
/// than any request will ever take.
const BUCKETS: usize = 40;

/// The daemon's counters. Every field is an atomic so the hot path
/// never takes a lock for bookkeeping.
pub struct ServerStats {
    requests_total: AtomicU64,
    predictions: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    busy_rejections: AtomicU64,
    deadline_exceeded: AtomicU64,
    errors: AtomicU64,
    latency_max_us: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats::new()
    }
}

impl ServerStats {
    pub fn new() -> ServerStats {
        ServerStats {
            requests_total: AtomicU64::new(0),
            predictions: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency_max_us: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    pub fn request(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn prediction(&self) {
        self.predictions.fetch_add(1, Ordering::Relaxed);
    }

    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn busy_rejection(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    pub fn deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    pub fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's handling latency.
    pub fn record_latency_us(&self, us: u64) {
        self.latency_max_us.fetch_max(us, Ordering::Relaxed);
        self.buckets[Self::bucket_for(us)].fetch_add(1, Ordering::Relaxed);
    }

    fn bucket_for(us: u64) -> usize {
        if us <= 1 {
            return 0;
        }
        // ceil(log2(us)), clamped to the last bucket
        ((64 - (us - 1).leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// The upper bound (µs) of the first bucket at or above percentile
    /// `p` (0.0..=1.0) of the recorded population; 0 when empty.
    fn percentile_us(counts: &[u64; BUCKETS], p: f64) -> u64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// A consistent-enough copy for the `stats` RPC. The gauge-style
    /// fields (queue depth, resident models, …) are sampled by the
    /// caller because they live outside this struct.
    pub fn snapshot(
        &self,
        queue_depth: u64,
        queue_capacity: u64,
        workers: u64,
        models_resident: u64,
        evictions: u64,
    ) -> StatsSnapshot {
        let counts: [u64; BUCKETS] = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        StatsSnapshot {
            requests_total: self.requests_total.load(Ordering::Relaxed),
            predictions: self.predictions.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            queue_depth,
            queue_capacity,
            workers,
            models_resident,
            evictions,
            latency_p50_us: Self::percentile_us(&counts, 0.50),
            latency_p99_us: Self::percentile_us(&counts, 0.99),
            latency_max_us: self.latency_max_us.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(ServerStats::bucket_for(0), 0);
        assert_eq!(ServerStats::bucket_for(1), 0);
        assert_eq!(ServerStats::bucket_for(2), 1);
        assert_eq!(ServerStats::bucket_for(3), 2);
        assert_eq!(ServerStats::bucket_for(4), 2);
        assert_eq!(ServerStats::bucket_for(5), 3);
        assert_eq!(ServerStats::bucket_for(1024), 10);
        assert_eq!(ServerStats::bucket_for(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_walk_the_histogram() {
        let stats = ServerStats::new();
        for _ in 0..99 {
            stats.record_latency_us(3); // bucket 2, upper bound 4
        }
        stats.record_latency_us(100_000); // bucket 17, upper bound 131072
        let snap = stats.snapshot(0, 0, 0, 0, 0);
        assert_eq!(snap.latency_p50_us, 4);
        assert_eq!(snap.latency_p99_us, 4, "99th of 100 samples is still the fast bucket");
        assert_eq!(snap.latency_max_us, 100_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let snap = ServerStats::new().snapshot(1, 2, 3, 4, 5);
        assert_eq!(snap.latency_p50_us, 0);
        assert_eq!(snap.latency_p99_us, 0);
        assert_eq!((snap.queue_depth, snap.queue_capacity, snap.workers), (1, 2, 3));
        assert_eq!((snap.models_resident, snap.evictions), (4, 5));
    }

    #[test]
    fn counters_accumulate() {
        let stats = ServerStats::new();
        stats.request();
        stats.request();
        stats.prediction();
        stats.cache_hit();
        stats.cache_miss();
        stats.busy_rejection();
        stats.deadline_exceeded();
        stats.error();
        let snap = stats.snapshot(0, 0, 0, 0, 0);
        assert_eq!(snap.requests_total, 2);
        assert_eq!(snap.predictions, 1);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.busy_rejections, 1);
        assert_eq!(snap.deadline_exceeded, 1);
        assert_eq!(snap.errors, 1);
    }
}
