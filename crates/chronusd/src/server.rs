//! The daemon's network engine: one accept thread feeding a fixed
//! worker pool through a bounded connection queue.
//!
//! Back-pressure is explicit: when the queue is full the accept thread
//! answers `Busy { retry_after_ms }` on the new connection and closes
//! it, instead of letting latency pile up invisibly. Workers own a
//! connection for its lifetime and answer any number of pipelined
//! requests on it; the request semantics themselves (deadline budgets,
//! miss/error classification, counters) live in the transport-free
//! [`crate::service::PredictService`], which this module only carries
//! frames to and from.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use chronus::remote::{take_frame, write_frame, Response, ResponseFrame, SessionEnd, ShmListener, StatsSnapshot};
use chronus::telemetry::Histogram;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};

use chronus::remote::{CallOptions, PredictClient};
use eco_store::ModelStore;
use parking_lot::Mutex;

use crate::backend::ModelBackend;
use crate::registry::ModelRegistry;
use crate::service::{PredictService, QueueGauges, StoreCatchUp};

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Connections that may wait between accept and a worker.
    pub queue_cap: usize,
    /// Registry capacity (resident models across all shards).
    pub cache_cap: usize,
    /// Registry shards.
    pub cache_shards: usize,
    /// The hint sent with `Busy` rejections.
    pub retry_after_ms: u64,
    /// This daemon's fleet identity, stamped on `Stats` answers
    /// (empty = unnamed single daemon).
    pub replica_id: String,
    /// Durable model store directory. When set, the daemon opens the
    /// store at boot and re-installs every serving model — blob
    /// hash-verified first — before the listener accepts a single
    /// connection, so a restarted replica is warm with zero Preload
    /// traffic. The daemon only *reads* the store; the campaign and
    /// the `chronus models` CLI are its writers.
    pub store_dir: Option<String>,
    /// A ring peer (`host:port`) to pull committed models from at
    /// boot — anti-entropy for a replica whose store is missing or
    /// behind. A dead peer is non-fatal: the daemon still starts and
    /// reports the error in [`PredictServer::boot_recovery`].
    pub sync_from: Option<String>,
    /// When set, the daemon also listens on a shared-memory ring at
    /// this filesystem path (dialed as `shm://<path>`) for same-host
    /// clients. One client session at a time; batch requests on it
    /// take the binary fast path.
    pub shm_path: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4517".to_string(),
            workers: 4,
            queue_cap: 64,
            cache_cap: 64,
            cache_shards: 8,
            retry_after_ms: 20,
            replica_id: String::new(),
            store_dir: None,
            sync_from: None,
            shm_path: None,
        }
    }
}

/// Idle tick on worker connections: how often a blocked read wakes up
/// to check for shutdown.
const READ_TICK: Duration = Duration::from_millis(25);

struct Ctx {
    service: PredictService,
    queue_cap: usize,
    workers: usize,
    /// Accept-to-worker wait, resolved once from the service telemetry
    /// so workers bump bare atomics per dequeue.
    queue_wait: Histogram,
}

impl Ctx {
    fn gauges(&self, queue_depth: usize) -> QueueGauges {
        QueueGauges { depth: queue_depth as u64, capacity: self.queue_cap as u64, workers: self.workers as u64 }
    }
}

/// Everything the daemon recovered at boot, before the listener
/// accepted a single connection.
#[derive(Debug, Default)]
pub struct BootRecovery {
    /// Store catch-up outcome (all-zero when `store_dir` is unset).
    pub store: StoreCatchUp,
    /// Models pulled from the `sync_from` peer.
    pub synced: usize,
    /// Why the peer pull failed, when it did (non-fatal).
    pub sync_error: Option<String>,
}

/// A running chronusd instance. Dropping it shuts the daemon down and
/// joins every thread.
pub struct PredictServer {
    addr: SocketAddr,
    shm_path: Option<String>,
    ctx: Arc<Ctx>,
    boot: BootRecovery,
    tx: Option<Sender<(Instant, TcpStream)>>,
    accept: Option<JoinHandle<()>>,
    shm: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl PredictServer {
    /// Binds, spawns the worker pool and the accept thread, and
    /// returns immediately. With [`ServerConfig::store_dir`] set, the
    /// store is opened and caught up from first, so the registry is
    /// warm before the address is reachable; an unopenable store is a
    /// hard error (better dead than silently cold).
    pub fn start(cfg: ServerConfig, backend: Arc<dyn ModelBackend>) -> std::io::Result<PredictServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers_n = cfg.workers.max(1);
        let mut service = PredictService::new(cfg.cache_shards, cfg.cache_cap, backend).with_replica(cfg.replica_id);
        if let Some(dir) = &cfg.store_dir {
            let store = ModelStore::open_dir(dir).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("model store at {dir}: {e}"))
            })?;
            service = service.with_store(Arc::new(Mutex::new(store)), dir.clone());
        }
        let mut boot = BootRecovery { store: service.catch_up_from_store(), ..BootRecovery::default() };
        if let Some(peer) = &cfg.sync_from {
            match sync_from_peer(&service, peer) {
                Ok(n) => boot.synced = n,
                Err(e) => boot.sync_error = Some(e),
            }
        }
        let queue_wait = service.telemetry().histogram("daemon.queue_wait_us");
        let ctx = Arc::new(Ctx { service, queue_cap: cfg.queue_cap.max(1), workers: workers_n, queue_wait });
        let (tx, rx) = bounded::<(Instant, TcpStream)>(cfg.queue_cap.max(1));

        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let rx = rx.clone();
            let ctx = Arc::clone(&ctx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("chronusd-worker-{i}"))
                    .spawn(move || worker_loop(rx, ctx))?,
            );
        }
        drop(rx);

        let accept = {
            let tx = tx.clone();
            let ctx = Arc::clone(&ctx);
            let retry_after_ms = cfg.retry_after_ms;
            std::thread::Builder::new()
                .name("chronusd-accept".to_string())
                .spawn(move || accept_loop(listener, tx, ctx, retry_after_ms))?
        };

        let shm = match &cfg.shm_path {
            Some(path) => {
                let ring = ShmListener::create(path)?;
                let ctx = Arc::clone(&ctx);
                Some(
                    std::thread::Builder::new()
                        .name("chronusd-shm".to_string())
                        .spawn(move || shm_loop(ring, ctx))?,
                )
            }
            None => None,
        };

        Ok(PredictServer {
            addr,
            shm_path: cfg.shm_path.clone(),
            ctx,
            boot,
            tx: Some(tx),
            accept: Some(accept),
            shm,
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared-memory ring path, when the daemon is serving one
    /// (dial it as `shm://<path>`).
    pub fn shm_path(&self) -> Option<&str> {
        self.shm_path.as_deref()
    }

    /// What boot-time recovery installed (store catch-up, peer sync).
    pub fn boot_recovery(&self) -> &BootRecovery {
        &self.boot
    }

    /// A counters snapshot taken in-process (no RPC round trip).
    pub fn snapshot(&self) -> StatsSnapshot {
        let depth = self.tx.as_ref().map(|t| t.len()).unwrap_or(0);
        self.ctx.service.snapshot(self.ctx.gauges(depth))
    }

    /// Direct registry access for tests and the CLI's preload-at-boot.
    pub fn registry(&self) -> &ModelRegistry {
        self.ctx.service.registry()
    }

    fn shutdown_impl(&mut self) {
        self.ctx.service.begin_shutdown();
        // Unblock the accept loop with a throwaway connection; it
        // checks the flag before doing anything with it.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // With the accept loop gone, dropping our sender disconnects
        // the channel and the workers drain out.
        self.tx = None;
        if let Some(handle) = self.shm.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Stops the daemon and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }
}

impl Drop for PredictServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Pulls committed models a booting replica is missing from a ring
/// peer (the `SyncModels` anti-entropy RPC) and installs them, one
/// committed registry generation per model.
fn sync_from_peer(service: &PredictService, peer: &str) -> Result<usize, String> {
    let mut client = PredictClient::builder()
        .endpoint(peer)
        .connect_timeout(Duration::from_millis(500))
        .build()
        .map_err(|e| format!("sync peer {peer}: {e}"))?;
    let have = service.registry().generation();
    let models =
        client.sync_models(have, &CallOptions::traced(None)).map_err(|e| format!("sync peer {peer}: {e}"))?;
    Ok(service.apply_sync(&models))
}

fn accept_loop(listener: TcpListener, tx: Sender<(Instant, TcpStream)>, ctx: Arc<Ctx>, retry_after_ms: u64) {
    for conn in listener.incoming() {
        if ctx.service.is_shutting_down() {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        match tx.try_send((Instant::now(), stream)) {
            Ok(()) => {}
            Err(TrySendError::Full((_, mut stream))) => {
                ctx.service.stats().busy_rejection();
                let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
                let _ = write_frame(&mut stream, &Response::Busy { retry_after_ms });
                // dropping the stream closes the bounced connection
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn worker_loop(rx: Receiver<(Instant, TcpStream)>, ctx: Arc<Ctx>) {
    while let Ok((queued_at, stream)) = rx.recv() {
        if ctx.service.is_shutting_down() {
            break;
        }
        ctx.queue_wait.record_us(queued_at.elapsed().as_micros() as u64);
        serve_connection(stream, &ctx, &rx);
    }
}

/// Serves every request on one connection until the peer hangs up, a
/// protocol violation occurs, or the daemon shuts down.
fn serve_connection(mut stream: TcpStream, ctx: &Ctx, rx: &Receiver<(Instant, TcpStream)>) {
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut buf = BytesMut::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        loop {
            match take_frame(&mut buf) {
                Ok(Some(payload)) => {
                    // Echoing the correlation id — and only then — is
                    // the additive negotiation: corr'd requests get a
                    // ResponseFrame envelope, everything else (old
                    // clients included) gets the bare Response it
                    // always did.
                    let (corr, body) = ctx.service.handle_frame_enveloped(&payload, ctx.gauges(rx.len()));
                    let wrote = match corr {
                        Some(corr) => write_frame(&mut stream, &ResponseFrame { corr, body }),
                        None => write_frame(&mut stream, &body),
                    };
                    if wrote.is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                // oversized length prefix: unrecoverable framing state
                Err(_) => return,
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.put_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) => {
                if ctx.service.is_shutting_down() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// The shared-memory listener thread: serves one same-host client
/// session at a time until shutdown. Frames on the ring carry no
/// length prefix (the slot header owns framing), so replies are bare
/// payload bytes: the binary fast path for batch requests, JSON for
/// everything else — with the same corr-echo negotiation as TCP.
fn shm_loop(ring: ShmListener, ctx: Arc<Ctx>) {
    let mut should_stop = || ctx.service.is_shutting_down();
    let mut handle = |payload: &[u8]| -> Vec<u8> {
        if let Some(reply) = ctx.service.handle_fast_frame(payload, ctx.gauges(0)) {
            return reply;
        }
        let (corr, body) = ctx.service.handle_frame_enveloped(payload, ctx.gauges(0));
        let encoded = match corr {
            Some(corr) => serde_json::to_vec(&ResponseFrame { corr, body }),
            None => serde_json::to_vec(&body),
        };
        encoded.expect("response serialization is infallible")
    };
    loop {
        match ring.serve_session(&mut should_stop, &mut handle) {
            Ok(SessionEnd::Stopped) | Err(_) => return,
            Ok(SessionEnd::ClientGone) => {}
        }
    }
}
