//! Where the daemon gets models from. A [`ModelBackend`] resolves a
//! preload (by model id) or a cold lookup (by identity hashes) into a
//! [`PreparedModel`] whose best configuration the registry then serves
//! from memory.

use std::time::Duration;

use chronus::application::predict_from_settings;
use chronus::error::{ChronusError, Result};
use chronus::interfaces::LocalStorage;
use eco_sim_node::cpu::CpuConfig;

/// A model resolved by a backend, ready to be cached: identity plus
/// the pre-computed answer.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedModel {
    pub model_id: i64,
    pub model_type: String,
    pub system_hash: u64,
    pub binary_hash: u64,
    pub config: CpuConfig,
}

/// The daemon's model source.
pub trait ModelBackend: Send + Sync {
    /// Resolves a `Preload { model_id }` RPC.
    fn load(&self, model_id: i64) -> Result<PreparedModel>;

    /// Resolves a registry miss for `(system_hash, binary_hash)`.
    fn lookup(&self, system_hash: u64, binary_hash: u64) -> Result<PreparedModel>;
}

/// The production backend: the same staged-model layout the CLI's
/// `load-model` writes (`settings.json` pointing at a serialized
/// optimizer on local disk). Prediction runs the optimizer's argmax
/// over the staged system facts once; the registry caches the result.
pub struct StorageBackend {
    storage: Box<dyn LocalStorage + Send + Sync>,
}

impl StorageBackend {
    pub fn new(storage: Box<dyn LocalStorage + Send + Sync>) -> StorageBackend {
        StorageBackend { storage }
    }

    fn prepare(&self, system_hash: u64, binary_hash: u64) -> Result<PreparedModel> {
        let settings = self.storage.load_settings()?;
        let loaded = settings
            .loaded_model
            .as_ref()
            .ok_or_else(|| ChronusError::NotFound("no model pre-loaded".into()))?
            .clone();
        let config = predict_from_settings(&settings, system_hash, binary_hash)?;
        Ok(PreparedModel {
            model_id: loaded.model_id,
            model_type: loaded.model_type,
            system_hash: loaded.system_hash,
            binary_hash: loaded.binary_hash,
            config,
        })
    }
}

impl ModelBackend for StorageBackend {
    fn load(&self, model_id: i64) -> Result<PreparedModel> {
        let settings = self.storage.load_settings()?;
        let loaded = settings
            .loaded_model
            .as_ref()
            .filter(|m| m.model_id == model_id)
            .ok_or_else(|| ChronusError::NotFound(format!("model {model_id} is not staged on this node")))?;
        let (system_hash, binary_hash) = (loaded.system_hash, loaded.binary_hash);
        self.prepare(system_hash, binary_hash)
    }

    fn lookup(&self, system_hash: u64, binary_hash: u64) -> Result<PreparedModel> {
        self.prepare(system_hash, binary_hash)
    }
}

/// A fixed in-memory backend for tests and benchmarks; optionally
/// injects latency to simulate a slow model source.
pub struct StaticBackend {
    models: Vec<PreparedModel>,
    delay: Duration,
}

impl StaticBackend {
    pub fn new(models: Vec<PreparedModel>) -> StaticBackend {
        StaticBackend { models, delay: Duration::ZERO }
    }

    /// Every resolution sleeps `delay` first.
    pub fn with_delay(models: Vec<PreparedModel>, delay: Duration) -> StaticBackend {
        StaticBackend { models, delay }
    }
}

impl ModelBackend for StaticBackend {
    fn load(&self, model_id: i64) -> Result<PreparedModel> {
        std::thread::sleep(self.delay);
        self.models
            .iter()
            .find(|m| m.model_id == model_id)
            .cloned()
            .ok_or_else(|| ChronusError::NotFound(format!("model {model_id}")))
    }

    fn lookup(&self, system_hash: u64, binary_hash: u64) -> Result<PreparedModel> {
        std::thread::sleep(self.delay);
        self.models
            .iter()
            .find(|m| m.system_hash == system_hash && m.binary_hash == binary_hash)
            .cloned()
            .ok_or_else(|| ChronusError::NotFound(format!("model for ({system_hash:#x}, {binary_hash:#x})")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(id: i64, sys: u64, bin: u64) -> PreparedModel {
        PreparedModel {
            model_id: id,
            model_type: "brute-force".into(),
            system_hash: sys,
            binary_hash: bin,
            config: CpuConfig::new(32, 2_200_000, 1),
        }
    }

    #[test]
    fn static_backend_resolves_by_id_and_by_key() {
        let be = StaticBackend::new(vec![model(1, 10, 20), model(2, 30, 40)]);
        assert_eq!(be.load(2).unwrap().system_hash, 30);
        assert_eq!(be.lookup(10, 20).unwrap().model_id, 1);
        assert!(matches!(be.load(9).unwrap_err(), ChronusError::NotFound(_)));
        assert!(matches!(be.lookup(1, 1).unwrap_err(), ChronusError::NotFound(_)));
    }

    #[test]
    fn static_backend_delay_is_observable() {
        let be = StaticBackend::with_delay(vec![model(1, 10, 20)], Duration::from_millis(30));
        let start = std::time::Instant::now();
        be.lookup(10, 20).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(30));
    }
}
