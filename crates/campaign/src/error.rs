//! Campaign error type.

/// Errors surfaced by the campaign engine.
#[derive(Debug)]
pub enum CampaignError {
    /// The campaign specification is unusable (no configurations, bad
    /// probe fractions, or it does not match the journal on disk).
    InvalidSpec(String),
    /// The write-ahead journal failed (storage fault or corrupt state).
    Journal(String),
    /// The workload manager rejected a trial submission.
    Slurm(eco_slurm_sim::SlurmError),
    /// A Chronus repository or model operation failed.
    Chronus(chronus::ChronusError),
    /// Every node is drained; queued trials can never start.
    NoUsableNodes,
    /// A round finished with zero successful trials, so the plan has no
    /// survivors to advance.
    NoSurvivors(u32),
    /// The engine stopped early (the `max_trials` kill knob); the journal
    /// holds everything finished so far and `resume` picks up from there.
    Interrupted {
        /// Trials finalized before the stop.
        finished: usize,
    },
    /// Hot rollout into the prediction daemon failed.
    Rollout(String),
    /// The simulation stopped making progress (a trial neither ran nor
    /// reached a terminal state within the tick budget).
    Stalled(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::InvalidSpec(m) => write!(f, "invalid campaign spec: {m}"),
            CampaignError::Journal(m) => write!(f, "journal error: {m}"),
            CampaignError::Slurm(e) => write!(f, "slurm error: {e}"),
            CampaignError::Chronus(e) => write!(f, "chronus error: {e}"),
            CampaignError::NoUsableNodes => write!(f, "no usable nodes: every node is drained"),
            CampaignError::NoSurvivors(round) => {
                write!(f, "round {round} produced no successful trials; the plan has no survivors")
            }
            CampaignError::Interrupted { finished } => {
                write!(f, "campaign interrupted after {finished} trial(s); resume to continue")
            }
            CampaignError::Rollout(m) => write!(f, "rollout error: {m}"),
            CampaignError::Stalled(m) => write!(f, "campaign stalled: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Slurm(e) => Some(e),
            CampaignError::Chronus(e) => Some(e),
            _ => None,
        }
    }
}

impl From<eco_slurm_sim::SlurmError> for CampaignError {
    fn from(e: eco_slurm_sim::SlurmError) -> Self {
        CampaignError::Slurm(e)
    }
}

impl From<chronus::ChronusError> for CampaignError {
    fn from(e: chronus::ChronusError) -> Self {
        CampaignError::Chronus(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CampaignError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CampaignError::InvalidSpec("no configs".into()).to_string().contains("no configs"));
        assert!(CampaignError::Interrupted { finished: 3 }.to_string().contains("3 trial"));
        assert!(CampaignError::NoSurvivors(2).to_string().contains("round 2"));
        let slurm: CampaignError = eco_slurm_sim::SlurmError::InvalidScript("bad".into()).into();
        assert!(matches!(slurm, CampaignError::Slurm(_)));
    }
}
