//! The campaign write-ahead journal.
//!
//! Every trial is journaled as `Started` *before* its job is submitted and
//! flipped to `Done`/`Failed` after it reaches a terminal state. A campaign
//! killed at any point can therefore resume by replaying the journal:
//! `Done` trials are never re-run, `Started` trials (in flight at the
//! crash) are resubmitted under their original entry id.
//!
//! [`RecordJournal`] persists through the same append-only
//! [`chronus::integrations::record_store::RecordStore`] WAL
//! the repository uses; [`FlakyJournal`] wraps any journal with a
//! deterministic write-failure injection point for the fault-plan tests.

use crate::error::{CampaignError, Result};
use crate::plan::TrialMeasurement;
use crate::spec::CampaignSpec;
use chronus::integrations::record_store::RecordStore;
use eco_sim_node::cpu::CpuConfig;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Journal table holding the campaign spec (single row).
pub const SPEC_TABLE: &str = "campaign";
/// Journal table holding one row per trial attempt.
pub const TRIALS_TABLE: &str = "trials";
/// Fixed id of the spec row.
pub const SPEC_ID: i64 = 1;

/// Lifecycle of a journaled trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrialStatus {
    /// Journaled before submission; a crash leaves the entry here.
    Started,
    /// The job completed and was measured.
    Done {
        /// What the trial measured.
        measurement: TrialMeasurement,
    },
    /// The job reached a terminal state other than `Completed`.
    Failed {
        /// Why (the terminal job state, or an injected fault).
        reason: String,
    },
}

/// One journal row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialEntry {
    /// Round the trial belongs to.
    pub round: u32,
    /// Configuration under test.
    pub config: CpuConfig,
    /// Workload fraction the trial ran at.
    pub fraction: f64,
    /// Where the trial is in its lifecycle.
    pub status: TrialStatus,
}

impl TrialEntry {
    /// Whether the entry records a finished, measured trial.
    pub fn is_done(&self) -> bool {
        matches!(self.status, TrialStatus::Done { .. })
    }
}

/// Durable campaign state.
pub trait Journal {
    /// Persists the campaign spec (idempotent).
    fn save_spec(&mut self, spec: &CampaignSpec) -> Result<()>;

    /// The journaled spec, if the journal belongs to a campaign.
    fn load_spec(&self) -> Result<Option<CampaignSpec>>;

    /// Appends a trial entry; returns its id.
    fn append(&mut self, entry: &TrialEntry) -> Result<i64>;

    /// Rewrites a trial entry in place.
    fn update(&mut self, id: i64, entry: &TrialEntry) -> Result<()>;

    /// Every trial entry, in id order.
    fn entries(&self) -> Result<Vec<(i64, TrialEntry)>>;
}

/// The production journal: a [`RecordStore`] file.
pub struct RecordJournal {
    store: RecordStore,
}

impl RecordJournal {
    /// Opens (or creates) a journal file, replaying its WAL.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let store = RecordStore::open(path).map_err(|e| CampaignError::Journal(e.to_string()))?;
        Ok(RecordJournal { store })
    }
}

impl Journal for RecordJournal {
    fn save_spec(&mut self, spec: &CampaignSpec) -> Result<()> {
        self.store.put(SPEC_TABLE, SPEC_ID, spec).map_err(|e| CampaignError::Journal(e.to_string()))
    }

    fn load_spec(&self) -> Result<Option<CampaignSpec>> {
        self.store.get(SPEC_TABLE, SPEC_ID).map_err(|e| CampaignError::Journal(e.to_string()))
    }

    fn append(&mut self, entry: &TrialEntry) -> Result<i64> {
        self.store.insert(TRIALS_TABLE, entry).map_err(|e| CampaignError::Journal(e.to_string()))
    }

    fn update(&mut self, id: i64, entry: &TrialEntry) -> Result<()> {
        self.store.put(TRIALS_TABLE, id, entry).map_err(|e| CampaignError::Journal(e.to_string()))
    }

    fn entries(&self) -> Result<Vec<(i64, TrialEntry)>> {
        self.store.scan(TRIALS_TABLE).map_err(|e| CampaignError::Journal(e.to_string()))
    }
}

/// A journal whose writes start failing after a set count — the storage
/// half of the campaign fault plans. Reads always pass through, so a
/// resumed campaign can still replay what made it to disk.
pub struct FlakyJournal<J: Journal> {
    inner: J,
    fail_after_writes: usize,
    writes: usize,
}

impl<J: Journal> FlakyJournal<J> {
    /// Fails every write once `fail_after_writes` have succeeded.
    pub fn new(inner: J, fail_after_writes: usize) -> Self {
        FlakyJournal { inner, fail_after_writes, writes: 0 }
    }

    /// Unwraps the inner journal (e.g. to resume without the fault).
    pub fn into_inner(self) -> J {
        self.inner
    }

    /// Writes that succeeded so far.
    pub fn writes(&self) -> usize {
        self.writes
    }

    fn tick(&mut self) -> Result<()> {
        if self.writes >= self.fail_after_writes {
            return Err(CampaignError::Journal(format!("injected storage failure after {} write(s)", self.writes)));
        }
        self.writes += 1;
        Ok(())
    }
}

impl<J: Journal> Journal for FlakyJournal<J> {
    fn save_spec(&mut self, spec: &CampaignSpec) -> Result<()> {
        self.tick()?;
        self.inner.save_spec(spec)
    }

    fn load_spec(&self) -> Result<Option<CampaignSpec>> {
        self.inner.load_spec()
    }

    fn append(&mut self, entry: &TrialEntry) -> Result<i64> {
        self.tick()?;
        self.inner.append(entry)
    }

    fn update(&mut self, id: i64, entry: &TrialEntry) -> Result<()> {
        self.tick()?;
        self.inner.update(id, entry)
    }

    fn entries(&self) -> Result<Vec<(i64, TrialEntry)>> {
        self.inner.entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanSpec;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("eco-campaign-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.db")
    }

    fn spec() -> CampaignSpec {
        CampaignSpec {
            name: "t".into(),
            configs: vec![CpuConfig::new(8, 1_500_000, 1)],
            plan: PlanSpec::BruteForce,
            seed: 1,
            sample_interval_ms: 2000,
            full_work_gflop: 10.0,
            nx: 16,
            node_class: String::new(),
        }
    }

    fn entry(round: u32) -> TrialEntry {
        TrialEntry { round, config: CpuConfig::new(8, 1_500_000, 1), fraction: 1.0, status: TrialStatus::Started }
    }

    #[test]
    fn journal_survives_reopen() {
        let path = tmp("reopen");
        let mut j = RecordJournal::open(&path).unwrap();
        assert!(j.load_spec().unwrap().is_none());
        j.save_spec(&spec()).unwrap();
        let id = j.append(&entry(0)).unwrap();
        let done = TrialEntry {
            status: TrialStatus::Done {
                measurement: TrialMeasurement {
                    gflops: 5.0,
                    runtime_s: 2.0,
                    avg_system_w: 100.0,
                    avg_cpu_w: 50.0,
                    avg_cpu_temp_c: 40.0,
                    system_energy_j: 200.0,
                    cpu_energy_j: 100.0,
                    sample_count: 3,
                },
            },
            ..entry(0)
        };
        j.update(id, &done).unwrap();
        j.append(&entry(1)).unwrap();
        drop(j);

        let j = RecordJournal::open(&path).unwrap();
        assert_eq!(j.load_spec().unwrap().unwrap(), spec());
        let entries = j.entries().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].1, done);
        assert!(entries[0].1.is_done());
        assert_eq!(entries[1].1.status, TrialStatus::Started);
    }

    #[test]
    fn flaky_journal_fails_deterministically_but_keeps_reads() {
        let path = tmp("flaky");
        let mut j = FlakyJournal::new(RecordJournal::open(&path).unwrap(), 2);
        j.save_spec(&spec()).unwrap();
        j.append(&entry(0)).unwrap();
        let err = j.append(&entry(0)).unwrap_err();
        assert!(matches!(err, CampaignError::Journal(_)), "{err}");
        assert_eq!(j.writes(), 2);
        // reads still work, and what made it to disk is intact
        assert_eq!(j.entries().unwrap().len(), 1);
        assert!(j.load_spec().unwrap().is_some());
        let mut inner = j.into_inner();
        inner.append(&entry(1)).unwrap();
        assert_eq!(inner.entries().unwrap().len(), 2);
    }
}
