//! Hot model rollout: after a campaign round produces fresh benchmarks,
//! rebuild the model through the Chronus application layer and push it
//! into a running prediction daemon with the versioned `Preload` flow.
//!
//! The daemon side guarantees atomicity (a rollout generation is either
//! fully committed or rolled back, and stale-generation entries are never
//! served); this module's job is only to drive the sequence and surface
//! typed failures the campaign CLI can retry.

use crate::engine::CampaignOutcome;
use crate::error::{CampaignError, Result};
use crate::spec::CampaignSpec;
use chronus::remote::{CallOptions, PredictClient};
use chronus::{Chronus, LoadedModel};
use eco_store::{ModelBlob, ModelRecord, ModelStore, Provenance, ProvenanceSource, StoreError};

/// Acknowledgement of a committed rollout.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutAck {
    /// The model now serving predictions.
    pub model_id: i64,
    /// Its optimizer type.
    pub model_type: String,
    /// The rollout generation the daemon committed it under
    /// (0 from pre-versioning daemons).
    pub generation: u64,
}

/// Anything a freshly built model can be hot-rolled into. The production
/// implementation is [`PredictClient`] speaking to chronusd over TCP; the
/// fault-injection tests substitute unreachable or failing targets.
pub trait RolloutTarget {
    /// Asks the daemon to stage and commit `model_id`; returns only after
    /// the daemon has committed the generation.
    fn preload(&mut self, model_id: i64) -> Result<RolloutAck>;

    /// Fans the preload out to every replica behind the target,
    /// reporting each one's outcome as `(endpoint, ack-or-error)`.
    /// Single-daemon targets have exactly one replica, which is what
    /// the default implementation reports.
    fn preload_all(&mut self, model_id: i64) -> Vec<(String, std::result::Result<RolloutAck, String>)> {
        vec![("target".to_string(), self.preload(model_id).map_err(|e| e.to_string()))]
    }
}

impl RolloutTarget for PredictClient {
    fn preload(&mut self, model_id: i64) -> Result<RolloutAck> {
        let ack = PredictClient::preload(self, model_id, &CallOptions::default())
            .map_err(|e| CampaignError::Rollout(e.to_string()))?;
        Ok(RolloutAck { model_id: ack.model_id, model_type: ack.model_type, generation: ack.generation })
    }

    fn preload_all(&mut self, model_id: i64) -> Vec<(String, std::result::Result<RolloutAck, String>)> {
        let fleet = self.preload_detailed(model_id, &CallOptions::default());
        let mut out: Vec<(String, std::result::Result<RolloutAck, String>)> = fleet
            .acks
            .into_iter()
            .map(|(ep, a)| {
                (ep, Ok(RolloutAck { model_id: a.model_id, model_type: a.model_type, generation: a.generation }))
            })
            .collect();
        out.extend(fleet.failures.into_iter().map(|(ep, e)| (ep, Err(e.to_string()))));
        out
    }
}

/// Rebuilds a model from the repository's benchmarks (which the campaign
/// just extended) and stages it for serving: fit, persist to blob
/// storage, pre-load into local settings. Returns the staged model.
pub fn rebuild_model(
    app: &mut Chronus,
    model_type: &str,
    system_id: i64,
    binary_hash: u64,
    now_ms: u64,
) -> chronus::Result<LoadedModel> {
    let meta = app.init_model(model_type, system_id, binary_hash, now_ms)?;
    app.load_model(meta.id)
}

/// Commits a staged model to the durable store *before* any replica is
/// asked to serve it: the blob (benchmark rows + winning configuration)
/// lands atomically under its content address, then the metadata record
/// — with full build provenance (campaign, seed, plan, trial economics,
/// best calibration) and lineage — is appended to the ledger. A model
/// that was never durably committed is a model the fleet never rolls
/// out, so a crashed rollout can always be replayed from the store.
pub fn commit_to_store(
    store: &mut ModelStore,
    staged: &LoadedModel,
    spec: &CampaignSpec,
    outcome: &CampaignOutcome,
) -> std::result::Result<ModelRecord, StoreError> {
    let blob = ModelBlob {
        model_type: staged.model_type.clone(),
        system_hash: staged.system_hash,
        binary_hash: staged.binary_hash,
        config: outcome.best,
        benchmarks: outcome.benchmarks.clone(),
    };
    let best_gflops_per_watt = outcome
        .benchmarks
        .iter()
        .filter(|b| b.avg_system_w > 0.0)
        .map(|b| b.gflops / b.avg_system_w)
        .fold(0.0f64, f64::max);
    let provenance = Provenance {
        campaign: spec.name.clone(),
        seed: spec.seed,
        plan: spec.plan.name().to_string(),
        trials_run: outcome.trials_run as u64,
        trials_skipped: outcome.trials_skipped as u64,
        trial_seconds: outcome.trial_seconds,
        best_gflops_per_watt,
        node_class: spec.node_class.clone(),
        source: ProvenanceSource::Campaign,
        refit_of: 0,
    };
    store.commit(&blob, staged.model_id, provenance)
}

/// Drives a staged model into a live daemon, verifying the committed
/// generation advanced monotonically if the caller knows the previous one.
pub fn roll_into(
    target: &mut dyn RolloutTarget,
    model_id: i64,
    previous_generation: Option<u64>,
) -> Result<RolloutAck> {
    let ack = target.preload(model_id)?;
    if let Some(prev) = previous_generation {
        // generation 0 means the daemon predates versioned rollouts
        if ack.generation != 0 && ack.generation <= prev {
            return Err(CampaignError::Rollout(format!(
                "daemon committed generation {} but {} was already committed",
                ack.generation, prev
            )));
        }
    }
    Ok(ack)
}

/// Per-replica outcome of a fleet-wide rollout, plus the quorum it was
/// judged against.
#[derive(Debug)]
pub struct FleetRolloutReport {
    /// Replicas that committed the model.
    pub acks: Vec<(String, RolloutAck)>,
    /// Replicas that failed, with the error each one reported.
    pub failures: Vec<(String, String)>,
    /// The quorum the rollout had to meet.
    pub quorum: usize,
}

impl FleetRolloutReport {
    /// The highest generation any replica committed.
    pub fn committed_generation(&self) -> u64 {
        self.acks.iter().map(|(_, a)| a.generation).max().unwrap_or(0)
    }
}

/// Fans a staged model out to every replica behind `target` and demands
/// at least `quorum` of them commit it. Each committing replica's
/// generation is checked for monotonicity against
/// `previous_generation`, exactly as in [`roll_into`] — generations are
/// per-daemon counters, so in a fleet driven through one client they
/// advance in lockstep and one previous value covers all replicas.
/// Failures below quorum leave the fleet mixed (committed replicas keep
/// the new model; that is safe because committed generations are never
/// rolled back) and surface as [`CampaignError::Rollout`].
pub fn roll_into_fleet(
    target: &mut dyn RolloutTarget,
    model_id: i64,
    previous_generation: Option<u64>,
    quorum: usize,
) -> Result<FleetRolloutReport> {
    let mut acks = Vec::new();
    let mut failures = Vec::new();
    for (endpoint, outcome) in target.preload_all(model_id) {
        match outcome {
            Ok(ack) => acks.push((endpoint, ack)),
            Err(e) => failures.push((endpoint, e)),
        }
    }
    if acks.len() < quorum.max(1) {
        let detail = failures.iter().map(|(ep, e)| format!("{ep}: {e}")).collect::<Vec<_>>().join("; ");
        return Err(CampaignError::Rollout(format!(
            "rollout quorum not met: {}/{} replicas committed (need {}): {detail}",
            acks.len(),
            acks.len() + failures.len(),
            quorum.max(1),
        )));
    }
    if let Some(prev) = previous_generation {
        for (endpoint, ack) in &acks {
            if ack.generation != 0 && ack.generation <= prev {
                return Err(CampaignError::Rollout(format!(
                    "replica {endpoint} committed generation {} but {} was already committed",
                    ack.generation, prev
                )));
            }
        }
    }
    Ok(FleetRolloutReport { acks, failures, quorum: quorum.max(1) })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeTarget {
        gen: u64,
        fail: bool,
    }

    impl RolloutTarget for FakeTarget {
        fn preload(&mut self, model_id: i64) -> Result<RolloutAck> {
            if self.fail {
                return Err(CampaignError::Rollout("daemon unreachable".into()));
            }
            self.gen += 1;
            Ok(RolloutAck { model_id, model_type: "brute-force".into(), generation: self.gen })
        }
    }

    /// A fake fleet: per-replica generations, some replicas down.
    struct FakeFleet {
        gens: Vec<u64>,
        down: Vec<bool>,
    }

    impl RolloutTarget for FakeFleet {
        fn preload(&mut self, model_id: i64) -> Result<RolloutAck> {
            match self.preload_all(model_id).into_iter().find(|(_, o)| o.is_ok()) {
                Some((_, Ok(ack))) => Ok(ack),
                _ => Err(CampaignError::Rollout("no replica reachable".into())),
            }
        }

        fn preload_all(&mut self, model_id: i64) -> Vec<(String, std::result::Result<RolloutAck, String>)> {
            (0..self.gens.len())
                .map(|i| {
                    let ep = format!("r{i}");
                    if self.down[i] {
                        (ep, Err("connection refused".to_string()))
                    } else {
                        self.gens[i] += 1;
                        (ep, Ok(RolloutAck { model_id, model_type: "brute-force".into(), generation: self.gens[i] }))
                    }
                })
                .collect()
        }
    }

    #[test]
    fn fleet_rollout_meets_quorum_with_one_replica_down() {
        let mut fleet = FakeFleet { gens: vec![4, 4, 4], down: vec![false, true, false] };
        let report = roll_into_fleet(&mut fleet, 11, Some(4), 2).unwrap();
        assert_eq!(report.acks.len(), 2);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].0, "r1");
        assert_eq!(report.committed_generation(), 5);
    }

    #[test]
    fn fleet_rollout_below_quorum_is_a_typed_error() {
        let mut fleet = FakeFleet { gens: vec![0, 0, 0], down: vec![true, true, false] };
        let err = roll_into_fleet(&mut fleet, 11, None, 2).unwrap_err();
        assert!(matches!(err, CampaignError::Rollout(_)), "{err}");
        assert!(err.to_string().contains("1/3"), "{err}");
    }

    #[test]
    fn fleet_rollout_checks_monotonicity_per_replica() {
        // one replica regressed its generation counter (restarted daemon)
        let mut fleet = FakeFleet { gens: vec![9, 1, 9], down: vec![false, false, false] };
        let err = roll_into_fleet(&mut fleet, 11, Some(9), 2).unwrap_err();
        assert!(err.to_string().contains("r1"), "{err}");
    }

    #[test]
    fn single_target_default_fans_out_to_itself() {
        let mut t = FakeTarget { gen: 0, fail: false };
        let report = roll_into_fleet(&mut t, 5, None, 1).unwrap();
        assert_eq!(report.acks.len(), 1);
        assert_eq!(report.committed_generation(), 1);
    }

    #[test]
    fn roll_into_checks_generation_monotonicity() {
        let mut t = FakeTarget { gen: 5, fail: false };
        let ack = roll_into(&mut t, 7, Some(5)).unwrap();
        assert_eq!(ack.generation, 6);
        assert_eq!(ack.model_id, 7);
        // a daemon that regressed its generation is reported
        let mut stale = FakeTarget { gen: 2, fail: false };
        let err = roll_into(&mut stale, 7, Some(9)).unwrap_err();
        assert!(matches!(err, CampaignError::Rollout(_)), "{err}");
    }

    #[test]
    fn commit_to_store_lands_before_rollout_with_full_provenance() {
        use crate::plan::PlanSpec;
        use chronus::domain::Benchmark;
        use eco_sim_node::cpu::CpuConfig;
        use eco_sim_node::sysinfo::SystemFacts;
        use eco_store::MemBackend;

        let best = CpuConfig::new(16, 2_200_000, 1);
        let staged = LoadedModel {
            model_id: 7,
            model_type: "brute-force".into(),
            local_path: "/opt/chronus/optimizer".into(),
            system_hash: 42,
            binary_hash: 77,
            facts: SystemFacts {
                cpu_name: "EPYC 7502P".into(),
                cores: 32,
                threads_per_core: 2,
                frequencies_khz: vec![1_500_000, 2_200_000, 2_500_000],
                ram_gb: 256,
            },
            benchmarks_path: None,
        };
        let bench = Benchmark {
            id: 1,
            system_id: 1,
            binary_hash: 77,
            config: best,
            gflops: 30.0,
            runtime_s: 60.0,
            avg_system_w: 200.0,
            avg_cpu_w: 120.0,
            avg_cpu_temp_c: 55.0,
            system_energy_j: 12_000.0,
            cpu_energy_j: 7_200.0,
            sample_count: 30,
        };
        let spec = CampaignSpec {
            name: "nightly".into(),
            configs: vec![best],
            plan: PlanSpec::BruteForce,
            seed: 9,
            sample_interval_ms: 2_000,
            full_work_gflop: 1_000.0,
            nx: 104,
            node_class: "dense64".into(),
        };
        let outcome = CampaignOutcome {
            plan: "brute-force".into(),
            rounds: 1,
            trials_run: 3,
            trials_skipped: 1,
            trials_failed: 0,
            trial_seconds: 55.5,
            best,
            benchmarks: vec![bench],
            system_id: 1,
            binary_hash: 77,
        };

        let mut store = ModelStore::open(Box::new(MemBackend::new())).unwrap();
        let record = commit_to_store(&mut store, &staged, &spec, &outcome).unwrap();
        assert_eq!(record.generation, 1);
        assert_eq!(record.model_id, 7);
        assert_eq!((record.system_hash, record.binary_hash), (42, 77));
        assert_eq!(record.config, best);
        assert_eq!(record.provenance.campaign, "nightly");
        assert_eq!(record.provenance.seed, 9);
        assert_eq!(record.provenance.plan, "brute-force");
        assert_eq!(record.provenance.trials_run, 3);
        assert!((record.provenance.best_gflops_per_watt - 0.15).abs() < 1e-9);
        assert_eq!(record.provenance.node_class, "dense64", "store provenance records the class");
        // the blob is durably readable and hash-verified before any
        // replica is asked to serve the model
        let blob = store.load_blob(&record).unwrap();
        assert_eq!(blob.benchmarks.len(), 1);
        assert_eq!(blob.config, best);
    }

    #[test]
    fn unreachable_target_surfaces_typed_error_and_retry_works() {
        let mut t = FakeTarget { gen: 0, fail: true };
        let err = roll_into(&mut t, 3, None).unwrap_err();
        assert!(err.to_string().contains("unreachable"));
        t.fail = false;
        assert_eq!(roll_into(&mut t, 3, None).unwrap().generation, 1);
    }
}
