//! Hot model rollout: after a campaign round produces fresh benchmarks,
//! rebuild the model through the Chronus application layer and push it
//! into a running prediction daemon with the versioned `Preload` flow.
//!
//! The daemon side guarantees atomicity (a rollout generation is either
//! fully committed or rolled back, and stale-generation entries are never
//! served); this module's job is only to drive the sequence and surface
//! typed failures the campaign CLI can retry.

use crate::error::{CampaignError, Result};
use chronus::remote::PredictClient;
use chronus::{Chronus, LoadedModel};

/// Acknowledgement of a committed rollout.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutAck {
    /// The model now serving predictions.
    pub model_id: i64,
    /// Its optimizer type.
    pub model_type: String,
    /// The rollout generation the daemon committed it under
    /// (0 from pre-versioning daemons).
    pub generation: u64,
}

/// Anything a freshly built model can be hot-rolled into. The production
/// implementation is [`PredictClient`] speaking to chronusd over TCP; the
/// fault-injection tests substitute unreachable or failing targets.
pub trait RolloutTarget {
    /// Asks the daemon to stage and commit `model_id`; returns only after
    /// the daemon has committed the generation.
    fn preload(&mut self, model_id: i64) -> Result<RolloutAck>;
}

impl RolloutTarget for PredictClient {
    fn preload(&mut self, model_id: i64) -> Result<RolloutAck> {
        let ack = self.preload_versioned(model_id).map_err(|e| CampaignError::Rollout(e.to_string()))?;
        Ok(RolloutAck { model_id: ack.model_id, model_type: ack.model_type, generation: ack.generation })
    }
}

/// Rebuilds a model from the repository's benchmarks (which the campaign
/// just extended) and stages it for serving: fit, persist to blob
/// storage, pre-load into local settings. Returns the staged model.
pub fn rebuild_model(
    app: &mut Chronus,
    model_type: &str,
    system_id: i64,
    binary_hash: u64,
    now_ms: u64,
) -> chronus::Result<LoadedModel> {
    let meta = app.init_model(model_type, system_id, binary_hash, now_ms)?;
    app.load_model(meta.id)
}

/// Drives a staged model into a live daemon, verifying the committed
/// generation advanced monotonically if the caller knows the previous one.
pub fn roll_into(
    target: &mut dyn RolloutTarget,
    model_id: i64,
    previous_generation: Option<u64>,
) -> Result<RolloutAck> {
    let ack = target.preload(model_id)?;
    if let Some(prev) = previous_generation {
        // generation 0 means the daemon predates versioned rollouts
        if ack.generation != 0 && ack.generation <= prev {
            return Err(CampaignError::Rollout(format!(
                "daemon committed generation {} but {} was already committed",
                ack.generation, prev
            )));
        }
    }
    Ok(ack)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeTarget {
        gen: u64,
        fail: bool,
    }

    impl RolloutTarget for FakeTarget {
        fn preload(&mut self, model_id: i64) -> Result<RolloutAck> {
            if self.fail {
                return Err(CampaignError::Rollout("daemon unreachable".into()));
            }
            self.gen += 1;
            Ok(RolloutAck { model_id, model_type: "brute-force".into(), generation: self.gen })
        }
    }

    #[test]
    fn roll_into_checks_generation_monotonicity() {
        let mut t = FakeTarget { gen: 5, fail: false };
        let ack = roll_into(&mut t, 7, Some(5)).unwrap();
        assert_eq!(ack.generation, 6);
        assert_eq!(ack.model_id, 7);
        // a daemon that regressed its generation is reported
        let mut stale = FakeTarget { gen: 2, fail: false };
        let err = roll_into(&mut stale, 7, Some(9)).unwrap_err();
        assert!(matches!(err, CampaignError::Rollout(_)), "{err}");
    }

    #[test]
    fn unreachable_target_surfaces_typed_error_and_retry_works() {
        let mut t = FakeTarget { gen: 0, fail: true };
        let err = roll_into(&mut t, 3, None).unwrap_err();
        assert!(err.to_string().contains("unreachable"));
        t.fail = false;
        assert_eq!(roll_into(&mut t, 3, None).unwrap().generation, 1);
    }
}
