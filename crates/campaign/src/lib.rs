//! eco-campaign — an adaptive, resumable benchmark-campaign engine for
//! the eco plugin.
//!
//! The paper's benchmarking phase sweeps every (cores × frequency ×
//! threads-per-core) configuration at full length — 192 full HPCG runs on
//! the SR650 testbed. This crate turns that sweep into a *campaign*:
//!
//! * a [`plan::CampaignPlan`] decides which configurations run at which
//!   probe length each round ([`plan::SuccessiveHalvingPlan`] prunes the
//!   sweep with short probe runs scored by mid-run IPMI power samples;
//!   [`plan::BruteForcePlan`] is the paper's exhaustive baseline);
//! * the [`engine::CampaignEngine`] executes trials as real batch jobs,
//!   concurrently across cluster nodes, journaling every state
//!   transition write-ahead so a killed campaign resumes without
//!   re-running finished trials ([`journal::RecordJournal`]);
//! * [`rollout`] rebuilds the model from the final round's benchmarks and
//!   hot-rolls it into a running chronusd through the versioned
//!   `Preload` flow — committed generations only, never a half-loaded
//!   model.
//!
//! Everything is deterministic given the campaign seed, so fault plans
//! (node crash mid-trial, storage write failure, unreachable daemon) are
//! replayable byte-for-byte.

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod fit;
pub mod journal;
pub mod plan;
pub mod rollout;
pub mod spec;

pub use engine::{ActiveJob, CampaignEngine, CampaignOutcome, RunOptions};
pub use error::{CampaignError, Result};
pub use fit::{fit_best_config, FittedModel};
pub use journal::{FlakyJournal, Journal, RecordJournal, TrialEntry, TrialStatus};
pub use plan::{
    BruteForcePlan, CampaignPlan, PlanSpec, SuccessiveHalvingPlan, TrialMeasurement, TrialResult, TrialSpec,
};
pub use rollout::{
    commit_to_store, rebuild_model, roll_into, roll_into_fleet, FleetRolloutReport, RolloutAck, RolloutTarget,
};
pub use spec::CampaignSpec;
