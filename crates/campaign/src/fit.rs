//! The one fit routine every model-producing path shares.
//!
//! A model is always built the same way — validate the training rows,
//! fit the named optimizer, pick the best configuration among the
//! candidates — whether the rows came from an offline benchmark
//! campaign (the PR 4 pipeline) or from the adaptation loop folding
//! production outcomes into a live generation's blob. Keeping the
//! routine here means the two paths cannot drift: an adaptation re-fit
//! is exactly a campaign fit over a different training set.

use chronus::domain::Benchmark;
use chronus::{FitReport, ModelFactory};
use eco_sim_node::cpu::CpuConfig;

/// A fitted model, reduced to what the serving path needs: the winning
/// configuration and the fit's calibration numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedModel {
    /// The most energy-efficient configuration among the candidates.
    pub best: CpuConfig,
    /// Rows used and training R².
    pub report: FitReport,
    /// Best observed GFLOPS/W across the training rows — the headline
    /// calibration number recorded in store provenance.
    pub best_gflops_per_watt: f64,
}

/// Validates `benchmarks`, fits a fresh optimizer of `model_type`, and
/// answers the best configuration among `candidates`. Errors exactly
/// where the offline pipeline errors: empty/degenerate training sets,
/// unknown model types, or an empty candidate list.
pub fn fit_best_config(
    model_type: &str,
    benchmarks: &[Benchmark],
    candidates: &[CpuConfig],
) -> chronus::Result<FittedModel> {
    chronus::optimizers::validate_training_set(benchmarks)?;
    let mut optimizer = ModelFactory::create(model_type)?;
    let report = optimizer.fit(benchmarks)?;
    let best = optimizer.best_config(candidates)?;
    let best_gflops_per_watt =
        benchmarks.iter().filter(|b| b.avg_system_w > 0.0).map(|b| b.gflops / b.avg_system_w).fold(0.0f64, f64::max);
    Ok(FittedModel { best, report, best_gflops_per_watt })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(id: i64, config: CpuConfig, gflops: f64, watts: f64) -> Benchmark {
        Benchmark {
            id,
            system_id: 1,
            binary_hash: 7,
            config,
            gflops,
            runtime_s: 60.0,
            avg_system_w: watts,
            avg_cpu_w: watts * 0.6,
            avg_cpu_temp_c: 55.0,
            system_energy_j: watts * 60.0,
            cpu_energy_j: watts * 36.0,
            sample_count: 30,
        }
    }

    #[test]
    fn fit_picks_the_most_efficient_candidate() {
        let low = CpuConfig::new(32, 1_500_000, 1);
        let high = CpuConfig::new(32, 2_500_000, 1);
        let rows = vec![bench(1, low, 24.0, 150.0), bench(2, high, 30.0, 260.0)];
        let fitted = fit_best_config("brute-force", &rows, &[low, high]).unwrap();
        assert_eq!(fitted.best, low, "0.16 GFLOPS/W beats 0.115");
        assert_eq!(fitted.report.train_rows, 2);
        assert!((fitted.best_gflops_per_watt - 0.16).abs() < 1e-12);
    }

    #[test]
    fn degenerate_training_sets_error_like_the_offline_pipeline() {
        let c = CpuConfig::new(32, 2_200_000, 1);
        assert!(fit_best_config("brute-force", &[], &[c]).is_err(), "empty set");
        let rows = vec![bench(1, c, 30.0, 200.0), bench(2, c, 31.0, 201.0)];
        assert!(fit_best_config("brute-force", &rows, &[c]).is_err(), "single-config surface");
    }

    #[test]
    fn unknown_model_type_is_a_typed_error() {
        let low = CpuConfig::new(32, 1_500_000, 1);
        let high = CpuConfig::new(32, 2_500_000, 1);
        let rows = vec![bench(1, low, 24.0, 150.0), bench(2, high, 30.0, 260.0)];
        assert!(fit_best_config("no-such-optimizer", &rows, &[low, high]).is_err());
    }
}
