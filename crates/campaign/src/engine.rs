//! The campaign engine: executes a plan's trials as real batch jobs on a
//! simulated cluster, samples mid-run power over IPMI, journals every
//! state transition, and saves the final round's measurements as
//! repository benchmarks.
//!
//! Trials run concurrently, one per free node; rounds are barriers (a
//! successive-halving round needs every survivor candidate measured
//! before it can pick). The engine never trusts its own memory across
//! crashes — everything a resume needs lives in the [`Journal`].

use crate::error::{CampaignError, Result};
use crate::journal::{Journal, TrialEntry, TrialStatus};
use crate::plan::{TrialMeasurement, TrialResult, TrialSpec};
use crate::spec::CampaignSpec;
use chronus::domain::{Benchmark, EnergySample, SystemEntry};
use chronus::hash::{binary_hash, classed_system_hash, system_hash};
use chronus::integrations::monitoring::IpmiService;
use chronus::interfaces::{Repository, SystemService};
use eco_hpcg::{HpcgWorkload, PerfModel, Workload};
use eco_sim_node::clock::SimDuration;
use eco_sim_node::sysinfo::SystemFacts;
use eco_slurm_sim::{generate_hpcg_script, Cluster, JobId, JobState};
use eco_telemetry::{Span, Telemetry};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Ticks a single round may spend before the engine declares the
/// simulation stuck (e.g. every trial pending on a fully drained
/// cluster).
const MAX_TICKS_PER_ROUND: u64 = 200_000;

/// A trial currently in flight, as fault-injection hooks see it.
#[derive(Debug, Clone, Copy)]
pub struct ActiveJob {
    /// The batch job executing the trial.
    pub job: JobId,
    /// The node it runs on (None while still pending).
    pub node: Option<usize>,
    /// The trial being executed.
    pub spec: TrialSpec,
}

/// A fault-injection / observation hook called after every simulation
/// tick with the cluster and the in-flight trials.
pub type TickHook<'h> = Box<dyn FnMut(&mut Cluster, &[ActiveJob]) + 'h>;

/// Knobs for one engine invocation.
#[derive(Default)]
pub struct RunOptions<'h> {
    /// Stop (with [`CampaignError::Interrupted`]) once this many trials
    /// have finalized — the deterministic stand-in for `kill -9` in the
    /// crash-resume tests.
    pub max_trials: Option<usize>,
    /// Called after every simulation tick with the cluster and the
    /// in-flight trials; fault plans (node crash, drain) inject here.
    pub on_tick: Option<TickHook<'h>>,
}

/// What a finished campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The strategy that ran.
    pub plan: String,
    /// Rounds executed.
    pub rounds: u32,
    /// Trials that completed and were measured in this invocation.
    pub trials_run: usize,
    /// Trials satisfied from the journal without re-running.
    pub trials_skipped: usize,
    /// Trials that ended in a terminal state other than `Completed`.
    pub trials_failed: usize,
    /// Total simulated job runtime this invocation spent, in seconds —
    /// the cost metric adaptive plans are judged on.
    pub trial_seconds: f64,
    /// The most energy-efficient configuration of the final round.
    pub best: eco_sim_node::cpu::CpuConfig,
    /// Final-round benchmarks, saved to the repository.
    pub benchmarks: Vec<Benchmark>,
    /// Repository id of the benchmarked system.
    pub system_id: i64,
    /// Binary hash the benchmarks were recorded under.
    pub binary_hash: u64,
}

struct ActiveTrial {
    spec: TrialSpec,
    entry_id: i64,
    job: JobId,
    span: Option<Span>,
    samples: Vec<EnergySample>,
    work_gflop: f64,
    node: Option<usize>,
}

/// The campaign engine; borrows its collaborators so callers keep
/// ownership of the cluster and stores across invocations.
pub struct CampaignEngine<'a> {
    cluster: &'a mut Cluster,
    journal: &'a mut dyn Journal,
    repository: &'a mut dyn Repository,
    perf: Arc<PerfModel>,
    spec: CampaignSpec,
    telemetry: Arc<Telemetry>,
}

impl<'a> CampaignEngine<'a> {
    /// Builds an engine over a cluster, a journal and a repository.
    pub fn new(
        cluster: &'a mut Cluster,
        journal: &'a mut dyn Journal,
        repository: &'a mut dyn Repository,
        perf: Arc<PerfModel>,
        spec: CampaignSpec,
    ) -> Self {
        CampaignEngine { cluster, journal, repository, perf, spec, telemetry: Arc::new(Telemetry::wall()) }
    }

    /// Routes campaign spans, counters and histograms into `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Runs (or resumes) the campaign to completion.
    pub fn run(&mut self, mut opts: RunOptions<'_>) -> Result<CampaignOutcome> {
        self.spec.validate()?;
        match self.journal.load_spec()? {
            Some(existing) if existing != self.spec => {
                return Err(CampaignError::InvalidSpec(
                    "journal belongs to a different campaign; use its spec or a fresh journal".into(),
                ));
            }
            Some(_) => {}
            None => self.journal.save_spec(&self.spec)?,
        }
        let plan = self.spec.plan.build(&self.spec.configs)?;

        // One probe binary per workload fraction. All share the same
        // binary_id (the problem size doesn't change with run length), so
        // every trial — probe or full — hashes to the same application.
        let mut levels: Vec<(f64, String, f64)> = Vec::new();
        for (i, &fraction) in self.spec.plan.fractions().iter().enumerate() {
            let path = format!("/opt/chronus/campaign/xhpcg-p{i}");
            let work = self.spec.full_work_gflop * fraction;
            let workload = HpcgWorkload::with_work(Arc::clone(&self.perf), work, self.spec.nx);
            self.cluster.register_binary(&path, Arc::new(workload));
            levels.push((fraction, path, work));
        }
        let bin_hash = binary_hash(
            HpcgWorkload::with_work(Arc::clone(&self.perf), self.spec.full_work_gflop, self.spec.nx).binary_id(),
        );

        let mut samplers: Vec<IpmiService> = (0..self.cluster.node_count())
            .map(|i| IpmiService::new(i, self.spec.seed.wrapping_add(i as u64)))
            .collect();

        // Journal replay: the latest entry per (round, config) wins.
        let mut prior: HashMap<(u32, eco_sim_node::cpu::CpuConfig), (i64, TrialEntry)> = HashMap::new();
        for (id, e) in self.journal.entries()? {
            prior.insert((e.round, e.config), (id, e));
        }

        let telemetry = Arc::clone(&self.telemetry);
        let mut run_span = telemetry.root_span("campaign", "run");
        run_span.attr("campaign", &self.spec.name);
        run_span.attr("plan", plan.name());

        let interval = SimDuration::from_millis(self.spec.sample_interval_ms);
        let mut history: Vec<TrialResult> = Vec::new();
        let mut round = 0u32;
        let (mut trials_run, mut trials_skipped, mut trials_failed) = (0usize, 0usize, 0usize);
        let mut trial_seconds = 0.0f64;

        loop {
            let trials = plan.round(round, &history);
            if trials.is_empty() {
                if round == 0 {
                    return Err(CampaignError::InvalidSpec("the plan scheduled no trials".into()));
                }
                break;
            }
            telemetry.counter("campaign.rounds").add(1);

            let mut queue: VecDeque<(TrialSpec, Option<i64>)> = VecDeque::new();
            for t in &trials {
                match prior.get(&(t.round, t.config)) {
                    Some((_, e)) => match &e.status {
                        TrialStatus::Done { measurement } => {
                            history.push(TrialResult { spec: *t, outcome: Some(*measurement) });
                            trials_skipped += 1;
                            telemetry.counter("campaign.trials_skipped").add(1);
                        }
                        TrialStatus::Failed { .. } => {
                            history.push(TrialResult { spec: *t, outcome: None });
                            trials_skipped += 1;
                            telemetry.counter("campaign.trials_skipped").add(1);
                        }
                        TrialStatus::Started => {
                            // in flight at the crash: resubmit under the same entry
                            queue.push_back((*t, Some(prior[&(t.round, t.config)].0)));
                        }
                    },
                    None => queue.push_back((*t, None)),
                }
            }

            let mut active: Vec<ActiveTrial> = Vec::new();
            let mut ticks = 0u64;
            while !queue.is_empty() || !active.is_empty() {
                let capacity = (0..self.cluster.node_count()).filter(|&i| !self.cluster.is_drained(i)).count();
                if capacity == 0 && active.is_empty() {
                    return Err(CampaignError::NoUsableNodes);
                }
                while active.len() < capacity {
                    let Some((t, prior_id)) = queue.pop_front() else { break };
                    let entry_id = match prior_id {
                        Some(id) => id,
                        None => self.journal.append(&TrialEntry {
                            round: t.round,
                            config: t.config,
                            fraction: t.fraction,
                            status: TrialStatus::Started,
                        })?,
                    };
                    let (path, work) = level_for(&levels, t.fraction)?;
                    let script =
                        generate_hpcg_script(t.config.cores, t.config.frequency_khz, t.config.threads_per_core, path);
                    let job = self.cluster.sbatch(&script, "campaign")?;
                    let mut span = run_span.child("campaign", "trial");
                    span.attr("round", t.round);
                    span.attr("config", t.config);
                    span.attr("fraction", t.fraction);
                    span.attr("job", job);
                    telemetry.counter("campaign.trials_started").add(1);
                    active.push(ActiveTrial {
                        spec: t,
                        entry_id,
                        job,
                        span: Some(span),
                        samples: Vec::new(),
                        work_gflop: work,
                        node: None,
                    });
                }

                self.cluster.advance(interval);
                if let Some(hook) = opts.on_tick.as_mut() {
                    let jobs: Vec<ActiveJob> =
                        active.iter().map(|a| ActiveJob { job: a.job, node: a.node, spec: a.spec }).collect();
                    hook(self.cluster, &jobs);
                }

                let mut still = Vec::with_capacity(active.len());
                for mut a in active.drain(..) {
                    let (state, node) = {
                        let job = self.cluster.job(a.job)?;
                        (job.state, job.node)
                    };
                    match state {
                        JobState::Running => {
                            let n = node.expect("running job has a node");
                            if a.node.is_none() {
                                a.node = Some(n);
                                samplers[n].start_window(self.cluster.now());
                            }
                            a.samples.push(samplers[n].sample(self.cluster));
                            still.push(a);
                        }
                        JobState::Pending => still.push(a),
                        _ => {
                            let record = self.cluster.accounting().get(a.job).cloned().ok_or_else(|| {
                                CampaignError::Stalled(format!("terminal job {} has no accounting record", a.job))
                            })?;
                            let runtime_s = match (record.start_time, record.end_time) {
                                (Some(s), Some(e)) => (e - s).as_secs_f64(),
                                _ => 0.0,
                            };
                            trial_seconds += runtime_s;
                            if record.state == JobState::Completed && runtime_s > 0.0 {
                                let gflops = a.work_gflop / runtime_s;
                                let m = measure(
                                    &a.samples,
                                    runtime_s,
                                    gflops,
                                    record.system_energy_j,
                                    record.cpu_energy_j,
                                );
                                self.journal.update(
                                    a.entry_id,
                                    &TrialEntry {
                                        round: a.spec.round,
                                        config: a.spec.config,
                                        fraction: a.spec.fraction,
                                        status: TrialStatus::Done { measurement: m },
                                    },
                                )?;
                                if let Some(mut span) = a.span.take() {
                                    span.attr("gflops", format!("{:.3}", m.gflops));
                                    span.attr("gpw", format!("{:.5}", m.gflops_per_watt()));
                                    span.attr("runtime_s", format!("{runtime_s:.1}"));
                                    span.attr("samples", m.sample_count);
                                }
                                history.push(TrialResult { spec: a.spec, outcome: Some(m) });
                                trials_run += 1;
                                telemetry.counter("campaign.trials_completed").add(1);
                                telemetry.histogram("campaign.trial_runtime").record_us((runtime_s * 1e6) as u64);
                            } else {
                                let reason = format!("job ended {:?}", record.state);
                                self.journal.update(
                                    a.entry_id,
                                    &TrialEntry {
                                        round: a.spec.round,
                                        config: a.spec.config,
                                        fraction: a.spec.fraction,
                                        status: TrialStatus::Failed { reason: reason.clone() },
                                    },
                                )?;
                                if let Some(mut span) = a.span.take() {
                                    span.set_error(reason);
                                }
                                history.push(TrialResult { spec: a.spec, outcome: None });
                                trials_failed += 1;
                                telemetry.counter("campaign.trials_failed").add(1);
                            }
                            if let Some(max) = opts.max_trials {
                                if trials_run + trials_failed >= max {
                                    return Err(CampaignError::Interrupted { finished: trials_run + trials_failed });
                                }
                            }
                        }
                    }
                }
                active = still;

                ticks += 1;
                if ticks > MAX_TICKS_PER_ROUND {
                    return Err(CampaignError::Stalled(format!(
                        "round {round} made no progress in {MAX_TICKS_PER_ROUND} ticks"
                    )));
                }
            }
            round += 1;
        }

        // The final round's completions are the campaign's benchmarks.
        let last_round = round - 1;
        let winners: Vec<(eco_sim_node::cpu::CpuConfig, TrialMeasurement)> = history
            .iter()
            .filter(|t| t.spec.round == last_round)
            .filter_map(|t| t.outcome.map(|m| (t.spec.config, m)))
            .collect();
        if winners.is_empty() {
            return Err(CampaignError::NoSurvivors(last_round));
        }

        let (facts, sys_hash) = {
            let node = self.cluster.node(0);
            // the spec's node class widens the key: per-class campaigns
            // land per-class models in the same (u64, u64) key space
            let classed = classed_system_hash(system_hash(node.spec(), node.ram_gb()), &self.spec.node_class);
            (SystemFacts::from_node(node), classed)
        };
        let system_id = self.repository.save_system(&SystemEntry { id: -1, facts, system_hash: sys_hash })?;
        let mut benchmarks = Vec::new();
        for (config, m) in &winners {
            let mut b = Benchmark {
                id: -1,
                system_id,
                binary_hash: bin_hash,
                config: *config,
                gflops: m.gflops,
                runtime_s: m.runtime_s,
                avg_system_w: m.avg_system_w,
                avg_cpu_w: m.avg_cpu_w,
                avg_cpu_temp_c: m.avg_cpu_temp_c,
                system_energy_j: m.system_energy_j,
                cpu_energy_j: m.cpu_energy_j,
                sample_count: m.sample_count,
            };
            b.id = self.repository.save_benchmark(&b)?;
            benchmarks.push(b);
        }
        let mut best = benchmarks[0].clone();
        for b in &benchmarks[1..] {
            if b.gflops_per_watt() > best.gflops_per_watt() {
                best = b.clone();
            }
        }
        run_span.attr("rounds", round);
        run_span.attr("trials_run", trials_run);
        run_span.attr("trials_skipped", trials_skipped);
        run_span.attr("best", best.config);

        Ok(CampaignOutcome {
            plan: plan.name().to_string(),
            rounds: round,
            trials_run,
            trials_skipped,
            trials_failed,
            trial_seconds,
            best: best.config,
            benchmarks,
            system_id,
            binary_hash: bin_hash,
        })
    }
}

fn level_for(levels: &[(f64, String, f64)], fraction: f64) -> Result<(&str, f64)> {
    levels
        .iter()
        .find(|(f, _, _)| *f == fraction)
        .map(|(_, path, work)| (path.as_str(), *work))
        .ok_or_else(|| CampaignError::InvalidSpec(format!("no probe binary registered for fraction {fraction}")))
}

/// Turns a trial's IPMI samples into a measurement. Probes shorter than
/// two sampling intervals fall back to the accounting record's integrated
/// energy for the power figures.
fn measure(
    samples: &[EnergySample],
    runtime_s: f64,
    gflops: f64,
    record_system_j: f64,
    record_cpu_j: f64,
) -> TrialMeasurement {
    if samples.len() >= 2 {
        let n = samples.len() as f64;
        let avg = |f: fn(&EnergySample) -> f64| samples.iter().map(f).sum::<f64>() / n;
        let trapezoid = |f: fn(&EnergySample) -> f64| {
            samples.windows(2).map(|w| 0.5 * (f(&w[0]) + f(&w[1])) * (w[1].t_s - w[0].t_s)).sum::<f64>()
        };
        TrialMeasurement {
            gflops,
            runtime_s,
            avg_system_w: avg(|s| s.system_w),
            avg_cpu_w: avg(|s| s.cpu_w),
            avg_cpu_temp_c: avg(|s| s.cpu_temp_c),
            system_energy_j: trapezoid(|s| s.system_w),
            cpu_energy_j: trapezoid(|s| s.cpu_w),
            sample_count: samples.len(),
        }
    } else {
        let avg_system_w = if runtime_s > 0.0 { record_system_j / runtime_s } else { 0.0 };
        let avg_cpu_w = if runtime_s > 0.0 { record_cpu_j / runtime_s } else { 0.0 };
        TrialMeasurement {
            gflops,
            runtime_s,
            avg_system_w,
            avg_cpu_w,
            avg_cpu_temp_c: samples.first().map(|s| s.cpu_temp_c).unwrap_or(0.0),
            system_energy_j: record_system_j,
            cpu_energy_j: record_cpu_j,
            sample_count: samples.len(),
        }
    }
}
