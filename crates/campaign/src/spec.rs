//! The campaign specification — everything needed to (re)run a campaign
//! deterministically. The spec is journaled before the first trial so a
//! resumed campaign can verify it is continuing the same experiment.

use crate::error::{CampaignError, Result};
use crate::plan::PlanSpec;
use eco_sim_node::cpu::CpuConfig;
use serde::{Deserialize, Serialize};

/// A full campaign description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Human-readable campaign name.
    pub name: String,
    /// The configuration sweep, in canonical order.
    pub configs: Vec<CpuConfig>,
    /// The search strategy.
    pub plan: PlanSpec,
    /// Seed for the per-node BMC sensor noise — fixes the measurements.
    pub seed: u64,
    /// IPMI sampling cadence during trials (the paper samples every 2 s).
    pub sample_interval_ms: u64,
    /// Total work of a full-length trial, in GFLOP.
    pub full_work_gflop: f64,
    /// HPCG problem size (nx = ny = nz); part of the binary identity.
    pub nx: usize,
    /// Node class the campaign characterises. Widens the model's system
    /// hash via [`chronus::hash::classed_system_hash`], so a fleet can
    /// serve one model per hardware class. Empty (the serde default, for
    /// pre-class journals) keeps the legacy `(system, binary)` key.
    #[serde(default)]
    pub node_class: String,
}

impl CampaignSpec {
    /// Checks the spec is runnable.
    pub fn validate(&self) -> Result<()> {
        if self.configs.is_empty() {
            return Err(CampaignError::InvalidSpec("configuration sweep is empty".into()));
        }
        if self.sample_interval_ms == 0 {
            return Err(CampaignError::InvalidSpec("sample interval must be positive".into()));
        }
        if self.full_work_gflop <= 0.0 || self.full_work_gflop.is_nan() {
            return Err(CampaignError::InvalidSpec(format!(
                "full workload must be positive GFLOP, got {}",
                self.full_work_gflop
            )));
        }
        // building the plan validates its parameters (fraction ladder, eta)
        self.plan.build(&self.configs).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            name: "hpcg-sweep".into(),
            configs: vec![CpuConfig::new(32, 2_200_000, 1), CpuConfig::new(16, 1_500_000, 2)],
            plan: PlanSpec::default_halving(),
            seed: 42,
            sample_interval_ms: 2000,
            full_work_gflop: 250.0,
            nx: 104,
            node_class: String::new(),
        }
    }

    #[test]
    fn pre_class_journal_deserialises_with_the_default_class() {
        // a spec journaled before node classes existed
        let legacy = serde_json::to_string(&spec()).unwrap().replace(r##","node_class":"""##, "");
        assert!(!legacy.contains("node_class"));
        let s: CampaignSpec = serde_json::from_str(&legacy).unwrap();
        assert_eq!(s.node_class, "", "legacy journals land in the default class");
        s.validate().unwrap();
    }

    #[test]
    fn valid_spec_roundtrips() {
        let s = spec();
        s.validate().unwrap();
        let back: CampaignSpec = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        let mut s = spec();
        s.configs.clear();
        assert!(matches!(s.validate(), Err(CampaignError::InvalidSpec(_))));

        let mut s = spec();
        s.sample_interval_ms = 0;
        assert!(s.validate().is_err());

        let mut s = spec();
        s.full_work_gflop = -1.0;
        assert!(s.validate().is_err());

        let mut s = spec();
        s.plan = PlanSpec::SuccessiveHalving { fractions: vec![0.5], eta: 2 };
        assert!(s.validate().is_err(), "ladder not ending at 1.0 rejected via plan build");
    }
}
