//! Campaign plans — the strategy that decides which configurations run at
//! which probe length in each round.
//!
//! A [`CampaignPlan`] is a pure function from the trial history to the next
//! round's trials. It holds no mutable state, so a resumed campaign that
//! replays journaled results recomputes exactly the same rounds the crashed
//! run saw — the property the crash-resume tests rely on.

use crate::error::{CampaignError, Result};
use eco_sim_node::cpu::CpuConfig;
use serde::{Deserialize, Serialize};

/// One planned trial: a configuration run at a fraction of the full
/// benchmark workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialSpec {
    /// The round this trial belongs to.
    pub round: u32,
    /// The CPU configuration under test.
    pub config: CpuConfig,
    /// Fraction of the full workload to execute (1.0 = full benchmark).
    pub fraction: f64,
}

/// What a finished trial measured.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialMeasurement {
    /// Achieved GFLOP/s.
    pub gflops: f64,
    /// Wall runtime in simulated seconds.
    pub runtime_s: f64,
    /// Mean system power over the IPMI samples (W).
    pub avg_system_w: f64,
    /// Mean CPU package power (W).
    pub avg_cpu_w: f64,
    /// Mean CPU temperature (°C).
    pub avg_cpu_temp_c: f64,
    /// Integrated system energy (J).
    pub system_energy_j: f64,
    /// Integrated CPU energy (J).
    pub cpu_energy_j: f64,
    /// IPMI samples taken during the run.
    pub sample_count: usize,
}

impl TrialMeasurement {
    /// The selection metric: GFLOP/s per watt of average system power.
    pub fn gflops_per_watt(&self) -> f64 {
        if self.avg_system_w <= 0.0 {
            return 0.0;
        }
        self.gflops / self.avg_system_w
    }
}

/// A trial's outcome as the plan sees it: `None` means the trial failed
/// (node crash, cancellation) and must not advance to later rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialResult {
    /// The trial that ran.
    pub spec: TrialSpec,
    /// The measurement, if the job completed.
    pub outcome: Option<TrialMeasurement>,
}

/// A campaign strategy: given everything measured so far, which trials run
/// next? Returning an empty round ends the campaign.
pub trait CampaignPlan {
    /// Strategy name, for telemetry and status output.
    fn name(&self) -> &'static str;

    /// Trials for `round`, given the results of all previous rounds.
    fn round(&self, round: u32, history: &[TrialResult]) -> Vec<TrialSpec>;
}

/// The paper's exhaustive baseline: every configuration at full length in
/// a single round.
pub struct BruteForcePlan {
    configs: Vec<CpuConfig>,
}

impl BruteForcePlan {
    /// Sweeps every configuration once.
    pub fn new(configs: Vec<CpuConfig>) -> Self {
        BruteForcePlan { configs }
    }
}

impl CampaignPlan for BruteForcePlan {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn round(&self, round: u32, _history: &[TrialResult]) -> Vec<TrialSpec> {
        if round != 0 {
            return Vec::new();
        }
        self.configs.iter().map(|&config| TrialSpec { round: 0, config, fraction: 1.0 }).collect()
    }
}

/// Successive halving over short probe runs: round `r` runs the surviving
/// configurations at `fractions[r]` of the full workload, then keeps the
/// top `1/eta` by measured GFLOPS/W. The final fraction must be 1.0 so the
/// winners' measurements are real full-length benchmarks.
pub struct SuccessiveHalvingPlan {
    configs: Vec<CpuConfig>,
    fractions: Vec<f64>,
    eta: u32,
}

impl SuccessiveHalvingPlan {
    /// Builds a plan; rejects unusable fraction ladders.
    pub fn new(configs: Vec<CpuConfig>, fractions: Vec<f64>, eta: u32) -> Result<Self> {
        validate_fractions(&fractions)?;
        if eta < 2 {
            return Err(CampaignError::InvalidSpec(format!("halving factor eta must be at least 2, got {eta}")));
        }
        Ok(SuccessiveHalvingPlan { configs, fractions, eta })
    }

    /// Position of a configuration in the original sweep order, used to
    /// break GFLOPS/W ties deterministically.
    fn order_of(&self, config: &CpuConfig) -> usize {
        self.configs.iter().position(|c| c == config).unwrap_or(usize::MAX)
    }
}

impl CampaignPlan for SuccessiveHalvingPlan {
    fn name(&self) -> &'static str {
        "successive-halving"
    }

    fn round(&self, round: u32, history: &[TrialResult]) -> Vec<TrialSpec> {
        let r = round as usize;
        if r >= self.fractions.len() {
            return Vec::new();
        }
        let candidates: Vec<CpuConfig> = if r == 0 {
            self.configs.clone()
        } else {
            // survivors: top 1/eta of the previous round by measured GFLOPS/W
            let mut prev: Vec<(&TrialSpec, TrialMeasurement)> = history
                .iter()
                .filter(|t| t.spec.round == round - 1)
                .filter_map(|t| t.outcome.map(|m| (&t.spec, m)))
                .collect();
            if prev.is_empty() {
                return Vec::new();
            }
            prev.sort_by(|(sa, ma), (sb, mb)| {
                mb.gflops_per_watt()
                    .partial_cmp(&ma.gflops_per_watt())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| self.order_of(&sa.config).cmp(&self.order_of(&sb.config)))
            });
            let keep = (prev.len()).div_ceil(self.eta as usize).max(1);
            prev.truncate(keep);
            // re-sort survivors into sweep order so rounds are stable
            prev.sort_by_key(|(s, _)| self.order_of(&s.config));
            prev.into_iter().map(|(s, _)| s.config).collect()
        };
        candidates.into_iter().map(|config| TrialSpec { round, config, fraction: self.fractions[r] }).collect()
    }
}

fn validate_fractions(fractions: &[f64]) -> Result<()> {
    if fractions.is_empty() {
        return Err(CampaignError::InvalidSpec("probe fraction ladder is empty".into()));
    }
    for &f in fractions {
        if !(f > 0.0 && f <= 1.0) {
            return Err(CampaignError::InvalidSpec(format!("probe fraction {f} is outside (0, 1]")));
        }
    }
    if fractions.windows(2).any(|w| w[1] <= w[0]) {
        return Err(CampaignError::InvalidSpec("probe fractions must strictly increase".into()));
    }
    let last = *fractions.last().unwrap();
    if last != 1.0 {
        return Err(CampaignError::InvalidSpec(format!(
            "final probe fraction must be 1.0 (full benchmark), got {last}"
        )));
    }
    Ok(())
}

/// Which plan to run — the serializable descriptor stored in the journal
/// so a resumed campaign rebuilds exactly the strategy the original run
/// used.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanSpec {
    /// Every configuration at full length.
    BruteForce,
    /// Successive halving over a probe-fraction ladder.
    SuccessiveHalving {
        /// Workload fraction per round; strictly increasing, ends at 1.0.
        fractions: Vec<f64>,
        /// Keep the top `1/eta` survivors each round.
        eta: u32,
    },
}

impl PlanSpec {
    /// The default adaptive ladder: 10% and 30% probes, then full runs,
    /// keeping the top quarter each round.
    pub fn default_halving() -> Self {
        PlanSpec::SuccessiveHalving { fractions: vec![0.1, 0.3, 1.0], eta: 4 }
    }

    /// Strategy name without building the plan.
    pub fn name(&self) -> &'static str {
        match self {
            PlanSpec::BruteForce => "brute-force",
            PlanSpec::SuccessiveHalving { .. } => "successive-halving",
        }
    }

    /// The distinct workload fractions the plan can schedule, in round
    /// order — the engine registers one probe binary per fraction.
    pub fn fractions(&self) -> Vec<f64> {
        match self {
            PlanSpec::BruteForce => vec![1.0],
            PlanSpec::SuccessiveHalving { fractions, .. } => fractions.clone(),
        }
    }

    /// Instantiates the strategy over a configuration sweep.
    pub fn build(&self, configs: &[CpuConfig]) -> Result<Box<dyn CampaignPlan>> {
        match self {
            PlanSpec::BruteForce => Ok(Box::new(BruteForcePlan::new(configs.to_vec()))),
            PlanSpec::SuccessiveHalving { fractions, eta } => {
                Ok(Box::new(SuccessiveHalvingPlan::new(configs.to_vec(), fractions.clone(), *eta)?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<CpuConfig> {
        vec![
            CpuConfig::new(8, 1_500_000, 1),
            CpuConfig::new(16, 2_200_000, 1),
            CpuConfig::new(32, 2_200_000, 1),
            CpuConfig::new(32, 2_500_000, 2),
        ]
    }

    fn done(spec: TrialSpec, gflops: f64, watts: f64) -> TrialResult {
        TrialResult {
            spec,
            outcome: Some(TrialMeasurement {
                gflops,
                runtime_s: 10.0,
                avg_system_w: watts,
                avg_cpu_w: watts / 2.0,
                avg_cpu_temp_c: 50.0,
                system_energy_j: watts * 10.0,
                cpu_energy_j: watts * 5.0,
                sample_count: 5,
            }),
        }
    }

    #[test]
    fn brute_force_is_one_full_round() {
        let plan = BruteForcePlan::new(sweep());
        let r0 = plan.round(0, &[]);
        assert_eq!(r0.len(), 4);
        assert!(r0.iter().all(|t| t.fraction == 1.0 && t.round == 0));
        assert!(plan.round(1, &[]).is_empty());
    }

    #[test]
    fn halving_keeps_top_survivors_by_gpw() {
        let plan = SuccessiveHalvingPlan::new(sweep(), vec![0.1, 1.0], 2).unwrap();
        let r0 = plan.round(0, &[]);
        assert_eq!(r0.len(), 4);
        assert!(r0.iter().all(|t| t.fraction == 0.1));
        // best gpw: configs[2] (10/100) and configs[1] (8/100); the rest worse
        let history =
            vec![done(r0[0], 2.0, 100.0), done(r0[1], 8.0, 100.0), done(r0[2], 10.0, 100.0), done(r0[3], 4.0, 100.0)];
        let r1 = plan.round(1, &history);
        assert_eq!(r1.len(), 2, "keep ceil(4/2) = 2 survivors");
        assert!(r1.iter().all(|t| t.fraction == 1.0));
        let survivors: Vec<CpuConfig> = r1.iter().map(|t| t.config).collect();
        assert_eq!(survivors, vec![sweep()[1], sweep()[2]], "sweep order preserved");
        assert!(plan.round(2, &history).is_empty());
    }

    #[test]
    fn halving_drops_failed_trials_from_the_survivor_pool() {
        let plan = SuccessiveHalvingPlan::new(sweep(), vec![0.1, 1.0], 2).unwrap();
        let r0 = plan.round(0, &[]);
        let history = vec![
            TrialResult { spec: r0[0], outcome: None }, // crashed
            done(r0[1], 1.0, 100.0),
            done(r0[2], 9.0, 100.0),
            TrialResult { spec: r0[3], outcome: None }, // crashed
        ];
        let r1 = plan.round(1, &history);
        assert_eq!(r1.len(), 1, "ceil(2/2) = 1 survivor from the two completions");
        assert_eq!(r1[0].config, sweep()[2]);
    }

    #[test]
    fn halving_with_no_completions_ends_the_campaign() {
        let plan = SuccessiveHalvingPlan::new(sweep(), vec![0.1, 1.0], 2).unwrap();
        let r0 = plan.round(0, &[]);
        let history: Vec<TrialResult> = r0.iter().map(|&spec| TrialResult { spec, outcome: None }).collect();
        assert!(plan.round(1, &history).is_empty());
    }

    #[test]
    fn fraction_ladder_is_validated() {
        assert!(SuccessiveHalvingPlan::new(sweep(), vec![], 2).is_err());
        assert!(SuccessiveHalvingPlan::new(sweep(), vec![0.5, 0.4, 1.0], 2).is_err());
        assert!(SuccessiveHalvingPlan::new(sweep(), vec![0.1, 0.5], 2).is_err(), "must end at 1.0");
        assert!(SuccessiveHalvingPlan::new(sweep(), vec![0.0, 1.0], 2).is_err());
        assert!(SuccessiveHalvingPlan::new(sweep(), vec![0.1, 1.0], 1).is_err(), "eta >= 2");
        assert!(SuccessiveHalvingPlan::new(sweep(), vec![1.0], 2).is_ok());
    }

    #[test]
    fn plan_spec_roundtrips_and_builds() {
        let spec = PlanSpec::default_halving();
        let json = serde_json::to_string(&spec).unwrap();
        let back: PlanSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        assert_eq!(spec.name(), "successive-halving");
        assert_eq!(spec.fractions(), vec![0.1, 0.3, 1.0]);
        assert_eq!(spec.build(&sweep()).unwrap().name(), "successive-halving");
        assert_eq!(PlanSpec::BruteForce.build(&sweep()).unwrap().name(), "brute-force");
        assert_eq!(PlanSpec::BruteForce.fractions(), vec![1.0]);
    }

    #[test]
    fn ties_break_toward_sweep_order() {
        let plan = SuccessiveHalvingPlan::new(sweep(), vec![0.1, 1.0], 4).unwrap();
        let r0 = plan.round(0, &[]);
        let history: Vec<TrialResult> = r0.iter().map(|&s| done(s, 5.0, 100.0)).collect();
        let r1 = plan.round(1, &history);
        assert_eq!(r1.len(), 1);
        assert_eq!(r1[0].config, sweep()[0], "all tied: earliest sweep entry survives");
    }
}
