//! End-to-end campaign acceptance tests: the adaptive plan finds the
//! paper's optimum at a fraction of brute force's cost, a killed campaign
//! resumes without re-running finished trials, and the engine survives
//! the fault plans (node crash mid-trial, storage write failure).

use chronus::integrations::record_store::RecordStore;
use eco_campaign::{
    CampaignEngine, CampaignError, CampaignSpec, Journal, PlanSpec, RecordJournal, RunOptions, TrialStatus,
};
use eco_hpcg::PerfModel;
use eco_sim_node::cpu::{CpuConfig, CpuSpec};
use eco_sim_node::SimNode;
use eco_slurm_sim::Cluster;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The paper's Table 2 optimum: 32 cores at 2.2 GHz, no hyper-threading.
fn paper_optimum() -> CpuConfig {
    CpuConfig::new(32, 2_200_000, 1)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eco-campaign-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cluster(nodes: usize) -> Cluster {
    Cluster::new((0..nodes).map(|_| SimNode::sr650()).collect())
}

fn full_work() -> f64 {
    let perf = PerfModel::sr650();
    // scaled so a full-length standard-configuration run takes ~25 s of
    // simulated time (the paper's 18:29 run compressed for the test)
    perf.gflops(&perf.standard_config()) * 25.0
}

fn spec(name: &str, configs: Vec<CpuConfig>, plan: PlanSpec, seed: u64) -> CampaignSpec {
    CampaignSpec {
        name: name.into(),
        configs,
        plan,
        seed,
        sample_interval_ms: 2000,
        full_work_gflop: full_work(),
        nx: 104,
        node_class: String::new(),
    }
}

fn run_campaign(
    dir: &Path,
    spec: CampaignSpec,
    nodes: usize,
    opts: RunOptions<'_>,
) -> eco_campaign::Result<eco_campaign::CampaignOutcome> {
    let mut cluster = cluster(nodes);
    let mut journal = RecordJournal::open(dir.join("journal.db"))?;
    let mut repo = RecordStore::open(dir.join("repo.db")).unwrap();
    let perf = Arc::new(PerfModel::sr650());
    CampaignEngine::new(&mut cluster, &mut journal, &mut repo, perf, spec).run(opts)
}

/// Every (round, config) key may carry at most one Done entry; returns
/// the Done count.
fn assert_done_entries_unique(journal: &RecordJournal) -> usize {
    let mut seen = HashSet::new();
    let mut done = 0;
    for (_, e) in journal.entries().unwrap() {
        if matches!(e.status, TrialStatus::Done { .. }) {
            assert!(seen.insert((e.round, e.config)), "trial (round {}, {}) completed twice", e.round, e.config);
            done += 1;
        }
    }
    done
}

#[test]
fn adaptive_campaign_finds_paper_optimum_cheaper_than_brute_force() {
    let sweep = CpuSpec::epyc_7502p().all_configurations();
    assert_eq!(sweep.len(), 192, "the paper's full sweep");

    let dir_a = tmpdir("adaptive");
    let adaptive = run_campaign(
        &dir_a,
        spec("hpcg-adaptive", sweep.clone(), PlanSpec::default_halving(), 7),
        4,
        RunOptions::default(),
    )
    .unwrap();

    let dir_b = tmpdir("brute");
    let brute =
        run_campaign(&dir_b, spec("hpcg-brute", sweep.clone(), PlanSpec::BruteForce, 7), 4, RunOptions::default())
            .unwrap();

    // both strategies find the paper's optimum
    assert_eq!(adaptive.best, paper_optimum(), "adaptive best");
    assert_eq!(brute.best, paper_optimum(), "brute best");

    // brute force runs every configuration full length; the adaptive plan
    // full-benchmarks only the survivors of the probe rounds
    assert_eq!(brute.benchmarks.len(), 192);
    assert!(adaptive.benchmarks.len() <= 192 / 4, "adaptive ran {} full-length trials", adaptive.benchmarks.len());

    // and spends measurably less simulated job time doing it
    assert!(
        adaptive.trial_seconds < 0.5 * brute.trial_seconds,
        "adaptive {:.0}s vs brute {:.0}s",
        adaptive.trial_seconds,
        brute.trial_seconds
    );
    assert_eq!(adaptive.rounds, 3);
    assert_eq!(brute.rounds, 1);
    assert_eq!(adaptive.trials_failed + brute.trials_failed, 0);
}

#[test]
fn killed_campaign_resumes_without_rerunning_finished_trials() {
    let sweep = CpuSpec::epyc_7502p().all_configurations();
    let dir = tmpdir("resume");
    let s = spec("hpcg-resume", sweep, PlanSpec::default_halving(), 11);

    // "kill -9" after 40 finalized trials
    let err =
        run_campaign(&dir, s.clone(), 4, RunOptions { max_trials: Some(40), ..Default::default() }).unwrap_err();
    assert!(matches!(err, CampaignError::Interrupted { finished: 40 }), "{err}");

    let journal = RecordJournal::open(dir.join("journal.db")).unwrap();
    let done_before = assert_done_entries_unique(&journal);
    assert!(done_before >= 40, "the 40 finalized trials are journaled");
    let started_before = journal.entries().unwrap().len();
    drop(journal);

    // fresh process: new cluster, journal reopened from disk
    let resumed = run_campaign(&dir, s, 4, RunOptions::default()).unwrap();
    assert_eq!(resumed.trials_skipped, done_before, "every journaled completion was skipped, none re-ran");
    assert_eq!(resumed.best, paper_optimum());
    assert_eq!(resumed.trials_failed, 0);

    // the journal still holds exactly one Done per trial
    let journal = RecordJournal::open(dir.join("journal.db")).unwrap();
    let done_after = assert_done_entries_unique(&journal);
    assert_eq!(done_after, done_before + resumed.trials_run);
    assert!(journal.entries().unwrap().len() >= started_before);
}

#[test]
fn same_seed_replays_identically() {
    // a compact sweep keeps this fast; determinism must hold regardless
    let sweep: Vec<CpuConfig> = CpuSpec::epyc_7502p().all_configurations().into_iter().step_by(8).collect();
    let plan = PlanSpec::SuccessiveHalving { fractions: vec![0.2, 1.0], eta: 3 };

    let dir1 = tmpdir("det1");
    let out1 = run_campaign(&dir1, spec("det", sweep.clone(), plan.clone(), 99), 3, RunOptions::default()).unwrap();
    let dir2 = tmpdir("det2");
    let out2 = run_campaign(&dir2, spec("det", sweep, plan, 99), 3, RunOptions::default()).unwrap();

    assert_eq!(out1.best, out2.best);
    assert_eq!(out1.trials_run, out2.trials_run);
    assert_eq!(out1.trial_seconds, out2.trial_seconds, "virtual time is bit-identical");
    let j1 = RecordJournal::open(dir1.join("journal.db")).unwrap().entries().unwrap();
    let j2 = RecordJournal::open(dir2.join("journal.db")).unwrap().entries().unwrap();
    assert_eq!(j1, j2, "journals replay byte-for-byte");
}

#[test]
fn node_crash_mid_trial_fails_that_trial_and_campaign_continues() {
    let sweep: Vec<CpuConfig> = CpuSpec::epyc_7502p().all_configurations().into_iter().step_by(16).collect();
    assert_eq!(sweep.len(), 12);
    let dir = tmpdir("crash");

    let mut crashed: Option<CpuConfig> = None;
    let out = {
        let mut cl = cluster(4);
        let mut journal = RecordJournal::open(dir.join("journal.db")).unwrap();
        let mut repo = RecordStore::open(dir.join("repo.db")).unwrap();
        let perf = Arc::new(PerfModel::sr650());
        let mut engine = CampaignEngine::new(
            &mut cl,
            &mut journal,
            &mut repo,
            perf,
            spec("hpcg-crash", sweep.clone(), PlanSpec::BruteForce, 5),
        );
        engine
            .run(RunOptions {
                max_trials: None,
                on_tick: Some(Box::new(|cluster, active| {
                    if crashed.is_none() {
                        // node 3 dies while its first trial is running
                        if let Some(victim) = active.iter().find(|a| a.node == Some(3)) {
                            cluster.cancel(victim.job).unwrap();
                            cluster.set_drained(3, true);
                            crashed = Some(victim.spec.config);
                        }
                    }
                })),
            })
            .unwrap()
    };

    let victim = crashed.expect("a trial was crashed");
    assert_eq!(out.trials_failed, 1);
    assert_eq!(out.trials_run, sweep.len() - 1);
    assert_eq!(out.benchmarks.len(), sweep.len() - 1, "the crashed trial yields no benchmark");
    assert!(out.benchmarks.iter().all(|b| b.config != victim));

    let journal = RecordJournal::open(dir.join("journal.db")).unwrap();
    let failed: Vec<_> = journal
        .entries()
        .unwrap()
        .into_iter()
        .filter(|(_, e)| matches!(e.status, TrialStatus::Failed { .. }))
        .collect();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].1.config, victim);
}

#[test]
fn storage_write_failure_interrupts_and_resume_completes() {
    use eco_campaign::FlakyJournal;

    let sweep: Vec<CpuConfig> = CpuSpec::epyc_7502p().all_configurations().into_iter().step_by(12).collect();
    let dir = tmpdir("flaky");
    let s = spec("hpcg-flaky", sweep, PlanSpec::BruteForce, 23);

    // storage starts rejecting writes mid-campaign
    let err = {
        let mut cl = cluster(2);
        let mut journal = FlakyJournal::new(RecordJournal::open(dir.join("journal.db")).unwrap(), 9);
        let mut repo = RecordStore::open(dir.join("repo.db")).unwrap();
        let perf = Arc::new(PerfModel::sr650());
        CampaignEngine::new(&mut cl, &mut journal, &mut repo, perf, s.clone()).run(RunOptions::default()).unwrap_err()
    };
    assert!(matches!(err, CampaignError::Journal(_)), "{err}");

    // what reached disk before the fault is intact and resumable
    let journal = RecordJournal::open(dir.join("journal.db")).unwrap();
    let done_before = assert_done_entries_unique(&journal);
    drop(journal);

    let resumed = run_campaign(&dir, s.clone(), 2, RunOptions::default()).unwrap();
    assert_eq!(resumed.trials_skipped, done_before);
    let journal = RecordJournal::open(dir.join("journal.db")).unwrap();
    assert_eq!(assert_done_entries_unique(&journal), done_before + resumed.trials_run);

    // the faulted-then-resumed campaign picks the same winner a clean run does
    let clean_dir = tmpdir("flaky-clean");
    let clean = run_campaign(&clean_dir, s, 2, RunOptions::default()).unwrap();
    assert_eq!(resumed.best, clean.best);
}

#[test]
fn journal_spec_mismatch_is_rejected() {
    let sweep: Vec<CpuConfig> = CpuSpec::epyc_7502p().all_configurations().into_iter().step_by(48).collect();
    let dir = tmpdir("mismatch");
    run_campaign(&dir, spec("one", sweep.clone(), PlanSpec::BruteForce, 1), 1, RunOptions::default()).unwrap();
    // same journal, different campaign
    let err = run_campaign(&dir, spec("two", sweep, PlanSpec::BruteForce, 2), 1, RunOptions::default()).unwrap_err();
    assert!(matches!(err, CampaignError::InvalidSpec(_)), "{err}");
}
