//! Multi-seed campaign fault sweep: every seed takes one campaign
//! through a storage write failure, a resume, and a node crash
//! mid-trial, then audits the journal against a clean reference run.
//!
//! A violating seed dumps its journal (database + a readable rendering)
//! where CI can pick it up as an artifact; `CAMPAIGN_JOURNAL_DIR`
//! overrides the default `target/campaign-journals`. Replay one seed
//! locally with
//! `CAMPAIGN_SEED=<seed> cargo test -p eco-campaign --test fault_sweep -- --nocapture`.

use chronus::integrations::record_store::RecordStore;
use eco_campaign::{
    CampaignEngine, CampaignError, CampaignSpec, FlakyJournal, Journal, PlanSpec, RecordJournal, RunOptions,
    TrialStatus,
};
use eco_hpcg::PerfModel;
use eco_sim_node::cpu::CpuSpec;
use eco_sim_node::SimNode;
use eco_slurm_sim::Cluster;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SEEDS: [u64; 6] = [1, 5, 13, 29, 47, 71];
const NODES: usize = 4;

fn seeds() -> Vec<u64> {
    match std::env::var("CAMPAIGN_SEED") {
        Ok(s) => vec![s.parse().expect("CAMPAIGN_SEED must be a u64")],
        Err(_) => SEEDS.to_vec(),
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eco-campaign-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(seed: u64) -> CampaignSpec {
    let perf = PerfModel::sr650();
    CampaignSpec {
        name: format!("fault-sweep-{seed}"),
        // a compact but still multi-round sweep keeps each seed fast
        configs: CpuSpec::epyc_7502p().all_configurations().into_iter().step_by(6).collect(),
        plan: PlanSpec::default_halving(),
        seed,
        sample_interval_ms: 2000,
        full_work_gflop: perf.gflops(&perf.standard_config()) * 25.0,
        nx: 104,
        node_class: String::new(),
    }
}

fn run(dir: &Path, s: CampaignSpec, opts: RunOptions<'_>) -> eco_campaign::Result<eco_campaign::CampaignOutcome> {
    let mut cluster = Cluster::new((0..NODES).map(|_| SimNode::sr650()).collect());
    let mut journal = RecordJournal::open(dir.join("journal.db"))?;
    let mut repo = RecordStore::open(dir.join("repo.db")).unwrap();
    let perf = Arc::new(PerfModel::sr650());
    CampaignEngine::new(&mut cluster, &mut journal, &mut repo, perf, s).run(opts)
}

/// Counts Done entries, recording a violation for any (round, config)
/// completed twice.
fn unique_done(journal: &RecordJournal, violations: &mut Vec<String>) -> usize {
    let mut seen = HashSet::new();
    let mut done = 0;
    for (id, e) in journal.entries().unwrap() {
        if matches!(e.status, TrialStatus::Done { .. }) {
            if !seen.insert((e.round, e.config)) {
                violations.push(format!("entry {id}: trial (round {}, {}) completed twice", e.round, e.config));
            }
            done += 1;
        }
    }
    done
}

/// One seed's journey: storage write failure → resume under a node
/// crash → audit against a clean run. Returns accumulated violations.
fn check_seed(seed: u64, dir: &Path) -> Vec<String> {
    let mut violations = Vec::new();
    let s = spec(seed);

    // Phase 1: the journal starts rejecting writes mid-campaign.
    let fail_after = 4 + (seed % 13) as usize;
    let first = {
        let mut cluster = Cluster::new((0..NODES).map(|_| SimNode::sr650()).collect());
        let mut journal = FlakyJournal::new(RecordJournal::open(dir.join("journal.db")).unwrap(), fail_after);
        let mut repo = RecordStore::open(dir.join("repo.db")).unwrap();
        let perf = Arc::new(PerfModel::sr650());
        CampaignEngine::new(&mut cluster, &mut journal, &mut repo, perf, s.clone()).run(RunOptions::default())
    };
    match first {
        Err(CampaignError::Journal(_)) => {}
        Err(other) => violations.push(format!("write fault surfaced as {other} (wanted Journal)")),
        Ok(_) => violations.push("campaign completed through a failing journal".into()),
    }
    let journal = RecordJournal::open(dir.join("journal.db")).unwrap();
    let done_before = unique_done(&journal, &mut violations);
    drop(journal);

    // Phase 2: resume; partway through, one node dies mid-trial.
    let mut ticks = 0u64;
    let crash_at = 3 + seed % 7;
    let crash_node = (seed % NODES as u64) as usize;
    let mut crashed = false;
    let resumed = {
        let mut cluster = Cluster::new((0..NODES).map(|_| SimNode::sr650()).collect());
        let mut journal = RecordJournal::open(dir.join("journal.db")).unwrap();
        let mut repo = RecordStore::open(dir.join("repo.db")).unwrap();
        let perf = Arc::new(PerfModel::sr650());
        let mut engine = CampaignEngine::new(&mut cluster, &mut journal, &mut repo, perf, s.clone());
        engine.run(RunOptions {
            max_trials: None,
            on_tick: Some(Box::new(|cluster, active| {
                ticks += 1;
                if !crashed && ticks >= crash_at {
                    if let Some(victim) = active.iter().find(|a| a.node == Some(crash_node)) {
                        if cluster.cancel(victim.job).is_ok() {
                            cluster.set_drained(crash_node, true);
                            crashed = true;
                        }
                    }
                }
            })),
        })
    };
    let resumed = match resumed {
        Ok(out) => out,
        Err(e) => {
            violations.push(format!("resume under a node crash failed: {e}"));
            return violations;
        }
    };

    // Nothing journaled as Done may ever run again.
    if resumed.trials_skipped != done_before {
        violations.push(format!(
            "resume skipped {} trials but the journal held {done_before} completions",
            resumed.trials_skipped
        ));
    }
    if crashed && resumed.trials_failed != 1 {
        violations.push(format!("one crashed trial, {} recorded as failed", resumed.trials_failed));
    }
    let journal = RecordJournal::open(dir.join("journal.db")).unwrap();
    let done_after = unique_done(&journal, &mut violations);
    drop(journal);
    if done_after != done_before + resumed.trials_run {
        violations.push(format!(
            "journal holds {done_after} completions != {done_before} resumed + {} run",
            resumed.trials_run
        ));
    }

    // A clean, fault-free run of the same spec agrees on the winner
    // whenever the crash didn't eat a trial.
    let clean_dir = tmpdir(&format!("clean-{seed}"));
    let clean = run(&clean_dir, s, RunOptions::default()).unwrap();
    if resumed.trials_failed == 0 && resumed.best != clean.best {
        violations
            .push(format!("faulted-then-resumed run picked {} but a clean run picks {}", resumed.best, clean.best));
    }
    let _ = std::fs::remove_dir_all(&clean_dir);
    violations
}

/// Copies the failing seed's journal database and writes a readable
/// rendering of its entries where CI can pick both up as artifacts.
fn dump_journal(seed: u64, dir: &Path) -> String {
    let out = std::env::var("CAMPAIGN_JOURNAL_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/campaign-journals"));
    if let Err(e) = std::fs::create_dir_all(&out) {
        return format!("(dump failed: {e})");
    }
    let db = out.join(format!("fault-sweep-{seed}.db"));
    let _ = std::fs::copy(dir.join("journal.db"), &db);
    let mut text = String::new();
    if let Ok(journal) = RecordJournal::open(dir.join("journal.db")) {
        for (id, e) in journal.entries().unwrap_or_default() {
            let status = match &e.status {
                TrialStatus::Started => "started".to_string(),
                TrialStatus::Done { measurement } => format!(
                    "done gflops={:.1} gpw={:.4} runtime={:.1}s",
                    measurement.gflops,
                    measurement.gflops_per_watt(),
                    measurement.runtime_s
                ),
                TrialStatus::Failed { reason } => format!("failed: {reason}"),
            };
            text.push_str(&format!("#{id} round {} {} fraction {:.2} — {status}\n", e.round, e.config, e.fraction));
        }
    }
    let listing = out.join(format!("fault-sweep-{seed}.txt"));
    let _ = std::fs::write(&listing, text);
    db.display().to_string()
}

#[test]
fn multi_seed_fault_sweep() {
    for seed in seeds() {
        let dir = tmpdir(&format!("seed-{seed}"));
        let violations = check_seed(seed, &dir);
        if !violations.is_empty() {
            let dump = dump_journal(seed, &dir);
            panic!(
                "campaign fault-sweep violations (seed {seed}):\n  {}\n\njournal dump: {dump}\nreplay: \
                 CAMPAIGN_SEED={seed} cargo test -p eco-campaign --test fault_sweep -- --nocapture",
                violations.join("\n  ")
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
