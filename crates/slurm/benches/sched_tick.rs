//! Scheduler-tick microbenchmark + regression gate for the cluster-level
//! energy scheduler: one simulated second of a heterogeneous, power-capped,
//! co-scheduling cluster with a deep pending queue, measured as ticks/s.
//!
//! Every tick runs the full dispatch pass — priority sort, partition
//! filtering, EASY backfill, pack probing and power-cap admission (a
//! marginal-power estimate against every candidate node) over the whole
//! pending queue — so this is the `slurmctld` hot loop the PR's
//! facility-cap admission made heavier, pinned as a number.
//!
//! Self-measuring harness (not criterion), same contract as the chronusd
//! benches:
//!
//! 1. **persist** a machine-readable result (`BENCH_pr8.json` at the
//!    repo root by default, `BENCH_OUT` to override) so the repo carries
//!    its scheduling-throughput trajectory in-tree;
//! 2. **gate**: when `BENCH_BASELINE` points at a previous result file,
//!    exit non-zero if ticks/s at any measured queue depth drops by more
//!    than 10% — the CI bench gate.
//!
//! Run with `cargo bench -p eco-slurm-sim --bench sched_tick`.

use std::sync::Arc;
use std::time::Instant;

use eco_hpcg::workload::{ScalingKind, SyntheticWorkload};
use eco_sim_node::class::NodeClass;
use eco_sim_node::clock::SimDuration;
use eco_slurm_sim::{Cluster, CoSchedulePolicy, JobDescriptor};
use serde::{Deserialize, Serialize};

/// Pending-queue depths measured, each its own cell.
const QUEUE_DEPTHS: [usize; 3] = [16, 64, 256];

/// Simulated seconds (= scheduler passes) per cell.
const TICKS_PER_CELL: u64 = 4_000;

#[derive(Debug, Serialize, Deserialize)]
struct Cell {
    queue_depth: usize,
    ticks_per_sec: u64,
    ticks: u64,
    wall_ms: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchResult {
    bench: String,
    nodes: usize,
    cells: Vec<Cell>,
}

/// A two-class capped cluster whose running set never drains during the
/// measurement: the resident jobs run for simulated weeks, so every tick
/// pays the full pending-queue scheduling pass (the steady state of a
/// saturated facility, not the ramp).
fn loaded_cluster(queue_depth: usize) -> Cluster {
    let classes = vec![(NodeClass::sr650(), 2), (NodeClass::dense64(), 2)];
    let mut idle_w = 0.0;
    let mut max_w = 0.0;
    let mut headroom_w = 0.0;
    for (class, count) in &classes {
        idle_w += class.idle_system_w() * *count as f64;
        max_w += class.max_system_w() * *count as f64;
        headroom_w += class.max_fan_w() * *count as f64;
    }
    let mut cluster = Cluster::heterogeneous(&classes);
    // effectively never-ending residents: the queue stays at full depth
    cluster.register_binary(
        "/bin/dgemm",
        Arc::new(SyntheticWorkload::new("dgemm", ScalingKind::ComputeBound, 1e12, 1.0)),
    );
    cluster.register_binary(
        "/bin/stream",
        Arc::new(SyntheticWorkload::new("stream", ScalingKind::MemoryBound, 1e12, 1.0)),
    );
    // a cap tight enough that most of the queue stays power-blocked:
    // every pass prices marginal power for every blocked job
    cluster.set_power_cap(Some(idle_w + headroom_w + 0.5 * (max_w - idle_w)));
    cluster.set_power_headroom(headroom_w);
    cluster.set_co_schedule(CoSchedulePolicy::Pack);
    for i in 0..queue_depth {
        let class = &classes[i % classes.len()].0;
        let mut d = JobDescriptor::new(
            &format!("j{i}"),
            ["alice", "bob", "carol"][i % 3],
            if i % 3 == 0 { "/bin/stream" } else { "/bin/dgemm" },
        );
        d.partition = Some(class.name.clone());
        d.num_tasks = class.spec.cores;
        cluster.submit(d).expect("bench submission accepted");
    }
    cluster
}

fn out_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("BENCH_OUT") {
        return p.into();
    }
    // repo root: crates/slurm/../..
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_pr8.json")
}

fn main() {
    let mut cells = Vec::new();
    for &depth in &QUEUE_DEPTHS {
        let mut cluster = loaded_cluster(depth);
        // settle dispatch + thermal ramp outside the measurement
        cluster.advance(SimDuration::from_secs(60));
        let t0 = Instant::now();
        for _ in 0..TICKS_PER_CELL {
            cluster.advance(SimDuration::from_secs(1));
        }
        let wall = t0.elapsed();
        let ticks_per_sec = (TICKS_PER_CELL as f64 / wall.as_secs_f64()) as u64;
        println!("queue {depth:>4}: {ticks_per_sec:>8} ticks/s ({TICKS_PER_CELL} simulated seconds in {wall:?})");
        cells.push(Cell {
            queue_depth: depth,
            ticks_per_sec,
            ticks: TICKS_PER_CELL,
            wall_ms: wall.as_millis() as u64,
        });
    }

    let result = BenchResult { bench: "sched_tick".to_string(), nodes: 4, cells };
    let path = out_path();
    std::fs::write(&path, serde_json::to_string_pretty(&result).expect("result serializes"))
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("persisted {}", path.display());

    let mut failures = Vec::new();
    // acceptance floor: even at the deepest queue, a simulated second of
    // scheduling must cost under ~3 real milliseconds on any runner
    if let Some(worst) = result.cells.iter().map(|c| c.ticks_per_sec).min() {
        if worst < 400 {
            failures.push(format!("scheduler tick rate {worst} ticks/s is under the 400 floor"));
        }
    }

    if let Ok(baseline_path) = std::env::var("BENCH_BASELINE") {
        let raw = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading BENCH_BASELINE {baseline_path}: {e}"));
        let baseline: BenchResult =
            serde_json::from_str(&raw).unwrap_or_else(|e| panic!("parsing BENCH_BASELINE {baseline_path}: {e}"));
        for cell in &result.cells {
            let Some(base) = baseline.cells.iter().find(|b| b.queue_depth == cell.queue_depth) else { continue };
            println!(
                "gate queue {}: {} vs baseline {} ticks/s",
                cell.queue_depth, cell.ticks_per_sec, base.ticks_per_sec
            );
            if cell.ticks_per_sec * 10 < base.ticks_per_sec * 9 {
                failures.push(format!(
                    "queue {} tick rate regressed >10%: {} vs baseline {} ticks/s",
                    cell.queue_depth, cell.ticks_per_sec, base.ticks_per_sec
                ));
            }
        }
    }

    if !failures.is_empty() {
        eprintln!("bench gate FAILED:\n  {}", failures.join("\n  "));
        std::process::exit(1);
    }
    println!("bench gate passed");
}
