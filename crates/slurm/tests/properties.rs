//! Property-based tests for the Slurm simulator: scheduler safety and
//! liveness invariants under random job mixes, and script round-trips.

use eco_hpcg::workload::{ScalingKind, SyntheticWorkload};
use eco_sim_node::clock::SimDuration;
use eco_sim_node::SimNode;
use eco_slurm_sim::script::{generate_hpcg_script, parse_script};
use eco_slurm_sim::{Cluster, JobDescriptor, JobState, Qos};
use proptest::prelude::*;
use std::sync::Arc;

/// A random single- or multi-node job request.
#[derive(Debug, Clone)]
struct JobReq {
    tasks: u32,
    nodes: u32,
    tpc: u32,
    freq: Option<u64>,
    qos: Qos,
    gflop: f64,
    limit_s: Option<u64>,
}

fn arb_job(max_nodes: u32) -> impl Strategy<Value = JobReq> {
    (
        1u32..=32,
        1u32..=max_nodes,
        1u32..=2,
        prop::option::of(prop::sample::select(vec![1_500_000u64, 2_200_000, 2_500_000])),
        prop::sample::select(vec![Qos::Low, Qos::Normal, Qos::High]),
        10.0f64..2000.0,
        prop::option::of(1u64..60),
    )
        .prop_map(|(tasks, nodes, tpc, freq, qos, gflop, limit_s)| JobReq {
            tasks,
            nodes,
            tpc,
            freq,
            qos,
            gflop,
            limit_s,
        })
}

fn build_cluster(nodes: usize) -> Cluster {
    let mut c = Cluster::new((0..nodes).map(|_| SimNode::sr650()).collect());
    c.register_binary("/bin/app", Arc::new(SyntheticWorkload::new("app", ScalingKind::ComputeBound, 1.0, 1.0)));
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Liveness + safety: every submitted job reaches a terminal state,
    /// every completion has an accounting record with consistent times,
    /// and no node ever runs two jobs at once (enforced structurally, but
    /// verified through sinfo counts).
    #[test]
    fn random_job_mixes_drain(jobs in prop::collection::vec(arb_job(3), 1..12), nodes in 1usize..4) {
        let mut cluster = build_cluster(nodes);
        let mut ids = Vec::new();
        for (i, j) in jobs.iter().enumerate() {
            let mut d = JobDescriptor::new(&format!("j{i}"), if i % 2 == 0 { "alice" } else { "bob" }, "/bin/app");
            d.num_tasks = j.tasks;
            d.num_nodes = j.nodes.min(nodes as u32);
            d.threads_per_cpu = j.tpc;
            d.max_frequency_khz = j.freq;
            d.qos = j.qos;
            d.time_limit = j.limit_s.map(SimDuration::from_secs);
            // rescale work so every job finishes within minutes
            let _ = j.gflop;
            ids.push(cluster.submit(d).unwrap());
        }
        // allocated nodes never exceed node count while draining
        for _ in 0..200 {
            if cluster.is_idle() {
                break;
            }
            cluster.advance(SimDuration::from_secs(5));
            let alloc = cluster.sinfo().matches("alloc").count();
            prop_assert!(alloc <= nodes, "{alloc} allocations on {nodes} nodes");
        }
        prop_assert!(cluster.run_until_idle(SimDuration::from_secs(3600)), "cluster failed to drain");
        for id in ids {
            let job = cluster.job(id).unwrap();
            prop_assert!(job.state.is_terminal(), "job {id} in {:?}", job.state);
            let rec = cluster.accounting().get(id).unwrap();
            prop_assert_eq!(rec.state, job.state);
            if let (Some(s), Some(e)) = (rec.start_time, rec.end_time) {
                prop_assert!(s <= e);
                prop_assert!(rec.submit_time <= s);
                prop_assert!(rec.system_energy_j >= 0.0);
                prop_assert!(rec.cpu_energy_j <= rec.system_energy_j);
            }
            // timeout only if a limit existed
            if rec.state == JobState::Timeout {
                prop_assert!(job.descriptor.time_limit.is_some());
            }
        }
        // exactly one record per job
        prop_assert_eq!(cluster.accounting().records().len(), jobs.len());
    }

    /// The Chronus-generated sbatch script round-trips every configuration.
    #[test]
    fn script_roundtrip(cores in 1u32..=32,
                        freq in prop::sample::select(vec![1_500_000u64, 2_200_000, 2_500_000]),
                        tpc in 1u32..=2) {
        let script = generate_hpcg_script(cores, freq, tpc, "/opt/hpcg/bin/xhpcg");
        let d = parse_script(&script, "user").unwrap();
        prop_assert_eq!(d.num_tasks, cores);
        prop_assert_eq!(d.min_frequency_khz, Some(freq));
        prop_assert_eq!(d.max_frequency_khz, Some(freq));
        prop_assert_eq!(d.threads_per_cpu, tpc);
        prop_assert_eq!(d.num_nodes, 1);
        prop_assert_eq!(d.binary_path.as_str(), "/opt/hpcg/bin/xhpcg");
    }

    /// Resolve + apply round-trip: applying a config to a descriptor makes
    /// it resolve to exactly that config.
    #[test]
    fn apply_resolve_roundtrip(cores in 1u32..=32,
                               freq in prop::sample::select(vec![1_500_000u64, 2_200_000, 2_500_000]),
                               tpc in 1u32..=2) {
        use eco_sim_node::cpu::{CpuConfig, CpuSpec};
        let config = CpuConfig::new(cores, freq, tpc);
        let mut d = JobDescriptor::new("j", "u", "/bin/app");
        d.apply_config(&config);
        prop_assert_eq!(d.resolve_config(&CpuSpec::epyc_7502p()), config);
    }

    /// Power-cap admission invariant: right after any scheduling decision,
    /// the estimated aggregate draw respects the cap (with slack for the
    /// fan-power drift that accrues after admission).
    #[test]
    fn power_cap_respected_at_admission(jobs in prop::collection::vec(arb_job(1), 1..10),
                                        nodes in 1usize..4,
                                        headroom_w in 100.0f64..700.0) {
        let mut cluster = build_cluster(nodes);
        // idle nodes draw power regardless; the cap constrains admissions
        // above that floor, so express it as idle + head-room (a cap below
        // idle would rightly starve everything)
        let idle_floor = cluster.estimated_power_w();
        let cap_w = idle_floor + headroom_w;
        cluster.set_power_cap(Some(cap_w));
        let limit = cap_w + 30.0; // slack for fan drift after admission
        for (i, j) in jobs.iter().enumerate() {
            let mut d = JobDescriptor::new(&format!("j{i}"), "u", "/bin/app");
            d.num_tasks = j.tasks;
            d.threads_per_cpu = j.tpc;
            d.max_frequency_khz = j.freq;
            let _ = cluster.submit(d);
            prop_assert!(cluster.estimated_power_w() <= limit,
                "estimate {} over limit {limit}", cluster.estimated_power_w());
        }
        // the head-room admits at least one job at a time, so the cap
        // delays but never deadlocks and the cluster drains
        prop_assert!(cluster.run_until_idle(SimDuration::from_secs(7200)));
    }

    /// Facility-cap conservation on heterogeneous clusters: for any class
    /// mix, cap tightness and job mix, the *instantaneous* (telemetry)
    /// cluster draw never exceeds the cap at any simulation tick, as long
    /// as admission holds back the classes' published fan-drift headroom —
    /// and the starvation guard still drains every job to a terminal
    /// state. Packing is enabled so the invariant also covers shared-node
    /// marginal-power accounting.
    #[test]
    fn instantaneous_power_never_crosses_the_cap(
        sr_count in 1usize..=2,
        dense_count in 1usize..=2,
        cap_fraction in 0.5f64..=0.9,
        jobs in prop::collection::vec(
            // (class pick, tasks, DVFS step, memory-bound?)
            (0usize..2, 1u32..=64, 0usize..3, any::<bool>()), 1..10),
    ) {
        use eco_sim_node::class::NodeClass;
        use eco_slurm_sim::CoSchedulePolicy;

        let classes = vec![(NodeClass::sr650(), sr_count), (NodeClass::dense64(), dense_count)];
        let mut idle_w = 0.0;
        let mut max_w = 0.0;
        let mut headroom_w = 0.0;
        for (class, count) in &classes {
            idle_w += class.idle_system_w() * *count as f64;
            max_w += class.max_system_w() * *count as f64;
            headroom_w += class.max_fan_w() * *count as f64;
        }
        let cap_w = idle_w + headroom_w + cap_fraction * (max_w - idle_w);

        let mut cluster = Cluster::heterogeneous(&classes);
        cluster.register_binary("/bin/dgemm",
            Arc::new(SyntheticWorkload::new("dgemm", ScalingKind::ComputeBound, 400.0, 1.0)));
        cluster.register_binary("/bin/stream",
            Arc::new(SyntheticWorkload::new("stream", ScalingKind::MemoryBound, 60.0, 1.0)));
        cluster.set_power_cap(Some(cap_w));
        cluster.set_power_headroom(headroom_w);
        cluster.set_co_schedule(CoSchedulePolicy::Pack);
        cluster.set_starvation_guard(Some(SimDuration::from_secs(600)));

        let mut ids = Vec::new();
        for (i, &(class_idx, tasks, step, memory_bound)) in jobs.iter().enumerate() {
            let (class, _) = &classes[class_idx];
            let mut d = JobDescriptor::new(
                &format!("j{i}"), "u", if memory_bound { "/bin/stream" } else { "/bin/dgemm" });
            d.partition = Some(class.name.clone());
            d.num_tasks = tasks.min(class.spec.cores);
            d.max_frequency_khz = Some(class.spec.frequencies_khz[step % class.spec.frequencies_khz.len()]);
            ids.push(cluster.submit(d).unwrap());
            prop_assert!(cluster.instantaneous_power_w() <= cap_w,
                "draw {} over cap {cap_w} right after submit #{i}", cluster.instantaneous_power_w());
        }
        for _ in 0..1800 {
            if cluster.is_idle() {
                break;
            }
            cluster.advance(SimDuration::from_secs(2));
            prop_assert!(cluster.instantaneous_power_w() <= cap_w,
                "draw {} over cap {cap_w} at t={}", cluster.instantaneous_power_w(), cluster.now());
        }
        prop_assert!(cluster.is_idle(), "capped heterogeneous cluster failed to drain");
        // every dispatched job ran inside its own partition's node range
        for (&id, &(class_idx, ..)) in ids.iter().zip(jobs.iter()) {
            let job = cluster.job(id).unwrap();
            prop_assert!(job.state.is_terminal(), "job {id} in {:?}", job.state);
            if let Some(node) = job.node {
                let partition = cluster.partitions().resolve(Some(&classes[class_idx].0.name)).unwrap();
                prop_assert!(partition.contains(node),
                    "job {id} of class '{}' ran on node {node} outside its partition", classes[class_idx].0.name);
            }
        }
    }

    /// Cancelling a random subset still leaves the cluster consistent.
    #[test]
    fn cancel_subset_consistent(n in 2usize..8, cancel_mask in 0u32..256) {
        let mut cluster = build_cluster(1);
        let mut ids = Vec::new();
        for i in 0..n {
            let mut d = JobDescriptor::new(&format!("j{i}"), "u", "/bin/app");
            d.num_tasks = 32;
            ids.push(cluster.submit(d).unwrap());
        }
        for (i, &id) in ids.iter().enumerate() {
            if cancel_mask & (1 << i) != 0 {
                // job may already have completed; both outcomes are legal
                let _ = cluster.cancel(id);
            }
        }
        prop_assert!(cluster.run_until_idle(SimDuration::from_secs(3600)));
        for &id in &ids {
            prop_assert!(cluster.job(id).unwrap().state.is_terminal());
        }
        prop_assert_eq!(cluster.accounting().records().len(), n);
    }
}
