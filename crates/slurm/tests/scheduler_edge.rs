//! Scheduler edge cases: priority ties, partition node-limit
//! saturation, and cancellation of jobs that never started.

use std::sync::Arc;

use eco_hpcg::workload::{ScalingKind, SyntheticWorkload};
use eco_sim_node::clock::SimDuration;
use eco_sim_node::SimNode;
use eco_slurm_sim::{Cluster, JobState, Partition, SlurmError};

const BIN: &str = "/opt/bin/work";

fn script(extra: &str) -> String {
    format!("#!/bin/bash\n#SBATCH --ntasks=4\n{extra}\nsrun {BIN}\n")
}

fn cluster(nodes: usize) -> Cluster {
    let mut c = Cluster::new((0..nodes).map(|_| SimNode::sr650()).collect());
    c.register_binary(BIN, Arc::new(SyntheticWorkload::new("work", ScalingKind::ComputeBound, 10.0, 1.0)));
    c
}

/// Jobs with identical priority factors (same user, same size, same
/// instant) must start in submission order — the scheduler's documented
/// tie-break — not in map-iteration or reverse order.
#[test]
fn priority_ties_resolve_by_submission_order() {
    let mut c = cluster(1);
    let first = c.sbatch(&script(""), "alice").unwrap();
    let second = c.sbatch(&script(""), "alice").unwrap();
    let third = c.sbatch(&script(""), "alice").unwrap();

    // one node: the head of the tie starts, the rest wait
    assert_eq!(c.job(first).unwrap().state, JobState::Running);
    assert_eq!(c.job(second).unwrap().state, JobState::Pending);
    assert_eq!(c.job(third).unwrap().state, JobState::Pending);

    assert!(c.run_until_idle(SimDuration::from_mins(60)), "three short jobs must drain");
    let starts: Vec<_> = [first, second, third]
        .iter()
        .map(|&id| {
            let job = c.job(id).unwrap();
            assert_eq!(job.state, JobState::Completed, "job {id} must complete");
            job.start_time.expect("completed job has a start time")
        })
        .collect();
    assert!(starts[0] < starts[1] && starts[1] < starts[2], "tie broken by submit order, got starts {starts:?}");
}

/// A saturated partition queues its jobs even while nodes outside the
/// partition sit idle; jobs that outright exceed the partition's node
/// count are rejected at submit.
#[test]
fn partition_node_limit_saturates_independently_of_the_cluster() {
    let mut c = cluster(2);
    c.add_partition(Partition {
        name: "small".to_string(),
        nodes: vec![0],
        max_time: None,
        priority_bonus: 0.0,
        is_default: false,
        node_class: None,
    });

    // more nodes than the partition has: refused up front, not queued forever
    let err = c.sbatch(&script("#SBATCH --nodes=2\n#SBATCH --partition=small"), "alice").unwrap_err();
    assert!(matches!(err, SlurmError::Unsatisfiable(_)), "got {err:?}");

    let first = c.sbatch(&script("#SBATCH --partition=small"), "alice").unwrap();
    let second = c.sbatch(&script("#SBATCH --partition=small"), "bob").unwrap();

    assert_eq!(c.job(first).unwrap().state, JobState::Running);
    assert_eq!(c.job(first).unwrap().node, Some(0), "partition 'small' only owns node 0");
    assert_eq!(
        c.job(second).unwrap().state,
        JobState::Pending,
        "node 1 is idle but outside the partition; the job must wait"
    );

    assert!(c.run_until_idle(SimDuration::from_mins(60)), "queued partition jobs must drain");
    assert_eq!(c.job(second).unwrap().node, Some(0), "the waiter also lands on the partition's only node");
    let first_end = c.job(first).unwrap().end_time.unwrap();
    let second_start = c.job(second).unwrap().start_time.unwrap();
    assert!(second_start >= first_end, "saturation means strictly sequential use of node 0");
}

/// Cancelling a job that never started must remove it from the queue,
/// mark it terminal with an end time, and refuse double-cancellation.
#[test]
fn cancel_while_pending_is_terminal_and_final() {
    let mut c = cluster(1);
    let running = c.sbatch(&script(""), "alice").unwrap();
    let waiting = c.sbatch(&script(""), "alice").unwrap();
    assert_eq!(c.job(waiting).unwrap().state, JobState::Pending);

    c.cancel(waiting).expect("cancelling a pending job succeeds");
    let job = c.job(waiting).unwrap();
    assert_eq!(job.state, JobState::Cancelled);
    assert!(job.start_time.is_none(), "a cancelled-while-pending job never started");
    assert!(job.end_time.is_some(), "termination is stamped");
    assert!(!c.squeue().contains(&format!("{waiting}")), "cancelled job leaves the queue listing");

    // terminal states are final
    let err = c.cancel(waiting).unwrap_err();
    assert!(matches!(err, SlurmError::InvalidState { .. }), "got {err:?}");

    // the cancellation must not disturb the running job or the drain
    assert!(c.run_until_idle(SimDuration::from_mins(60)), "remaining job must drain");
    assert_eq!(c.job(running).unwrap().state, JobState::Completed);
}
