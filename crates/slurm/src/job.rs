//! Job model: the simulator's equivalent of Slurm's `job_desc_msg_t` and
//! job record structures.
//!
//! [`JobDescriptor`] carries exactly the fields the paper's plugin rewrites
//! (§4.2.2): `num_tasks`, `threads_per_cpu`, `min_frequency`,
//! `max_frequency` — plus the submission metadata the scheduler needs.

use eco_sim_node::clock::{SimDuration, SimTime};
use eco_sim_node::cpu::{CpuConfig, CpuSpec, FreqKhz};
use serde::{Deserialize, Serialize};

/// A job identifier, assigned at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Slurm job lifecycle states (the subset the simulator uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Queued, waiting for resources.
    Pending,
    /// Executing on a node.
    Running,
    /// Finished successfully.
    Completed,
    /// Killed for exceeding its time limit.
    Timeout,
    /// Cancelled by the user or an operator.
    Cancelled,
    /// Rejected or failed at/after submission.
    Failed,
}

impl JobState {
    /// Whether the job has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Pending | JobState::Running)
    }

    /// The short code `squeue` prints.
    pub fn code(self) -> &'static str {
        match self {
            JobState::Pending => "PD",
            JobState::Running => "R",
            JobState::Completed => "CD",
            JobState::Timeout => "TO",
            JobState::Cancelled => "CA",
            JobState::Failed => "F",
        }
    }
}

/// Quality-of-service level, one input to the multifactor priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Qos {
    /// Default service level.
    #[default]
    Normal,
    /// Elevated priority.
    High,
    /// Scavenger class.
    Low,
}

impl Qos {
    /// The priority factor contributed by the QoS level.
    pub fn factor(self) -> f64 {
        match self {
            Qos::High => 1.0,
            Qos::Normal => 0.5,
            Qos::Low => 0.0,
        }
    }
}

/// The mutable job description a submit plugin may rewrite — the
/// simulator's `job_desc_msg_t`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobDescriptor {
    /// Job name (`--job-name`).
    pub name: String,
    /// Submitting user.
    pub user: String,
    /// Nodes requested (`--nodes`); the paper's plugin targets 1.
    pub num_nodes: u32,
    /// Tasks requested (`--ntasks`) — the core count on a single node.
    pub num_tasks: u32,
    /// Threads per core (`srun --ntasks-per-core`); 2 enables SMT.
    pub threads_per_cpu: u32,
    /// Minimum CPU frequency (`--cpu-freq` low bound), kHz.
    pub min_frequency_khz: Option<FreqKhz>,
    /// Maximum CPU frequency (`--cpu-freq` high bound), kHz.
    pub max_frequency_khz: Option<FreqKhz>,
    /// Free-text comment (`--comment`); `"chronus"` opts in to the eco
    /// plugin.
    pub comment: String,
    /// Wall-clock limit (`--time`).
    pub time_limit: Option<SimDuration>,
    /// Quality of service (`--qos`).
    pub qos: Qos,
    /// Path of the executable the job runs (the plugin hashes its
    /// contents).
    pub binary_path: String,
    /// Earliest start time (`--begin`), used by the green-window extension.
    pub begin_time: Option<SimTime>,
    /// Partition requested (`--partition`); `None` uses the default.
    pub partition: Option<String>,
}

impl JobDescriptor {
    /// A descriptor with Slurm-like defaults: 1 node, 1 task, no frequency
    /// constraint, normal QoS.
    pub fn new(name: &str, user: &str, binary_path: &str) -> Self {
        JobDescriptor {
            name: name.to_string(),
            user: user.to_string(),
            num_nodes: 1,
            num_tasks: 1,
            threads_per_cpu: 1,
            min_frequency_khz: None,
            max_frequency_khz: None,
            comment: String::new(),
            time_limit: None,
            qos: Qos::Normal,
            binary_path: binary_path.to_string(),
            begin_time: None,
            partition: None,
        }
    }

    /// The CPU configuration this descriptor resolves to on a node: the
    /// requested tasks/threads, at the requested maximum frequency or the
    /// node's performance-governor default.
    pub fn resolve_config(&self, spec: &CpuSpec) -> CpuConfig {
        let cores = self.num_tasks.clamp(1, spec.cores);
        let freq = self.max_frequency_khz.map(|f| spec.snap_frequency(f)).unwrap_or_else(|| spec.max_frequency());
        let tpc = self.threads_per_cpu.clamp(1, spec.threads_per_core);
        CpuConfig { cores, frequency_khz: freq, threads_per_core: tpc }
    }

    /// Applies an energy-efficient configuration to the descriptor, the way
    /// `job_submit_eco` mutates `job_desc` (§4.2.2, Listing 4).
    pub fn apply_config(&mut self, config: &CpuConfig) {
        self.num_tasks = config.cores;
        self.threads_per_cpu = config.threads_per_core;
        self.min_frequency_khz = Some(config.frequency_khz);
        self.max_frequency_khz = Some(config.frequency_khz);
    }
}

/// A job as tracked by `slurmctld`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Job {
    /// The identifier assigned at submission.
    pub id: JobId,
    /// The (possibly plugin-rewritten) descriptor.
    pub descriptor: JobDescriptor,
    /// Current state.
    pub state: JobState,
    /// Submission instant.
    pub submit_time: SimTime,
    /// Start instant, once scheduled.
    pub start_time: Option<SimTime>,
    /// End instant, once terminal.
    pub end_time: Option<SimTime>,
    /// Node index the job ran on.
    pub node: Option<usize>,
}

impl Job {
    /// Elapsed runtime: now against start (or final runtime once ended).
    pub fn elapsed(&self, now: SimTime) -> SimDuration {
        match (self.start_time, self.end_time) {
            (Some(s), Some(e)) => e - s,
            (Some(s), None) => now - s,
            _ => SimDuration::ZERO,
        }
    }
}

/// A finished job's accounting record, as stored by `slurmdbd`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The job id.
    pub id: JobId,
    /// Job name.
    pub name: String,
    /// Submitting user.
    pub user: String,
    /// Final state.
    pub state: JobState,
    /// The CPU configuration the job ran with.
    pub config: Option<CpuConfig>,
    /// Submission instant.
    pub submit_time: SimTime,
    /// Start instant.
    pub start_time: Option<SimTime>,
    /// End instant.
    pub end_time: Option<SimTime>,
    /// DC-side system energy attributed to the job (J).
    pub system_energy_j: f64,
    /// CPU energy attributed to the job (J).
    pub cpu_energy_j: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CpuSpec {
        CpuSpec::epyc_7502p()
    }

    #[test]
    fn state_terminality() {
        assert!(!JobState::Pending.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Timeout.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::Failed.is_terminal());
    }

    #[test]
    fn default_descriptor_resolves_to_performance_governor() {
        let d = JobDescriptor::new("j", "alice", "/bin/app");
        let c = d.resolve_config(&spec());
        assert_eq!(c.cores, 1);
        assert_eq!(c.frequency_khz, 2_500_000, "no --cpu-freq => max frequency");
        assert_eq!(c.threads_per_core, 1);
    }

    #[test]
    fn apply_config_mirrors_listing_4() {
        let mut d = JobDescriptor::new("j", "alice", "/bin/app");
        let cfg = CpuConfig::new(32, 2_200_000, 1);
        d.apply_config(&cfg);
        assert_eq!(d.num_tasks, 32);
        assert_eq!(d.threads_per_cpu, 1);
        assert_eq!(d.min_frequency_khz, Some(2_200_000));
        assert_eq!(d.max_frequency_khz, Some(2_200_000));
        assert_eq!(d.resolve_config(&spec()), cfg);
    }

    #[test]
    fn resolve_clamps_to_spec() {
        let mut d = JobDescriptor::new("j", "alice", "/bin/app");
        d.num_tasks = 100;
        d.threads_per_cpu = 9;
        d.max_frequency_khz = Some(9_999_999);
        let c = d.resolve_config(&spec());
        assert_eq!(c.cores, 32);
        assert_eq!(c.threads_per_core, 2);
        assert_eq!(c.frequency_khz, 2_500_000);
    }

    #[test]
    fn resolve_snaps_frequency() {
        let mut d = JobDescriptor::new("j", "alice", "/bin/app");
        d.max_frequency_khz = Some(2_000_000);
        assert_eq!(d.resolve_config(&spec()).frequency_khz, 2_200_000);
    }

    #[test]
    fn job_elapsed() {
        let d = JobDescriptor::new("j", "u", "/b");
        let mut job = Job {
            id: JobId(1),
            descriptor: d,
            state: JobState::Running,
            submit_time: SimTime::from_secs(0),
            start_time: Some(SimTime::from_secs(10)),
            end_time: None,
            node: Some(0),
        };
        assert_eq!(job.elapsed(SimTime::from_secs(25)), SimDuration::from_secs(15));
        job.end_time = Some(SimTime::from_secs(30));
        assert_eq!(job.elapsed(SimTime::from_secs(99)), SimDuration::from_secs(20));
    }

    #[test]
    fn qos_ordering() {
        assert!(Qos::High.factor() > Qos::Normal.factor());
        assert!(Qos::Normal.factor() > Qos::Low.factor());
    }

    #[test]
    fn state_codes() {
        assert_eq!(JobState::Pending.code(), "PD");
        assert_eq!(JobState::Running.code(), "R");
        assert_eq!(JobState::Completed.code(), "CD");
    }
}
