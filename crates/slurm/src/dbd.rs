//! `slurmdbd` — the accounting daemon. Stores one [`JobRecord`] per
//! finished job and answers the aggregate queries the experiments and the
//! fair-share factor need.

use crate::job::{JobId, JobRecord, JobState};

/// In-memory accounting storage (the real daemon fronts MySQL; the
/// interface is what matters to the reproduction).
#[derive(Debug, Clone, Default)]
pub struct AccountingDb {
    records: Vec<JobRecord>,
}

impl AccountingDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a finished job's record.
    pub fn insert(&mut self, record: JobRecord) {
        debug_assert!(record.state.is_terminal(), "only terminal jobs are accounted");
        self.records.push(record);
    }

    /// All records, in completion order.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Looks up a record by job id.
    pub fn get(&self, id: JobId) -> Option<&JobRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Records for one user.
    pub fn by_user<'a>(&'a self, user: &'a str) -> impl Iterator<Item = &'a JobRecord> {
        self.records.iter().filter(move |r| r.user == user)
    }

    /// Total DC-side energy billed to a user (J).
    pub fn user_energy_j(&self, user: &str) -> f64 {
        self.by_user(user).map(|r| r.system_energy_j).sum()
    }

    /// Count of records in a state.
    pub fn count_state(&self, state: JobState) -> usize {
        self.records.iter().filter(|r| r.state == state).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_sim_node::clock::SimTime;
    use eco_sim_node::CpuConfig;

    fn record(id: u64, user: &str, state: JobState, energy: f64) -> JobRecord {
        JobRecord {
            id: JobId(id),
            name: "j".into(),
            user: user.into(),
            state,
            config: Some(CpuConfig::new(4, 2_200_000, 1)),
            submit_time: SimTime::ZERO,
            start_time: Some(SimTime::from_secs(1)),
            end_time: Some(SimTime::from_secs(2)),
            system_energy_j: energy,
            cpu_energy_j: energy / 2.0,
        }
    }

    #[test]
    fn insert_and_get() {
        let mut db = AccountingDb::new();
        db.insert(record(1, "a", JobState::Completed, 100.0));
        db.insert(record(2, "b", JobState::Timeout, 50.0));
        assert_eq!(db.records().len(), 2);
        assert_eq!(db.get(JobId(2)).unwrap().user, "b");
        assert!(db.get(JobId(3)).is_none());
    }

    #[test]
    fn per_user_aggregation() {
        let mut db = AccountingDb::new();
        db.insert(record(1, "a", JobState::Completed, 100.0));
        db.insert(record(2, "a", JobState::Completed, 150.0));
        db.insert(record(3, "b", JobState::Completed, 10.0));
        assert_eq!(db.by_user("a").count(), 2);
        assert!((db.user_energy_j("a") - 250.0).abs() < 1e-12);
        assert_eq!(db.user_energy_j("nobody"), 0.0);
    }

    #[test]
    fn state_counts() {
        let mut db = AccountingDb::new();
        db.insert(record(1, "a", JobState::Completed, 1.0));
        db.insert(record(2, "a", JobState::Completed, 1.0));
        db.insert(record(3, "a", JobState::Cancelled, 0.0));
        assert_eq!(db.count_state(JobState::Completed), 2);
        assert_eq!(db.count_state(JobState::Cancelled), 1);
        assert_eq!(db.count_state(JobState::Timeout), 0);
    }
}
