//! Error types for the Slurm simulator.

use crate::job::JobId;

/// Errors surfaced by the workload manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlurmError {
    /// The sbatch script could not be parsed.
    InvalidScript(String),
    /// A job-submit plugin rejected the job.
    PluginRejected { plugin: &'static str, reason: String },
    /// A job-submit plugin exceeded the submit-path time budget — the
    /// condition the paper says "raises an error if a plugin takes too
    /// long" (§3.1.2).
    PluginTimeout { plugin: &'static str, elapsed_ms: u64, budget_ms: u64 },
    /// The requested resources can never be satisfied by this cluster.
    Unsatisfiable(String),
    /// No binary is registered at the given path.
    UnknownBinary(String),
    /// The referenced job does not exist.
    NoSuchJob(JobId),
    /// The operation does not apply to the job's current state.
    InvalidState { job: JobId, reason: String },
}

impl std::fmt::Display for SlurmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlurmError::InvalidScript(m) => write!(f, "invalid batch script: {m}"),
            SlurmError::PluginRejected { plugin, reason } => {
                write!(f, "job_submit plugin '{plugin}' rejected the job: {reason}")
            }
            SlurmError::PluginTimeout { plugin, elapsed_ms, budget_ms } => {
                write!(f, "job_submit plugin '{plugin}' took {elapsed_ms} ms (budget {budget_ms} ms)")
            }
            SlurmError::Unsatisfiable(m) => write!(f, "unsatisfiable request: {m}"),
            SlurmError::UnknownBinary(p) => write!(f, "no such executable: {p}"),
            SlurmError::NoSuchJob(id) => write!(f, "no such job: {id}"),
            SlurmError::InvalidState { job, reason } => write!(f, "job {job}: {reason}"),
        }
    }
}

impl std::error::Error for SlurmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SlurmError::InvalidScript("x".into()).to_string().contains("invalid batch script"));
        assert!(SlurmError::NoSuchJob(JobId(7)).to_string().contains('7'));
        let t = SlurmError::PluginTimeout { plugin: "eco", elapsed_ms: 250, budget_ms: 100 };
        assert!(t.to_string().contains("250 ms"));
        assert!(t.to_string().contains("budget 100 ms"));
    }
}
