//! Multifactor job priority — the plugin Niagara's deployment highlights
//! (paper §2.1): a weighted sum of job age, job size, QoS and the user's
//! fair share.

use crate::job::Job;
use eco_sim_node::clock::SimTime;
use std::collections::HashMap;

/// Weights of the multifactor priority plugin (`PriorityWeight*` knobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityWeights {
    /// Weight of queue age (normalised against `age_saturation_s`).
    pub age: f64,
    /// Weight of job size (larger jobs first, as Slurm's default favours).
    pub size: f64,
    /// Weight of the QoS factor.
    pub qos: f64,
    /// Weight of the user's fair-share factor.
    pub fairshare: f64,
    /// Queue age (seconds) at which the age factor saturates to 1.
    pub age_saturation_s: f64,
}

impl Default for PriorityWeights {
    fn default() -> Self {
        PriorityWeights { age: 1000.0, size: 300.0, qos: 2000.0, fairshare: 3000.0, age_saturation_s: 7.0 * 86_400.0 }
    }
}

/// Tracks per-user historical usage for the fair-share factor.
#[derive(Debug, Clone, Default)]
pub struct FairShare {
    usage_s: HashMap<String, f64>,
    total_s: f64,
}

impl FairShare {
    /// A tracker with no recorded usage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `core_seconds` of usage for `user`.
    pub fn record(&mut self, user: &str, core_seconds: f64) {
        assert!(core_seconds >= 0.0);
        *self.usage_s.entry(user.to_string()).or_insert(0.0) += core_seconds;
        self.total_s += core_seconds;
    }

    /// The fair-share factor in [0, 1]: 1 for users with no usage, falling
    /// toward 0 as a user dominates the recorded usage.
    pub fn factor(&self, user: &str) -> f64 {
        if self.total_s == 0.0 {
            return 1.0;
        }
        let share = self.usage_s.get(user).copied().unwrap_or(0.0) / self.total_s;
        1.0 - share
    }
}

/// Computes a job's multifactor priority at `now`.
pub fn multifactor_priority(
    job: &Job,
    now: SimTime,
    total_cores: u32,
    weights: &PriorityWeights,
    fairshare: &FairShare,
) -> f64 {
    let age_s = (now - job.submit_time).as_secs_f64();
    let age_factor = (age_s / weights.age_saturation_s).min(1.0);
    let size_factor = (job.descriptor.num_tasks as f64 / total_cores.max(1) as f64).min(1.0);
    let qos_factor = job.descriptor.qos.factor();
    let fs_factor = fairshare.factor(&job.descriptor.user);
    weights.age * age_factor + weights.size * size_factor + weights.qos * qos_factor + weights.fairshare * fs_factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobDescriptor, JobId, JobState, Qos};

    fn job_at(submit_s: u64, tasks: u32, user: &str, qos: Qos) -> Job {
        let mut d = JobDescriptor::new("j", user, "/bin/app");
        d.num_tasks = tasks;
        d.qos = qos;
        Job {
            id: JobId(1),
            descriptor: d,
            state: JobState::Pending,
            submit_time: SimTime::from_secs(submit_s),
            start_time: None,
            end_time: None,
            node: None,
        }
    }

    #[test]
    fn older_jobs_rank_higher() {
        let w = PriorityWeights::default();
        let fs = FairShare::new();
        let now = SimTime::from_secs(100_000);
        let old = multifactor_priority(&job_at(0, 4, "a", Qos::Normal), now, 32, &w, &fs);
        let new = multifactor_priority(&job_at(99_000, 4, "a", Qos::Normal), now, 32, &w, &fs);
        assert!(old > new);
    }

    #[test]
    fn age_factor_saturates() {
        let w = PriorityWeights { age_saturation_s: 100.0, ..Default::default() };
        let fs = FairShare::new();
        let now = SimTime::from_secs(10_000);
        let a = multifactor_priority(&job_at(0, 4, "a", Qos::Normal), now, 32, &w, &fs);
        let b = multifactor_priority(&job_at(5_000, 4, "a", Qos::Normal), now, 32, &w, &fs);
        assert_eq!(a, b, "both past saturation age");
    }

    #[test]
    fn bigger_jobs_rank_higher() {
        let w = PriorityWeights::default();
        let fs = FairShare::new();
        let now = SimTime::from_secs(10);
        let big = multifactor_priority(&job_at(0, 32, "a", Qos::Normal), now, 32, &w, &fs);
        let small = multifactor_priority(&job_at(0, 1, "a", Qos::Normal), now, 32, &w, &fs);
        assert!(big > small);
    }

    #[test]
    fn qos_dominates_when_weighted() {
        let w = PriorityWeights::default();
        let fs = FairShare::new();
        let now = SimTime::from_secs(10);
        let high = multifactor_priority(&job_at(0, 1, "a", Qos::High), now, 32, &w, &fs);
        let low = multifactor_priority(&job_at(0, 1, "a", Qos::Low), now, 32, &w, &fs);
        assert!(high > low);
    }

    #[test]
    fn fairshare_penalises_heavy_users() {
        let w = PriorityWeights::default();
        let mut fs = FairShare::new();
        fs.record("hog", 10_000.0);
        fs.record("light", 100.0);
        let now = SimTime::from_secs(10);
        let hog = multifactor_priority(&job_at(0, 4, "hog", Qos::Normal), now, 32, &w, &fs);
        let light = multifactor_priority(&job_at(0, 4, "light", Qos::Normal), now, 32, &w, &fs);
        assert!(light > hog);
    }

    #[test]
    fn fairshare_factor_bounds() {
        let mut fs = FairShare::new();
        assert_eq!(fs.factor("anyone"), 1.0);
        fs.record("only", 500.0);
        assert!(fs.factor("only") < 1e-9, "sole user has zero remaining share");
        assert_eq!(fs.factor("other"), 1.0);
    }
}
