//! # eco-slurm-sim — a discrete-event Slurm-like workload manager
//!
//! The paper's plugin lives inside Slurm's `slurmctld`; this crate models
//! the slice of Slurm the eco plugin touches, faithfully enough to run the
//! paper's experiments end to end:
//!
//! * [`job`] — `job_desc_msg_t`-style descriptors with the exact fields the
//!   plugin rewrites (`num_tasks`, `threads_per_cpu`, `min/max_frequency`);
//! * [`script`] — `#SBATCH` batch-script parsing (the paper's Listing 6);
//! * [`plugin`] — the `job_submit` plugin API with Slurm's submit-path
//!   time budget enforced;
//! * [`priority`] — the multifactor priority plugin (age / size / QoS /
//!   fair-share), as Niagara's deployment uses;
//! * [`cluster`] — `slurmctld` + per-node `slurmd` as a discrete-event
//!   simulation over [`eco_sim_node::SimNode`] hardware, with FIFO + EASY
//!   backfill scheduling and `sbatch`/`squeue`/`scontrol`/`sinfo` facades;
//! * [`dbd`] — `slurmdbd` accounting with per-job energy attribution.

pub mod cluster;
pub mod commands;
pub mod dbd;
pub mod error;
pub mod job;
pub mod partition;
pub mod plugin;
pub mod priority;
pub mod script;

pub use cluster::{Cluster, CoSchedulePolicy};
pub use commands::{array_directive, parse_array_spec, parse_srun, ArraySpec};
pub use dbd::AccountingDb;
pub use error::SlurmError;
pub use job::{Job, JobDescriptor, JobId, JobRecord, JobState, Qos};
pub use partition::{Partition, PartitionTable};
pub use plugin::{JobSubmitPlugin, PluginHost, PluginRejection};
pub use priority::{FairShare, PriorityWeights};
pub use script::{generate_hpcg_script, parse_script};
