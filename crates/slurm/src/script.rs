//! sbatch batch-script parsing.
//!
//! Understands the directives Chronus generates (paper Listing 6) plus the
//! common ones a production script carries:
//!
//! ```text
//! #!/bin/bash
//! #SBATCH --nodes=1
//! #SBATCH --ntasks=32
//! #SBATCH --cpu-freq=2200000
//! #SBATCH --comment "chronus"
//!
//! srun --mpi=pmix_v4 --ntasks-per-core=2 /opt/hpcg/bin/xhpcg
//! ```

use crate::error::SlurmError;
use crate::job::{JobDescriptor, Qos};
use eco_sim_node::clock::SimDuration;

/// Parses an sbatch script into a [`JobDescriptor`] for `user`.
///
/// Recognised `#SBATCH` options: `--nodes`, `--ntasks`, `--cpu-freq`,
/// `--comment`, `--job-name`, `--time`, `--qos`, `--begin`. The `srun` line
/// supplies `--ntasks-per-core` and the binary path. Unknown `#SBATCH`
/// options are ignored (as Slurm tolerates plenty we don't model);
/// malformed values are errors.
pub fn parse_script(script: &str, user: &str) -> Result<JobDescriptor, SlurmError> {
    let mut desc = JobDescriptor::new("sbatch", user, "");
    let mut saw_srun = false;

    for raw in script.lines() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("#SBATCH") {
            parse_sbatch_directive(rest.trim(), &mut desc)?;
        } else if line.starts_with("srun") {
            parse_srun_line(line, &mut desc)?;
            saw_srun = true;
        }
    }

    if !saw_srun || desc.binary_path.is_empty() {
        return Err(SlurmError::InvalidScript("script has no srun line with an executable".into()));
    }
    Ok(desc)
}

fn parse_sbatch_directive(directive: &str, desc: &mut JobDescriptor) -> Result<(), SlurmError> {
    let (key, value) = split_option(directive);
    match key {
        "--nodes" => desc.num_nodes = parse_num(key, &value)?,
        "--ntasks" => desc.num_tasks = parse_num(key, &value)?,
        "--cpu-freq" => {
            let khz: u64 = parse_num(key, &value)?;
            desc.min_frequency_khz = Some(khz);
            desc.max_frequency_khz = Some(khz);
        }
        "--comment" => desc.comment = value,
        "--partition" => desc.partition = Some(value),
        "--job-name" => desc.name = value,
        "--time" => desc.time_limit = Some(parse_time(&value)?),
        "--qos" => {
            desc.qos = match value.as_str() {
                "high" => Qos::High,
                "normal" => Qos::Normal,
                "low" => Qos::Low,
                other => return Err(SlurmError::InvalidScript(format!("unknown qos '{other}'"))),
            }
        }
        "--begin" => {
            let secs: u64 = parse_num(key, &value)?;
            desc.begin_time = Some(eco_sim_node::clock::SimTime::from_secs(secs));
        }
        _ => {} // tolerated, like real Slurm with unmodelled options
    }
    Ok(())
}

fn parse_srun_line(line: &str, desc: &mut JobDescriptor) -> Result<(), SlurmError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let mut i = 1; // skip "srun"
    while i < tokens.len() {
        let tok = tokens[i];
        if let Some(v) = tok.strip_prefix("--ntasks-per-core=") {
            desc.threads_per_cpu =
                v.parse().map_err(|_| SlurmError::InvalidScript(format!("bad --ntasks-per-core '{v}'")))?;
        } else if !tok.starts_with('-') {
            desc.binary_path = tok.to_string();
        }
        i += 1;
    }
    Ok(())
}

/// Splits `--key=value`, `--key value` or `--key "value"` forms. When both
/// separators appear, the first one wins, so an `=` inside a quoted value
/// (`--comment "chronus deadline=3600"`) stays in the value.
fn split_option(s: &str) -> (&str, String) {
    let eq = s.find('=');
    let sp = s.find(char::is_whitespace);
    let cut = match (eq, sp) {
        (Some(e), Some(w)) => Some(e.min(w)),
        (one, None) => one,
        (None, one) => one,
    };
    match cut {
        Some(i) => {
            let (k, v) = s.split_at(i);
            (k.trim(), unquote(v[1..].trim()))
        }
        None => (s, String::new()),
    }
}

fn unquote(s: &str) -> String {
    s.trim_matches('"').to_string()
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, SlurmError> {
    value.parse().map_err(|_| SlurmError::InvalidScript(format!("bad value '{value}' for {key}")))
}

/// Parses Slurm `--time` formats: `MM`, `MM:SS`, `HH:MM:SS`, `D-HH:MM:SS`.
fn parse_time(value: &str) -> Result<SimDuration, SlurmError> {
    let bad = || SlurmError::InvalidScript(format!("bad --time '{value}'"));
    let (days, rest) = match value.split_once('-') {
        Some((d, r)) => (d.parse::<u64>().map_err(|_| bad())?, r),
        None => (0, value),
    };
    let parts: Vec<&str> = rest.split(':').collect();
    let nums: Vec<u64> = parts.iter().map(|p| p.parse::<u64>().map_err(|_| bad())).collect::<Result<_, _>>()?;
    let secs = match nums.as_slice() {
        [m] => m * 60,
        [m, s] => m * 60 + s,
        [h, m, s] => h * 3600 + m * 60 + s,
        _ => return Err(bad()),
    };
    Ok(SimDuration::from_secs(days * 86_400 + secs))
}

/// Renders the Chronus-generated benchmark script for a configuration —
/// the exact shape of the paper's Listing 6.
pub fn generate_hpcg_script(cores: u32, frequency_khz: u64, threads_per_core: u32, hpcg_path: &str) -> String {
    format!(
        "#!/bin/bash\n\
         #SBATCH --nodes=1\n\
         #SBATCH --ntasks={cores}\n\
         #SBATCH --cpu-freq={frequency_khz}\n\
         \n\
         srun --mpi=pmix_v4 --ntasks-per-core={threads_per_core} {hpcg_path}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing_6_script() {
        let script = generate_hpcg_script(32, 2_200_000, 2, "/opt/hpcg/bin/xhpcg");
        let d = parse_script(&script, "aaen").unwrap();
        assert_eq!(d.num_nodes, 1);
        assert_eq!(d.num_tasks, 32);
        assert_eq!(d.min_frequency_khz, Some(2_200_000));
        assert_eq!(d.max_frequency_khz, Some(2_200_000));
        assert_eq!(d.threads_per_cpu, 2);
        assert_eq!(d.binary_path, "/opt/hpcg/bin/xhpcg");
        assert_eq!(d.user, "aaen");
    }

    #[test]
    fn parses_comment_opt_in() {
        // the paper's opt-in line: #SBATCH --comment "chronus"
        let script = "#!/bin/bash\n#SBATCH --comment \"chronus\"\nsrun /bin/app\n";
        let d = parse_script(script, "u").unwrap();
        assert_eq!(d.comment, "chronus");
    }

    #[test]
    fn comment_value_may_contain_equals() {
        // the deadline extension's opt-in form
        let script = "#SBATCH --comment \"chronus deadline=3600\"\nsrun /bin/app";
        let d = parse_script(script, "u").unwrap();
        assert_eq!(d.comment, "chronus deadline=3600");
    }

    #[test]
    fn parses_equals_and_space_forms() {
        let script = "#SBATCH --ntasks=8\n#SBATCH --job-name myjob\nsrun /bin/app";
        let d = parse_script(script, "u").unwrap();
        assert_eq!(d.num_tasks, 8);
        assert_eq!(d.name, "myjob");
    }

    #[test]
    fn parses_time_formats() {
        assert_eq!(parse_time("30").unwrap(), SimDuration::from_secs(1800));
        assert_eq!(parse_time("10:30").unwrap(), SimDuration::from_secs(630));
        assert_eq!(parse_time("1:00:00").unwrap(), SimDuration::from_secs(3600));
        assert_eq!(parse_time("1-01:00:00").unwrap(), SimDuration::from_secs(90_000));
        assert!(parse_time("abc").is_err());
        assert!(parse_time("1:2:3:4").is_err());
    }

    #[test]
    fn parses_qos() {
        for (s, q) in [("high", Qos::High), ("normal", Qos::Normal), ("low", Qos::Low)] {
            let script = format!("#SBATCH --qos={s}\nsrun /bin/app");
            assert_eq!(parse_script(&script, "u").unwrap().qos, q);
        }
        assert!(parse_script("#SBATCH --qos=vip\nsrun /bin/app", "u").is_err());
    }

    #[test]
    fn missing_srun_is_error() {
        let err = parse_script("#!/bin/bash\n#SBATCH --ntasks=4\n", "u").unwrap_err();
        assert!(matches!(err, SlurmError::InvalidScript(_)));
    }

    #[test]
    fn bad_numeric_value_is_error() {
        assert!(parse_script("#SBATCH --ntasks=many\nsrun /bin/app", "u").is_err());
        assert!(parse_script("#SBATCH --cpu-freq=fast\nsrun /bin/app", "u").is_err());
    }

    #[test]
    fn unknown_directives_tolerated() {
        let script = "#SBATCH --mem=32G\n#SBATCH --output=out.txt\nsrun /bin/app";
        assert!(parse_script(script, "u").is_ok());
    }

    #[test]
    fn partition_parsed() {
        let d = parse_script("#SBATCH --partition=debug\nsrun /bin/app", "u").unwrap();
        assert_eq!(d.partition.as_deref(), Some("debug"));
        let d = parse_script("srun /bin/app", "u").unwrap();
        assert_eq!(d.partition, None);
    }

    #[test]
    fn begin_time_parsed() {
        let d = parse_script("#SBATCH --begin=3600\nsrun /bin/app", "u").unwrap();
        assert_eq!(d.begin_time, Some(eco_sim_node::clock::SimTime::from_secs(3600)));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let script = "#!/bin/bash\n\n# a plain comment\necho hello\nsrun --ntasks-per-core=1 /bin/x\n";
        let d = parse_script(script, "u").unwrap();
        assert_eq!(d.binary_path, "/bin/x");
        assert_eq!(d.threads_per_cpu, 1);
    }
}
