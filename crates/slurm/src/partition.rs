//! Partitions: Slurm's named node groups with their own time limits and
//! priority weights (the knobs the Niagara deployment in the paper's §2.1
//! tunes per queue).

use eco_sim_node::clock::SimDuration;
use serde::{Deserialize, Serialize};

/// A partition definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Partition name (`--partition=`).
    pub name: String,
    /// Node indices belonging to this partition.
    pub nodes: Vec<usize>,
    /// Maximum wall time for jobs in this partition (`MaxTime`); caps any
    /// job-level `--time`.
    pub max_time: Option<SimDuration>,
    /// Additive priority bonus for jobs submitted here
    /// (`PriorityJobFactor`-style).
    pub priority_bonus: f64,
    /// Whether jobs without `--partition` land here.
    pub is_default: bool,
}

impl Partition {
    /// A default partition spanning the given nodes.
    pub fn default_over(node_count: usize) -> Self {
        Partition {
            name: "batch".to_string(),
            nodes: (0..node_count).collect(),
            max_time: None,
            priority_bonus: 0.0,
            is_default: true,
        }
    }

    /// The effective time limit for a job limit request: the stricter of
    /// the job's `--time` and the partition's `MaxTime`.
    pub fn effective_time_limit(&self, requested: Option<SimDuration>) -> Option<SimDuration> {
        match (requested, self.max_time) {
            (Some(r), Some(m)) => Some(r.min(m)),
            (Some(r), None) => Some(r),
            (None, m) => m,
        }
    }

    /// Whether this partition contains a node index.
    pub fn contains(&self, node: usize) -> bool {
        self.nodes.contains(&node)
    }
}

/// The set of partitions configured on a cluster.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartitionTable {
    partitions: Vec<Partition>,
}

impl PartitionTable {
    /// A table with one default partition over all nodes.
    pub fn with_default(node_count: usize) -> Self {
        PartitionTable { partitions: vec![Partition::default_over(node_count)] }
    }

    /// Adds (or replaces, by name) a partition.
    pub fn upsert(&mut self, partition: Partition) {
        assert!(!partition.nodes.is_empty(), "partition needs at least one node");
        if partition.is_default {
            for p in &mut self.partitions {
                p.is_default = false;
            }
        }
        if let Some(existing) = self.partitions.iter_mut().find(|p| p.name == partition.name) {
            *existing = partition;
        } else {
            self.partitions.push(partition);
        }
    }

    /// Resolves a job's partition request: a name, or the default.
    pub fn resolve(&self, requested: Option<&str>) -> Option<&Partition> {
        match requested {
            Some(name) => self.partitions.iter().find(|p| p.name == name),
            None => self.partitions.iter().find(|p| p.is_default).or(self.partitions.first()),
        }
    }

    /// All partitions.
    pub fn all(&self) -> &[Partition] {
        &self.partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_partition_spans_all_nodes() {
        let t = PartitionTable::with_default(3);
        let p = t.resolve(None).unwrap();
        assert_eq!(p.name, "batch");
        assert_eq!(p.nodes, vec![0, 1, 2]);
        assert!(p.is_default);
    }

    #[test]
    fn resolve_by_name_and_missing() {
        let mut t = PartitionTable::with_default(2);
        t.upsert(Partition {
            name: "debug".into(),
            nodes: vec![1],
            max_time: Some(SimDuration::from_mins(30)),
            priority_bonus: 500.0,
            is_default: false,
        });
        assert_eq!(t.resolve(Some("debug")).unwrap().nodes, vec![1]);
        assert!(t.resolve(Some("gpu")).is_none());
        assert_eq!(t.resolve(None).unwrap().name, "batch");
        assert_eq!(t.all().len(), 2);
    }

    #[test]
    fn upsert_replaces_by_name() {
        let mut t = PartitionTable::with_default(2);
        t.upsert(Partition {
            name: "batch".into(),
            nodes: vec![0],
            max_time: None,
            priority_bonus: 0.0,
            is_default: true,
        });
        assert_eq!(t.all().len(), 1);
        assert_eq!(t.resolve(None).unwrap().nodes, vec![0]);
    }

    #[test]
    fn new_default_demotes_old_default() {
        let mut t = PartitionTable::with_default(2);
        t.upsert(Partition {
            name: "main".into(),
            nodes: vec![0, 1],
            max_time: None,
            priority_bonus: 0.0,
            is_default: true,
        });
        assert_eq!(t.resolve(None).unwrap().name, "main");
        let defaults = t.all().iter().filter(|p| p.is_default).count();
        assert_eq!(defaults, 1);
    }

    #[test]
    fn effective_time_limit_takes_the_stricter() {
        let p = Partition {
            name: "debug".into(),
            nodes: vec![0],
            max_time: Some(SimDuration::from_mins(30)),
            priority_bonus: 0.0,
            is_default: false,
        };
        assert_eq!(p.effective_time_limit(None), Some(SimDuration::from_mins(30)));
        assert_eq!(p.effective_time_limit(Some(SimDuration::from_mins(10))), Some(SimDuration::from_mins(10)));
        assert_eq!(p.effective_time_limit(Some(SimDuration::from_mins(60))), Some(SimDuration::from_mins(30)));
        let open = Partition { max_time: None, ..p };
        assert_eq!(open.effective_time_limit(None), None);
        assert_eq!(open.effective_time_limit(Some(SimDuration::from_mins(5))), Some(SimDuration::from_mins(5)));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_partition_rejected() {
        let mut t = PartitionTable::with_default(1);
        t.upsert(Partition {
            name: "empty".into(),
            nodes: vec![],
            max_time: None,
            priority_bonus: 0.0,
            is_default: false,
        });
    }
}
