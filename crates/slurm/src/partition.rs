//! Partitions: Slurm's named node groups with their own time limits and
//! priority weights (the knobs the Niagara deployment in the paper's §2.1
//! tunes per queue).

use eco_sim_node::clock::SimDuration;
use serde::{Deserialize, Serialize};

/// A partition definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Partition name (`--partition=`).
    pub name: String,
    /// Node indices belonging to this partition.
    pub nodes: Vec<usize>,
    /// Maximum wall time for jobs in this partition (`MaxTime`); caps any
    /// job-level `--time`.
    pub max_time: Option<SimDuration>,
    /// Additive priority bonus for jobs submitted here
    /// (`PriorityJobFactor`-style).
    pub priority_bonus: f64,
    /// Whether jobs without `--partition` land here.
    pub is_default: bool,
    /// The node class this partition's nodes belong to (heterogeneous
    /// clusters partition by hardware type, as shared facilities do).
    /// `None` means the partition predates node classes or spans the
    /// cluster's single type — the *default class* in the prediction key
    /// space.
    #[serde(default)]
    pub node_class: Option<String>,
}

impl Partition {
    /// A default partition spanning the given nodes.
    pub fn default_over(node_count: usize) -> Self {
        Partition {
            name: "batch".to_string(),
            nodes: (0..node_count).collect(),
            max_time: None,
            priority_bonus: 0.0,
            is_default: true,
            node_class: None,
        }
    }

    /// A plain partition over explicit node indices: no time limit, no
    /// bonus, not the default, no node class.
    pub fn over(name: &str, nodes: Vec<usize>) -> Self {
        Partition {
            name: name.to_string(),
            nodes,
            max_time: None,
            priority_bonus: 0.0,
            is_default: false,
            node_class: None,
        }
    }

    /// Stamps the partition with its node class.
    pub fn with_class(mut self, class: &str) -> Self {
        self.node_class = Some(class.to_string());
        self
    }

    /// Marks this partition as the default.
    pub fn as_default(mut self) -> Self {
        self.is_default = true;
        self
    }

    /// The effective time limit for a job limit request: the stricter of
    /// the job's `--time` and the partition's `MaxTime`.
    pub fn effective_time_limit(&self, requested: Option<SimDuration>) -> Option<SimDuration> {
        match (requested, self.max_time) {
            (Some(r), Some(m)) => Some(r.min(m)),
            (Some(r), None) => Some(r),
            (None, m) => m,
        }
    }

    /// Whether this partition contains a node index.
    pub fn contains(&self, node: usize) -> bool {
        self.nodes.contains(&node)
    }
}

/// The set of partitions configured on a cluster.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartitionTable {
    partitions: Vec<Partition>,
}

impl PartitionTable {
    /// A table with one default partition over all nodes.
    pub fn with_default(node_count: usize) -> Self {
        PartitionTable { partitions: vec![Partition::default_over(node_count)] }
    }

    /// Adds (or replaces, by name) a partition.
    pub fn upsert(&mut self, partition: Partition) {
        assert!(!partition.nodes.is_empty(), "partition needs at least one node");
        if partition.is_default {
            for p in &mut self.partitions {
                p.is_default = false;
            }
        }
        if let Some(existing) = self.partitions.iter_mut().find(|p| p.name == partition.name) {
            *existing = partition;
        } else {
            self.partitions.push(partition);
        }
    }

    /// Resolves a job's partition request.
    ///
    /// Precedence, pinned by tests:
    /// * `Some(name)` resolves to the partition of exactly that name, or
    ///   `None` — an unknown partition is a submission error, never a
    ///   silent fall-through to the default. Names are unique (upsert
    ///   replaces by name), so overlapping *node ranges* between
    ///   partitions are legal and never ambiguous here: the job's request
    ///   picks the partition, the partition picks the nodes.
    /// * `None` resolves to the default partition; if no partition is
    ///   flagged default (the original default was replaced by a
    ///   non-default definition), the first partition in configuration
    ///   order stands in, deterministically.
    pub fn resolve(&self, requested: Option<&str>) -> Option<&Partition> {
        match requested {
            Some(name) => self.partitions.iter().find(|p| p.name == name),
            None => self.partitions.iter().find(|p| p.is_default).or(self.partitions.first()),
        }
    }

    /// Every partition a node belongs to, in configuration order —
    /// overlapping ranges are legal (a node can serve `batch` and
    /// `debug` at once), and this is the membership view `sinfo` prints.
    pub fn partitions_of(&self, node: usize) -> Vec<&Partition> {
        self.partitions.iter().filter(|p| p.contains(node)).collect()
    }

    /// The node class of a named partition (`None` for the default class
    /// or an unknown partition).
    pub fn node_class_of(&self, name: &str) -> Option<&str> {
        self.partitions.iter().find(|p| p.name == name).and_then(|p| p.node_class.as_deref())
    }

    /// All partitions.
    pub fn all(&self) -> &[Partition] {
        &self.partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_partition_spans_all_nodes() {
        let t = PartitionTable::with_default(3);
        let p = t.resolve(None).unwrap();
        assert_eq!(p.name, "batch");
        assert_eq!(p.nodes, vec![0, 1, 2]);
        assert!(p.is_default);
    }

    #[test]
    fn resolve_by_name_and_missing() {
        let mut t = PartitionTable::with_default(2);
        t.upsert(Partition {
            name: "debug".into(),
            nodes: vec![1],
            max_time: Some(SimDuration::from_mins(30)),
            priority_bonus: 500.0,
            is_default: false,
            node_class: None,
        });
        assert_eq!(t.resolve(Some("debug")).unwrap().nodes, vec![1]);
        assert!(t.resolve(Some("gpu")).is_none());
        assert_eq!(t.resolve(None).unwrap().name, "batch");
        assert_eq!(t.all().len(), 2);
    }

    #[test]
    fn upsert_replaces_by_name() {
        let mut t = PartitionTable::with_default(2);
        t.upsert(Partition {
            name: "batch".into(),
            nodes: vec![0],
            max_time: None,
            priority_bonus: 0.0,
            is_default: true,
            node_class: None,
        });
        assert_eq!(t.all().len(), 1);
        assert_eq!(t.resolve(None).unwrap().nodes, vec![0]);
    }

    #[test]
    fn new_default_demotes_old_default() {
        let mut t = PartitionTable::with_default(2);
        t.upsert(Partition {
            name: "main".into(),
            nodes: vec![0, 1],
            max_time: None,
            priority_bonus: 0.0,
            is_default: true,
            node_class: None,
        });
        assert_eq!(t.resolve(None).unwrap().name, "main");
        let defaults = t.all().iter().filter(|p| p.is_default).count();
        assert_eq!(defaults, 1);
    }

    #[test]
    fn overlapping_node_ranges_are_legal_and_unambiguous() {
        // nodes 0-1 serve both `batch` and `debug`; membership is a set,
        // resolution is by the job's request, never by node range
        let mut t = PartitionTable::with_default(3);
        t.upsert(Partition::over("debug", vec![0, 1]));
        assert_eq!(t.resolve(Some("debug")).unwrap().name, "debug");
        assert_eq!(t.resolve(None).unwrap().name, "batch", "overlap does not steal the default");
        let memberships = t.partitions_of(0);
        assert_eq!(memberships.len(), 2, "node 0 serves both partitions");
        assert_eq!(t.partitions_of(2).len(), 1, "node 2 serves only batch");
    }

    #[test]
    fn unknown_partition_resolves_to_none_never_the_default() {
        let t = PartitionTable::with_default(2);
        assert!(t.resolve(Some("gpu")).is_none(), "unknown name must be an error, not the default");
        assert!(t.resolve(Some("")).is_none(), "empty name is unknown too");
        // case matters, exactly as in Slurm
        assert!(t.resolve(Some("Batch")).is_none());
    }

    #[test]
    fn no_default_falls_back_to_first_in_configuration_order() {
        // replacing the default partition with a non-default definition
        // leaves the table without a flagged default
        let mut t = PartitionTable::with_default(2);
        t.upsert(Partition::over("batch", vec![0]));
        t.upsert(Partition::over("late", vec![1]));
        assert!(t.all().iter().all(|p| !p.is_default));
        assert_eq!(t.resolve(None).unwrap().name, "batch", "first configured partition stands in");
    }

    #[test]
    fn node_class_resolution() {
        let mut t = PartitionTable::with_default(4);
        t.upsert(Partition::over("dense", vec![2, 3]).with_class("dense64"));
        assert_eq!(t.node_class_of("dense"), Some("dense64"));
        assert_eq!(t.node_class_of("batch"), None, "classless partition is the default class");
        assert_eq!(t.node_class_of("nope"), None);
        assert_eq!(t.resolve(Some("dense")).unwrap().node_class.as_deref(), Some("dense64"));
    }

    #[test]
    fn partition_serde_accepts_pre_class_records() {
        // a partition serialized before node classes existed deserializes
        // with node_class = None (the default class)
        let legacy = r#"{"name":"batch","nodes":[0,1],"max_time":null,"priority_bonus":0.0,"is_default":true}"#;
        let p: Partition = serde_json::from_str(legacy).unwrap();
        assert_eq!(p.node_class, None);
        assert_eq!(p.name, "batch");
    }

    #[test]
    fn effective_time_limit_takes_the_stricter() {
        let p = Partition {
            name: "debug".into(),
            nodes: vec![0],
            max_time: Some(SimDuration::from_mins(30)),
            priority_bonus: 0.0,
            is_default: false,
            node_class: None,
        };
        assert_eq!(p.effective_time_limit(None), Some(SimDuration::from_mins(30)));
        assert_eq!(p.effective_time_limit(Some(SimDuration::from_mins(10))), Some(SimDuration::from_mins(10)));
        assert_eq!(p.effective_time_limit(Some(SimDuration::from_mins(60))), Some(SimDuration::from_mins(30)));
        let open = Partition { max_time: None, ..p };
        assert_eq!(open.effective_time_limit(None), None);
        assert_eq!(open.effective_time_limit(Some(SimDuration::from_mins(5))), Some(SimDuration::from_mins(5)));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_partition_rejected() {
        let mut t = PartitionTable::with_default(1);
        t.upsert(Partition {
            name: "empty".into(),
            nodes: vec![],
            max_time: None,
            priority_bonus: 0.0,
            is_default: false,
            node_class: None,
        });
    }
}
