//! The job-submit plugin interface — the simulator's equivalent of Slurm's
//! `job_submit` plugin type (the paper's §3.1.1: "This type of plugin is
//! called when a job is submitted to the scheduler. The plugin can then
//! modify the job before it is added to the queue").
//!
//! Slurm gives submit plugins a very short time budget (the reason Chronus
//! pre-loads models to local disk, §3.1.2). [`PluginHost`] enforces that
//! budget with a wall-clock measurement around each call.

use crate::error::SlurmError;
use crate::job::JobDescriptor;
use eco_telemetry::{Counter, Telemetry, TraceContext};
use std::sync::Arc;
use std::time::Instant;

/// Why a plugin refused a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PluginRejection {
    /// Human-readable reason returned to the submitter.
    pub reason: String,
}

/// A job-submit plugin. Implementations may rewrite the descriptor (the
/// eco plugin sets `num_tasks`, `threads_per_cpu`, `min/max_frequency`) or
/// reject the job outright.
pub trait JobSubmitPlugin: Send {
    /// The plugin's name, as it would appear in `JobSubmitPlugins=`.
    fn name(&self) -> &'static str;

    /// Called once per submission, before the job enters the queue.
    fn job_submit(&mut self, job: &mut JobDescriptor, submit_uid: u32) -> Result<(), PluginRejection>;

    /// [`JobSubmitPlugin::job_submit`] joined to the submission's trace.
    /// The default drops the context, so untraced plugins need not care;
    /// instrumented plugins override it to parent their spans (and any
    /// remote calls they make) under the submission.
    fn job_submit_traced(
        &mut self,
        job: &mut JobDescriptor,
        submit_uid: u32,
        ctx: Option<TraceContext>,
    ) -> Result<(), PluginRejection> {
        let _ = ctx;
        self.job_submit(job, submit_uid)
    }
}

/// Hosts the configured plugin chain and enforces the submit-path budget.
pub struct PluginHost {
    plugins: Vec<Box<dyn JobSubmitPlugin>>,
    budget_ms: u64,
    tel: Option<HostTelemetry>,
}

/// Counter handles resolved once at [`PluginHost::set_telemetry`] time.
struct HostTelemetry {
    telemetry: Arc<Telemetry>,
    calls: Counter,
    rejections: Counter,
    timeouts: Counter,
}

/// Slurm aborts submit plugins that stall the controller; we default to a
/// 100 ms wall-clock budget per plugin call.
pub const DEFAULT_PLUGIN_BUDGET_MS: u64 = 100;

impl PluginHost {
    /// An empty chain with the default budget.
    pub fn new() -> Self {
        PluginHost { plugins: Vec::new(), budget_ms: DEFAULT_PLUGIN_BUDGET_MS, tel: None }
    }

    /// Attaches telemetry: every plugin call from here on bumps
    /// `slurm.plugin_*` counters and records one `slurm/plugin_call`
    /// span, whose context is handed to the plugin so its own spans
    /// chain under the submission.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.tel = Some(HostTelemetry {
            calls: telemetry.counter("slurm.plugin_calls"),
            rejections: telemetry.counter("slurm.plugin_rejections"),
            timeouts: telemetry.counter("slurm.plugin_timeouts"),
            telemetry,
        });
    }

    /// Overrides the per-call budget (milliseconds).
    pub fn with_budget_ms(mut self, budget_ms: u64) -> Self {
        assert!(budget_ms > 0);
        self.budget_ms = budget_ms;
        self
    }

    /// Appends a plugin to the chain (`JobSubmitPlugins=a,b,...` order).
    pub fn register(&mut self, plugin: Box<dyn JobSubmitPlugin>) {
        self.plugins.push(plugin);
    }

    /// Number of registered plugins.
    pub fn len(&self) -> usize {
        self.plugins.len()
    }

    /// True when no plugins are registered.
    pub fn is_empty(&self) -> bool {
        self.plugins.is_empty()
    }

    /// The per-call budget in milliseconds.
    pub fn budget_ms(&self) -> u64 {
        self.budget_ms
    }

    /// Runs every plugin over the descriptor, in order, measuring each
    /// call. The first rejection or budget overrun aborts the submission.
    pub fn run(&mut self, job: &mut JobDescriptor, submit_uid: u32) -> Result<(), SlurmError> {
        self.run_traced(job, submit_uid, None)
    }

    /// [`PluginHost::run`] joined to a submission's trace: each plugin
    /// call gets a `slurm/plugin_call` span under `parent`, and the
    /// plugin receives that span's context via
    /// [`JobSubmitPlugin::job_submit_traced`].
    pub fn run_traced(
        &mut self,
        job: &mut JobDescriptor,
        submit_uid: u32,
        parent: Option<TraceContext>,
    ) -> Result<(), SlurmError> {
        let budget_ms = self.budget_ms;
        for plugin in &mut self.plugins {
            let mut span = self.tel.as_ref().map(|t| {
                t.calls.bump();
                let mut s = t.telemetry.span_maybe_under(parent, "slurm", "plugin_call");
                s.attr("plugin", plugin.name());
                s
            });
            let ctx = span.as_ref().map(|s| s.context()).or(parent);
            let started = Instant::now();
            let outcome = plugin.job_submit_traced(job, submit_uid, ctx);
            let elapsed_ms = started.elapsed().as_millis() as u64;
            if elapsed_ms > budget_ms {
                if let Some(t) = &self.tel {
                    t.timeouts.bump();
                }
                if let Some(s) = span.take() {
                    s.fail(format!("budget overrun: {elapsed_ms}ms > {budget_ms}ms"));
                }
                return Err(SlurmError::PluginTimeout { plugin: plugin.name(), elapsed_ms, budget_ms });
            }
            if let Err(rejection) = outcome {
                if let Some(t) = &self.tel {
                    t.rejections.bump();
                }
                if let Some(s) = span.take() {
                    s.fail(format!("rejected: {}", rejection.reason));
                }
                return Err(SlurmError::PluginRejected { plugin: plugin.name(), reason: rejection.reason });
            }
        }
        Ok(())
    }
}

impl Default for PluginHost {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SetTasks(u32);
    impl JobSubmitPlugin for SetTasks {
        fn name(&self) -> &'static str {
            "set_tasks"
        }
        fn job_submit(&mut self, job: &mut JobDescriptor, _uid: u32) -> Result<(), PluginRejection> {
            job.num_tasks = self.0;
            Ok(())
        }
    }

    struct RejectAll;
    impl JobSubmitPlugin for RejectAll {
        fn name(&self) -> &'static str {
            "reject_all"
        }
        fn job_submit(&mut self, _job: &mut JobDescriptor, _uid: u32) -> Result<(), PluginRejection> {
            Err(PluginRejection { reason: "nope".into() })
        }
    }

    struct Slow;
    impl JobSubmitPlugin for Slow {
        fn name(&self) -> &'static str {
            "slow"
        }
        fn job_submit(&mut self, _job: &mut JobDescriptor, _uid: u32) -> Result<(), PluginRejection> {
            std::thread::sleep(std::time::Duration::from_millis(30));
            Ok(())
        }
    }

    fn desc() -> JobDescriptor {
        JobDescriptor::new("j", "u", "/bin/app")
    }

    #[test]
    fn empty_chain_is_noop() {
        let mut host = PluginHost::new();
        let mut d = desc();
        assert!(host.run(&mut d, 1000).is_ok());
        assert!(host.is_empty());
    }

    #[test]
    fn plugins_run_in_order_and_mutate() {
        let mut host = PluginHost::new();
        host.register(Box::new(SetTasks(8)));
        host.register(Box::new(SetTasks(16))); // later plugin wins
        let mut d = desc();
        host.run(&mut d, 1000).unwrap();
        assert_eq!(d.num_tasks, 16);
        assert_eq!(host.len(), 2);
    }

    #[test]
    fn rejection_propagates_with_plugin_name() {
        let mut host = PluginHost::new();
        host.register(Box::new(RejectAll));
        let err = host.run(&mut desc(), 0).unwrap_err();
        assert_eq!(err, SlurmError::PluginRejected { plugin: "reject_all", reason: "nope".into() });
    }

    #[test]
    fn rejection_stops_the_chain() {
        let mut host = PluginHost::new();
        host.register(Box::new(RejectAll));
        host.register(Box::new(SetTasks(5)));
        let mut d = desc();
        let _ = host.run(&mut d, 0);
        assert_eq!(d.num_tasks, 1, "later plugin must not run");
    }

    #[test]
    fn slow_plugin_trips_the_budget() {
        let mut host = PluginHost::new().with_budget_ms(5);
        host.register(Box::new(Slow));
        let err = host.run(&mut desc(), 0).unwrap_err();
        assert!(matches!(err, SlurmError::PluginTimeout { plugin: "slow", .. }), "{err:?}");
    }

    #[test]
    fn fast_plugin_within_budget() {
        let mut host = PluginHost::new().with_budget_ms(1000);
        host.register(Box::new(Slow));
        assert!(host.run(&mut desc(), 0).is_ok());
    }

    #[test]
    fn timeout_error_reports_elapsed_and_budget() {
        let mut host = PluginHost::new().with_budget_ms(5);
        host.register(Box::new(Slow));
        match host.run(&mut desc(), 0).unwrap_err() {
            SlurmError::PluginTimeout { plugin, elapsed_ms, budget_ms } => {
                assert_eq!(plugin, "slow");
                assert!(elapsed_ms >= 30, "measured wall clock, got {elapsed_ms}");
                assert_eq!(budget_ms, 5);
            }
            other => panic!("expected PluginTimeout, got {other:?}"),
        }
    }

    #[test]
    fn budget_is_per_plugin_not_per_chain() {
        // two 30 ms plugins against a 50 ms budget: each call fits even
        // though the chain as a whole does not.
        let mut host = PluginHost::new().with_budget_ms(50);
        host.register(Box::new(Slow));
        host.register(Box::new(Slow));
        assert!(host.run(&mut desc(), 0).is_ok());
    }

    #[test]
    fn traced_run_hands_plugins_the_call_span_context() {
        struct CtxProbe(Arc<parking_lot::Mutex<Option<TraceContext>>>);
        impl JobSubmitPlugin for CtxProbe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn job_submit(&mut self, _job: &mut JobDescriptor, _uid: u32) -> Result<(), PluginRejection> {
                Ok(())
            }
            fn job_submit_traced(
                &mut self,
                job: &mut JobDescriptor,
                uid: u32,
                ctx: Option<TraceContext>,
            ) -> Result<(), PluginRejection> {
                *self.0.lock() = ctx;
                self.job_submit(job, uid)
            }
        }

        let telemetry = Arc::new(Telemetry::wall());
        let seen = Arc::new(parking_lot::Mutex::new(None));
        let mut host = PluginHost::new();
        host.set_telemetry(Arc::clone(&telemetry));
        host.register(Box::new(CtxProbe(Arc::clone(&seen))));

        let root = telemetry.root_span("slurm", "submit");
        let parent = root.context();
        host.run_traced(&mut desc(), 0, Some(parent)).unwrap();
        drop(root);

        let ctx = seen.lock().expect("plugin must receive a context");
        assert_eq!(ctx.trace, parent.trace, "plugin joins the submission's trace");
        let events = telemetry.recorder().events();
        let call = events.iter().find(|e| e.name == "plugin_call").expect("plugin_call span");
        assert_eq!(call.span, ctx.span.0, "the context handed down is the call span's");
        assert_eq!(call.parent, Some(parent.span.0));
        assert_eq!(telemetry.counter("slurm.plugin_calls").get(), 1);
    }

    #[test]
    fn untraced_default_still_runs_the_plugin() {
        // a plugin that only implements job_submit still works when the
        // host is traced: the default job_submit_traced drops the context
        let telemetry = Arc::new(Telemetry::wall());
        let mut host = PluginHost::new();
        host.set_telemetry(Arc::clone(&telemetry));
        host.register(Box::new(SetTasks(4)));
        let mut d = desc();
        host.run(&mut d, 0).unwrap();
        assert_eq!(d.num_tasks, 4);
        assert_eq!(telemetry.counter("slurm.plugin_calls").get(), 1);
    }

    #[test]
    fn overrun_aborts_before_later_plugins_run() {
        let mut host = PluginHost::new().with_budget_ms(5);
        host.register(Box::new(Slow));
        host.register(Box::new(SetTasks(9)));
        let mut d = desc();
        let _ = host.run(&mut d, 0);
        assert_eq!(d.num_tasks, 1, "plugins after the overrun must not run");
    }
}
