//! The job-submit plugin interface — the simulator's equivalent of Slurm's
//! `job_submit` plugin type (the paper's §3.1.1: "This type of plugin is
//! called when a job is submitted to the scheduler. The plugin can then
//! modify the job before it is added to the queue").
//!
//! Slurm gives submit plugins a very short time budget (the reason Chronus
//! pre-loads models to local disk, §3.1.2). [`PluginHost`] enforces that
//! budget with a wall-clock measurement around each call.

use crate::error::SlurmError;
use crate::job::JobDescriptor;
use std::time::Instant;

/// Why a plugin refused a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PluginRejection {
    /// Human-readable reason returned to the submitter.
    pub reason: String,
}

/// A job-submit plugin. Implementations may rewrite the descriptor (the
/// eco plugin sets `num_tasks`, `threads_per_cpu`, `min/max_frequency`) or
/// reject the job outright.
pub trait JobSubmitPlugin: Send {
    /// The plugin's name, as it would appear in `JobSubmitPlugins=`.
    fn name(&self) -> &'static str;

    /// Called once per submission, before the job enters the queue.
    fn job_submit(&mut self, job: &mut JobDescriptor, submit_uid: u32) -> Result<(), PluginRejection>;
}

/// Hosts the configured plugin chain and enforces the submit-path budget.
pub struct PluginHost {
    plugins: Vec<Box<dyn JobSubmitPlugin>>,
    budget_ms: u64,
}

/// Slurm aborts submit plugins that stall the controller; we default to a
/// 100 ms wall-clock budget per plugin call.
pub const DEFAULT_PLUGIN_BUDGET_MS: u64 = 100;

impl PluginHost {
    /// An empty chain with the default budget.
    pub fn new() -> Self {
        PluginHost { plugins: Vec::new(), budget_ms: DEFAULT_PLUGIN_BUDGET_MS }
    }

    /// Overrides the per-call budget (milliseconds).
    pub fn with_budget_ms(mut self, budget_ms: u64) -> Self {
        assert!(budget_ms > 0);
        self.budget_ms = budget_ms;
        self
    }

    /// Appends a plugin to the chain (`JobSubmitPlugins=a,b,...` order).
    pub fn register(&mut self, plugin: Box<dyn JobSubmitPlugin>) {
        self.plugins.push(plugin);
    }

    /// Number of registered plugins.
    pub fn len(&self) -> usize {
        self.plugins.len()
    }

    /// True when no plugins are registered.
    pub fn is_empty(&self) -> bool {
        self.plugins.is_empty()
    }

    /// The per-call budget in milliseconds.
    pub fn budget_ms(&self) -> u64 {
        self.budget_ms
    }

    /// Runs every plugin over the descriptor, in order, measuring each
    /// call. The first rejection or budget overrun aborts the submission.
    pub fn run(&mut self, job: &mut JobDescriptor, submit_uid: u32) -> Result<(), SlurmError> {
        for plugin in &mut self.plugins {
            let started = Instant::now();
            let outcome = plugin.job_submit(job, submit_uid);
            let elapsed_ms = started.elapsed().as_millis() as u64;
            if elapsed_ms > self.budget_ms {
                return Err(SlurmError::PluginTimeout {
                    plugin: plugin.name(),
                    elapsed_ms,
                    budget_ms: self.budget_ms,
                });
            }
            if let Err(rejection) = outcome {
                return Err(SlurmError::PluginRejected { plugin: plugin.name(), reason: rejection.reason });
            }
        }
        Ok(())
    }
}

impl Default for PluginHost {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SetTasks(u32);
    impl JobSubmitPlugin for SetTasks {
        fn name(&self) -> &'static str {
            "set_tasks"
        }
        fn job_submit(&mut self, job: &mut JobDescriptor, _uid: u32) -> Result<(), PluginRejection> {
            job.num_tasks = self.0;
            Ok(())
        }
    }

    struct RejectAll;
    impl JobSubmitPlugin for RejectAll {
        fn name(&self) -> &'static str {
            "reject_all"
        }
        fn job_submit(&mut self, _job: &mut JobDescriptor, _uid: u32) -> Result<(), PluginRejection> {
            Err(PluginRejection { reason: "nope".into() })
        }
    }

    struct Slow;
    impl JobSubmitPlugin for Slow {
        fn name(&self) -> &'static str {
            "slow"
        }
        fn job_submit(&mut self, _job: &mut JobDescriptor, _uid: u32) -> Result<(), PluginRejection> {
            std::thread::sleep(std::time::Duration::from_millis(30));
            Ok(())
        }
    }

    fn desc() -> JobDescriptor {
        JobDescriptor::new("j", "u", "/bin/app")
    }

    #[test]
    fn empty_chain_is_noop() {
        let mut host = PluginHost::new();
        let mut d = desc();
        assert!(host.run(&mut d, 1000).is_ok());
        assert!(host.is_empty());
    }

    #[test]
    fn plugins_run_in_order_and_mutate() {
        let mut host = PluginHost::new();
        host.register(Box::new(SetTasks(8)));
        host.register(Box::new(SetTasks(16))); // later plugin wins
        let mut d = desc();
        host.run(&mut d, 1000).unwrap();
        assert_eq!(d.num_tasks, 16);
        assert_eq!(host.len(), 2);
    }

    #[test]
    fn rejection_propagates_with_plugin_name() {
        let mut host = PluginHost::new();
        host.register(Box::new(RejectAll));
        let err = host.run(&mut desc(), 0).unwrap_err();
        assert_eq!(err, SlurmError::PluginRejected { plugin: "reject_all", reason: "nope".into() });
    }

    #[test]
    fn rejection_stops_the_chain() {
        let mut host = PluginHost::new();
        host.register(Box::new(RejectAll));
        host.register(Box::new(SetTasks(5)));
        let mut d = desc();
        let _ = host.run(&mut d, 0);
        assert_eq!(d.num_tasks, 1, "later plugin must not run");
    }

    #[test]
    fn slow_plugin_trips_the_budget() {
        let mut host = PluginHost::new().with_budget_ms(5);
        host.register(Box::new(Slow));
        let err = host.run(&mut desc(), 0).unwrap_err();
        assert!(matches!(err, SlurmError::PluginTimeout { plugin: "slow", .. }), "{err:?}");
    }

    #[test]
    fn fast_plugin_within_budget() {
        let mut host = PluginHost::new().with_budget_ms(1000);
        host.register(Box::new(Slow));
        assert!(host.run(&mut desc(), 0).is_ok());
    }

    #[test]
    fn timeout_error_reports_elapsed_and_budget() {
        let mut host = PluginHost::new().with_budget_ms(5);
        host.register(Box::new(Slow));
        match host.run(&mut desc(), 0).unwrap_err() {
            SlurmError::PluginTimeout { plugin, elapsed_ms, budget_ms } => {
                assert_eq!(plugin, "slow");
                assert!(elapsed_ms >= 30, "measured wall clock, got {elapsed_ms}");
                assert_eq!(budget_ms, 5);
            }
            other => panic!("expected PluginTimeout, got {other:?}"),
        }
    }

    #[test]
    fn budget_is_per_plugin_not_per_chain() {
        // two 30 ms plugins against a 50 ms budget: each call fits even
        // though the chain as a whole does not.
        let mut host = PluginHost::new().with_budget_ms(50);
        host.register(Box::new(Slow));
        host.register(Box::new(Slow));
        assert!(host.run(&mut desc(), 0).is_ok());
    }

    #[test]
    fn overrun_aborts_before_later_plugins_run() {
        let mut host = PluginHost::new().with_budget_ms(5);
        host.register(Box::new(Slow));
        host.register(Box::new(SetTasks(9)));
        let mut d = desc();
        let _ = host.run(&mut d, 0);
        assert_eq!(d.num_tasks, 1, "plugins after the overrun must not run");
    }
}
