//! The cluster: `slurmctld` (submission path, queue, scheduler) plus one
//! `slurmd` per simulated node, driven as a discrete-event simulation.
//!
//! Mirrors the paper's Figure 2 architecture: jobs arrive through
//! `sbatch`/`srun`, pass the job-submit plugin chain, queue by multifactor
//! priority, and are dispatched (FIFO with EASY backfill) onto simulated
//! nodes whose power/thermal state integrates as time advances. Finished
//! jobs are recorded in the accounting database ([`crate::dbd`]).

use crate::dbd::AccountingDb;
use crate::error::SlurmError;
use crate::job::{Job, JobDescriptor, JobId, JobRecord, JobState};
use crate::partition::{Partition, PartitionTable};
use crate::plugin::{JobSubmitPlugin, PluginHost};
use crate::priority::{multifactor_priority, FairShare, PriorityWeights};
use crate::script::parse_script;
use eco_hpcg::workload::Workload;
use eco_sim_node::class::NodeClass;
use eco_sim_node::clock::{SimDuration, SimTime};
use eco_sim_node::cpu::CpuSpec;
use eco_sim_node::power::CpuLoad;
use eco_sim_node::thermal::ThermalAging;
use eco_sim_node::{CpuConfig, SimNode};
use eco_telemetry::{Telemetry, TraceContext};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// A job executing on one node.
#[derive(Clone)]
struct RunningJob {
    id: JobId,
    config: CpuConfig,
    workload: Arc<dyn Workload>,
    start: SimTime,
    /// Natural completion instant.
    end: SimTime,
    /// Kill instant if the job has a time limit.
    kill_at: Option<SimTime>,
    /// System energy attributed to this job on this node so far (J).
    /// Accumulated incrementally each integration step in proportion to
    /// the job's core share, so co-scheduled jobs split the node's draw.
    system_j: f64,
    /// CPU-package energy attributed to this job on this node so far (J).
    cpu_j: f64,
}

impl RunningJob {
    /// When this job will vacate the node (completion or kill).
    fn vacate_at(&self) -> SimTime {
        match self.kill_at {
            Some(k) if k < self.end => k,
            _ => self.end,
        }
    }
}

/// One `slurmd`: a simulated node plus the jobs occupying it. Whole-node
/// scheduling keeps at most one entry; the co-scheduling placement hook
/// ([`CoSchedulePolicy::Pack`]) may stack a second, complementary job.
struct NodeDaemon {
    node: SimNode,
    running: Vec<RunningJob>,
    /// Drained nodes accept no new jobs (admin maintenance state).
    drained: bool,
    /// Accumulated busy seconds — the load history thermal aging
    /// derates against.
    busy_s: f64,
}

impl NodeDaemon {
    fn vacate_at(&self) -> Option<SimTime> {
        self.running.iter().map(|r| r.vacate_at()).max()
    }

    /// Cores already committed to running jobs.
    fn busy_cores(&self) -> u32 {
        self.running.iter().map(|r| r.config.cores).sum()
    }
}

/// Placement policy for single-node jobs when the cluster schedules more
/// than one per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoSchedulePolicy {
    /// One job per node (classic exclusive allocation). The default.
    #[default]
    Spread,
    /// Pack a memory-bound job next to a compute-bound one (or vice
    /// versa) on an already-busy node when cores and the power budget
    /// allow — the roofline-complementarity co-scheduling of Zheng et
    /// al.: jobs on opposite sides of the arithmetic-intensity ridge
    /// contend for different resources, so sharing a node amortises its
    /// platform power instead of waking another node.
    Pack,
}

/// The cluster simulation.
pub struct Cluster {
    daemons: Vec<NodeDaemon>,
    plugins: PluginHost,
    registry: HashMap<String, Arc<dyn Workload>>,
    jobs: BTreeMap<JobId, Job>,
    pending: Vec<JobId>,
    next_id: u64,
    weights: PriorityWeights,
    fairshare: FairShare,
    dbd: AccountingDb,
    backfill_enabled: bool,
    power_cap_w: Option<f64>,
    /// Watts held back from the cap at admission so the post-dispatch fan
    /// ramp (power estimates are taken at current temperatures) cannot
    /// push the instantaneous draw over the budget.
    power_headroom_w: f64,
    co_schedule: CoSchedulePolicy,
    /// Oldest-job protection: once a blocked job has waited this long,
    /// the work-conserving power cap stops admitting younger jobs ahead
    /// of it, so draining nodes eventually fit it.
    starvation_guard: Option<SimDuration>,
    partitions: PartitionTable,
    telemetry: Option<Arc<Telemetry>>,
    /// When set, nodes slow down as they accumulate busy hours (same
    /// power draw, fewer GFLOPS) — the drift the adaptation loop's
    /// outcome feed is built to notice. `None` preserves the historical
    /// ageless behaviour exactly.
    aging: Option<ThermalAging>,
}

/// Jobs whose arithmetic intensities fall on opposite sides of this
/// FLOP/byte ridge are considered roofline-complementary for packing.
const PACK_AI_RIDGE: f64 = 1.0;

/// Resolution at which running jobs' utilization profiles are re-applied
/// to the node power model.
const LOAD_UPDATE: SimDuration = SimDuration(1000);

impl Cluster {
    /// A cluster of one node — the paper's evaluation setup.
    pub fn single_node(node: SimNode) -> Self {
        Self::new(vec![node])
    }

    /// A cluster over the given nodes (the §6.2.3 multi-node extension).
    pub fn new(nodes: Vec<SimNode>) -> Self {
        assert!(!nodes.is_empty(), "a cluster needs at least one node");
        let t0 = nodes[0].now();
        assert!(nodes.iter().all(|n| n.now() == t0), "node clocks must agree");
        let partitions = PartitionTable::with_default(nodes.len());
        Cluster {
            daemons: nodes
                .into_iter()
                .map(|node| NodeDaemon { node, running: Vec::new(), drained: false, busy_s: 0.0 })
                .collect(),
            plugins: PluginHost::new(),
            registry: HashMap::new(),
            jobs: BTreeMap::new(),
            pending: Vec::new(),
            next_id: 1,
            weights: PriorityWeights::default(),
            fairshare: FairShare::new(),
            dbd: AccountingDb::new(),
            backfill_enabled: true,
            power_cap_w: None,
            power_headroom_w: 0.0,
            co_schedule: CoSchedulePolicy::default(),
            starvation_guard: None,
            partitions,
            telemetry: None,
            aging: None,
        }
    }

    /// A heterogeneous cluster built from node classes: `counts` gives
    /// how many nodes of each class to instantiate, in order. Each class
    /// gets a partition named after it (carrying the class name for the
    /// prediction key space); the first class is the default partition.
    pub fn heterogeneous(classes: &[(NodeClass, usize)]) -> Self {
        assert!(!classes.is_empty(), "a cluster needs at least one node class");
        let mut nodes = Vec::new();
        let mut ranges: Vec<(String, Vec<usize>)> = Vec::new();
        for (class, count) in classes {
            assert!(*count > 0, "class '{}' instantiates zero nodes", class.name);
            let start = nodes.len();
            for _ in 0..*count {
                nodes.push(class.node());
            }
            ranges.push((class.name.clone(), (start..nodes.len()).collect()));
        }
        let mut cluster = Cluster::new(nodes);
        // per-class partitions are the only routes onto a heterogeneous
        // cluster; they replace the auto-created span-everything default
        let mut table = PartitionTable::default();
        for (i, (name, range)) in ranges.into_iter().enumerate() {
            let mut partition = Partition::over(&name, range).with_class(&name);
            if i == 0 {
                partition = partition.as_default();
            }
            table.upsert(partition);
        }
        cluster.partitions = table;
        cluster
    }

    /// Registers a job-submit plugin (the `JobSubmitPlugins=` line).
    pub fn register_plugin(&mut self, plugin: Box<dyn JobSubmitPlugin>) {
        self.plugins.register(plugin);
    }

    /// Replaces the plugin host (to adjust the submit-path time budget).
    pub fn set_plugin_host(&mut self, host: PluginHost) {
        self.plugins = host;
        if let Some(t) = &self.telemetry {
            self.plugins.set_telemetry(Arc::clone(t));
        }
    }

    /// Attaches telemetry: every `sbatch` roots a trace whose spans
    /// cover parsing, submission and each plugin call, and the
    /// scheduler's dispatch decisions bump `slurm.sched_*` counters.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.plugins.set_telemetry(Arc::clone(&telemetry));
        self.telemetry = Some(telemetry);
    }

    /// Installs an executable at a path; jobs reference it by path.
    pub fn register_binary(&mut self, path: &str, workload: Arc<dyn Workload>) {
        self.registry.insert(path.to_string(), workload);
    }

    /// Disables EASY backfill (pure FIFO-by-priority).
    pub fn set_backfill(&mut self, enabled: bool) {
        self.backfill_enabled = enabled;
    }

    /// Installs a cluster-wide power cap (W): the scheduler will not start
    /// a job whose estimated steady-state draw would push the cluster's
    /// aggregate system power over the budget. This is the value-oriented
    /// power-constrained scheduling of Kumbhare et al. that the paper's
    /// related-work section points at for "dynamically changing the order
    /// of jobs". `None` removes the cap.
    pub fn set_power_cap(&mut self, watts: Option<f64>) {
        if let Some(w) = watts {
            assert!(w > 0.0, "power cap must be positive");
        }
        self.power_cap_w = watts;
    }

    /// Reserves `watts` of the power cap for post-dispatch drift:
    /// admission estimates draw at *current* temperatures, and fans ramp
    /// as dispatched jobs heat their packages. An operator who needs the
    /// instantaneous draw to never cross the cap sets this to the fleet's
    /// worst-case fan ramp (see [`NodeClass::max_fan_w`]); the default of
    /// 0 keeps the historical steady-state-estimate behaviour.
    pub fn set_power_headroom(&mut self, watts: f64) {
        assert!(watts >= 0.0, "headroom cannot be negative");
        self.power_headroom_w = watts;
    }

    /// Selects the co-scheduling placement policy for single-node jobs.
    pub fn set_co_schedule(&mut self, policy: CoSchedulePolicy) {
        self.co_schedule = policy;
    }

    /// Installs (or removes) thermal aging: with it set, every node's
    /// sustained GFLOPS derate as its busy hours accumulate while its
    /// power draw does not, so jobs take longer at the same wattage.
    /// This is the deterministic drift injector the adaptation harness
    /// runs against; `None` (the default) changes nothing.
    pub fn set_thermal_aging(&mut self, aging: Option<ThermalAging>) {
        self.aging = aging;
    }

    /// The throughput fraction node `idx` currently sustains at
    /// `frequency_khz` under the installed aging model (1.0 when aging
    /// is off or the node is new). Aging is frequency-aware: a degraded
    /// cooling path throttles the high-power DVFS states hardest, so a
    /// job pinned low on the V/f curve still runs near nominal — see
    /// [`ThermalAging::derate_at`].
    pub fn thermal_derate(&self, idx: usize, frequency_khz: u64) -> f64 {
        self.aging.map_or(1.0, |a| {
            let top = self.daemons[idx].node.spec().frequencies_khz.iter().copied().max().unwrap_or(0);
            a.derate_at(self.daemons[idx].busy_s / 3600.0, frequency_khz, top)
        })
    }

    /// Pre-ages every node by `busy_hours` of accumulated load, as if
    /// the cluster had been in production that long before the run
    /// began (the adaptation harness's fast-forward; real aging also
    /// accrues naturally as jobs execute).
    pub fn age_nodes(&mut self, busy_hours: f64) {
        for daemon in &mut self.daemons {
            daemon.busy_s += busy_hours.max(0.0) * 3600.0;
        }
    }

    /// Bounds how long the work-conserving power cap may pass over a
    /// blocked job: once the oldest blocked job has waited `age`, no
    /// younger job is admitted ahead of it until it dispatches. `None`
    /// (the default) keeps the cap fully work-conserving.
    pub fn set_starvation_guard(&mut self, age: Option<SimDuration>) {
        self.starvation_guard = age;
    }

    /// Adds (or replaces) a partition. Node indices must exist.
    pub fn add_partition(&mut self, partition: Partition) {
        assert!(
            partition.nodes.iter().all(|&n| n < self.daemons.len()),
            "partition references a node the cluster does not have"
        );
        self.partitions.upsert(partition);
    }

    /// The configured partitions.
    pub fn partitions(&self) -> &PartitionTable {
        &self.partitions
    }

    /// The single electrical configuration standing in for every job on a
    /// node: cores sum (clamped to the package), the fastest requested
    /// frequency, the widest SMT setting. Exact for the common exclusive
    /// allocation; a slight over-estimate for packed jobs at different
    /// frequencies, which errs on the safe side of a power cap.
    fn combined_config(spec: &CpuSpec, configs: &[CpuConfig]) -> CpuConfig {
        let cores = configs.iter().map(|c| c.cores).sum::<u32>().min(spec.cores).max(1);
        let frequency_khz = configs.iter().map(|c| c.frequency_khz).max().unwrap_or_else(|| spec.max_frequency());
        let threads_per_core = configs.iter().map(|c| c.threads_per_core).max().unwrap_or(1);
        CpuConfig { cores, frequency_khz, threads_per_core }
    }

    /// The load a node is committed to at full activity: the combined
    /// configuration of its running jobs at utilization 1.0, or idle.
    /// This is the planning view power-cap admission sums over.
    fn planned_load(&self, idx: usize) -> CpuLoad {
        let d = &self.daemons[idx];
        if d.running.is_empty() {
            return CpuLoad::idle(d.node.spec());
        }
        let configs: Vec<CpuConfig> = d.running.iter().map(|r| r.config).collect();
        CpuLoad::busy(Self::combined_config(d.node.spec(), &configs))
    }

    /// Estimated aggregate steady-state system power right now: busy nodes
    /// at their jobs' combined configuration, idle nodes at idle draw.
    pub fn estimated_power_w(&self) -> f64 {
        (0..self.daemons.len())
            .map(|i| {
                let d = &self.daemons[i];
                // steady-state fan feedback: use the node's current temp,
                // a good proxy at scheduling granularity
                d.node.power_model().system_power(&self.planned_load(i), d.node.telemetry().cpu_temp_c)
            })
            .sum()
    }

    /// Ground-truth instantaneous cluster draw (W): the sum of every
    /// node's telemetry right now. This is what a facility meter reads
    /// and what the simulation harness audits against the cap.
    pub fn instantaneous_power_w(&self) -> f64 {
        self.daemons.iter().map(|d| d.node.telemetry().system_power_w).sum()
    }

    /// Estimated steady-state system power one node would *additionally*
    /// draw if `config` started there: the combined load with the new job
    /// minus the load it is already committed to. On an empty node this
    /// is the classic busy-minus-idle marginal cost.
    fn marginal_power_w(&self, node_idx: usize, config: &CpuConfig) -> f64 {
        let d = &self.daemons[node_idx];
        let temp = d.node.telemetry().cpu_temp_c;
        let mut configs: Vec<CpuConfig> = d.running.iter().map(|r| r.config).collect();
        let before = self.planned_load(node_idx);
        configs.push(*config);
        let after = CpuLoad::busy(Self::combined_config(d.node.spec(), &configs));
        d.node.power_model().system_power(&after, temp) - d.node.power_model().system_power(&before, temp)
    }

    /// Overrides the multifactor priority weights.
    pub fn set_priority_weights(&mut self, weights: PriorityWeights) {
        self.weights = weights;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.daemons[0].node.now()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.daemons.len()
    }

    /// Read access to a node (IPMI/wattmeter sampling goes through this).
    pub fn node(&self, idx: usize) -> &SimNode {
        &self.daemons[idx].node
    }

    /// Drains or resumes a node (`scontrol update nodename=… state=drain`).
    /// A drained node finishes its current job but receives no new ones.
    pub fn set_drained(&mut self, idx: usize, drained: bool) {
        self.daemons[idx].drained = drained;
        if !drained {
            self.schedule();
        }
    }

    /// Whether a node is drained.
    pub fn is_drained(&self, idx: usize) -> bool {
        self.daemons[idx].drained
    }

    /// The accounting database.
    pub fn accounting(&self) -> &AccountingDb {
        &self.dbd
    }

    /// A job's current state.
    pub fn job(&self, id: JobId) -> Result<&Job, SlurmError> {
        self.jobs.get(&id).ok_or(SlurmError::NoSuchJob(id))
    }

    /// Submits a batch script (`sbatch`), returning the new job id. For a
    /// job-array script, returns the first array element's id (use
    /// [`Cluster::sbatch_array`] for all of them).
    pub fn sbatch(&mut self, script: &str, user: &str) -> Result<JobId, SlurmError> {
        self.sbatch_array(script, user).map(|ids| ids[0])
    }

    /// Submits a batch script, expanding `#SBATCH --array=...` into one
    /// job per task index (`name_[i]`). Non-array scripts yield one job.
    pub fn sbatch_array(&mut self, script: &str, user: &str) -> Result<Vec<JobId>, SlurmError> {
        let mut root = self.telemetry.as_ref().map(|t| {
            t.counter("slurm.sbatch").bump();
            let mut s = t.root_span("slurm", "sbatch");
            s.attr("user", user);
            s
        });
        let parsed = {
            let parse_span = root.as_ref().map(|r| r.child("slurm", "parse"));
            let parsed =
                parse_script(script, user).and_then(|desc| Ok((desc, crate::commands::array_directive(script)?)));
            if let Some(s) = parse_span {
                match &parsed {
                    Ok(_) => s.finish(),
                    Err(e) => s.fail(e.to_string()),
                }
            }
            parsed
        };
        let ctx = root.as_ref().map(|s| s.context());
        let result: Result<Vec<JobId>, SlurmError> = (|| match parsed? {
            (desc, None) => Ok(vec![self.submit_traced(desc, ctx)?]),
            (desc, Some(spec)) => {
                let mut ids = Vec::with_capacity(spec.indices.len());
                for idx in spec.indices {
                    let mut element = desc.clone();
                    element.name = format!("{}_[{}]", desc.name, idx);
                    ids.push(self.submit_traced(element, ctx)?);
                }
                Ok(ids)
            }
        })();
        if let Err(e) = &result {
            if let Some(s) = root.take() {
                s.fail(e.to_string());
            }
        }
        result
    }

    /// Runs an `srun` command line: parses, submits, and returns the job
    /// id (the caller advances the simulation to completion, mirroring the
    /// interactive blocking behaviour).
    pub fn srun(&mut self, argv: &[&str], user: &str) -> Result<JobId, SlurmError> {
        let desc = crate::commands::parse_srun(argv, user)?;
        self.submit(desc)
    }

    /// `sacct`-style accounting listing (completed jobs with energy).
    pub fn sacct(&self) -> String {
        let mut out = String::from("JobID  JobName         User      State      Elapsed    SystemEnergy\n");
        for r in self.dbd.records() {
            let elapsed = match (r.start_time, r.end_time) {
                (Some(s), Some(e)) => (e - s).to_string(),
                _ => "-".to_string(),
            };
            out.push_str(&format!(
                "{:<6} {:<15} {:<9} {:<10} {:<10} {:>9.1} kJ\n",
                r.id,
                truncate(&r.name, 15),
                truncate(&r.user, 9),
                format!("{:?}", r.state),
                elapsed,
                r.system_energy_j / 1000.0,
            ));
        }
        out
    }

    /// Submits a prepared descriptor (what `srun`/API submission becomes).
    pub fn submit(&mut self, desc: JobDescriptor) -> Result<JobId, SlurmError> {
        self.submit_traced(desc, None)
    }

    /// [`Cluster::submit`] joined to a trace: the submission span opens
    /// under `parent` (or roots a fresh trace) and its context flows
    /// through the plugin chain and onward to any remote prediction.
    pub fn submit_traced(&mut self, desc: JobDescriptor, parent: Option<TraceContext>) -> Result<JobId, SlurmError> {
        let mut span = self.telemetry.as_ref().map(|t| {
            t.counter("slurm.submissions").bump();
            let mut s = t.span_maybe_under(parent, "slurm", "submit");
            s.attr("name", &desc.name);
            s
        });
        let ctx = span.as_ref().map(|s| s.context()).or(parent);
        let result = self.submit_inner(desc, ctx);
        match &result {
            Ok(id) => {
                if let Some(s) = &mut span {
                    s.attr("job", id);
                }
            }
            Err(e) => {
                if let Some(t) = &self.telemetry {
                    t.counter("slurm.submit_errors").bump();
                }
                if let Some(s) = span.take() {
                    s.fail(e.to_string());
                }
            }
        }
        result
    }

    fn submit_inner(&mut self, mut desc: JobDescriptor, ctx: Option<TraceContext>) -> Result<JobId, SlurmError> {
        if !self.registry.contains_key(&desc.binary_path) {
            return Err(SlurmError::UnknownBinary(desc.binary_path));
        }
        let partition = self.partitions.resolve(desc.partition.as_deref()).ok_or_else(|| {
            SlurmError::Unsatisfiable(format!("unknown partition '{}'", desc.partition.as_deref().unwrap_or("")))
        })?;
        if desc.num_nodes as usize > partition.nodes.len() {
            return Err(SlurmError::Unsatisfiable(format!(
                "{} nodes requested, partition '{}' has {}",
                desc.num_nodes,
                partition.name,
                partition.nodes.len()
            )));
        }
        // the partition's MaxTime caps the job's own request
        desc.time_limit = partition.effective_time_limit(desc.time_limit);
        self.plugins.run_traced(&mut desc, 1000, ctx)?;

        let id = JobId(self.next_id);
        self.next_id += 1;
        let job = Job {
            id,
            descriptor: desc,
            state: JobState::Pending,
            submit_time: self.now(),
            start_time: None,
            end_time: None,
            node: None,
        };
        self.jobs.insert(id, job);
        self.pending.push(id);
        self.schedule();
        Ok(id)
    }

    /// Cancels a pending or running job (`scancel`).
    pub fn cancel(&mut self, id: JobId) -> Result<(), SlurmError> {
        let state = self.job(id)?.state;
        match state {
            JobState::Pending => {
                self.pending.retain(|&p| p != id);
                self.finish_queued_job(id, JobState::Cancelled);
                Ok(())
            }
            JobState::Running => {
                self.complete_job(id, JobState::Cancelled);
                Ok(())
            }
            s => Err(SlurmError::InvalidState { job: id, reason: format!("cannot cancel in state {s:?}") }),
        }
    }

    /// Advances simulated time, executing and completing jobs.
    pub fn advance(&mut self, dt: SimDuration) {
        let target = self.now() + dt;
        while self.now() < target {
            let now = self.now();
            // next point any running job vacates its node
            let next_event =
                self.daemons.iter().flat_map(|d| d.running.iter().map(|r| r.vacate_at())).min().unwrap_or(target);
            let step_end = target.min(next_event.max(now)).min(now + LOAD_UPDATE);
            let step = step_end - now;

            if step.is_zero() {
                // an event fires exactly now
                self.fire_due_events();
                // a zero-length stall with nothing due means next_event was
                // in the past relative to target handling; force progress
                if self.due_event_count() == 0 && self.now() < target {
                    let force = SimDuration((target - self.now()).as_millis().min(LOAD_UPDATE.as_millis()).max(1));
                    self.step_nodes(force);
                }
                continue;
            }

            self.step_nodes(step);
            self.fire_due_events();
            self.schedule();
        }
        self.schedule();
    }

    /// Runs the simulation forward until no job is pending or running, up
    /// to `max` simulated time. Returns true if the cluster went idle.
    pub fn run_until_idle(&mut self, max: SimDuration) -> bool {
        let deadline = self.now() + max;
        while self.now() < deadline {
            if self.is_idle() {
                return true;
            }
            let step = SimDuration((deadline - self.now()).as_millis().min(60_000));
            self.advance(step);
        }
        self.is_idle()
    }

    /// True when nothing is pending or running.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.daemons.iter().all(|d| d.running.is_empty())
    }

    /// `squeue`-style listing of non-terminal jobs.
    pub fn squeue(&self) -> String {
        let mut out = String::from("JOBID  PARTITION  NAME            USER      ST  TIME      NODES\n");
        for job in self.jobs.values() {
            if job.state.is_terminal() {
                continue;
            }
            let partition =
                self.partitions.resolve(job.descriptor.partition.as_deref()).map(|p| p.name.as_str()).unwrap_or("?");
            out.push_str(&format!(
                "{:<6} {:<10} {:<15} {:<9} {:<3} {:<9} {}\n",
                job.id,
                truncate(partition, 10),
                truncate(&job.descriptor.name, 15),
                truncate(&job.descriptor.user, 9),
                job.state.code(),
                job.elapsed(self.now()).to_string(),
                job.descriptor.num_nodes,
            ));
        }
        out
    }

    /// `scontrol show job`-style detail for one job.
    pub fn scontrol_show_job(&self, id: JobId) -> Result<String, SlurmError> {
        let job = self.job(id)?;
        let d = &job.descriptor;
        Ok(format!(
            "JobId={} JobName={}\n   UserId={} JobState={:?} QOS={:?}\n   NumNodes={} NumTasks={} ThreadsPerCore={}\n   CpuFreqMin={} CpuFreqMax={}\n   Comment={}\n   SubmitTime={} StartTime={} EndTime={}\n   Command={}\n",
            job.id,
            d.name,
            d.user,
            job.state,
            d.qos,
            d.num_nodes,
            d.num_tasks,
            d.threads_per_cpu,
            d.min_frequency_khz.map_or("n/a".into(), |f| f.to_string()),
            d.max_frequency_khz.map_or("n/a".into(), |f| f.to_string()),
            if d.comment.is_empty() { "(null)" } else { &d.comment },
            job.submit_time,
            job.start_time.map_or("n/a".into(), |t| t.to_string()),
            job.end_time.map_or("n/a".into(), |t| t.to_string()),
            d.binary_path,
        ))
    }

    /// `sinfo`-style node summary with partition membership.
    pub fn sinfo(&self) -> String {
        let mut out = String::from("NODE   STATE  CORES  PARTITIONS       JOB\n");
        for (i, d) in self.daemons.iter().enumerate() {
            let ids = d.running.iter().map(|r| r.id.to_string()).collect::<Vec<_>>().join("+");
            let (state, job) = match (d.running.is_empty(), d.drained) {
                (false, true) => ("drng", ids),
                (false, false) => ("alloc", ids),
                (true, true) => ("drain", "-".to_string()),
                (true, false) => ("idle", "-".to_string()),
            };
            let parts: Vec<&str> =
                self.partitions.all().iter().filter(|p| p.contains(i)).map(|p| p.name.as_str()).collect();
            out.push_str(&format!(
                "n{:<5} {:<6} {:<6} {:<16} {}\n",
                i,
                state,
                d.node.spec().cores,
                truncate(&parts.join(","), 16),
                job
            ));
        }
        out
    }

    // ---- internals ----

    fn step_nodes(&mut self, step: SimDuration) {
        for daemon in &mut self.daemons {
            if daemon.running.is_empty() {
                daemon.node.set_idle();
                daemon.node.advance(step);
                continue;
            }
            // one electrical load stands in for every resident job:
            // combined configuration, core-weighted mean utilization
            let now = daemon.node.now();
            let configs: Vec<CpuConfig> = daemon.running.iter().map(|r| r.config).collect();
            let combined = Self::combined_config(daemon.node.spec(), &configs);
            let weight_total: f64 = configs.iter().map(|c| c.cores as f64).sum();
            let utilization = daemon
                .running
                .iter()
                .map(|r| {
                    let elapsed = (now - r.start).as_secs_f64();
                    r.workload.utilization(&r.config, elapsed) * r.config.cores as f64
                })
                .sum::<f64>()
                / weight_total;
            daemon.node.set_load(CpuLoad { config: combined, utilization });

            // advance, then attribute the node's energy delta to the
            // resident jobs in proportion to their core shares
            let before = daemon.node.energy();
            daemon.node.advance(step);
            let after = daemon.node.energy();
            let (d_sys, d_cpu) = (after.system_j - before.system_j, after.cpu_j - before.cpu_j);
            for r in &mut daemon.running {
                let share = r.config.cores as f64 / weight_total;
                r.system_j += d_sys * share;
                r.cpu_j += d_cpu * share;
            }
        }
    }

    fn due_event_count(&self) -> usize {
        let now = self.now();
        self.daemons.iter().flat_map(|d| d.running.iter()).filter(|r| r.vacate_at() <= now).count()
    }

    fn fire_due_events(&mut self) {
        let now = self.now();
        let due: Vec<(JobId, JobState)> = {
            let mut seen = HashSet::new();
            self.daemons
                .iter()
                .flat_map(|d| d.running.iter())
                .filter(|r| r.vacate_at() <= now)
                .filter(|r| seen.insert(r.id))
                .map(|r| {
                    (r.id, if r.kill_at.is_some_and(|k| k < r.end) { JobState::Timeout } else { JobState::Completed })
                })
                .collect()
        };
        for (id, state) in due {
            self.complete_job(id, state);
        }
    }

    /// Vacates every node slot a job occupies (1 for single-node jobs, N
    /// for multi-node, a shared node for packed jobs), sums the energy
    /// attributed to it, and writes one accounting record.
    fn complete_job(&mut self, id: JobId, state: JobState) {
        let mut system_energy_j = 0.0;
        let mut cpu_energy_j = 0.0;
        let mut config = None;
        let mut core_seconds = 0.0;
        let now = self.now();
        let mut touched = Vec::new();
        for (idx, daemon) in self.daemons.iter_mut().enumerate() {
            if let Some(pos) = daemon.running.iter().position(|r| r.id == id) {
                let running = daemon.running.remove(pos);
                system_energy_j += running.system_j;
                cpu_energy_j += running.cpu_j;
                core_seconds += (now - running.start).as_secs_f64() * running.config.cores as f64;
                config = Some(running.config);
                touched.push(idx);
            }
        }
        for idx in touched {
            let load = self.planned_load(idx);
            self.daemons[idx].node.set_load(load);
        }
        assert!(config.is_some(), "job {id} was not running anywhere");

        let job = self.jobs.get_mut(&id).expect("running job is tracked");
        job.state = state;
        job.end_time = Some(now);
        self.fairshare.record(&job.descriptor.user, core_seconds);

        self.dbd.insert(JobRecord {
            id: job.id,
            name: job.descriptor.name.clone(),
            user: job.descriptor.user.clone(),
            state,
            config,
            submit_time: job.submit_time,
            start_time: job.start_time,
            end_time: job.end_time,
            system_energy_j,
            cpu_energy_j,
        });
    }

    fn finish_queued_job(&mut self, id: JobId, state: JobState) {
        let now = self.now();
        let job = self.jobs.get_mut(&id).expect("queued job is tracked");
        job.state = state;
        job.end_time = Some(now);
        self.dbd.insert(JobRecord {
            id: job.id,
            name: job.descriptor.name.clone(),
            user: job.descriptor.user.clone(),
            state,
            config: None,
            submit_time: job.submit_time,
            start_time: None,
            end_time: job.end_time,
            system_energy_j: 0.0,
            cpu_energy_j: 0.0,
        });
    }

    /// Priority-ordered dispatch with EASY backfill.
    fn schedule(&mut self) {
        let now = self.now();
        // order pending by multifactor priority (desc), submit order as tie-break
        let mut order: Vec<JobId> = self.pending.clone();
        order.sort_by(|&a, &b| {
            let pa = self.job_priority(a, now);
            let pb = self.job_priority(b, now);
            pb.partial_cmp(&pa).expect("priorities are finite").then(a.cmp(&b))
        });

        let mut free: Vec<usize> = (0..self.daemons.len())
            .filter(|&i| self.daemons[i].running.is_empty() && !self.daemons[i].drained)
            .collect();
        let mut shadow: Option<SimTime> = None; // head job's reserved start

        for id in order {
            let job = &self.jobs[&id];
            if job.descriptor.begin_time.is_some_and(|b| b > now) {
                continue; // --begin not reached
            }
            let need = job.descriptor.num_nodes as usize;
            // only nodes of the job's partition are eligible
            let eligible: Vec<usize> = match self.partitions.resolve(job.descriptor.partition.as_deref()) {
                Some(p) => free.iter().copied().filter(|&n| p.contains(n)).collect(),
                None => Vec::new(),
            };
            // co-scheduling hook: a single-node job may share an
            // already-busy node with a roofline-complementary resident —
            // it consumes no free node, so it can never delay the head
            // job's reservation
            if need == 1 && self.co_schedule == CoSchedulePolicy::Pack {
                if let Some(host) = self.try_pack(id) {
                    if let Some(t) = &self.telemetry {
                        t.counter("slurm.sched_dispatched").bump();
                        t.counter("slurm.sched_packed").bump();
                    }
                    self.pack_job(id, host);
                    continue;
                }
            }
            let nodes_ok = need <= eligible.len() && self.can_backfill(id, need, free.len(), shadow);
            if nodes_ok && self.within_power_cap(id, &eligible[..need]) {
                let assigned: Vec<usize> = eligible[..need].to_vec();
                free.retain(|n| !assigned.contains(n));
                if let Some(t) = &self.telemetry {
                    t.counter("slurm.sched_dispatched").bump();
                    if shadow.is_some() {
                        t.counter("slurm.sched_backfilled").bump();
                    }
                }
                self.start_job(id, &assigned);
            } else if nodes_ok {
                // power-blocked: skipped without a node reservation — a
                // cheaper job may still start (work-conserving power cap;
                // the starvation trade-off is the operator's, as in
                // value-oriented power-constrained scheduling) unless the
                // job has aged past the starvation guard, in which case
                // nothing younger may jump it and the queue drains to fit
                // it
                if let Some(t) = &self.telemetry {
                    t.counter("slurm.sched_power_blocked").bump();
                }
                if self.starvation_guard.is_some_and(|g| now - job.submit_time >= g) {
                    if let Some(t) = &self.telemetry {
                        t.counter("slurm.sched_starvation_stall").bump();
                    }
                    break;
                }
            } else if shadow.is_none() {
                // node-blocked head job: reserve its start time
                shadow = Some(self.earliest_start(id, need, eligible.len()));
                if let Some(t) = &self.telemetry {
                    t.counter("slurm.sched_head_blocked").bump();
                }
                if !self.backfill_enabled {
                    break; // strict FIFO: nothing may jump the head job
                }
            } else if self.starvation_guard.is_some_and(|g| now - job.submit_time >= g) {
                // node-blocked non-head job past the guard: stop admitting
                // younger jobs over it
                if let Some(t) = &self.telemetry {
                    t.counter("slurm.sched_starvation_stall").bump();
                }
                break;
            }
        }
        self.pending.retain(|id| self.jobs[id].state == JobState::Pending);
    }

    /// The power budget admission compares against: the cap minus the
    /// configured drift headroom.
    fn power_budget_w(&self) -> Option<f64> {
        self.power_cap_w.map(|cap| cap - self.power_headroom_w)
    }

    /// Power-cap admission: starting the job on these nodes must not push
    /// the cluster's estimated aggregate draw over the budget. Each
    /// node's marginal cost is priced with the configuration resolved
    /// against *that node's* spec, so mixed-class partitions are charged
    /// correctly.
    fn within_power_cap(&self, id: JobId, nodes: &[usize]) -> bool {
        let Some(budget) = self.power_budget_w() else { return true };
        let job = &self.jobs[&id];
        let marginal: f64 = nodes
            .iter()
            .map(|&i| {
                let config = job.descriptor.resolve_config(self.daemons[i].node.spec());
                self.marginal_power_w(i, &config)
            })
            .sum();
        self.estimated_power_w() + marginal <= budget
    }

    /// Finds a host node for packing `id` next to running jobs: the node
    /// must be in the job's partition, not drained, already busy, have
    /// enough uncommitted cores, hold only roofline-complementary
    /// residents (opposite side of the arithmetic-intensity ridge), and
    /// the packed marginal power must fit the budget. Returns the first
    /// such node.
    fn try_pack(&self, id: JobId) -> Option<usize> {
        let job = &self.jobs[&id];
        let workload = self.registry.get(&job.descriptor.binary_path)?;
        let ai = workload.arithmetic_intensity();
        let partition = self.partitions.resolve(job.descriptor.partition.as_deref())?;
        (0..self.daemons.len()).find(|&idx| {
            let d = &self.daemons[idx];
            if d.drained || d.running.is_empty() || !partition.contains(idx) {
                return false;
            }
            let config = job.descriptor.resolve_config(d.node.spec());
            if d.busy_cores() + config.cores > d.node.spec().cores {
                return false;
            }
            let complementary =
                d.running.iter().all(|r| (r.workload.arithmetic_intensity() < PACK_AI_RIDGE) != (ai < PACK_AI_RIDGE));
            if !complementary {
                return false;
            }
            match self.power_budget_w() {
                Some(budget) => self.estimated_power_w() + self.marginal_power_w(idx, &config) <= budget,
                None => true,
            }
        })
    }

    /// EASY backfill admission: a job may start now if no head job is
    /// blocked, or if it finishes before the blocked head job's reserved
    /// start, or if enough nodes remain free for the head job anyway.
    fn can_backfill(&self, id: JobId, need: usize, free: usize, shadow: Option<SimTime>) -> bool {
        let Some(shadow) = shadow else { return true };
        if !self.backfill_enabled {
            return false;
        }
        let job = &self.jobs[&id];
        if free >= need + self.head_need() {
            return true;
        }
        match self.expected_duration(job) {
            Some(d) => self.now() + d <= shadow,
            None => false,
        }
    }

    fn head_need(&self) -> usize {
        self.pending.first().map_or(0, |id| self.jobs[id].descriptor.num_nodes as usize)
    }

    /// Earliest instant at which `need` nodes of the job's partition will
    /// be free, assuming running jobs vacate at their known end times.
    /// `eligible_now` is how many partition nodes are free already.
    fn earliest_start(&self, id: JobId, need: usize, eligible_now: usize) -> SimTime {
        if eligible_now >= need {
            return self.now();
        }
        let job = &self.jobs[&id];
        let partition = self.partitions.resolve(job.descriptor.partition.as_deref());
        let mut ends: Vec<SimTime> = self
            .daemons
            .iter()
            .enumerate()
            .filter(|(i, _)| partition.is_none_or(|p| p.contains(*i)))
            .filter_map(|(_, d)| d.vacate_at())
            .collect();
        ends.sort_unstable();
        let still_needed = need - eligible_now;
        ends.get(still_needed - 1).copied().unwrap_or_else(|| self.now() + SimDuration::from_mins(60))
    }

    fn expected_duration(&self, job: &Job) -> Option<SimDuration> {
        let workload = self.registry.get(&job.descriptor.binary_path)?;
        // resolve against the job's own partition's hardware, not node 0 —
        // on a heterogeneous cluster those differ
        let partition = self.partitions.resolve(job.descriptor.partition.as_deref())?;
        let spec = self.daemons[*partition.nodes.first()?].node.spec();
        let config = job.descriptor.resolve_config(spec);
        let derate = self.thermal_derate(*partition.nodes.first()?, config.frequency_khz);
        let natural = SimDuration::from_secs_f64(workload.duration(&config).as_secs_f64() / derate);
        Some(match job.descriptor.time_limit {
            Some(limit) if limit < natural => limit,
            _ => natural,
        })
    }

    fn start_job(&mut self, id: JobId, nodes: &[usize]) {
        let now = self.now();
        let (config, workload, duration, kill_at) = {
            let job = &self.jobs[&id];
            let workload = self.registry[&job.descriptor.binary_path].clone();
            let spec = self.daemons[nodes[0]].node.spec();
            let config = job.descriptor.resolve_config(spec);
            // multi-node jobs split the work evenly across their nodes;
            // the most aged allocated node gates the whole job
            let per_node_gflop = workload.total_gflop() / nodes.len() as f64;
            let derate = nodes.iter().map(|&i| self.thermal_derate(i, config.frequency_khz)).fold(1.0f64, f64::min);
            let duration = SimDuration::from_secs_f64(per_node_gflop / (workload.gflops(&config) * derate));
            let kill_at = job.descriptor.time_limit.map(|l| now + l);
            (config, workload, duration, kill_at)
        };

        for &idx in nodes {
            self.daemons[idx].busy_s += duration.as_secs_f64();
            self.daemons[idx].running.push(RunningJob {
                id,
                config,
                workload: workload.clone(),
                start: now,
                end: now + duration,
                kill_at,
                system_j: 0.0,
                cpu_j: 0.0,
            });
            let load = self.planned_load(idx);
            self.daemons[idx].node.set_load(load);
        }

        let job = self.jobs.get_mut(&id).expect("job is tracked");
        job.state = JobState::Running;
        job.start_time = Some(now);
        job.node = Some(nodes[0]);
    }

    /// Stacks a single-node job onto an already-busy host node (the
    /// [`CoSchedulePolicy::Pack`] placement). The host's electrical load
    /// becomes the combined configuration of all residents.
    fn pack_job(&mut self, id: JobId, host: usize) {
        let now = self.now();
        let (config, workload, duration, kill_at) = {
            let job = &self.jobs[&id];
            let workload = self.registry[&job.descriptor.binary_path].clone();
            let config = job.descriptor.resolve_config(self.daemons[host].node.spec());
            let derate = self.thermal_derate(host, config.frequency_khz);
            let duration = SimDuration::from_secs_f64(workload.duration(&config).as_secs_f64() / derate);
            let kill_at = job.descriptor.time_limit.map(|l| now + l);
            (config, workload, duration, kill_at)
        };
        self.daemons[host].busy_s += duration.as_secs_f64();
        self.daemons[host].running.push(RunningJob {
            id,
            config,
            workload,
            start: now,
            end: now + duration,
            kill_at,
            system_j: 0.0,
            cpu_j: 0.0,
        });
        let load = self.planned_load(host);
        self.daemons[host].node.set_load(load);

        let job = self.jobs.get_mut(&id).expect("job is tracked");
        job.state = JobState::Running;
        job.start_time = Some(now);
        job.node = Some(host);
    }

    fn job_priority(&self, id: JobId, now: SimTime) -> f64 {
        let job = &self.jobs[&id];
        let base = multifactor_priority(job, now, self.total_cores(), &self.weights, &self.fairshare);
        let bonus =
            self.partitions.resolve(job.descriptor.partition.as_deref()).map(|p| p.priority_bonus).unwrap_or(0.0);
        base + bonus
    }

    fn total_cores(&self) -> u32 {
        self.daemons.iter().map(|d| d.node.spec().cores).sum()
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        return s;
    }
    let mut end = n;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::generate_hpcg_script;
    use eco_hpcg::workload::{ScalingKind, SyntheticWorkload};

    fn quick_workload(gflop: f64) -> Arc<dyn Workload> {
        // compute-bound: 1 GFLOP/s per core per GHz
        Arc::new(SyntheticWorkload::new("quick", ScalingKind::ComputeBound, gflop, 1.0))
    }

    fn cluster() -> Cluster {
        let mut c = Cluster::single_node(SimNode::sr650());
        c.register_binary("/bin/app", quick_workload(800.0));
        c
    }

    fn desc(tasks: u32) -> JobDescriptor {
        let mut d = JobDescriptor::new("t", "alice", "/bin/app");
        d.num_tasks = tasks;
        d
    }

    #[test]
    fn submit_and_complete_job() {
        let mut c = cluster();
        // 32 cores @ 2.5 GHz => 80 GFLOP/s => 800 GFLOP takes 10 s
        let id = c.submit(desc(32)).unwrap();
        assert_eq!(c.job(id).unwrap().state, JobState::Running, "single free node starts immediately");
        c.advance(SimDuration::from_secs(11));
        assert_eq!(c.job(id).unwrap().state, JobState::Completed);
        let rec = c.accounting().get(id).unwrap();
        assert_eq!(rec.state, JobState::Completed);
        assert!(rec.system_energy_j > 0.0);
        assert!(rec.cpu_energy_j > 0.0);
        assert!(rec.cpu_energy_j < rec.system_energy_j);
    }

    #[test]
    fn thermal_aging_slows_jobs_at_unchanged_power() {
        // without aging: 800 GFLOP at 80 GFLOP/s = 10 s per job, forever
        let mut fresh = cluster();
        let a = fresh.submit(desc(32)).unwrap();
        fresh.advance(SimDuration::from_secs(11));
        let fresh_runtime = {
            let rec = fresh.accounting().get(a).unwrap();
            (rec.end_time.unwrap() - rec.start_time.unwrap()).as_secs_f64()
        };
        assert!((fresh_runtime - 10.0).abs() < 0.1);

        // an aggressive aging curve so the drift shows within one test:
        // 10% throughput lost per busy hour, floored at 50%
        let mut aged = cluster();
        aged.set_thermal_aging(Some(ThermalAging { rate_per_hour: 0.1, floor: 0.5 }));
        assert_eq!(aged.thermal_derate(0, 2_500_000), 1.0, "a fresh node starts at nominal");
        // burn ~2 busy hours of history through repeated jobs
        let mut last_runtime = 0.0;
        for _ in 0..700 {
            let id = aged.submit(desc(32)).unwrap();
            aged.advance(SimDuration::from_secs(25));
            let rec = aged.accounting().get(id).unwrap();
            last_runtime = (rec.end_time.unwrap() - rec.start_time.unwrap()).as_secs_f64();
        }
        let top_derate = aged.thermal_derate(0, 2_500_000);
        assert!(top_derate < 0.85, "hours of load derated the node: {top_derate}");
        assert!(
            aged.thermal_derate(0, 1_500_000) > top_derate,
            "aging is frequency-aware: a low DVFS pin suffers less than the top step"
        );
        assert!(last_runtime > fresh_runtime * 1.15, "same job now runs slower: {last_runtime}s vs {fresh_runtime}s");
        // power draw did not shrink with the throughput: efficiency fell,
        // which is the observable the adaptation loop detects
        let rec = aged.accounting().records().last().unwrap().clone();
        let watts = rec.system_energy_j / last_runtime;
        assert!(watts > 100.0, "an aged node still burns full power: {watts} W");
    }

    #[test]
    fn unknown_binary_rejected() {
        let mut c = cluster();
        let d = JobDescriptor::new("t", "u", "/bin/missing");
        assert!(matches!(c.submit(d), Err(SlurmError::UnknownBinary(_))));
    }

    #[test]
    fn sbatch_with_telemetry_records_a_connected_trace() {
        let mut c = cluster();
        let telemetry = Arc::new(Telemetry::wall());
        c.set_telemetry(Arc::clone(&telemetry));
        c.register_binary("/opt/hpcg/bin/xhpcg", quick_workload(100.0));
        let script = generate_hpcg_script(16, 2_200_000, 2, "/opt/hpcg/bin/xhpcg");
        c.sbatch(&script, "aaen").unwrap();

        let events = telemetry.recorder().events();
        let root = events.iter().find(|e| e.name == "sbatch").expect("sbatch root span");
        assert_eq!(root.layer, "slurm");
        assert_eq!(root.parent, None);
        let parse = events.iter().find(|e| e.name == "parse").expect("parse span");
        assert_eq!(parse.parent, Some(root.span));
        let submit = events.iter().find(|e| e.name == "submit").expect("submit span");
        assert_eq!(submit.parent, Some(root.span));
        assert!(events.iter().all(|e| e.trace == root.trace), "one submission, one trace");
        assert_eq!(telemetry.counter("slurm.sbatch").get(), 1);
        assert_eq!(telemetry.counter("slurm.submissions").get(), 1);
        assert_eq!(telemetry.counter("slurm.sched_dispatched").get(), 1);
    }

    #[test]
    fn failed_submission_fails_the_trace() {
        let mut c = cluster();
        let telemetry = Arc::new(Telemetry::wall());
        c.set_telemetry(Arc::clone(&telemetry));
        let d = JobDescriptor::new("t", "u", "/bin/missing");
        assert!(c.submit(d).is_err());
        let events = telemetry.recorder().events();
        let submit = events.iter().find(|e| e.name == "submit").expect("submit span");
        assert!(!submit.is_ok(), "unknown binary must close the span with an error");
        assert_eq!(telemetry.counter("slurm.submit_errors").get(), 1);
    }

    #[test]
    fn sbatch_script_roundtrip() {
        let mut c = cluster();
        c.register_binary("/opt/hpcg/bin/xhpcg", quick_workload(100.0));
        let script = generate_hpcg_script(16, 2_200_000, 2, "/opt/hpcg/bin/xhpcg");
        let id = c.sbatch(&script, "aaen").unwrap();
        let job = c.job(id).unwrap();
        assert_eq!(job.descriptor.num_tasks, 16);
        assert_eq!(job.descriptor.threads_per_cpu, 2);
        assert_eq!(job.descriptor.user, "aaen");
    }

    #[test]
    fn fifo_queueing_on_single_node() {
        let mut c = cluster();
        let a = c.submit(desc(32)).unwrap();
        let b = c.submit(desc(32)).unwrap();
        assert_eq!(c.job(a).unwrap().state, JobState::Running);
        assert_eq!(c.job(b).unwrap().state, JobState::Pending);
        c.advance(SimDuration::from_secs(11));
        assert_eq!(c.job(a).unwrap().state, JobState::Completed);
        assert_eq!(c.job(b).unwrap().state, JobState::Running);
        c.advance(SimDuration::from_secs(11));
        assert_eq!(c.job(b).unwrap().state, JobState::Completed);
    }

    #[test]
    fn time_limit_kills_job() {
        let mut c = cluster();
        let mut d = desc(1); // 1 core @ 2.5 GHz => 2.5 GFLOP/s => 320 s natural
        d.time_limit = Some(SimDuration::from_secs(5));
        let id = c.submit(d).unwrap();
        c.advance(SimDuration::from_secs(10));
        assert_eq!(c.job(id).unwrap().state, JobState::Timeout);
        let rec = c.accounting().get(id).unwrap();
        assert_eq!(rec.state, JobState::Timeout);
        let runtime = (rec.end_time.unwrap() - rec.start_time.unwrap()).as_secs_f64();
        assert!((runtime - 5.0).abs() < 0.01, "killed at the limit, ran {runtime}");
    }

    #[test]
    fn cancel_pending_and_running() {
        let mut c = cluster();
        let a = c.submit(desc(32)).unwrap();
        let b = c.submit(desc(32)).unwrap();
        c.cancel(b).unwrap();
        assert_eq!(c.job(b).unwrap().state, JobState::Cancelled);
        c.cancel(a).unwrap();
        assert_eq!(c.job(a).unwrap().state, JobState::Cancelled);
        assert!(c.is_idle());
        // double-cancel is an error
        assert!(matches!(c.cancel(a), Err(SlurmError::InvalidState { .. })));
    }

    #[test]
    fn job_energy_attribution_is_plausible() {
        let mut c = cluster();
        let id = c.submit(desc(32)).unwrap(); // 10 s at ~217 W
        c.advance(SimDuration::from_secs(12));
        let rec = c.accounting().get(id).unwrap();
        let avg_w = rec.system_energy_j / 10.0;
        assert!((150.0..260.0).contains(&avg_w), "avg {avg_w} W");
    }

    #[test]
    fn multi_node_cluster_runs_jobs_in_parallel() {
        let mut c = Cluster::new(vec![SimNode::sr650(), SimNode::sr650()]);
        c.register_binary("/bin/app", quick_workload(800.0));
        let a = c.submit(desc(32)).unwrap();
        let b = c.submit(desc(32)).unwrap();
        assert_eq!(c.job(a).unwrap().state, JobState::Running);
        assert_eq!(c.job(b).unwrap().state, JobState::Running);
        c.advance(SimDuration::from_secs(11));
        assert!(c.is_idle());
    }

    #[test]
    fn multi_node_job_takes_both_nodes() {
        let mut c = Cluster::new(vec![SimNode::sr650(), SimNode::sr650()]);
        c.register_binary("/bin/app", quick_workload(800.0));
        let mut d = desc(32);
        d.num_nodes = 2;
        let id = c.submit(d).unwrap();
        assert_eq!(c.job(id).unwrap().state, JobState::Running);
        assert!(c.sinfo().matches("alloc").count() == 2, "{}", c.sinfo());
        // split across 2 nodes: 400 GFLOP each at 80 GFLOP/s = 5 s
        c.advance(SimDuration::from_secs(6));
        assert_eq!(c.job(id).unwrap().state, JobState::Completed);
    }

    #[test]
    fn requesting_more_nodes_than_cluster_is_unsatisfiable() {
        let mut c = cluster();
        let mut d = desc(1);
        d.num_nodes = 3;
        assert!(matches!(c.submit(d), Err(SlurmError::Unsatisfiable(_))));
    }

    #[test]
    fn backfill_lets_short_job_jump_blocked_multinode_head() {
        let mut c = Cluster::new(vec![SimNode::sr650(), SimNode::sr650()]);
        c.register_binary("/bin/app", quick_workload(800.0));
        // long job on node 0 (10 s)
        let long = c.submit(desc(32)).unwrap();
        assert_eq!(c.job(long).unwrap().state, JobState::Running);
        // head job needs 2 nodes -> blocked until long finishes (t=10)
        let mut head = desc(32);
        head.num_nodes = 2;
        let head = c.submit(head).unwrap();
        assert_eq!(c.job(head).unwrap().state, JobState::Pending);
        // short job (80 GFLOP -> 1 s) fits before the head's reservation
        let mut c2 = c; // rename for clarity
        c2.register_binary("/bin/short", quick_workload(80.0));
        let mut s = JobDescriptor::new("s", "bob", "/bin/short");
        s.num_tasks = 32;
        let short = c2.submit(s).unwrap();
        assert_eq!(c2.job(short).unwrap().state, JobState::Running, "backfilled onto the free node");
        c2.advance(SimDuration::from_secs(2));
        assert_eq!(c2.job(short).unwrap().state, JobState::Completed);
        assert_eq!(c2.job(head).unwrap().state, JobState::Pending);
        c2.advance(SimDuration::from_secs(10));
        assert_eq!(c2.job(head).unwrap().state, JobState::Running);
    }

    #[test]
    fn no_backfill_means_strict_fifo() {
        let mut c = Cluster::new(vec![SimNode::sr650(), SimNode::sr650()]);
        c.set_backfill(false);
        c.register_binary("/bin/app", quick_workload(800.0));
        c.register_binary("/bin/short", quick_workload(80.0));
        let _long = c.submit(desc(32)).unwrap();
        let mut head = desc(32);
        head.num_nodes = 2;
        let head = c.submit(head).unwrap();
        let mut s = JobDescriptor::new("s", "bob", "/bin/short");
        s.num_tasks = 32;
        let short = c.submit(s).unwrap();
        assert_eq!(c.job(head).unwrap().state, JobState::Pending);
        assert_eq!(c.job(short).unwrap().state, JobState::Pending, "strict FIFO blocks the short job too");
    }

    #[test]
    fn begin_time_defers_start() {
        let mut c = cluster();
        let mut d = desc(32);
        d.begin_time = Some(SimTime::from_secs(100));
        let id = c.submit(d).unwrap();
        assert_eq!(c.job(id).unwrap().state, JobState::Pending);
        c.advance(SimDuration::from_secs(50));
        assert_eq!(c.job(id).unwrap().state, JobState::Pending);
        c.advance(SimDuration::from_secs(55)); // t=105: started at t=100, runs 10 s
        assert_eq!(c.job(id).unwrap().state, JobState::Running);
        assert_eq!(c.job(id).unwrap().start_time, Some(SimTime::from_secs(100)));
    }

    #[test]
    fn squeue_and_scontrol_render() {
        let mut c = cluster();
        let id = c.submit(desc(8)).unwrap();
        let q = c.squeue();
        assert!(q.contains("alice"), "{q}");
        assert!(q.contains('R'), "{q}");
        let detail = c.scontrol_show_job(id).unwrap();
        assert!(detail.contains("NumTasks=8"), "{detail}");
        assert!(detail.contains("JobState=Running"), "{detail}");
        assert!(c.scontrol_show_job(JobId(999)).is_err());
    }

    #[test]
    fn drained_node_receives_no_jobs() {
        let mut c = Cluster::new(vec![SimNode::sr650(), SimNode::sr650()]);
        c.register_binary("/bin/app", quick_workload(800.0));
        c.set_drained(0, true);
        assert!(c.is_drained(0));
        let a = c.submit(desc(32)).unwrap();
        let b = c.submit(desc(32)).unwrap();
        assert_eq!(c.job(a).unwrap().node, Some(1), "only the healthy node runs jobs");
        assert_eq!(c.job(b).unwrap().state, JobState::Pending);
        assert!(c.sinfo().contains("drain"), "{}", c.sinfo());
        // resume: the queued job starts on the resumed node
        c.set_drained(0, false);
        assert_eq!(c.job(b).unwrap().state, JobState::Running);
        assert_eq!(c.job(b).unwrap().node, Some(0));
    }

    #[test]
    fn draining_node_finishes_its_running_job() {
        let mut c = cluster();
        let a = c.submit(desc(32)).unwrap();
        c.set_drained(0, true);
        assert!(c.sinfo().contains("drng"), "{}", c.sinfo());
        c.advance(SimDuration::from_secs(11));
        assert_eq!(c.job(a).unwrap().state, JobState::Completed, "running job finishes normally");
        // but nothing new starts
        let b = c.submit(desc(32)).unwrap();
        assert_eq!(c.job(b).unwrap().state, JobState::Pending);
    }

    #[test]
    fn squeue_survives_non_ascii_job_names() {
        let mut c = cluster();
        let mut d = desc(4);
        d.name = "ärbeit-über-alles-öko-π".to_string();
        d.user = "åse".to_string();
        c.submit(d).unwrap();
        let q = c.squeue(); // must not panic on char boundaries
        assert!(q.contains("PARTITION"), "{q}");
    }

    #[test]
    fn run_until_idle_terminates() {
        let mut c = cluster();
        for _ in 0..3 {
            c.submit(desc(32)).unwrap();
        }
        assert!(c.run_until_idle(SimDuration::from_mins(10)));
        assert_eq!(c.accounting().count_state(JobState::Completed), 3);
    }

    #[test]
    fn node_utilization_tracks_workload_profile() {
        // a running job keeps the node's load near the profile's mean
        let mut c = cluster();
        c.submit(desc(32)).unwrap();
        c.advance(SimDuration::from_secs(5));
        let load = c.node(0).load();
        assert_eq!(load.config.cores, 32);
        assert!((load.utilization - 1.0).abs() < 0.3);
    }

    #[test]
    fn partition_restricts_nodes() {
        use crate::partition::Partition;
        let mut c = Cluster::new(vec![SimNode::sr650(), SimNode::sr650()]);
        c.register_binary("/bin/app", quick_workload(800.0));
        c.add_partition(Partition::over("debug", vec![1]));
        let mut d = desc(32);
        d.partition = Some("debug".into());
        let a = c.submit(d.clone()).unwrap();
        let b = c.submit(d).unwrap();
        // only node 1 belongs to debug: the second debug job waits even
        // though node 0 is free
        assert_eq!(c.job(a).unwrap().state, JobState::Running);
        assert_eq!(c.job(a).unwrap().node, Some(1));
        assert_eq!(c.job(b).unwrap().state, JobState::Pending);
        // a default-partition job still lands on node 0
        let e = c.submit(desc(32)).unwrap();
        assert_eq!(c.job(e).unwrap().state, JobState::Running);
        assert_eq!(c.job(e).unwrap().node, Some(0));
    }

    #[test]
    fn unknown_partition_is_unsatisfiable() {
        let mut c = cluster();
        let mut d = desc(1);
        d.partition = Some("gpu".into());
        assert!(matches!(c.submit(d), Err(SlurmError::Unsatisfiable(_))));
    }

    #[test]
    fn partition_max_time_caps_job_limit() {
        use crate::partition::Partition;
        let mut c = cluster();
        c.add_partition(Partition {
            name: "debug".into(),
            nodes: vec![0],
            max_time: Some(SimDuration::from_secs(5)),
            priority_bonus: 0.0,
            is_default: false,
            node_class: None,
        });
        // 1-core job naturally takes 320 s; the partition kills it at 5 s
        let mut d = desc(1);
        d.partition = Some("debug".into());
        let id = c.submit(d).unwrap();
        assert_eq!(c.job(id).unwrap().descriptor.time_limit, Some(SimDuration::from_secs(5)));
        c.advance(SimDuration::from_secs(10));
        assert_eq!(c.job(id).unwrap().state, JobState::Timeout);
    }

    #[test]
    fn partition_priority_bonus_reorders_queue() {
        use crate::partition::Partition;
        let mut c = cluster();
        c.add_partition(Partition {
            name: "urgent".into(),
            nodes: vec![0],
            max_time: None,
            priority_bonus: 1_000_000.0,
            is_default: false,
            node_class: None,
        });
        // occupy the node, then queue a normal job before an urgent one
        let _running = c.submit(desc(32)).unwrap();
        let normal = c.submit(desc(32)).unwrap();
        let mut d = desc(32);
        d.partition = Some("urgent".into());
        let urgent = c.submit(d).unwrap();
        c.advance(SimDuration::from_secs(11));
        assert_eq!(c.job(urgent).unwrap().state, JobState::Running, "bonus jumps the queue");
        assert_eq!(c.job(normal).unwrap().state, JobState::Pending);
    }

    #[test]
    #[should_panic(expected = "node the cluster does not have")]
    fn partition_with_bad_node_rejected() {
        let mut c = cluster();
        c.add_partition(Partition::over("bad", vec![7]));
    }

    #[test]
    fn power_cap_serialises_jobs() {
        // two nodes, cap that fits one busy node (~217 W) plus one idle
        // (~135 W) but not two busy nodes
        let mut c = Cluster::new(vec![SimNode::sr650(), SimNode::sr650()]);
        c.register_binary("/bin/app", quick_workload(800.0));
        c.set_power_cap(Some(400.0));
        let a = c.submit(desc(32)).unwrap();
        let b = c.submit(desc(32)).unwrap();
        assert_eq!(c.job(a).unwrap().state, JobState::Running);
        assert_eq!(c.job(b).unwrap().state, JobState::Pending, "cap blocks the second job");
        assert!(c.estimated_power_w() < 400.0);
        // when the first finishes, the second proceeds
        c.advance(SimDuration::from_secs(11));
        assert_eq!(c.job(b).unwrap().state, JobState::Running);
        assert!(c.run_until_idle(SimDuration::from_mins(5)));
    }

    #[test]
    fn generous_power_cap_allows_parallelism() {
        let mut c = Cluster::new(vec![SimNode::sr650(), SimNode::sr650()]);
        c.register_binary("/bin/app", quick_workload(800.0));
        c.set_power_cap(Some(1000.0));
        let a = c.submit(desc(32)).unwrap();
        let b = c.submit(desc(32)).unwrap();
        assert_eq!(c.job(a).unwrap().state, JobState::Running);
        assert_eq!(c.job(b).unwrap().state, JobState::Running);
    }

    #[test]
    fn power_cap_respects_config_differences() {
        // a cap that admits a 2.2 GHz job but not a 2.5 GHz one on the
        // second node
        let mut c = Cluster::new(vec![SimNode::sr650(), SimNode::sr650()]);
        c.register_binary("/bin/app", quick_workload(800.0));
        let first = c.submit(desc(32)).unwrap(); // 2.5 GHz default, ~217 W
        assert_eq!(c.job(first).unwrap().state, JobState::Running);
        // idle second node ~135 W; cap at current + 60 W: 2.5 GHz marginal
        // (~80 W over idle CPU) blocked, 2.2 GHz marginal (~57 W) admitted
        let cap = c.estimated_power_w() + 60.0;
        c.set_power_cap(Some(cap));
        let mut hot = desc(32);
        hot.max_frequency_khz = Some(2_500_000);
        let hot = c.submit(hot).unwrap();
        assert_eq!(c.job(hot).unwrap().state, JobState::Pending, "2.5 GHz over cap");
        let mut cool = desc(32);
        cool.max_frequency_khz = Some(2_200_000);
        let cool = c.submit(cool).unwrap();
        assert_eq!(c.job(cool).unwrap().state, JobState::Running, "2.2 GHz under cap");
    }

    #[test]
    fn estimated_power_tracks_load() {
        let mut c = cluster();
        let idle = c.estimated_power_w();
        assert!((100.0..170.0).contains(&idle), "idle estimate {idle}");
        c.submit(desc(32)).unwrap();
        let busy = c.estimated_power_w();
        assert!(busy > idle + 50.0, "busy {busy} vs idle {idle}");
    }

    #[test]
    fn sbatch_array_expands_indices() {
        let mut c = cluster();
        let script = "#!/bin/bash\n#SBATCH --array=0-2\n#SBATCH --ntasks=32\n#SBATCH --job-name=arr\nsrun /bin/app\n";
        let ids = c.sbatch_array(script, "alice").unwrap();
        assert_eq!(ids.len(), 3);
        assert_eq!(c.job(ids[0]).unwrap().descriptor.name, "arr_[0]");
        assert_eq!(c.job(ids[2]).unwrap().descriptor.name, "arr_[2]");
        // single node: one runs, two queue
        assert_eq!(c.job(ids[0]).unwrap().state, JobState::Running);
        assert_eq!(c.job(ids[1]).unwrap().state, JobState::Pending);
        assert!(c.run_until_idle(SimDuration::from_mins(10)));
        assert_eq!(c.accounting().count_state(JobState::Completed), 3);
    }

    #[test]
    fn sbatch_on_array_script_returns_first_element() {
        let mut c = cluster();
        let script = "#SBATCH --array=5-6\n#SBATCH --ntasks=32\nsrun /bin/app\n";
        let first = c.sbatch(script, "u").unwrap();
        assert_eq!(c.job(first).unwrap().descriptor.name, "sbatch_[5]");
    }

    #[test]
    fn srun_interactive_submission() {
        let mut c = cluster();
        let id = c.srun(&["srun", "--ntasks=32", "--cpu-freq=2200000", "/bin/app"], "alice").unwrap();
        let job = c.job(id).unwrap();
        assert_eq!(job.state, JobState::Running);
        assert_eq!(job.descriptor.max_frequency_khz, Some(2_200_000));
        c.run_until_idle(SimDuration::from_mins(10));
        assert_eq!(c.job(id).unwrap().state, JobState::Completed);
    }

    #[test]
    fn sacct_lists_finished_jobs_with_energy() {
        let mut c = cluster();
        let id = c.submit(desc(32)).unwrap();
        c.run_until_idle(SimDuration::from_mins(10));
        let acct = c.sacct();
        assert!(acct.contains("Completed"), "{acct}");
        assert!(acct.contains("kJ"), "{acct}");
        assert!(acct.contains(&id.to_string()), "{acct}");
    }

    #[test]
    fn plugin_rewrites_job_at_submit() {
        struct Pin22;
        impl JobSubmitPlugin for Pin22 {
            fn name(&self) -> &'static str {
                "pin22"
            }
            fn job_submit(
                &mut self,
                job: &mut JobDescriptor,
                _uid: u32,
            ) -> Result<(), crate::plugin::PluginRejection> {
                job.max_frequency_khz = Some(2_200_000);
                job.min_frequency_khz = Some(2_200_000);
                Ok(())
            }
        }
        let mut c = cluster();
        c.register_plugin(Box::new(Pin22));
        let id = c.submit(desc(32)).unwrap();
        assert_eq!(c.job(id).unwrap().descriptor.max_frequency_khz, Some(2_200_000));
        // the node actually runs at 2.2 GHz
        assert_eq!(c.node(0).load().config.frequency_khz, 2_200_000);
    }

    // ---- heterogeneous clusters, packing, headroom, starvation guard ----

    fn two_class_cluster() -> Cluster {
        let mut c = Cluster::heterogeneous(&[(NodeClass::sr650(), 2), (NodeClass::dense64(), 2)]);
        c.register_binary("/bin/app", quick_workload(800.0));
        c
    }

    #[test]
    fn heterogeneous_cluster_builds_per_class_partitions() {
        let c = two_class_cluster();
        assert_eq!(c.node_count(), 4);
        // classes map onto contiguous node ranges with matching partitions
        assert_eq!(c.node(0).spec().cores, 32);
        assert_eq!(c.node(2).spec().cores, 64);
        let sr = c.partitions().resolve(Some("sr650")).unwrap();
        assert_eq!(sr.nodes, vec![0, 1]);
        assert!(sr.is_default, "first class is the default partition");
        let dense = c.partitions().resolve(Some("dense64")).unwrap();
        assert_eq!(dense.nodes, vec![2, 3]);
        assert_eq!(dense.node_class.as_deref(), Some("dense64"));
        assert_eq!(c.partitions().node_class_of("sr650"), Some("sr650"));
    }

    #[test]
    fn heterogeneous_jobs_route_by_partition_class() {
        let mut c = two_class_cluster();
        let mut d = desc(64);
        d.partition = Some("dense64".into());
        let id = c.submit(d).unwrap();
        let node = c.job(id).unwrap().node.unwrap();
        assert!(node >= 2, "dense job lands on a dense node, got n{node}");
        // the resolved configuration uses the dense class's 64 cores
        let rec_cores = c.node(node).load().config.cores;
        assert_eq!(rec_cores, 64);
        // a classless submission defaults to the first class (sr650)
        let a = c.submit(desc(32)).unwrap();
        assert!(c.job(a).unwrap().node.unwrap() < 2);
    }

    #[test]
    fn pack_stacks_complementary_jobs_on_one_node() {
        let mut c = cluster(); // single node, 32 cores
        c.set_co_schedule(CoSchedulePolicy::Pack);
        c.register_binary(
            "/bin/stream",
            Arc::new(SyntheticWorkload::new("stream", ScalingKind::MemoryBound, 50.0, 1.0)),
        );
        // compute-bound job on 16 cores leaves half the package free
        let a = c.submit(desc(16)).unwrap();
        assert_eq!(c.job(a).unwrap().state, JobState::Running);
        // memory-bound 8-core job packs next to it instead of queueing
        let mut s = JobDescriptor::new("s", "bob", "/bin/stream");
        s.num_tasks = 8;
        let b = c.submit(s).unwrap();
        assert_eq!(c.job(b).unwrap().state, JobState::Running, "complementary job packs");
        assert_eq!(c.job(b).unwrap().node, Some(0));
        assert!(c.sinfo().contains('+'), "shared node lists both ids: {}", c.sinfo());
        assert!(c.run_until_idle(SimDuration::from_mins(30)));
        // both jobs get energy attributed
        for id in [a, b] {
            assert!(c.accounting().get(id).unwrap().system_energy_j > 0.0);
        }
    }

    #[test]
    fn pack_refuses_same_side_of_the_ridge() {
        let mut c = cluster();
        c.set_co_schedule(CoSchedulePolicy::Pack);
        // both compute-bound: second must queue even though cores are free
        let a = c.submit(desc(16)).unwrap();
        let b = c.submit(desc(8)).unwrap();
        assert_eq!(c.job(a).unwrap().state, JobState::Running);
        assert_eq!(c.job(b).unwrap().state, JobState::Pending, "same-side jobs never pack");
    }

    #[test]
    fn pack_refuses_when_cores_do_not_fit() {
        let mut c = cluster();
        c.set_co_schedule(CoSchedulePolicy::Pack);
        c.register_binary(
            "/bin/stream",
            Arc::new(SyntheticWorkload::new("stream", ScalingKind::MemoryBound, 50.0, 1.0)),
        );
        let _a = c.submit(desc(32)).unwrap(); // whole package
        let mut s = JobDescriptor::new("s", "bob", "/bin/stream");
        s.num_tasks = 8;
        let b = c.submit(s).unwrap();
        assert_eq!(c.job(b).unwrap().state, JobState::Pending, "no free cores to pack into");
    }

    #[test]
    fn spread_policy_never_packs() {
        let mut c = cluster();
        c.register_binary(
            "/bin/stream",
            Arc::new(SyntheticWorkload::new("stream", ScalingKind::MemoryBound, 50.0, 1.0)),
        );
        let _a = c.submit(desc(16)).unwrap();
        let mut s = JobDescriptor::new("s", "bob", "/bin/stream");
        s.num_tasks = 8;
        let b = c.submit(s).unwrap();
        assert_eq!(c.job(b).unwrap().state, JobState::Pending, "default policy is exclusive allocation");
    }

    #[test]
    fn power_headroom_tightens_admission() {
        // same setup as power_cap_respects_config_differences, but the
        // headroom eats the slack that admitted the 2.2 GHz job
        let mut c = Cluster::new(vec![SimNode::sr650(), SimNode::sr650()]);
        c.register_binary("/bin/app", quick_workload(800.0));
        let _first = c.submit(desc(32)).unwrap();
        let cap = c.estimated_power_w() + 60.0;
        c.set_power_cap(Some(cap));
        c.set_power_headroom(30.0);
        let mut cool = desc(32);
        cool.max_frequency_khz = Some(2_200_000);
        let cool = c.submit(cool).unwrap();
        assert_eq!(c.job(cool).unwrap().state, JobState::Pending, "headroom blocks what the bare cap admits");
        c.set_power_headroom(0.0);
        c.advance(SimDuration(1));
        assert_eq!(c.job(cool).unwrap().state, JobState::Running, "zero headroom restores the old admission");
    }

    #[test]
    fn starvation_guard_stops_younger_jobs_jumping_a_starved_one() {
        let mut c = Cluster::new(vec![SimNode::sr650(), SimNode::sr650()]);
        let telemetry = Arc::new(Telemetry::wall());
        c.set_telemetry(Arc::clone(&telemetry));
        c.register_binary("/bin/app", quick_workload(800.0));
        c.register_binary("/bin/short", quick_workload(80.0));
        // one busy node; cap admits nothing more
        let _long = c.submit(desc(32)).unwrap();
        c.set_power_cap(Some(c.estimated_power_w() + 10.0));
        c.set_starvation_guard(Some(SimDuration::from_secs(2)));
        let blocked = c.submit(desc(32)).unwrap();
        assert_eq!(c.job(blocked).unwrap().state, JobState::Pending);
        // age the blocked job past the guard, then submit a cheap job that
        // a work-conserving cap would admit (1 core fits the +10 W? no —
        // make the cap generous enough for 1 core but not 32)
        c.set_power_cap(Some(c.estimated_power_w() + 25.0));
        c.advance(SimDuration::from_secs(3));
        let mut s = JobDescriptor::new("s", "bob", "/bin/short");
        s.num_tasks = 1;
        let young = c.submit(s).unwrap();
        assert_eq!(c.job(young).unwrap().state, JobState::Pending, "guard keeps the younger job behind");
        assert!(telemetry.counter("slurm.sched_starvation_stall").get() > 0);
        // without the guard the young job would have been admitted
        c.set_starvation_guard(None);
        c.advance(SimDuration(1));
        assert_eq!(c.job(young).unwrap().state, JobState::Running, "work-conserving again without the guard");
    }

    #[test]
    fn packed_jobs_respect_the_power_budget() {
        let mut c = cluster();
        c.set_co_schedule(CoSchedulePolicy::Pack);
        c.register_binary(
            "/bin/stream",
            Arc::new(SyntheticWorkload::new("stream", ScalingKind::MemoryBound, 50.0, 1.0)),
        );
        let _a = c.submit(desc(16)).unwrap();
        // cap leaves no room for any marginal draw
        c.set_power_cap(Some(c.estimated_power_w() + 0.5));
        let mut s = JobDescriptor::new("s", "bob", "/bin/stream");
        s.num_tasks = 8;
        let b = c.submit(s).unwrap();
        assert_eq!(c.job(b).unwrap().state, JobState::Pending, "packing still pays its power bill");
    }

    #[test]
    fn instantaneous_power_matches_node_telemetry() {
        let c = two_class_cluster();
        let sum: f64 = (0..c.node_count()).map(|i| c.node(i).telemetry().system_power_w).sum();
        assert!((c.instantaneous_power_w() - sum).abs() < 1e-9);
        assert!(sum > 0.0, "idle nodes still draw platform power");
    }
}
