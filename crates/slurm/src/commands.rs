//! User-command facades beyond `sbatch`: `srun` command-line parsing,
//! job arrays (`--array`), and `sacct` accounting output.

use crate::error::SlurmError;
use crate::job::JobDescriptor;

/// Parses an `srun` command line into a descriptor (interactive submission
/// — paper §3.1: "srun is used to submit an interactive job and directly
/// run it on the allocated resources").
///
/// Supported options: `--ntasks`, `--nodes`, `--cpu-freq`,
/// `--ntasks-per-core`, `--job-name`, `--mpi` (ignored), trailing
/// executable path.
pub fn parse_srun(argv: &[&str], user: &str) -> Result<JobDescriptor, SlurmError> {
    if argv.first().copied() != Some("srun") {
        return Err(SlurmError::InvalidScript("srun command must start with 'srun'".into()));
    }
    let mut desc = JobDescriptor::new("srun", user, "");
    for tok in &argv[1..] {
        if let Some(v) = tok.strip_prefix("--ntasks=") {
            desc.num_tasks = parse(v, "--ntasks")?;
        } else if let Some(v) = tok.strip_prefix("--nodes=") {
            desc.num_nodes = parse(v, "--nodes")?;
        } else if let Some(v) = tok.strip_prefix("--cpu-freq=") {
            let khz: u64 = parse(v, "--cpu-freq")?;
            desc.min_frequency_khz = Some(khz);
            desc.max_frequency_khz = Some(khz);
        } else if let Some(v) = tok.strip_prefix("--ntasks-per-core=") {
            desc.threads_per_cpu = parse(v, "--ntasks-per-core")?;
        } else if let Some(v) = tok.strip_prefix("--job-name=") {
            desc.name = v.to_string();
        } else if tok.starts_with("--") {
            // tolerated, like unmodelled sbatch options
        } else {
            desc.binary_path = tok.to_string();
        }
    }
    if desc.binary_path.is_empty() {
        return Err(SlurmError::InvalidScript("srun needs an executable".into()));
    }
    Ok(desc)
}

/// A parsed `--array` specification: the task indices to submit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArraySpec {
    /// Task indices, in submission order.
    pub indices: Vec<u32>,
}

/// Parses Slurm `--array` syntax: `N`, `N-M`, `N-M:STEP`, and
/// comma-separated combinations (`0,3,7-9`).
pub fn parse_array_spec(spec: &str) -> Result<ArraySpec, SlurmError> {
    let bad = |m: &str| SlurmError::InvalidScript(format!("bad --array '{spec}': {m}"));
    let mut indices = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(bad("empty element"));
        }
        let (range, step) = match part.split_once(':') {
            Some((r, s)) => (r, s.parse::<u32>().map_err(|_| bad("bad step"))?),
            None => (part, 1),
        };
        if step == 0 {
            return Err(bad("step must be positive"));
        }
        match range.split_once('-') {
            Some((lo, hi)) => {
                let lo: u32 = lo.parse().map_err(|_| bad("bad range start"))?;
                let hi: u32 = hi.parse().map_err(|_| bad("bad range end"))?;
                if hi < lo {
                    return Err(bad("range end before start"));
                }
                let mut i = lo;
                while i <= hi {
                    indices.push(i);
                    i += step;
                }
            }
            None => indices.push(range.parse().map_err(|_| bad("bad index"))?),
        }
    }
    if indices.is_empty() {
        return Err(bad("no indices"));
    }
    Ok(ArraySpec { indices })
}

/// Extracts the `--array` directive from a batch script, if present.
pub fn array_directive(script: &str) -> Result<Option<ArraySpec>, SlurmError> {
    for raw in script.lines() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("#SBATCH") {
            let rest = rest.trim();
            if let Some(v) = rest.strip_prefix("--array=") {
                return parse_array_spec(v.trim()).map(Some);
            }
            if let Some(v) = rest.strip_prefix("--array ") {
                return parse_array_spec(v.trim()).map(Some);
            }
        }
    }
    Ok(None)
}

fn parse<T: std::str::FromStr>(v: &str, opt: &str) -> Result<T, SlurmError> {
    v.parse().map_err(|_| SlurmError::InvalidScript(format!("bad value '{v}' for {opt}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srun_parses_paper_invocation() {
        // the paper's Listing 6 srun line
        let d = parse_srun(&["srun", "--mpi=pmix_v4", "--ntasks-per-core=2", "/opt/hpcg/bin/xhpcg"], "aaen").unwrap();
        assert_eq!(d.threads_per_cpu, 2);
        assert_eq!(d.binary_path, "/opt/hpcg/bin/xhpcg");
        assert_eq!(d.user, "aaen");
        assert_eq!(d.name, "srun");
    }

    #[test]
    fn srun_full_options() {
        let d = parse_srun(
            &["srun", "--ntasks=16", "--nodes=2", "--cpu-freq=2200000", "--job-name=probe", "/bin/app"],
            "u",
        )
        .unwrap();
        assert_eq!(d.num_tasks, 16);
        assert_eq!(d.num_nodes, 2);
        assert_eq!(d.max_frequency_khz, Some(2_200_000));
        assert_eq!(d.name, "probe");
    }

    #[test]
    fn srun_requires_executable() {
        assert!(parse_srun(&["srun", "--ntasks=4"], "u").is_err());
        assert!(parse_srun(&["sbatch", "/bin/app"], "u").is_err());
        assert!(parse_srun(&["srun", "--ntasks=x", "/bin/app"], "u").is_err());
    }

    #[test]
    fn array_spec_forms() {
        assert_eq!(parse_array_spec("3").unwrap().indices, vec![3]);
        assert_eq!(parse_array_spec("0-3").unwrap().indices, vec![0, 1, 2, 3]);
        assert_eq!(parse_array_spec("0-8:3").unwrap().indices, vec![0, 3, 6]);
        assert_eq!(parse_array_spec("1,5,7-9").unwrap().indices, vec![1, 5, 7, 8, 9]);
    }

    #[test]
    fn array_spec_rejects_garbage() {
        assert!(parse_array_spec("").is_err());
        assert!(parse_array_spec("5-2").is_err());
        assert!(parse_array_spec("1-5:0").is_err());
        assert!(parse_array_spec("a-b").is_err());
        assert!(parse_array_spec("1,,2").is_err());
    }

    #[test]
    fn array_directive_detection() {
        let script = "#!/bin/bash\n#SBATCH --array=0-2\nsrun /bin/app\n";
        assert_eq!(array_directive(script).unwrap().unwrap().indices, vec![0, 1, 2]);
        assert!(array_directive("srun /bin/app\n").unwrap().is_none());
        assert!(array_directive("#SBATCH --array=9-1\nsrun /b\n").is_err());
    }
}
