//! Property-based tests for the scheme-addressed [`Endpoint`] type:
//! every valid endpoint survives `parse ∘ display` identically, bare
//! `host:port` strings stay TCP forever (the compatibility promise
//! configs rely on), and arbitrary junk is rejected with a clean error
//! — never a panic, never a silently mis-parsed endpoint.

use chronus::remote::{Endpoint, EndpointParseError};
use proptest::prelude::*;

/// Hostnames as they appear in real config lines: DNS names and IPv4
/// literals. Commas and whitespace never appear because the fleet
/// layer splits endpoint *lists* on commas before parsing each piece.
fn arb_host() -> impl Strategy<Value = String> {
    (0u32..3, 0u64..=0xFFFF_FFFF, (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255)).prop_map(|(kind, n, (a, b, c, d))| {
        match kind {
            0 => format!("node-{n:x}"),
            1 => format!("head-{n:x}.cluster.local"),
            _ => format!("{a}.{b}.{c}.{d}"),
        }
    })
}

/// Ring-file paths as `chronus serve --shm` produces them: absolute or
/// relative filesystem paths without whitespace (parse trims the ends,
/// so padded paths cannot round-trip and are not promised to).
fn arb_shm_path() -> impl Strategy<Value = String> {
    (0u32..4, 0u64..=u64::MAX).prop_map(|(kind, n)| match kind {
        0 => format!("/run/chronusd-{n:x}.shm"),
        1 => format!("/dev/shm/chronus/{n:x}"),
        2 => format!("rings/replica-{n}.shm"),
        _ => format!("/tmp/chronus.shm.r{}", n % 16),
    })
}

fn arb_endpoint() -> impl Strategy<Value = Endpoint> {
    (any::<bool>(), arb_host(), 1u16..=u16::MAX, arb_shm_path()).prop_map(|(tcp, host, port, path)| {
        if tcp {
            Endpoint::Tcp(format!("{host}:{port}"))
        } else {
            Endpoint::Shm(path)
        }
    })
}

/// A lowercase ASCII word of 2–8 letters (the shim proptest has no
/// regex strategies, so schemes are spelled out from char indices).
fn arb_scheme() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, 2..9).prop_map(|v| v.into_iter().map(|i| (b'a' + i) as char).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline contract: `parse(display(e)) == e` for every
    /// endpoint either constructor can produce.
    #[test]
    fn parse_display_round_trips(ep in arb_endpoint()) {
        let shown = ep.to_string();
        let reparsed = Endpoint::parse(&shown);
        prop_assert_eq!(reparsed.clone(), Ok(ep), "display form {} must re-parse", shown);
        // and display is stable across one more lap
        prop_assert_eq!(reparsed.unwrap().to_string(), shown);
    }

    /// Compatibility: a bare `host:port` (no scheme) parses as the TCP
    /// endpoint carrying exactly that address, and its display form is
    /// the same address under an explicit `tcp://`.
    #[test]
    fn bare_host_port_stays_tcp(host in arb_host(), port in 1u16..=u16::MAX) {
        let bare = format!("{host}:{port}");
        let ep = Endpoint::parse(&bare).unwrap();
        prop_assert_eq!(&ep, &Endpoint::Tcp(bare.clone()));
        prop_assert!(!ep.is_local());
        prop_assert_eq!(ep.to_string(), format!("tcp://{bare}"));
        // explicit scheme and bare form agree
        prop_assert_eq!(Endpoint::parse(&format!("tcp://{bare}")).unwrap(), ep);
    }

    /// Only the shared-memory scheme is local — the property the
    /// client's locality-preference routing keys off.
    #[test]
    fn locality_follows_the_scheme(ep in arb_endpoint()) {
        prop_assert_eq!(ep.is_local(), matches!(ep, Endpoint::Shm(_)));
    }

    /// Surrounding whitespace never changes what an endpoint means —
    /// config files and comma-lists arrive padded.
    #[test]
    fn whitespace_padding_is_ignored(ep in arb_endpoint(), left in 0usize..4, right in 0usize..4) {
        let padded = format!("{}{ep}{}", " ".repeat(left), " ".repeat(right));
        prop_assert_eq!(Endpoint::parse(&padded), Ok(ep));
    }

    /// Arbitrary printable junk never panics the parser; every outcome
    /// is `Ok` or a typed [`EndpointParseError`].
    #[test]
    fn junk_never_panics(junk in ".{0,40}") {
        let _ = Endpoint::parse(&junk);
    }

    /// The adversarial shapes a config typo actually produces — bare
    /// schemes, double colons, empty pieces — all fail cleanly too.
    #[test]
    fn typo_shapes_fail_cleanly(
        typo in prop::sample::select(vec![
            "", " ", "shm://", "tcp://", "://", "://x:1", "a::1x", ":4117",
            "shm:/run/x.shm", "host:", "host:0x50", "host:-1",
        ]),
    ) {
        prop_assert!(Endpoint::parse(typo).is_err(), "{:?} must be rejected", typo);
    }

    /// Unknown schemes are rejected by name — not silently treated as
    /// a TCP host — so a typo'd `smh://` or a future `quic://` fails
    /// loudly at config time.
    #[test]
    fn unknown_schemes_fail_by_name(scheme in arb_scheme(), rest in ".{0,20}") {
        prop_assume!(scheme != "tcp" && scheme != "shm");
        let parsed = Endpoint::parse(&format!("{scheme}://{rest}"));
        prop_assert_eq!(parsed, Err(EndpointParseError::UnknownScheme(scheme)));
    }

    /// A TCP endpoint without a valid `host:port` shape — missing
    /// port, out-of-range port, empty host — is a `BadAddr`, never a
    /// mis-parsed success.
    #[test]
    fn tcp_without_a_valid_port_is_rejected(host in arb_host()) {
        prop_assert_eq!(Endpoint::parse(&host), Err(EndpointParseError::BadAddr(host.clone())));
        let huge = format!("{host}:{}", u16::MAX as u64 + 1);
        prop_assert_eq!(Endpoint::parse(&huge), Err(EndpointParseError::BadAddr(huge)));
    }
}
