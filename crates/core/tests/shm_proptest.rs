//! Property-based tests for the two pure codecs under the
//! shared-memory transport: the slot-header codec (seq | len | check)
//! that guards ring slots against torn and stale reads, and the binary
//! `PredictMany` fast path that rides inside those slots.
//!
//! The properties the ring's correctness argument leans on:
//!
//! * a header round-trips exactly, and **only** the exact encoding of
//!   the expected sequence validates — junk never yields a phantom
//!   frame, and a slot torn at any byte is rejected;
//! * the fast-path codec round-trips every request and reply shape it
//!   promises to carry, and every truncation or junk frame fails with
//!   a clean `Err`;
//! * binary frames and JSON frames can never be confused (`is_binary`
//!   keys off a byte serde_json cannot emit first).

use chronus::remote::shm::{decode_slot_header, encode_slot_header, slot_check, validate_slot, SLOT_PAYLOAD};
use chronus::remote::{fastpath, KeyOutcome, Request, RequestFrame, Response, MAX_BATCH_KEYS};
use eco_sim_node::cpu::CpuConfig;
use proptest::prelude::*;

fn arb_keys() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec(((0u64..=u64::MAX), (0u64..=u64::MAX)), 0..48)
}

fn arb_outcome() -> impl Strategy<Value = KeyOutcome> {
    (0u32..3, 1u32..=64, prop::sample::select(vec![1_500_000u64, 2_200_000, 2_500_000]), 1u32..=2, ".{0,24}")
        .prop_map(|(kind, cores, freq, threads, text)| match kind {
            0 => KeyOutcome::Config(CpuConfig::new(cores, freq, threads)),
            1 => KeyOutcome::Miss,
            _ => KeyOutcome::Error { message: text },
        })
}

/// The replies a daemon actually produces for a fast-path batch.
fn arb_reply() -> impl Strategy<Value = Response> {
    (0u32..3, prop::collection::vec(arb_outcome(), 0..48), ".{0,40}").prop_map(
        |(kind, results, message)| match kind {
            0 => Response::ManyConfigs { results },
            1 => Response::Error { message },
            _ => Response::DeadlineExceeded,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // -- slot-header codec --------------------------------------------------

    /// A published header validates for exactly the reader expecting
    /// its sequence, yielding exactly its length.
    #[test]
    fn slot_headers_round_trip(seq in 0u64..=u64::MAX, len in 0u32..=SLOT_PAYLOAD) {
        let raw = encode_slot_header(seq, len);
        prop_assert_eq!(decode_slot_header(&raw, seq, SLOT_PAYLOAD), Some(len));
    }

    /// Arbitrary junk never panics the decoder, and never yields a
    /// frame unless it is bit-for-bit the exact encoding the reader
    /// expects — the "no phantom frames" half of the seqlock argument.
    #[test]
    fn junk_headers_never_yield_unless_exact(
        raw in prop::collection::vec(0u8..=255, 16),
        expect_seq in 0u64..=u64::MAX,
    ) {
        let raw: [u8; 16] = raw.try_into().expect("the strategy emits exactly 16 bytes");
        if let Some(len) = decode_slot_header(&raw, expect_seq, SLOT_PAYLOAD) {
            prop_assert_eq!(raw, encode_slot_header(expect_seq, len));
        }
    }

    /// A torn slot — any byte of a valid header replaced by anything
    /// else, modelling a reader racing a writer mid-store — never
    /// validates. The check word folds the sequence *and* the length
    /// in, so no torn combination of old and new words survives.
    #[test]
    fn a_tear_at_any_byte_is_rejected(
        seq in 0u64..=u64::MAX,
        len in 0u32..=SLOT_PAYLOAD,
        torn_at in 0usize..16,
        garbage in 0u8..=255,
    ) {
        let mut raw = encode_slot_header(seq, len);
        prop_assume!(raw[torn_at] != garbage);
        raw[torn_at] = garbage;
        prop_assert_eq!(decode_slot_header(&raw, seq, SLOT_PAYLOAD), None);
    }

    /// A stale header from an earlier lap of the ring — same slot,
    /// older sequence — never validates for a later reader, even
    /// though its check word is internally consistent.
    #[test]
    fn stale_laps_never_validate(seq in 0u64..u64::MAX, ahead in 1u64..=1_000, len in 0u32..=SLOT_PAYLOAD) {
        let raw = encode_slot_header(seq, len);
        prop_assert_eq!(decode_slot_header(&raw, seq.saturating_add(ahead), SLOT_PAYLOAD), None);
    }

    /// Oversized lengths are rejected even when seq and check agree —
    /// a corrupt peer cannot make the reader copy past the slot.
    #[test]
    fn oversized_lengths_are_rejected(seq in 0u64..=u64::MAX, over in 1u32..=1_000) {
        let len = SLOT_PAYLOAD + over;
        prop_assert_eq!(validate_slot(seq, seq, len, slot_check(seq, len), SLOT_PAYLOAD), None);
        let raw = encode_slot_header(seq, len);
        prop_assert_eq!(decode_slot_header(&raw, seq, SLOT_PAYLOAD), None);
    }

    // -- binary fast path ---------------------------------------------------

    /// Every fast-path request round-trips exactly.
    #[test]
    fn fastpath_requests_round_trip(
        corr in 0u64..=u64::MAX,
        deadline_ms in prop::option::of(0u64..=60_000),
        keys in arb_keys(),
    ) {
        let wire = fastpath::encode_request(corr, deadline_ms, &keys);
        prop_assert!(fastpath::is_binary(&wire));
        let decoded = fastpath::decode_request(&wire).unwrap();
        prop_assert_eq!(decoded.corr, corr);
        prop_assert_eq!(decoded.deadline_ms, deadline_ms);
        prop_assert_eq!(decoded.keys, keys);
    }

    /// Every reply shape the daemon produces for a batch round-trips
    /// exactly, correlation id included.
    #[test]
    fn fastpath_replies_round_trip(corr in 0u64..=u64::MAX, reply in arb_reply()) {
        let wire = fastpath::encode_reply(corr, &reply);
        prop_assert!(fastpath::is_binary(&wire));
        prop_assert_eq!(fastpath::decode_reply(&wire).unwrap(), (corr, reply));
    }

    /// Any strict prefix of a valid frame — a write torn mid-slot —
    /// fails with a clean `Err`, never a panic and never a short
    /// phantom decode.
    #[test]
    fn truncated_fastpath_frames_fail_cleanly(
        corr in 0u64..=u64::MAX,
        keys in arb_keys(),
        reply in arb_reply(),
        cut_num in 0usize..=1_000,
    ) {
        let request = fastpath::encode_request(corr, None, &keys);
        let cut = cut_num * (request.len().saturating_sub(1)) / 1_000;
        prop_assert!(fastpath::decode_request(&request[..cut]).is_err());

        let wire = fastpath::encode_reply(corr, &reply);
        let cut = cut_num * (wire.len().saturating_sub(1)) / 1_000;
        prop_assert!(fastpath::decode_reply(&wire[..cut]).is_err());
    }

    /// Arbitrary junk never panics either decoder.
    #[test]
    fn junk_never_panics_fastpath_decoders(junk in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = fastpath::decode_request(&junk);
        let _ = fastpath::decode_reply(&junk);
    }

    /// A batch over the protocol cap is refused at decode, not
    /// allocated — the daemon-side guard against a hostile header.
    #[test]
    fn oversized_batches_are_refused(corr in 0u64..=u64::MAX, over in 1usize..=8) {
        let keys: Vec<(u64, u64)> = (0..(MAX_BATCH_KEYS + over) as u64).map(|i| (i, i)).collect();
        let wire = fastpath::encode_request(corr, None, &keys);
        prop_assert!(fastpath::decode_request(&wire).is_err());
    }

    /// JSON and binary frames can never be confused: no JSON payload
    /// opens with the fast-path magic byte, so a connection carrying
    /// both (the ring does, for singles vs batches) always dispatches
    /// each frame to the right decoder.
    #[test]
    fn json_is_never_mistaken_for_binary(keys in arb_keys(), deadline in prop::option::of(0u64..=60_000)) {
        let mut frame = RequestFrame::new(Request::PredictMany { keys });
        frame.deadline_ms = deadline;
        let json = serde_json::to_vec(&frame).unwrap();
        prop_assert!(!fastpath::is_binary(&json));
    }
}
