//! Property-based tests for the `chronus::remote` wire codec: arbitrary
//! frames survive encode → decode identically, arbitrary junk never
//! panics the framing layer, streaming reassembly is insensitive to
//! how the bytes are chunked, and the frame-level [`Connection`]
//! abstraction is transparent — a byte-stream transport under the
//! blanket impl and a message transport implementing the trait
//! directly produce identical exchanges.

use std::collections::VecDeque;
use std::io::{Read, Write};

use bytes::BytesMut;
use chronus::remote::{
    read_frame, send_msg, take_frame, write_frame, Connection, KeyOutcome, ModelSync, ObservedOutcome, Request,
    RequestFrame, Response, ResponseFrame, StatsSnapshot, MAX_BATCH_KEYS, MAX_FRAME_LEN,
};
use chronus::telemetry::{SpanId, TraceContext, TraceId};
use eco_sim_node::cpu::CpuConfig;
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

/// A loopback byte stream: writes append to an internal buffer, reads
/// drain it. Being `Read + Write + Send`, it gets [`Connection`] from
/// the blanket impl — this is "a TCP socket" for the equivalence
/// properties, byte-exact down to the length prefixes.
#[derive(Default)]
struct ByteLoop {
    buf: VecDeque<u8>,
}

impl Read for ByteLoop {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let n = self.buf.len().min(out.len());
        for slot in out.iter_mut().take(n) {
            *slot = self.buf.pop_front().expect("n is bounded by len");
        }
        Ok(n)
    }
}

impl Write for ByteLoop {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A loopback *message* pipe implementing [`Connection`] directly, the
/// way the shared-memory ring and the simulated channels do: whole
/// payloads in, whole payloads out, no length prefixes anywhere.
#[derive(Default)]
struct FrameLoop {
    frames: VecDeque<Vec<u8>>,
}

impl Connection for FrameLoop {
    fn send_frame(&mut self, payload: &[u8]) -> std::io::Result<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "oversized frame"));
        }
        self.frames.push_back(payload.to_vec());
        Ok(())
    }

    fn recv_frame(&mut self) -> std::io::Result<Vec<u8>> {
        self.frames.pop_front().ok_or_else(|| std::io::Error::new(std::io::ErrorKind::WouldBlock, "no frame queued"))
    }
}

/// The wire struct exactly as peers built before the trace header knew
/// it: no `trace` field at all. Stands in for an old client/daemon in
/// the compatibility properties below.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LegacyRequestFrame {
    #[serde(default)]
    deadline_ms: Option<u64>,
    body: Request,
}

/// The request verbs exactly as peers built before the outcome feed
/// knew them: no `ReportOutcome` variant. Stands in for an old daemon
/// in the additive-negotiation properties below — its decode of an
/// outcome frame must fail *cleanly* (that failure is what makes it
/// answer a malformed-request `Error`, which the new client maps to
/// `Ok(false)` / "outcome reporting unsupported").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum LegacyRequest {
    Ping,
    Predict { system_hash: u64, binary_hash: u64 },
    PredictMany { keys: Vec<(u64, u64)> },
    Preload { model_id: i64 },
    Stats,
    SyncModels { have_generation: u64 },
    Burn { ms: u64 },
}

/// The response shapes an old client understands: no `OutcomeAck`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum LegacyResponse {
    Pong,
    Config(CpuConfig),
    Busy { retry_after_ms: u64 },
    Miss { system_hash: u64, binary_hash: u64 },
    DeadlineExceeded,
    Error { message: String },
    Burned,
}

fn arb_config() -> impl Strategy<Value = CpuConfig> {
    (1u32..=64, prop::sample::select(vec![1_500_000u64, 2_200_000, 2_500_000]), 1u32..=2)
        .prop_map(|(c, f, t)| CpuConfig::new(c, f, t))
}

fn arb_keys() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec(((0u64..=u64::MAX), (0u64..=u64::MAX)), 0..9)
}

/// Finite, in-range production observations. Finite `f64`s round-trip
/// exactly through the JSON wire (shortest-representation printing);
/// NaN/infinity are excluded because the wire maps them to `null`,
/// which the ingest side rejects as malformed rather than decodes.
fn arb_observed() -> impl Strategy<Value = ObservedOutcome> {
    (arb_config(), 0.0f64..1e9, 0.0f64..1e6, 0.0f64..1e7, "[a-z0-9-]{0,12}").prop_map(
        |(config, gflops, watts, duration_s, node_class)| ObservedOutcome {
            config,
            gflops,
            watts,
            duration_s,
            node_class,
        },
    )
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u32..8,
        (0u64..=u64::MAX),
        (0u64..=u64::MAX),
        (-1_000i64..=1_000_000),
        0u64..=20_000,
        arb_keys(),
        arb_observed(),
    )
        .prop_map(|(kind, a, b, id, ms, keys, outcome)| match kind {
            0 => Request::Ping,
            1 => Request::Predict { system_hash: a, binary_hash: b },
            2 => Request::Preload { model_id: id },
            3 => Request::Stats,
            4 => Request::SyncModels { have_generation: a },
            5 => Request::PredictMany { keys },
            6 => Request::ReportOutcome { system_hash: a, binary_hash: b, outcome },
            _ => Request::Burn { ms },
        })
}

fn arb_trace() -> impl Strategy<Value = TraceContext> {
    ((0u64..=u64::MAX), (0u64..=u64::MAX))
        .prop_map(|(trace, span)| TraceContext { trace: TraceId(trace), span: SpanId(span) })
}

fn arb_frame() -> impl Strategy<Value = RequestFrame> {
    (arb_request(), prop::option::of(0u64..=60_000), prop::option::of(arb_trace()), prop::option::of(0u64..=u64::MAX))
        .prop_map(|(body, deadline_ms, trace, corr)| RequestFrame { deadline_ms, trace, corr, body })
}

fn arb_snapshot() -> impl Strategy<Value = StatsSnapshot> {
    (
        prop::collection::vec(0u64..=u64::MAX, 32),
        "[a-z0-9-]{0,12}",
        "[a-z0-9/._-]{0,24}",
        prop::collection::vec(("[a-z0-9-]{0,10}", 0u64..=u64::MAX), 0..4),
        "[a-z0-9 /()-]{0,24}",
    )
        .prop_map(|(v, replica, store_dir, models_by_class, canary_state)| StatsSnapshot {
            replica,
            store_dir,
            models_by_class,
            canary_state,
            requests_total: v[0],
            predictions: v[1],
            cache_hits: v[2],
            cache_misses: v[3],
            busy_rejections: v[4],
            deadline_exceeded: v[5],
            errors: v[6],
            queue_depth: v[7],
            queue_capacity: v[8],
            workers: v[9],
            models_resident: v[10],
            evictions: v[11],
            model_generation: v[12],
            stale_generation_hits: v[13],
            generation_rollbacks: v[14],
            latency_p50_us: v[15],
            latency_p99_us: v[16],
            latency_max_us: v[17],
            preloads: v[18],
            store_catchups: v[19],
            store_generation: v[20],
            batches: v[21],
            batched_keys: v[22],
            outcomes_ingested: v[23],
            outcomes_rejected: v[24],
            outcome_reservoirs: v[25],
            drift_score_milli: v[26],
            drift_trips: v[27],
            drift_clears: v[28],
            adapt_refits: v[29],
            canary_promotions: v[30],
            canary_rollbacks: v[31],
        })
}

fn arb_outcome() -> impl Strategy<Value = KeyOutcome> {
    (0u32..3, arb_config(), ".{0,40}").prop_map(|(kind, config, text)| match kind {
        0 => KeyOutcome::Config(config),
        1 => KeyOutcome::Miss,
        _ => KeyOutcome::Error { message: text },
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u32..12,
        arb_config(),
        arb_snapshot(),
        (0u64..=u64::MAX),
        (0u64..=u64::MAX),
        (-1_000i64..=1_000_000),
        (".{0,80}", prop::collection::vec(arb_outcome(), 0..9)),
    )
        .prop_map(|(kind, config, stats, a, b, id, (text, results))| match kind {
            11 => Response::OutcomeAck { accepted: a % 2 == 0 },
            0 => Response::Pong,
            1 => Response::Config(config),
            2 => Response::Preloaded {
                model_id: id,
                model_type: text,
                system_hash: a,
                binary_hash: b,
                generation: id.unsigned_abs(),
            },
            3 => Response::Stats(Box::new(stats)),
            4 => Response::Busy { retry_after_ms: a % 10_000 },
            5 => Response::Miss { system_hash: a, binary_hash: b },
            6 => Response::DeadlineExceeded,
            7 => Response::Error { message: text.clone() },
            8 => Response::Models {
                models: vec![ModelSync {
                    model_id: id,
                    model_type: text,
                    system_hash: a,
                    binary_hash: b,
                    config,
                    generation: id.unsigned_abs(),
                    blob_hash: format!("{a:016x}"),
                }],
            },
            9 => Response::ManyConfigs { results },
            _ => Response::Burned,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any request frame decodes back to exactly itself.
    #[test]
    fn request_frames_roundtrip(frame in arb_frame()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let decoded: RequestFrame = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// Any response decodes back to exactly itself.
    #[test]
    fn responses_roundtrip(response in arb_response()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &response).unwrap();
        let decoded: Response = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(decoded, response);
    }

    /// A pipelined burst of frames reassembles identically no matter how
    /// the byte stream is chunked on the way in.
    #[test]
    fn streaming_reassembly_is_chunking_invariant(
        frames in prop::collection::vec(arb_frame(), 1..6),
        chunk in 1usize..48,
    ) {
        let mut wire = Vec::new();
        for frame in &frames {
            write_frame(&mut wire, frame).unwrap();
        }
        let mut buf = BytesMut::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            buf.put_slice(piece);
            while let Some(payload) = take_frame(&mut buf).unwrap() {
                decoded.push(serde_json::from_slice::<RequestFrame>(&payload).unwrap());
            }
        }
        prop_assert_eq!(decoded, frames);
        prop_assert!(buf.is_empty(), "no bytes may linger after the last frame");
    }

    /// Arbitrary junk bytes never panic the decoder: every outcome is a
    /// clean `Err` or a (lucky) decoded value.
    #[test]
    fn junk_bytes_never_panic_read_frame(junk in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = read_frame::<Response>(&mut junk.as_slice());
    }

    /// Arbitrary junk never panics the streaming path either; an
    /// oversized length prefix must surface as `Err`, not an allocation.
    #[test]
    fn junk_bytes_never_panic_take_frame(junk in prop::collection::vec(0u8..=255, 0..256)) {
        let mut buf = BytesMut::new();
        buf.put_slice(&junk);
        while let Ok(Some(_)) = take_frame(&mut buf) {}
    }

    /// A truncated valid frame is "not yet" (`Ok(None)`) for the
    /// streaming decoder, never an error or a phantom frame.
    #[test]
    fn truncated_frames_wait_for_more_bytes(frame in arb_frame(), keep in 0usize..4) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let cut = wire.len().saturating_sub(keep + 1);
        let mut buf = BytesMut::new();
        buf.put_slice(&wire[..cut]);
        prop_assert!(take_frame(&mut buf).unwrap().is_none());
    }

    /// Version negotiation, downgrade direction: an old peer (no
    /// `trace` field in its struct) decodes every new frame — traced or
    /// not — and sees the same deadline and body.
    #[test]
    fn old_peers_parse_traced_frames(frame in arb_frame()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let legacy: LegacyRequestFrame = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(legacy.deadline_ms, frame.deadline_ms);
        prop_assert_eq!(legacy.body, frame.body);
    }

    /// Version negotiation, upgrade direction: frames from an old peer
    /// (which never writes `trace`) decode on a new peer as untraced.
    #[test]
    fn new_peers_parse_legacy_frames_as_untraced(
        body in arb_request(),
        deadline_ms in prop::option::of(0u64..=60_000),
    ) {
        let legacy = LegacyRequestFrame { deadline_ms, body };
        let mut wire = Vec::new();
        write_frame(&mut wire, &legacy).unwrap();
        let decoded: RequestFrame = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(decoded.trace, None);
        prop_assert_eq!(decoded.deadline_ms, legacy.deadline_ms);
        prop_assert_eq!(decoded.body, legacy.body);
    }

    /// Junk in the trace header slot never panics either peer, and
    /// never breaks an un-traced peer: whatever JSON value sits under
    /// `"trace"`, the legacy decode (which ignores the field entirely)
    /// still yields the frame.
    #[test]
    fn junk_trace_header_never_panics_and_never_breaks_untraced_peers(
        junk in prop::sample::select(vec![
            "null", "42", "-1", "\"zz\"", "[]", "[1,2,3]", "{}",
            "{\"trace\":\"x\"}", "{\"trace\":1}", "{\"span\":2}",
            "{\"trace\":18446744073709551615,\"span\":null}",
            "{\"trace\":1,\"span\":2,\"extra\":true}",
            "true", "3.5", "{\"trace\":-7,\"span\":2}",
        ]),
        deadline in prop::option::of(0u64..=60_000),
    ) {
        let deadline_json = match deadline {
            Some(ms) => ms.to_string(),
            None => "null".to_string(),
        };
        let payload = format!(
            "{{\"deadline_ms\":{deadline_json},\"trace\":{junk},\"body\":\"Ping\"}}"
        );
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        wire.extend_from_slice(payload.as_bytes());

        // the traced peer may reject the junk, but must never panic
        let _ = read_frame::<RequestFrame>(&mut wire.as_slice());
        // the un-traced peer skips the field and always gets the frame
        let legacy: LegacyRequestFrame = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(legacy.deadline_ms, deadline);
        prop_assert_eq!(legacy.body, Request::Ping);
    }

    /// A maximum-size batch — the largest frame the protocol promises
    /// to carry — round-trips on both directions of the exchange.
    #[test]
    fn max_size_batches_roundtrip(seed in 0u64..=u64::MAX, outcome in arb_outcome()) {
        let keys: Vec<(u64, u64)> = (0..MAX_BATCH_KEYS as u64).map(|i| (seed ^ i, i)).collect();
        let request = RequestFrame::new(Request::PredictMany { keys: keys.clone() });
        let mut wire = Vec::new();
        write_frame(&mut wire, &request).unwrap();
        let decoded: RequestFrame = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(decoded.body, Request::PredictMany { keys });

        let reply = Response::ManyConfigs { results: vec![outcome; MAX_BATCH_KEYS] };
        let mut wire = Vec::new();
        write_frame(&mut wire, &reply).unwrap();
        let decoded: Response = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(decoded, reply);
    }

    /// Any enveloped reply decodes back to exactly itself.
    #[test]
    fn enveloped_replies_roundtrip(corr in 0u64..=u64::MAX, body in arb_response()) {
        let envelope = ResponseFrame { corr, body };
        let mut wire = Vec::new();
        write_frame(&mut wire, &envelope).unwrap();
        let decoded: ResponseFrame = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(decoded, envelope);
    }

    /// The two reply shapes can never be confused: a bare response
    /// never decodes as an envelope (it has no `corr`), and an envelope
    /// never decodes as a bare response (no enum variant is `corr`).
    /// This is what lets one connection carry both during negotiation.
    #[test]
    fn envelopes_and_bare_replies_never_confuse(corr in 0u64..=u64::MAX, body in arb_response()) {
        let mut bare = Vec::new();
        write_frame(&mut bare, &body).unwrap();
        prop_assert!(read_frame::<ResponseFrame>(&mut bare.as_slice()).is_err());

        let mut enveloped = Vec::new();
        write_frame(&mut enveloped, &ResponseFrame { corr, body }).unwrap();
        prop_assert!(read_frame::<Response>(&mut enveloped.as_slice()).is_err());
    }

    /// Pipelining, out of order: replies tagged with correlation ids
    /// arrive in an arbitrary permutation, and matching by corr always
    /// reunites each reply with its own request — never a neighbour's.
    #[test]
    fn corr_interleaving_never_cross_wires(
        bodies in prop::collection::vec(arb_response(), 2..6),
        rot in 0usize..8,
        reverse in 0u32..2,
    ) {
        let mut order: Vec<usize> = (0..bodies.len()).collect();
        order.rotate_left(rot % bodies.len());
        if reverse == 1 {
            order.reverse();
        }
        let mut wire = Vec::new();
        for &i in &order {
            write_frame(&mut wire, &ResponseFrame { corr: i as u64, body: bodies[i].clone() }).unwrap();
        }
        let mut stream = wire.as_slice();
        for _ in 0..bodies.len() {
            let envelope: ResponseFrame = read_frame(&mut stream).unwrap();
            prop_assert_eq!(&envelope.body, &bodies[envelope.corr as usize]);
        }
    }

    /// Arbitrary junk never panics the envelope decoder either.
    #[test]
    fn junk_bytes_never_panic_envelope_decode(junk in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = read_frame::<ResponseFrame>(&mut junk.as_slice());
    }

    /// Version negotiation for the outcome feed, downgrade direction:
    /// an old daemon (no `ReportOutcome` variant) fails to decode the
    /// new verb with a clean `Err` — never a panic, never a phantom
    /// verb. (That decode failure is what makes it answer a
    /// malformed-request `Error`, which `report_outcome` maps to
    /// `Ok(false)`; see the client.)
    #[test]
    fn old_daemons_reject_outcome_frames_cleanly(
        a in 0u64..=u64::MAX,
        b in 0u64..=u64::MAX,
        outcome in arb_observed(),
    ) {
        let frame = RequestFrame::new(Request::ReportOutcome { system_hash: a, binary_hash: b, outcome });
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        prop_assert!(read_frame::<LegacyRequest>(&mut wire.as_slice()).is_err());
        // every pre-outcome verb still decodes on the old daemon
        let old = RequestFrame::new(Request::Predict { system_hash: a, binary_hash: b });
        let mut wire = Vec::new();
        write_frame(&mut wire, &old).unwrap();
        prop_assert!(read_frame::<LegacyRequestFrame>(&mut wire.as_slice()).is_ok());
    }

    /// Upgrade direction: an old client never sees `OutcomeAck` (it
    /// never sends the verb), but if one ever crosses the wire it must
    /// fail the old decode cleanly rather than masquerade as another
    /// response.
    #[test]
    fn old_clients_reject_outcome_acks_cleanly(flag in 0u32..2) {
        let accepted = flag == 1;
        let mut wire = Vec::new();
        write_frame(&mut wire, &Response::OutcomeAck { accepted }).unwrap();
        prop_assert!(read_frame::<LegacyResponse>(&mut wire.as_slice()).is_err());
        // and the new peer round-trips it exactly
        let decoded: Response = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(decoded, Response::OutcomeAck { accepted });
    }

    /// Stats negotiation: a snapshot from an old daemon (none of the
    /// adaptation counters on the wire) decodes on a new client with
    /// every adaptation field at its zero default, all other counters
    /// intact.
    #[test]
    fn legacy_snapshots_default_the_adaptation_counters(snapshot in arb_snapshot()) {
        const ADAPT_FIELDS: &[&str] = &[
            "outcomes_ingested", "outcomes_rejected", "outcome_reservoirs", "drift_score_milli",
            "drift_trips", "drift_clears", "adapt_refits", "canary_promotions", "canary_rollbacks",
            "canary_state",
        ];
        let serde_json::Value::Object(fields) = serde_json::to_value(&snapshot).unwrap() else {
            panic!("a snapshot serializes to an object");
        };
        let stripped: serde_json::Map = fields
            .iter()
            .filter(|(k, _)| !ADAPT_FIELDS.contains(&k.as_str()))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        prop_assert_eq!(
            fields.len() - stripped.len(),
            ADAPT_FIELDS.len(),
            "new snapshots always carry every adaptation counter"
        );
        let decoded: StatsSnapshot = serde_json::from_value(serde_json::Value::Object(stripped)).unwrap();
        prop_assert_eq!(decoded.outcomes_ingested, 0);
        prop_assert_eq!(decoded.drift_trips, 0);
        prop_assert_eq!(decoded.adapt_refits, 0);
        prop_assert_eq!(decoded.canary_promotions, 0);
        prop_assert_eq!(decoded.canary_rollbacks, 0);
        prop_assert_eq!(decoded.canary_state, String::new());
        prop_assert_eq!(decoded.requests_total, snapshot.requests_total);
        prop_assert_eq!(decoded.model_generation, snapshot.model_generation);
        prop_assert_eq!(decoded.latency_max_us, snapshot.latency_max_us);
    }

    /// Junk in the `corr` slot never panics either peer, and a legacy
    /// peer (which has no `corr` field at all) still gets the frame.
    #[test]
    fn junk_corr_never_panics_and_never_breaks_legacy_peers(
        // (a number past u64::MAX is rejected by the JSON layer itself,
        // for every peer equally, so it is not a corr-level concern)
        junk in prop::sample::select(vec![
            "null", "-1", "\"zz\"", "[]", "{}", "3.5", "true",
            "18446744073709551615",
        ]),
    ) {
        let payload = format!("{{\"corr\":{junk},\"body\":\"Ping\"}}");
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        wire.extend_from_slice(payload.as_bytes());

        // the corr-aware peer may reject the junk, but must never panic
        let _ = read_frame::<RequestFrame>(&mut wire.as_slice());
        // the legacy peer skips the field and always gets the frame
        let legacy: LegacyRequestFrame = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(legacy.body, Request::Ping);
    }

    /// Transport transparency: any burst of payloads pushed through a
    /// byte-stream connection (blanket impl, length-prefixed) and a
    /// frame-level connection (direct impl, no prefixes) comes out
    /// identical on both — same payloads, same order. This is the
    /// property that lets `TcpTransport` and `ShmTransport` sit behind
    /// one `Connection` trait without the client caring which framed.
    #[test]
    fn byte_stream_and_frame_level_connections_exchange_identically(
        payloads in prop::collection::vec(prop::collection::vec(0u8..=255, 0..512), 0..8),
    ) {
        let mut bytes = ByteLoop::default();
        let mut frames = FrameLoop::default();
        for payload in &payloads {
            bytes.send_frame(payload).unwrap();
            frames.send_frame(payload).unwrap();
        }
        for payload in &payloads {
            prop_assert_eq!(&bytes.recv_frame().unwrap(), payload);
            prop_assert_eq!(&frames.recv_frame().unwrap(), payload);
        }
        prop_assert!(bytes.buf.is_empty(), "no bytes may linger after the last frame");
        prop_assert!(frames.frames.is_empty());
    }

    /// The blanket impl speaks exactly the classic wire format: bytes
    /// produced by `send_frame` on a stream are bit-identical to
    /// `write_frame`'s, and `read_frame`/`take_frame` decode them. An
    /// old peer on plain sockets cannot tell the redesign happened.
    #[test]
    fn blanket_impl_preserves_the_classic_wire_format(frame in arb_frame()) {
        let mut classic = Vec::new();
        write_frame(&mut classic, &frame).unwrap();

        let mut stream = ByteLoop::default();
        send_msg(&mut stream, &frame).unwrap();
        let streamed: Vec<u8> = stream.buf.iter().copied().collect();
        prop_assert_eq!(&streamed, &classic, "send_frame and write_frame must emit identical bytes");

        // and the stream side decodes what write_frame produced
        let mut replay = ByteLoop::default();
        replay.buf.extend(classic.iter().copied());
        let decoded: RequestFrame = serde_json::from_slice(&replay.recv_frame().unwrap()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// Full exchanges — serialize, send, receive, deserialize — agree
    /// across the two connection kinds for every message shape, both
    /// directions of the protocol.
    #[test]
    fn exchanges_agree_across_connection_kinds(frame in arb_frame(), reply in arb_response()) {
        let mut bytes = ByteLoop::default();
        let mut frames = FrameLoop::default();
        for conn in [&mut bytes as &mut dyn Connection, &mut frames as &mut dyn Connection] {
            send_msg(conn, &frame).unwrap();
            send_msg(conn, &reply).unwrap();
            let got_frame: RequestFrame = serde_json::from_slice(&conn.recv_frame().unwrap()).unwrap();
            let got_reply: Response = serde_json::from_slice(&conn.recv_frame().unwrap()).unwrap();
            prop_assert_eq!(&got_frame, &frame);
            prop_assert_eq!(&got_reply, &reply);
        }
    }

    /// Both connection kinds refuse an oversized frame with a clean
    /// error *before* transmitting anything — a too-large payload can
    /// never poison the stream for the frames behind it.
    #[test]
    fn oversized_frames_are_refused_without_transmitting(extra in 1usize..=16) {
        let payload = vec![0u8; MAX_FRAME_LEN + extra];
        let mut bytes = ByteLoop::default();
        prop_assert!(bytes.send_frame(&payload).is_err());
        prop_assert!(bytes.buf.is_empty(), "the refused frame must leave no bytes behind");
        let mut frames = FrameLoop::default();
        prop_assert!(frames.send_frame(&payload).is_err());
        prop_assert!(frames.frames.is_empty());
    }

    /// Only byte streams negotiate down to JSON batches: the blanket
    /// impl never claims the binary fast path (old daemons on sockets
    /// would not understand it), while a direct impl may opt in.
    #[test]
    fn byte_streams_never_claim_the_fast_path(junk in prop::collection::vec(0u8..=255, 0..16)) {
        let mut bytes = ByteLoop::default();
        bytes.buf.extend(junk);
        prop_assert!(!Connection::fast_batch(&bytes));
        prop_assert!(!FrameLoop::default().fast_batch(), "opting in is explicit, never inherited");
    }
}
