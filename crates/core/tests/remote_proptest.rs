//! Property-based tests for the `chronus::remote` wire codec: arbitrary
//! frames survive encode → decode identically, arbitrary junk never
//! panics the framing layer, and streaming reassembly is insensitive to
//! how the bytes are chunked.

use bytes::BytesMut;
use chronus::remote::{
    read_frame, take_frame, write_frame, ModelSync, Request, RequestFrame, Response, StatsSnapshot,
};
use chronus::telemetry::{SpanId, TraceContext, TraceId};
use eco_sim_node::cpu::CpuConfig;
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

/// The wire struct exactly as peers built before the trace header knew
/// it: no `trace` field at all. Stands in for an old client/daemon in
/// the compatibility properties below.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LegacyRequestFrame {
    #[serde(default)]
    deadline_ms: Option<u64>,
    body: Request,
}

fn arb_config() -> impl Strategy<Value = CpuConfig> {
    (1u32..=64, prop::sample::select(vec![1_500_000u64, 2_200_000, 2_500_000]), 1u32..=2)
        .prop_map(|(c, f, t)| CpuConfig::new(c, f, t))
}

fn arb_request() -> impl Strategy<Value = Request> {
    (0u32..6, (0u64..=u64::MAX), (0u64..=u64::MAX), (-1_000i64..=1_000_000), 0u64..=20_000).prop_map(
        |(kind, a, b, id, ms)| match kind {
            0 => Request::Ping,
            1 => Request::Predict { system_hash: a, binary_hash: b },
            2 => Request::Preload { model_id: id },
            3 => Request::Stats,
            4 => Request::SyncModels { have_generation: a },
            _ => Request::Burn { ms },
        },
    )
}

fn arb_trace() -> impl Strategy<Value = TraceContext> {
    ((0u64..=u64::MAX), (0u64..=u64::MAX))
        .prop_map(|(trace, span)| TraceContext { trace: TraceId(trace), span: SpanId(span) })
}

fn arb_frame() -> impl Strategy<Value = RequestFrame> {
    (arb_request(), prop::option::of(0u64..=60_000), prop::option::of(arb_trace()))
        .prop_map(|(body, deadline_ms, trace)| RequestFrame { deadline_ms, trace, body })
}

fn arb_snapshot() -> impl Strategy<Value = StatsSnapshot> {
    (prop::collection::vec(0u64..=u64::MAX, 21), "[a-z0-9-]{0,12}", "[a-z0-9/._-]{0,24}").prop_map(
        |(v, replica, store_dir)| StatsSnapshot {
            replica,
            store_dir,
            requests_total: v[0],
            predictions: v[1],
            cache_hits: v[2],
            cache_misses: v[3],
            busy_rejections: v[4],
            deadline_exceeded: v[5],
            errors: v[6],
            queue_depth: v[7],
            queue_capacity: v[8],
            workers: v[9],
            models_resident: v[10],
            evictions: v[11],
            model_generation: v[12],
            stale_generation_hits: v[13],
            generation_rollbacks: v[14],
            latency_p50_us: v[15],
            latency_p99_us: v[16],
            latency_max_us: v[17],
            preloads: v[18],
            store_catchups: v[19],
            store_generation: v[20],
        },
    )
}

fn arb_response() -> impl Strategy<Value = Response> {
    (0u32..10, arb_config(), arb_snapshot(), (0u64..=u64::MAX), (0u64..=u64::MAX), (-1_000i64..=1_000_000), ".{0,80}")
        .prop_map(|(kind, config, stats, a, b, id, text)| match kind {
            0 => Response::Pong,
            1 => Response::Config(config),
            2 => Response::Preloaded {
                model_id: id,
                model_type: text,
                system_hash: a,
                binary_hash: b,
                generation: id.unsigned_abs(),
            },
            3 => Response::Stats(stats),
            4 => Response::Busy { retry_after_ms: a % 10_000 },
            5 => Response::Miss { system_hash: a, binary_hash: b },
            6 => Response::DeadlineExceeded,
            7 => Response::Error { message: text.clone() },
            8 => Response::Models {
                models: vec![ModelSync {
                    model_id: id,
                    model_type: text,
                    system_hash: a,
                    binary_hash: b,
                    config,
                    generation: id.unsigned_abs(),
                    blob_hash: format!("{a:016x}"),
                }],
            },
            _ => Response::Burned,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any request frame decodes back to exactly itself.
    #[test]
    fn request_frames_roundtrip(frame in arb_frame()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let decoded: RequestFrame = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// Any response decodes back to exactly itself.
    #[test]
    fn responses_roundtrip(response in arb_response()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &response).unwrap();
        let decoded: Response = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(decoded, response);
    }

    /// A pipelined burst of frames reassembles identically no matter how
    /// the byte stream is chunked on the way in.
    #[test]
    fn streaming_reassembly_is_chunking_invariant(
        frames in prop::collection::vec(arb_frame(), 1..6),
        chunk in 1usize..48,
    ) {
        let mut wire = Vec::new();
        for frame in &frames {
            write_frame(&mut wire, frame).unwrap();
        }
        let mut buf = BytesMut::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            buf.put_slice(piece);
            while let Some(payload) = take_frame(&mut buf).unwrap() {
                decoded.push(serde_json::from_slice::<RequestFrame>(&payload).unwrap());
            }
        }
        prop_assert_eq!(decoded, frames);
        prop_assert!(buf.is_empty(), "no bytes may linger after the last frame");
    }

    /// Arbitrary junk bytes never panic the decoder: every outcome is a
    /// clean `Err` or a (lucky) decoded value.
    #[test]
    fn junk_bytes_never_panic_read_frame(junk in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = read_frame::<Response>(&mut junk.as_slice());
    }

    /// Arbitrary junk never panics the streaming path either; an
    /// oversized length prefix must surface as `Err`, not an allocation.
    #[test]
    fn junk_bytes_never_panic_take_frame(junk in prop::collection::vec(0u8..=255, 0..256)) {
        let mut buf = BytesMut::new();
        buf.put_slice(&junk);
        while let Ok(Some(_)) = take_frame(&mut buf) {}
    }

    /// A truncated valid frame is "not yet" (`Ok(None)`) for the
    /// streaming decoder, never an error or a phantom frame.
    #[test]
    fn truncated_frames_wait_for_more_bytes(frame in arb_frame(), keep in 0usize..4) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let cut = wire.len().saturating_sub(keep + 1);
        let mut buf = BytesMut::new();
        buf.put_slice(&wire[..cut]);
        prop_assert!(take_frame(&mut buf).unwrap().is_none());
    }

    /// Version negotiation, downgrade direction: an old peer (no
    /// `trace` field in its struct) decodes every new frame — traced or
    /// not — and sees the same deadline and body.
    #[test]
    fn old_peers_parse_traced_frames(frame in arb_frame()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let legacy: LegacyRequestFrame = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(legacy.deadline_ms, frame.deadline_ms);
        prop_assert_eq!(legacy.body, frame.body);
    }

    /// Version negotiation, upgrade direction: frames from an old peer
    /// (which never writes `trace`) decode on a new peer as untraced.
    #[test]
    fn new_peers_parse_legacy_frames_as_untraced(
        body in arb_request(),
        deadline_ms in prop::option::of(0u64..=60_000),
    ) {
        let legacy = LegacyRequestFrame { deadline_ms, body };
        let mut wire = Vec::new();
        write_frame(&mut wire, &legacy).unwrap();
        let decoded: RequestFrame = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(decoded.trace, None);
        prop_assert_eq!(decoded.deadline_ms, legacy.deadline_ms);
        prop_assert_eq!(decoded.body, legacy.body);
    }

    /// Junk in the trace header slot never panics either peer, and
    /// never breaks an un-traced peer: whatever JSON value sits under
    /// `"trace"`, the legacy decode (which ignores the field entirely)
    /// still yields the frame.
    #[test]
    fn junk_trace_header_never_panics_and_never_breaks_untraced_peers(
        junk in prop::sample::select(vec![
            "null", "42", "-1", "\"zz\"", "[]", "[1,2,3]", "{}",
            "{\"trace\":\"x\"}", "{\"trace\":1}", "{\"span\":2}",
            "{\"trace\":18446744073709551615,\"span\":null}",
            "{\"trace\":1,\"span\":2,\"extra\":true}",
            "true", "3.5", "{\"trace\":-7,\"span\":2}",
        ]),
        deadline in prop::option::of(0u64..=60_000),
    ) {
        let deadline_json = match deadline {
            Some(ms) => ms.to_string(),
            None => "null".to_string(),
        };
        let payload = format!(
            "{{\"deadline_ms\":{deadline_json},\"trace\":{junk},\"body\":\"Ping\"}}"
        );
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        wire.extend_from_slice(payload.as_bytes());

        // the traced peer may reject the junk, but must never panic
        let _ = read_frame::<RequestFrame>(&mut wire.as_slice());
        // the un-traced peer skips the field and always gets the frame
        let legacy: LegacyRequestFrame = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(legacy.deadline_ms, deadline);
        prop_assert_eq!(legacy.body, Request::Ping);
    }
}
