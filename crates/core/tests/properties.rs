//! Property-based tests for Chronus: storage round-trips, hashing, and
//! optimizer serialization over arbitrary benchmark data.

use chronus::domain::{Benchmark, ModelMetadata, SystemEntry};
use chronus::hash::simple_hash;
use chronus::integrations::csv_repo::CsvRepository;
use chronus::integrations::record_store::RecordStore;
use chronus::interfaces::Repository;
use chronus::optimizers::ModelFactory;
use eco_sim_node::cpu::CpuConfig;
use eco_sim_node::sysinfo::SystemFacts;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "eco-props-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn arb_config() -> impl Strategy<Value = CpuConfig> {
    (1u32..=32, prop::sample::select(vec![1_500_000u64, 2_200_000, 2_500_000]), 1u32..=2)
        .prop_map(|(c, f, t)| CpuConfig::new(c, f, t))
}

fn arb_benchmark() -> impl Strategy<Value = Benchmark> {
    (arb_config(), 0.1f64..20.0, 10.0f64..5000.0, 100.0f64..300.0, 30.0f64..150.0, 25.0f64..90.0, 1usize..5000)
        .prop_map(|(config, gflops, runtime_s, sys_w, cpu_w, temp, samples)| Benchmark {
            id: -1,
            system_id: 1,
            binary_hash: 42,
            config,
            gflops,
            runtime_s,
            avg_system_w: sys_w,
            avg_cpu_w: cpu_w,
            avg_cpu_temp_c: temp,
            system_energy_j: sys_w * runtime_s,
            cpu_energy_j: cpu_w * runtime_s,
            sample_count: samples,
        })
}

fn facts() -> SystemFacts {
    SystemFacts {
        cpu_name: "AMD EPYC 7502P 32-Core Processor".into(),
        cores: 32,
        threads_per_core: 2,
        frequencies_khz: vec![1_500_000, 2_200_000, 2_500_000],
        ram_gb: 256,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Record store persists arbitrary benchmarks byte-exactly across
    /// reopen.
    #[test]
    fn record_store_roundtrip(benches in prop::collection::vec(arb_benchmark(), 1..10)) {
        let dir = tmpdir("rs");
        let path = dir.join("data.db");
        let mut stored = Vec::new();
        {
            let mut db = RecordStore::open(&path).unwrap();
            for b in &benches {
                let id = db.save_benchmark(b).unwrap();
                stored.push(Benchmark { id, ..b.clone() });
            }
        }
        let db = RecordStore::open(&path).unwrap();
        let loaded = db.all_benchmarks().unwrap();
        prop_assert_eq!(loaded, stored);
    }

    /// CSV repository round-trips arbitrary benchmarks through text files
    /// with full numeric fidelity.
    #[test]
    fn csv_repo_roundtrip(benches in prop::collection::vec(arb_benchmark(), 1..8)) {
        let dir = tmpdir("csv");
        let mut stored = Vec::new();
        {
            let mut repo = CsvRepository::open(&dir).unwrap();
            for b in &benches {
                let id = repo.save_benchmark(b).unwrap();
                stored.push(Benchmark { id, ..b.clone() });
            }
        }
        let repo = CsvRepository::open(&dir).unwrap();
        let loaded = repo.all_benchmarks().unwrap();
        prop_assert_eq!(loaded.len(), stored.len());
        for (l, s) in loaded.iter().zip(&stored) {
            prop_assert_eq!(l.id, s.id);
            prop_assert_eq!(l.config, s.config);
            prop_assert!((l.gflops - s.gflops).abs() < 1e-12);
            prop_assert!((l.system_energy_j - s.system_energy_j).abs() < 1e-9);
            prop_assert_eq!(l.sample_count, s.sample_count);
        }
    }

    /// Both repository backends agree on system dedup semantics.
    #[test]
    fn system_dedup_both_backends(hashes in prop::collection::vec(0u64..5, 1..12)) {
        let dir = tmpdir("dedup");
        let mut rs = RecordStore::open(dir.join("d.db")).unwrap();
        let mut csv = CsvRepository::open(dir.join("csv")).unwrap();
        for &h in &hashes {
            let e = SystemEntry { id: -1, facts: facts(), system_hash: h };
            let a = rs.save_system(&e).unwrap();
            let b = csv.save_system(&e).unwrap();
            prop_assert_eq!(a, b, "backends disagree for hash {}", h);
        }
        let distinct: std::collections::HashSet<u64> = hashes.iter().copied().collect();
        prop_assert_eq!(rs.systems().unwrap().len(), distinct.len());
        prop_assert_eq!(csv.systems().unwrap().len(), distinct.len());
    }

    /// simple_hash is deterministic and order-sensitive.
    #[test]
    fn simple_hash_properties(a in ".{0,64}", b in ".{0,64}") {
        prop_assert_eq!(simple_hash(&a), simple_hash(&a));
        if a != b {
            // collisions are possible in principle but astronomically
            // unlikely for short random strings; treat one as a failure
            prop_assert_ne!(simple_hash(&a), simple_hash(&b), "collision: {:?} vs {:?}", a, b);
        }
    }

    /// Every optimizer family serializes and deserializes to identical
    /// predictions over arbitrary training data.
    #[test]
    fn optimizer_serde_roundtrip(benches in prop::collection::vec(arb_benchmark(), 4..20)) {
        for model_type in ModelFactory::model_types() {
            let mut opt = ModelFactory::create(model_type).unwrap();
            opt.fit(&benches).unwrap();
            let bytes = opt.to_bytes().unwrap();
            let loaded = ModelFactory::from_bytes(model_type, &bytes).unwrap();
            for b in benches.iter().take(5) {
                prop_assert_eq!(
                    opt.predict_gpw(&b.config).unwrap(),
                    loaded.predict_gpw(&b.config).unwrap(),
                    "{} diverged after roundtrip", model_type
                );
            }
        }
    }

    /// Model metadata survives both backends.
    #[test]
    fn model_metadata_roundtrip(n in 1usize..6, r2 in 0.0f64..1.0) {
        let dir = tmpdir("meta");
        let mut db = RecordStore::open(dir.join("d.db")).unwrap();
        for i in 0..n {
            let meta = ModelMetadata {
                id: -1,
                model_type: "random-tree".into(),
                system_id: 1,
                binary_hash: i as u64,
                blob_path: format!("models/{i}.json"),
                created_at_ms: i as u64 * 1000,
                train_rows: 138,
                fit_r2: r2,
            };
            db.save_model(&meta).unwrap();
        }
        prop_assert_eq!(db.models().unwrap().len(), n);
        for m in db.models().unwrap() {
            prop_assert!(db.model(m.id).unwrap().is_some());
        }
    }
}
