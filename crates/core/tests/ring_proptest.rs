//! Property-based tests for the fleet's consistent-hash ring: load
//! stays balanced within a constant factor of fair share, membership
//! changes move only the keys they must (the consistent-hashing
//! contract), and the failover order is a permutation rooted at the
//! primary.

use chronus::remote::{predict_key, HashRing};
use proptest::prelude::*;
use std::collections::HashMap;

/// Vnode count the client uses by default; balance bounds below are
/// calibrated against it.
const VNODES: u32 = 128;

/// Sampled keyspace per case — enough that per-member shares
/// concentrate, small enough to keep the suite fast.
const KEYS: u64 = 4096;

fn owners(ring: &HashRing, keys: u64) -> HashMap<u32, u64> {
    let mut counts = HashMap::new();
    for k in 0..keys {
        let key = predict_key(mix_sample(k), !mix_sample(k * 31 + 7));
        *counts.entry(ring.primary(key).expect("non-empty ring")).or_insert(0) += 1;
    }
    counts
}

/// Spreads the dense sample index so key material looks like real
/// (system_hash, binary_hash) digests rather than small integers.
fn mix_sample(x: u64) -> u64 {
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) ^ x
}

proptest! {
    /// At 128 vnodes every member's share of a sampled keyspace stays
    /// within [fair/3, 3·fair] — no member is starved or doubled-up
    /// beyond the constant factor vnode smoothing guarantees.
    #[test]
    fn load_is_balanced_within_a_constant_factor(n in 2u32..=8) {
        let mut ring = HashRing::new(VNODES);
        ring.rebuild(0..n);
        let counts = owners(&ring, KEYS);
        prop_assert_eq!(counts.len() as u32, n, "every member owns some keys");
        let fair = KEYS / u64::from(n);
        for (m, c) in counts {
            prop_assert!(
                c >= fair / 3 && c <= fair * 3,
                "member {} owns {} of {} keys (fair share {})", m, c, KEYS, fair
            );
        }
    }

    /// Adding a member moves keys *only onto the new member*: every key
    /// whose owner changed now belongs to the newcomer, and nobody
    /// else's keys were reshuffled among the old members.
    #[test]
    fn adding_a_member_only_moves_keys_to_it(n in 1u32..=7) {
        let mut before = HashRing::new(VNODES);
        before.rebuild(0..n);
        let mut after = HashRing::new(VNODES);
        after.rebuild(0..=n);
        let mut moved = 0u64;
        for k in 0..KEYS {
            let key = predict_key(mix_sample(k), !mix_sample(k * 31 + 7));
            let old = before.primary(key).unwrap();
            let new = after.primary(key).unwrap();
            if old != new {
                prop_assert_eq!(new, n, "a moved key must land on the new member, not reshuffle");
                moved += 1;
            }
        }
        // The newcomer takes roughly 1/(n+1) of the keyspace; allow 3×.
        let expected = KEYS / u64::from(n + 1);
        prop_assert!(moved <= expected * 3, "added member stole {} keys (expected about {})", moved, expected);
    }

    /// Removing a member moves *only that member's keys*: any key owned
    /// by a survivor keeps its owner.
    #[test]
    fn removing_a_member_strands_only_its_keys(n in 2u32..=8, gone_ix in 0u32..8) {
        let gone = gone_ix % n;
        let mut before = HashRing::new(VNODES);
        before.rebuild(0..n);
        let mut after = HashRing::new(VNODES);
        after.rebuild((0..n).filter(|&m| m != gone));
        for k in 0..KEYS {
            let key = predict_key(mix_sample(k), !mix_sample(k * 31 + 7));
            let old = before.primary(key).unwrap();
            let new = after.primary(key).unwrap();
            if old != gone {
                prop_assert_eq!(old, new, "a survivor's key must not move when another member leaves");
            } else {
                prop_assert_ne!(new, gone, "the removed member must own nothing");
            }
        }
    }

    /// `ordered(key)` is always a permutation of the membership whose
    /// first element is `primary(key)` — the failover walk visits every
    /// replica exactly once, best first.
    #[test]
    fn failover_order_is_a_primary_rooted_permutation(n in 1u32..=8, sh in 0u64..=u64::MAX, bh in 0u64..=u64::MAX) {
        let mut ring = HashRing::new(VNODES);
        ring.rebuild(0..n);
        let key = predict_key(sh, bh);
        let order = ring.ordered(key);
        prop_assert_eq!(order.len() as u32, n);
        prop_assert_eq!(order[0], ring.primary(key).unwrap());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len() as u32, n, "ordered() must not repeat members");
    }

    /// Routing never panics and is total for any key and membership,
    /// including members with sparse, non-contiguous indices.
    #[test]
    fn routing_is_total_for_arbitrary_memberships(raw in prop::collection::vec(0u32..512, 1..12), key in 0u64..=u64::MAX) {
        let members: std::collections::BTreeSet<u32> = raw.into_iter().collect();
        let mut ring = HashRing::new(VNODES);
        ring.rebuild(members.iter().copied());
        let p = ring.primary(key).unwrap();
        prop_assert!(members.contains(&p));
        let order = ring.ordered(key);
        prop_assert_eq!(order.len(), members.len());
    }
}
