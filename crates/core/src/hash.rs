//! Identity hashing, exactly as the paper's plugin does it (§4.2.1).
//!
//! The C plugin concatenates `/proc/cpuinfo` with the `MemTotal` line of
//! `/proc/meminfo` and feeds the string through the `simple_hash` function
//! of Listing 3 (djb2 with the paper's seed 53871). The binary hash runs
//! the same function over the executable's contents.

use eco_sim_node::cpu::CpuSpec;
use eco_sim_node::sysinfo::{proc_cpuinfo, proc_meminfo};

/// The paper's Listing 3 `simple_hash`: djb2 (`hash * 33 + c`) seeded with
/// 53871 instead of the canonical 5381.
pub fn simple_hash(input: &str) -> u64 {
    let mut hash: u64 = 53871;
    for &byte in input.as_bytes() {
        hash = hash.wrapping_mul(33).wrapping_add(byte as u64);
    }
    hash
}

/// The system hash: `simple_hash` over the concatenation of the node's
/// `/proc/cpuinfo` and its RAM size line, as the plugin reads them.
pub fn system_hash(spec: &CpuSpec, ram_gb: u32) -> u64 {
    let mut s = proc_cpuinfo(spec);
    s.push_str(&proc_meminfo(ram_gb));
    simple_hash(&s)
}

/// The binary hash: `simple_hash` over the executable's contents. The
/// simulation stands in the workload's `binary_id` for the file bytes.
pub fn binary_hash(binary_contents: &str) -> u64 {
    simple_hash(binary_contents)
}

/// Hash of a node-class name (for per-class model identity).
pub fn class_hash(class: &str) -> u64 {
    simple_hash(class)
}

/// Widens a system hash with a node class, producing the `(system,
/// node_class)` half of the three-part prediction key `(system,
/// node_class, binary)`.
///
/// The wire protocol and the model store key on two `u64`s — `(system,
/// binary)` — and that does not change: the class is *folded into* the
/// system hash, so every RPC frame, ledger record and registry entry
/// keeps its shape and old journals replay byte-for-byte. The empty
/// class (the default for single-type clusters and everything written
/// before node classes existed) is the identity: `classed_system_hash(s,
/// "") == s`, which is the whole migration story — legacy `(system,
/// binary)` keys are exactly the default-class keys.
pub fn classed_system_hash(system: u64, class: &str) -> u64 {
    if class.is_empty() {
        return system;
    }
    system ^ class_hash(class).rotate_left(17)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_djb2_recurrence() {
        // hash("a") = 53871 * 33 + 'a'
        assert_eq!(simple_hash("a"), 53871 * 33 + 97);
        // hash("ab") = (hash("a")) * 33 + 'b'
        assert_eq!(simple_hash("ab"), (53871u64 * 33 + 97) * 33 + 98);
    }

    #[test]
    fn empty_string_is_seed() {
        assert_eq!(simple_hash(""), 53871);
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(simple_hash("hpcg"), simple_hash("hpcg"));
        assert_ne!(simple_hash("hpcg"), simple_hash("hpcl"));
        assert_ne!(simple_hash("ab"), simple_hash("ba"));
    }

    #[test]
    fn system_hash_stable_for_same_machine() {
        let spec = CpuSpec::epyc_7502p();
        assert_eq!(system_hash(&spec, 256), system_hash(&spec, 256));
    }

    #[test]
    fn system_hash_distinguishes_ram_and_cpu() {
        let spec = CpuSpec::epyc_7502p();
        assert_ne!(system_hash(&spec, 256), system_hash(&spec, 128));
        let mut other = spec.clone();
        other.name = "AMD EPYC 7302P 16-Core Processor".into();
        assert_ne!(system_hash(&spec, 256), system_hash(&other, 256));
    }

    #[test]
    fn binary_hash_distinguishes_problem_sizes() {
        assert_ne!(binary_hash("xhpcg-3.1-nx104-ny104-nz104"), binary_hash("xhpcg-3.1-nx64-ny64-nz64"));
    }

    #[test]
    fn empty_class_is_the_identity() {
        // the migration shim: legacy (system, binary) keys == default-class keys
        let spec = CpuSpec::epyc_7502p();
        let s = system_hash(&spec, 256);
        assert_eq!(classed_system_hash(s, ""), s);
    }

    #[test]
    fn classes_partition_the_key_space() {
        let s = 0xdead_beef_u64;
        let a = classed_system_hash(s, "sr650");
        let b = classed_system_hash(s, "dense64");
        assert_ne!(a, s);
        assert_ne!(b, s);
        assert_ne!(a, b);
        // deterministic
        assert_eq!(a, classed_system_hash(s, "sr650"));
    }

    #[test]
    fn no_overflow_panic_on_long_input() {
        let long = "x".repeat(100_000);
        let _ = simple_hash(&long); // wrapping arithmetic, must not panic
    }
}
