//! # chronus — energy-efficient configuration service for HPC schedulers
//!
//! The primary contribution of the reproduced paper: an external
//! application that benchmarks an HPC application across CPU
//! configurations (cores × frequency × threads-per-core), fits prediction
//! models over the measured GFLOPS/W surface, and answers the Slurm
//! `job_submit_eco` plugin's "what is the most energy-efficient
//! configuration for this (system, binary)?" query within the scheduler's
//! submit-path time budget.
//!
//! Structured as the paper's Clean Architecture (Figure 11):
//!
//! * [`domain`] — entities (benchmarks, models, settings);
//! * [`application`] — the four Chronus functions (§3.1.2) behind
//!   [`application::Chronus`];
//! * [`interfaces`] — the integration interfaces (ports) of §3.2;
//! * [`integrations`] — their implementations (CSV, record store, IPMI,
//!   lscpu, HPCG runner, etc-storage, local blob store);
//! * [`optimizers`] — brute force / linear regression / random tree and
//!   the Listing-2 [`optimizers::ModelFactory`];
//! * [`presenter`] + [`cli`] — the five CLI commands of §3.3;
//! * [`hash`] — the plugin's `simple_hash` identity scheme (§4.2.1).

pub mod application;
pub mod cli;
pub mod domain;
pub mod error;
pub mod hash;
pub mod integrations;
pub mod interfaces;
pub mod logging;
pub mod optimizers;
pub mod presenter;
pub mod remote;

/// The observability spine shared by every layer of the submit→predict
/// pipeline (re-exported from the `eco-telemetry` leaf crate so the
/// Slurm simulator — which `chronus` itself depends on — can emit
/// through the same types without a dependency cycle).
pub mod telemetry {
    pub use eco_telemetry::*;
}

pub use application::{predict_from_settings, Chronus, DEFAULT_SAMPLE_INTERVAL};
pub use domain::{Benchmark, EnergySample, LoadedModel, ModelMetadata, PluginState, Settings, SystemEntry};
pub use error::{ChronusError, Result};
pub use hash::{binary_hash, simple_hash, system_hash};
pub use interfaces::{
    ApplicationRunner, FileRepository, FitReport, LocalStorage, Optimizer, Repository, SystemInfoProvider,
    SystemService,
};
pub use logging::{ChronusLog, LogEntry};
pub use optimizers::{BruteForceOptimizer, LinearRegressionOptimizer, ModelFactory, RandomTreeOptimizer};
pub use remote::{
    CallOptions, ClientBuildError, ClientBuilder, Endpoint, EndpointParseError, FleetPreload, LocalPrediction,
    ObservedOutcome, PredictClient, PredictionSource, PreloadAck, RemoteError, RemotePrediction, ReplicaStatus,
    Request, RequestFrame, Response, ShmListener, ShmTransport, StatsSnapshot,
};
