//! The embedded record store: a minimal single-file database standing in
//! for the paper's SQLite repository.
//!
//! Format: an append-only log of JSON lines, one operation per line —
//! `{"t":"benchmarks","id":3,"d":{…}}`. Opening replays the log into
//! in-memory tables; every write appends and flushes, so interrupted
//! processes lose at most the unflushed tail. [`RecordStore::compact`]
//! rewrites the file to drop superseded versions.

use crate::domain::{Benchmark, ModelMetadata, SystemEntry};
use crate::error::{ChronusError, Result};
use crate::interfaces::Repository;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

#[derive(Debug, Serialize, Deserialize)]
struct LogLine {
    /// Table name.
    t: String,
    /// Record id within the table.
    id: i64,
    /// The record body (`null` marks a deletion).
    d: Value,
}

/// The open database.
#[derive(Debug)]
pub struct RecordStore {
    path: PathBuf,
    tables: BTreeMap<String, BTreeMap<i64, Value>>,
}

impl RecordStore {
    /// Opens (or creates) the database file, replaying its log.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut tables: BTreeMap<String, BTreeMap<i64, Value>> = BTreeMap::new();
        if path.exists() {
            let reader = BufReader::new(File::open(&path)?);
            for (lineno, line) in reader.lines().enumerate() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let entry: LogLine = serde_json::from_str(&line).map_err(|e| {
                    ChronusError::InvalidInput(format!("corrupt record store at line {}: {e}", lineno + 1))
                })?;
                let table = tables.entry(entry.t).or_default();
                if entry.d.is_null() {
                    table.remove(&entry.id);
                } else {
                    table.insert(entry.id, entry.d);
                }
            }
        }
        Ok(RecordStore { path, tables })
    }

    /// The database file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Inserts a record with a fresh id; returns the id.
    pub fn insert<T: Serialize>(&mut self, table: &str, value: &T) -> Result<i64> {
        let id = self.next_id(table);
        self.put(table, id, value)?;
        Ok(id)
    }

    /// Writes a record at a specific id (insert or replace).
    pub fn put<T: Serialize>(&mut self, table: &str, id: i64, value: &T) -> Result<()> {
        let d = serde_json::to_value(value)?;
        self.append(&LogLine { t: table.to_string(), id, d: d.clone() })?;
        self.tables.entry(table.to_string()).or_default().insert(id, d);
        Ok(())
    }

    /// Deletes a record; returns whether it existed.
    pub fn delete(&mut self, table: &str, id: i64) -> Result<bool> {
        let existed = self.tables.get_mut(table).is_some_and(|t| t.remove(&id).is_some());
        if existed {
            self.append(&LogLine { t: table.to_string(), id, d: Value::Null })?;
        }
        Ok(existed)
    }

    /// Fetches one record, deserialized.
    pub fn get<T: for<'de> Deserialize<'de>>(&self, table: &str, id: i64) -> Result<Option<T>> {
        match self.tables.get(table).and_then(|t| t.get(&id)) {
            Some(v) => Ok(Some(serde_json::from_value(v.clone())?)),
            None => Ok(None),
        }
    }

    /// All records in a table, in id order, with their ids.
    pub fn scan<T: for<'de> Deserialize<'de>>(&self, table: &str) -> Result<Vec<(i64, T)>> {
        let Some(t) = self.tables.get(table) else { return Ok(Vec::new()) };
        t.iter().map(|(&id, v)| Ok((id, serde_json::from_value(v.clone())?))).collect()
    }

    /// Number of live records in a table.
    pub fn len(&self, table: &str) -> usize {
        self.tables.get(table).map_or(0, BTreeMap::len)
    }

    /// True when a table holds no records.
    pub fn is_empty(&self, table: &str) -> bool {
        self.len(table) == 0
    }

    /// Rewrites the log keeping only live records (reclaims space after
    /// overwrites/deletes).
    pub fn compact(&self) -> Result<()> {
        let tmp = self.path.with_extension("compact");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            for (table, records) in &self.tables {
                for (&id, d) in records {
                    let line = serde_json::to_string(&LogLine { t: table.clone(), id, d: d.clone() })?;
                    writeln!(w, "{line}")?;
                }
            }
            w.flush()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }

    fn next_id(&self, table: &str) -> i64 {
        self.tables.get(table).and_then(|t| t.keys().next_back()).map_or(1, |max| max + 1)
    }

    fn append(&self, line: &LogLine) -> Result<()> {
        let mut f = OpenOptions::new().create(true).append(true).open(&self.path)?;
        writeln!(f, "{}", serde_json::to_string(line)?)?;
        f.flush()?;
        Ok(())
    }
}

const T_SYSTEMS: &str = "systems";
const T_BENCHMARKS: &str = "benchmarks";
const T_MODELS: &str = "models";

impl Repository for RecordStore {
    fn save_system(&mut self, entry: &SystemEntry) -> Result<i64> {
        if let Some(existing) = self.system_by_hash(entry.system_hash)? {
            return Ok(existing.id);
        }
        let id = self.next_id(T_SYSTEMS);
        let mut stored = entry.clone();
        stored.id = id;
        self.put(T_SYSTEMS, id, &stored)?;
        Ok(id)
    }

    fn systems(&self) -> Result<Vec<SystemEntry>> {
        Ok(self.scan::<SystemEntry>(T_SYSTEMS)?.into_iter().map(|(_, s)| s).collect())
    }

    fn save_benchmark(&mut self, benchmark: &Benchmark) -> Result<i64> {
        let id = self.next_id(T_BENCHMARKS);
        let mut stored = benchmark.clone();
        stored.id = id;
        self.put(T_BENCHMARKS, id, &stored)?;
        Ok(id)
    }

    fn benchmarks(&self, system_id: i64, binary_hash: u64) -> Result<Vec<Benchmark>> {
        Ok(self
            .all_benchmarks()?
            .into_iter()
            .filter(|b| b.system_id == system_id && b.binary_hash == binary_hash)
            .collect())
    }

    fn all_benchmarks(&self) -> Result<Vec<Benchmark>> {
        Ok(self.scan::<Benchmark>(T_BENCHMARKS)?.into_iter().map(|(_, b)| b).collect())
    }

    fn save_model(&mut self, meta: &ModelMetadata) -> Result<i64> {
        let id = self.next_id(T_MODELS);
        let mut stored = meta.clone();
        stored.id = id;
        self.put(T_MODELS, id, &stored)?;
        Ok(id)
    }

    fn models(&self) -> Result<Vec<ModelMetadata>> {
        Ok(self.scan::<ModelMetadata>(T_MODELS)?.into_iter().map(|(_, m)| m).collect())
    }

    fn model(&self, id: i64) -> Result<Option<ModelMetadata>> {
        self.get(T_MODELS, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_sim_node::cpu::CpuConfig;
    use eco_sim_node::sysinfo::SystemFacts;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("eco-recordstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn facts() -> SystemFacts {
        SystemFacts {
            cpu_name: "AMD EPYC 7502P 32-Core Processor".into(),
            cores: 32,
            threads_per_core: 2,
            frequencies_khz: vec![1_500_000, 2_200_000, 2_500_000],
            ram_gb: 256,
        }
    }

    fn bench(system_id: i64, cores: u32) -> Benchmark {
        Benchmark {
            id: -1,
            system_id,
            binary_hash: 99,
            config: CpuConfig::new(cores, 2_200_000, 1),
            gflops: 9.0,
            runtime_s: 100.0,
            avg_system_w: 200.0,
            avg_cpu_w: 100.0,
            avg_cpu_temp_c: 55.0,
            system_energy_j: 20_000.0,
            cpu_energy_j: 10_000.0,
            sample_count: 50,
        }
    }

    #[test]
    fn crud_roundtrip() {
        let dir = tmpdir("crud");
        let mut db = RecordStore::open(dir.join("data.db")).unwrap();
        let id = db.insert("things", &serde_json::json!({"x": 1})).unwrap();
        assert_eq!(id, 1);
        let got: Option<Value> = db.get("things", id).unwrap();
        assert_eq!(got.unwrap()["x"], 1);
        assert!(db.delete("things", id).unwrap());
        assert!(!db.delete("things", id).unwrap());
        assert!(db.is_empty("things"));
    }

    #[test]
    fn persists_across_reopen() {
        let dir = tmpdir("reopen");
        let path = dir.join("data.db");
        {
            let mut db = RecordStore::open(&path).unwrap();
            db.insert("t", &serde_json::json!({"v": "a"})).unwrap();
            db.insert("t", &serde_json::json!({"v": "b"})).unwrap();
            db.delete("t", 1).unwrap();
        }
        let db = RecordStore::open(&path).unwrap();
        assert_eq!(db.len("t"), 1);
        let got: Option<Value> = db.get("t", 2).unwrap();
        assert_eq!(got.unwrap()["v"], "b");
    }

    #[test]
    fn ids_do_not_recycle_after_tail_delete() {
        let dir = tmpdir("ids");
        let mut db = RecordStore::open(dir.join("d.db")).unwrap();
        let a = db.insert("t", &serde_json::json!(1)).unwrap();
        let b = db.insert("t", &serde_json::json!(2)).unwrap();
        assert_eq!((a, b), (1, 2));
        // deleting the middle record keeps later ids unique
        db.delete("t", 1).unwrap();
        let c = db.insert("t", &serde_json::json!(3)).unwrap();
        assert_eq!(c, 3);
    }

    #[test]
    fn compact_preserves_state_and_shrinks() {
        let dir = tmpdir("compact");
        let path = dir.join("d.db");
        let mut db = RecordStore::open(&path).unwrap();
        for i in 0..20 {
            db.put("t", 1, &serde_json::json!({"rev": i})).unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        db.compact().unwrap();
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "{after} !< {before}");
        let reopened = RecordStore::open(&path).unwrap();
        let got: Option<Value> = reopened.get("t", 1).unwrap();
        assert_eq!(got.unwrap()["rev"], 19);
    }

    #[test]
    fn corrupt_file_reports_line() {
        let dir = tmpdir("corrupt");
        let path = dir.join("d.db");
        std::fs::write(&path, "{\"t\":\"x\",\"id\":1,\"d\":{}}\nnot json\n").unwrap();
        let err = RecordStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn repository_system_dedup_by_hash() {
        let dir = tmpdir("sys");
        let mut db = RecordStore::open(dir.join("d.db")).unwrap();
        let entry = SystemEntry { id: -1, facts: facts(), system_hash: 777 };
        let a = db.save_system(&entry).unwrap();
        let b = db.save_system(&entry).unwrap();
        assert_eq!(a, b, "same hash reuses the row");
        assert_eq!(db.systems().unwrap().len(), 1);
        assert_eq!(db.system_by_hash(777).unwrap().unwrap().id, a);
        assert!(db.system_by_hash(778).unwrap().is_none());
    }

    #[test]
    fn repository_benchmarks_filtering() {
        let dir = tmpdir("benchfilter");
        let mut db = RecordStore::open(dir.join("d.db")).unwrap();
        db.save_benchmark(&bench(1, 4)).unwrap();
        db.save_benchmark(&bench(1, 8)).unwrap();
        db.save_benchmark(&bench(2, 4)).unwrap();
        assert_eq!(db.all_benchmarks().unwrap().len(), 3);
        assert_eq!(db.benchmarks(1, 99).unwrap().len(), 2);
        assert_eq!(db.benchmarks(2, 99).unwrap().len(), 1);
        assert_eq!(db.benchmarks(1, 55).unwrap().len(), 0);
        // ids assigned
        assert!(db.all_benchmarks().unwrap().iter().all(|b| b.id > 0));
    }

    #[test]
    fn repository_models_roundtrip() {
        let dir = tmpdir("models");
        let mut db = RecordStore::open(dir.join("d.db")).unwrap();
        let meta = ModelMetadata {
            id: -1,
            model_type: "linear-regression".into(),
            system_id: 1,
            binary_hash: 9,
            blob_path: "models/1.json".into(),
            created_at_ms: 123,
            train_rows: 138,
            fit_r2: 0.97,
        };
        let id = db.save_model(&meta).unwrap();
        let got = db.model(id).unwrap().unwrap();
        assert_eq!(got.model_type, "linear-regression");
        assert_eq!(got.id, id);
        assert!(db.model(999).unwrap().is_none());
        assert_eq!(db.models().unwrap().len(), 1);
    }
}
