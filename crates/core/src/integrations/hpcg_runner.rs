//! The HPCG implementation of the Application Runner interface.
//!
//! Mirrors the paper's Listing 5/6 flow: generate a Slurm batch file with
//! the configuration's `--ntasks`, `--cpu-freq` and `--ntasks-per-core`,
//! submit it with `sbatch`, and read the GFLOP rating back when the job
//! completes.

use crate::error::Result;
use crate::hash::binary_hash;
use crate::interfaces::ApplicationRunner;
use eco_hpcg::workload::Workload;
use eco_sim_node::cpu::CpuConfig;
use eco_slurm_sim::script::generate_hpcg_script;
use eco_slurm_sim::{Cluster, JobId, JobRecord};
use std::sync::Arc;

/// Runs HPCG benchmark jobs through the cluster.
pub struct HpcgRunner {
    binary_path: String,
    workload: Arc<dyn Workload>,
    user: String,
}

impl HpcgRunner {
    /// Creates the runner and installs the HPCG binary into the cluster's
    /// executable registry at `binary_path`.
    pub fn install(cluster: &mut Cluster, binary_path: &str, workload: Arc<dyn Workload>) -> Self {
        cluster.register_binary(binary_path, workload.clone());
        HpcgRunner { binary_path: binary_path.to_string(), workload, user: "chronus".to_string() }
    }

    /// The workload behind the binary.
    pub fn workload(&self) -> &Arc<dyn Workload> {
        &self.workload
    }
}

impl ApplicationRunner for HpcgRunner {
    fn name(&self) -> &str {
        "hpcg"
    }

    fn binary_path(&self) -> &str {
        &self.binary_path
    }

    fn binary_hash(&self) -> u64 {
        binary_hash(self.workload.binary_id())
    }

    fn submit(&self, cluster: &mut Cluster, config: &CpuConfig) -> Result<JobId> {
        let script =
            generate_hpcg_script(config.cores, config.frequency_khz, config.threads_per_core, &self.binary_path);
        Ok(cluster.sbatch(&script, &self.user)?)
    }

    fn gflops_from_record(&self, record: &JobRecord) -> f64 {
        let (Some(start), Some(end)) = (record.start_time, record.end_time) else { return 0.0 };
        let secs = (end - start).as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.workload.total_gflop() / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_hpcg::perf_model::PerfModel;
    use eco_hpcg::workload::HpcgWorkload;
    use eco_sim_node::clock::SimDuration;
    use eco_sim_node::SimNode;
    use eco_slurm_sim::JobState;

    fn setup() -> (Cluster, HpcgRunner) {
        let mut cluster = Cluster::single_node(SimNode::sr650());
        let perf = Arc::new(PerfModel::sr650());
        // a light workload (1/50 of the paper's) to keep tests fast
        let work = perf.gflops(&perf.standard_config()) * 22.0;
        let workload = Arc::new(HpcgWorkload::with_work(perf, work, 104));
        let runner = HpcgRunner::install(&mut cluster, "/opt/hpcg/bin/xhpcg", workload);
        (cluster, runner)
    }

    #[test]
    fn submit_generates_listing_6_job() {
        let (mut cluster, runner) = setup();
        let cfg = CpuConfig::new(32, 2_200_000, 2);
        let id = runner.submit(&mut cluster, &cfg).unwrap();
        let job = cluster.job(id).unwrap();
        assert_eq!(job.descriptor.num_tasks, 32);
        assert_eq!(job.descriptor.threads_per_cpu, 2);
        assert_eq!(job.descriptor.max_frequency_khz, Some(2_200_000));
        assert_eq!(job.descriptor.user, "chronus");
        assert_eq!(job.state, JobState::Running);
    }

    #[test]
    fn gflops_recovered_from_runtime() {
        let (mut cluster, runner) = setup();
        let cfg = CpuConfig::new(32, 2_500_000, 1);
        let id = runner.submit(&mut cluster, &cfg).unwrap();
        cluster.run_until_idle(SimDuration::from_mins(5));
        let record = cluster.accounting().get(id).unwrap();
        let gflops = runner.gflops_from_record(record);
        // the standard configuration delivers ~9.35 GFLOP/s
        assert!((gflops - 9.35).abs() < 0.2, "gflops {gflops}");
    }

    #[test]
    fn binary_hash_stable_and_content_derived() {
        let (_c, runner) = setup();
        assert_eq!(runner.binary_hash(), binary_hash("xhpcg-3.1-nx104-ny104-nz104"));
        assert_eq!(runner.name(), "hpcg");
        assert_eq!(runner.binary_path(), "/opt/hpcg/bin/xhpcg");
    }

    #[test]
    fn gflops_of_unstarted_record_is_zero() {
        let record = JobRecord {
            id: eco_slurm_sim::JobId(1),
            name: "x".into(),
            user: "u".into(),
            state: JobState::Cancelled,
            config: None,
            submit_time: eco_sim_node::clock::SimTime::ZERO,
            start_time: None,
            end_time: None,
            system_energy_j: 0.0,
            cpu_energy_j: 0.0,
        };
        let (_c, runner) = setup();
        assert_eq!(runner.gflops_from_record(&record), 0.0);
    }
}
