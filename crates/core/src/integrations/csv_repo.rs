//! The CSV repository: the paper's second Repository implementation.
//! Three files in a directory — `systems.csv`, `benchmarks.csv`,
//! `models.csv` — with RFC-4180-style quoting, rewritten atomically on
//! every save (datasets here are hundreds of rows, not millions).

use crate::domain::{Benchmark, ModelMetadata, SystemEntry};
use crate::error::{ChronusError, Result};
use crate::interfaces::Repository;
use eco_sim_node::cpu::CpuConfig;
use eco_sim_node::sysinfo::SystemFacts;
use std::path::{Path, PathBuf};

/// The CSV-backed repository.
#[derive(Debug)]
pub struct CsvRepository {
    dir: PathBuf,
    systems: Vec<SystemEntry>,
    benchmarks: Vec<Benchmark>,
    models: Vec<ModelMetadata>,
}

impl CsvRepository {
    /// Opens (or creates) a repository directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut repo = CsvRepository { dir, systems: Vec::new(), benchmarks: Vec::new(), models: Vec::new() };
        repo.load()?;
        Ok(repo)
    }

    fn load(&mut self) -> Result<()> {
        self.systems = read_csv(&self.dir.join("systems.csv"))?
            .into_iter()
            .map(|row| parse_system(&row))
            .collect::<Result<_>>()?;
        self.benchmarks = read_csv(&self.dir.join("benchmarks.csv"))?
            .into_iter()
            .map(|row| parse_benchmark(&row))
            .collect::<Result<_>>()?;
        self.models = read_csv(&self.dir.join("models.csv"))?
            .into_iter()
            .map(|row| parse_model(&row))
            .collect::<Result<_>>()?;
        Ok(())
    }

    fn flush_systems(&self) -> Result<()> {
        let rows: Vec<Vec<String>> = self.systems.iter().map(system_row).collect();
        write_csv(&self.dir.join("systems.csv"), SYSTEM_HEADER, &rows)
    }

    fn flush_benchmarks(&self) -> Result<()> {
        let rows: Vec<Vec<String>> = self.benchmarks.iter().map(benchmark_row).collect();
        write_csv(&self.dir.join("benchmarks.csv"), BENCH_HEADER, &rows)
    }

    fn flush_models(&self) -> Result<()> {
        let rows: Vec<Vec<String>> = self.models.iter().map(model_row).collect();
        write_csv(&self.dir.join("models.csv"), MODEL_HEADER, &rows)
    }

    fn next_id(items: impl Iterator<Item = i64>) -> i64 {
        items.max().unwrap_or(0) + 1
    }
}

impl Repository for CsvRepository {
    fn save_system(&mut self, entry: &SystemEntry) -> Result<i64> {
        if let Some(existing) = self.systems.iter().find(|s| s.system_hash == entry.system_hash) {
            return Ok(existing.id);
        }
        let id = Self::next_id(self.systems.iter().map(|s| s.id));
        let mut stored = entry.clone();
        stored.id = id;
        self.systems.push(stored);
        self.flush_systems()?;
        Ok(id)
    }

    fn systems(&self) -> Result<Vec<SystemEntry>> {
        Ok(self.systems.clone())
    }

    fn save_benchmark(&mut self, benchmark: &Benchmark) -> Result<i64> {
        let id = Self::next_id(self.benchmarks.iter().map(|b| b.id));
        let mut stored = benchmark.clone();
        stored.id = id;
        self.benchmarks.push(stored);
        self.flush_benchmarks()?;
        Ok(id)
    }

    fn benchmarks(&self, system_id: i64, binary_hash: u64) -> Result<Vec<Benchmark>> {
        Ok(self
            .benchmarks
            .iter()
            .filter(|b| b.system_id == system_id && b.binary_hash == binary_hash)
            .cloned()
            .collect())
    }

    fn all_benchmarks(&self) -> Result<Vec<Benchmark>> {
        Ok(self.benchmarks.clone())
    }

    fn save_model(&mut self, meta: &ModelMetadata) -> Result<i64> {
        let id = Self::next_id(self.models.iter().map(|m| m.id));
        let mut stored = meta.clone();
        stored.id = id;
        self.models.push(stored);
        self.flush_models()?;
        Ok(id)
    }

    fn models(&self) -> Result<Vec<ModelMetadata>> {
        Ok(self.models.clone())
    }

    fn model(&self, id: i64) -> Result<Option<ModelMetadata>> {
        Ok(self.models.iter().find(|m| m.id == id).cloned())
    }
}

// ---- CSV primitives ----

/// Quotes a field when it contains a separator, quote or newline.
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Splits one CSV line honouring quoted fields with doubled quotes.
fn csv_split(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if field.is_empty() => quoted = true,
            ',' if !quoted => {
                out.push(std::mem::take(&mut field));
            }
            c => field.push(c),
        }
    }
    out.push(field);
    out
}

fn write_csv(path: &Path, header: &str, rows: &[Vec<String>]) -> Result<()> {
    let mut content = String::from(header);
    content.push('\n');
    for row in rows {
        let line: Vec<String> = row.iter().map(|f| csv_escape(f)).collect();
        content.push_str(&line.join(","));
        content.push('\n');
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn read_csv(path: &Path) -> Result<Vec<Vec<String>>> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let content = std::fs::read_to_string(path)?;
    Ok(content.lines().skip(1).filter(|l| !l.trim().is_empty()).map(csv_split).collect())
}

// ---- row codecs ----

const SYSTEM_HEADER: &str = "id,system_hash,cpu_name,cores,threads_per_core,frequencies_khz,ram_gb";
const BENCH_HEADER: &str = "id,system_id,binary_hash,cores,frequency_khz,threads_per_core,gflops,runtime_s,avg_system_w,avg_cpu_w,avg_cpu_temp_c,system_energy_j,cpu_energy_j,sample_count";
const MODEL_HEADER: &str = "id,model_type,system_id,binary_hash,blob_path,created_at_ms,train_rows,fit_r2";

fn system_row(s: &SystemEntry) -> Vec<String> {
    let freqs: Vec<String> = s.facts.frequencies_khz.iter().map(|f| f.to_string()).collect();
    vec![
        s.id.to_string(),
        s.system_hash.to_string(),
        s.facts.cpu_name.clone(),
        s.facts.cores.to_string(),
        s.facts.threads_per_core.to_string(),
        freqs.join(" "),
        s.facts.ram_gb.to_string(),
    ]
}

fn field(row: &[String], i: usize) -> Result<&str> {
    row.get(i).map(String::as_str).ok_or_else(|| ChronusError::InvalidInput(format!("csv row missing column {i}")))
}

fn num<T: std::str::FromStr>(row: &[String], i: usize) -> Result<T> {
    let f = field(row, i)?;
    f.parse().map_err(|_| ChronusError::InvalidInput(format!("bad csv value '{f}' in column {i}")))
}

fn parse_system(row: &[String]) -> Result<SystemEntry> {
    let freqs = field(row, 5)?
        .split_whitespace()
        .map(|f| f.parse().map_err(|_| ChronusError::InvalidInput(format!("bad frequency '{f}'"))))
        .collect::<Result<Vec<u64>>>()?;
    Ok(SystemEntry {
        id: num(row, 0)?,
        system_hash: num(row, 1)?,
        facts: SystemFacts {
            cpu_name: field(row, 2)?.to_string(),
            cores: num(row, 3)?,
            threads_per_core: num(row, 4)?,
            frequencies_khz: freqs,
            ram_gb: num(row, 6)?,
        },
    })
}

fn benchmark_row(b: &Benchmark) -> Vec<String> {
    vec![
        b.id.to_string(),
        b.system_id.to_string(),
        b.binary_hash.to_string(),
        b.config.cores.to_string(),
        b.config.frequency_khz.to_string(),
        b.config.threads_per_core.to_string(),
        b.gflops.to_string(),
        b.runtime_s.to_string(),
        b.avg_system_w.to_string(),
        b.avg_cpu_w.to_string(),
        b.avg_cpu_temp_c.to_string(),
        b.system_energy_j.to_string(),
        b.cpu_energy_j.to_string(),
        b.sample_count.to_string(),
    ]
}

fn parse_benchmark(row: &[String]) -> Result<Benchmark> {
    Ok(Benchmark {
        id: num(row, 0)?,
        system_id: num(row, 1)?,
        binary_hash: num(row, 2)?,
        config: CpuConfig::new(num(row, 3)?, num(row, 4)?, num(row, 5)?),
        gflops: num(row, 6)?,
        runtime_s: num(row, 7)?,
        avg_system_w: num(row, 8)?,
        avg_cpu_w: num(row, 9)?,
        avg_cpu_temp_c: num(row, 10)?,
        system_energy_j: num(row, 11)?,
        cpu_energy_j: num(row, 12)?,
        sample_count: num(row, 13)?,
    })
}

fn model_row(m: &ModelMetadata) -> Vec<String> {
    vec![
        m.id.to_string(),
        m.model_type.clone(),
        m.system_id.to_string(),
        m.binary_hash.to_string(),
        m.blob_path.clone(),
        m.created_at_ms.to_string(),
        m.train_rows.to_string(),
        m.fit_r2.to_string(),
    ]
}

fn parse_model(row: &[String]) -> Result<ModelMetadata> {
    Ok(ModelMetadata {
        id: num(row, 0)?,
        model_type: field(row, 1)?.to_string(),
        system_id: num(row, 2)?,
        binary_hash: num(row, 3)?,
        blob_path: field(row, 4)?.to_string(),
        created_at_ms: num(row, 5)?,
        train_rows: num(row, 6)?,
        fit_r2: num(row, 7)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("eco-csvrepo-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn facts() -> SystemFacts {
        SystemFacts {
            cpu_name: "AMD EPYC 7502P 32-Core Processor".into(),
            cores: 32,
            threads_per_core: 2,
            frequencies_khz: vec![1_500_000, 2_200_000, 2_500_000],
            ram_gb: 256,
        }
    }

    fn bench(system_id: i64) -> Benchmark {
        Benchmark {
            id: -1,
            system_id,
            binary_hash: 7,
            config: CpuConfig::new(32, 2_200_000, 2),
            gflops: 9.26,
            runtime_s: 1127.0,
            avg_system_w: 190.1,
            avg_cpu_w: 97.4,
            avg_cpu_temp_c: 53.8,
            system_energy_j: 214_400.0,
            cpu_energy_j: 109_800.0,
            sample_count: 563,
        }
    }

    #[test]
    fn csv_quoting_roundtrip() {
        for s in ["plain", "with,comma", "with \"quotes\"", "both,\",\""] {
            let esc = csv_escape(s);
            let back = csv_split(&esc);
            assert_eq!(back, vec![s.to_string()], "via {esc}");
        }
    }

    #[test]
    fn csv_split_multiple_fields() {
        assert_eq!(csv_split("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(csv_split("a,\"b,c\",d"), vec!["a", "b,c", "d"]);
        assert_eq!(csv_split(""), vec![""]);
        assert_eq!(csv_split("a,,c"), vec!["a", "", "c"]);
    }

    #[test]
    fn save_and_reload_all_tables() {
        let dir = tmpdir("roundtrip");
        let (sys_id, bench_id, model_id);
        {
            let mut repo = CsvRepository::open(&dir).unwrap();
            sys_id = repo.save_system(&SystemEntry { id: -1, facts: facts(), system_hash: 555 }).unwrap();
            bench_id = repo.save_benchmark(&bench(sys_id)).unwrap();
            model_id = repo
                .save_model(&ModelMetadata {
                    id: -1,
                    model_type: "random-tree".into(),
                    system_id: sys_id,
                    binary_hash: 7,
                    blob_path: "m/1.json".into(),
                    created_at_ms: 42,
                    train_rows: 138,
                    fit_r2: 0.98,
                })
                .unwrap();
        }
        let repo = CsvRepository::open(&dir).unwrap();
        let systems = repo.systems().unwrap();
        assert_eq!(systems.len(), 1);
        assert_eq!(systems[0].id, sys_id);
        assert_eq!(systems[0].facts, facts());
        let benches = repo.benchmarks(sys_id, 7).unwrap();
        assert_eq!(benches.len(), 1);
        assert_eq!(benches[0].id, bench_id);
        assert!((benches[0].gflops - 9.26).abs() < 1e-12);
        assert_eq!(benches[0].config, CpuConfig::new(32, 2_200_000, 2));
        let model = repo.model(model_id).unwrap().unwrap();
        assert_eq!(model.model_type, "random-tree");
    }

    #[test]
    fn system_dedup_by_hash() {
        let dir = tmpdir("dedup");
        let mut repo = CsvRepository::open(&dir).unwrap();
        let e = SystemEntry { id: -1, facts: facts(), system_hash: 1 };
        let a = repo.save_system(&e).unwrap();
        let b = repo.save_system(&e).unwrap();
        assert_eq!(a, b);
        assert_eq!(repo.systems().unwrap().len(), 1);
    }

    #[test]
    fn ids_increment() {
        let dir = tmpdir("ids");
        let mut repo = CsvRepository::open(&dir).unwrap();
        let a = repo.save_benchmark(&bench(1)).unwrap();
        let b = repo.save_benchmark(&bench(1)).unwrap();
        assert_eq!(b, a + 1);
    }

    #[test]
    fn empty_repo_reads_cleanly() {
        let dir = tmpdir("empty");
        let repo = CsvRepository::open(&dir).unwrap();
        assert!(repo.systems().unwrap().is_empty());
        assert!(repo.all_benchmarks().unwrap().is_empty());
        assert!(repo.models().unwrap().is_empty());
        assert!(repo.model(1).unwrap().is_none());
    }

    #[test]
    fn files_are_human_readable() {
        let dir = tmpdir("readable");
        let mut repo = CsvRepository::open(&dir).unwrap();
        repo.save_benchmark(&bench(1)).unwrap();
        let content = std::fs::read_to_string(dir.join("benchmarks.csv")).unwrap();
        assert!(content.starts_with("id,system_id,binary_hash,cores,frequency_khz"), "{content}");
        assert!(content.lines().count() == 2);
    }
}
