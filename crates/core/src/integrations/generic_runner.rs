//! A generic Application Runner over any [`Workload`] — the "how to add an
//! implementation practically" the paper's §4.1 walks through: the
//! application layer only sees the interface, so adding support for a new
//! application is one more implementation, not a restructuring.

use crate::error::Result;
use crate::hash::binary_hash;
use crate::interfaces::ApplicationRunner;
use eco_hpcg::workload::Workload;
use eco_sim_node::cpu::CpuConfig;
use eco_slurm_sim::{Cluster, JobDescriptor, JobId, JobRecord};
use std::sync::Arc;

/// Runs any registered workload as a benchmark application (e.g. the
/// synthetic compute-/memory-bound kernels, or a site's own code).
pub struct GenericRunner {
    name: String,
    binary_path: String,
    workload: Arc<dyn Workload>,
    user: String,
}

impl GenericRunner {
    /// Installs the workload into the cluster registry at `binary_path`.
    pub fn install(cluster: &mut Cluster, binary_path: &str, workload: Arc<dyn Workload>) -> Self {
        cluster.register_binary(binary_path, workload.clone());
        GenericRunner {
            name: workload.name().to_string(),
            binary_path: binary_path.to_string(),
            workload,
            user: "chronus".to_string(),
        }
    }
}

impl ApplicationRunner for GenericRunner {
    fn name(&self) -> &str {
        &self.name
    }

    fn binary_path(&self) -> &str {
        &self.binary_path
    }

    fn binary_hash(&self) -> u64 {
        binary_hash(self.workload.binary_id())
    }

    fn submit(&self, cluster: &mut Cluster, config: &CpuConfig) -> Result<JobId> {
        let mut desc = JobDescriptor::new(&format!("bench-{}", self.name), &self.user, &self.binary_path);
        desc.num_tasks = config.cores;
        desc.threads_per_cpu = config.threads_per_core;
        desc.min_frequency_khz = Some(config.frequency_khz);
        desc.max_frequency_khz = Some(config.frequency_khz);
        Ok(cluster.submit(desc)?)
    }

    fn gflops_from_record(&self, record: &JobRecord) -> f64 {
        let (Some(start), Some(end)) = (record.start_time, record.end_time) else { return 0.0 };
        let secs = (end - start).as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.workload.total_gflop() / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::{Chronus, DEFAULT_SAMPLE_INTERVAL};
    use crate::integrations::monitoring::{IpmiService, LscpuInfo};
    use crate::integrations::record_store::RecordStore;
    use crate::integrations::storage::{EtcStorage, LocalBlobStore};
    use eco_hpcg::workload::{ScalingKind, SyntheticWorkload};
    use eco_sim_node::SimNode;

    #[test]
    fn benchmarks_a_compute_bound_application() {
        let root = std::env::temp_dir().join(format!("eco-generic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut cluster = Cluster::single_node(SimNode::sr650());
        // compute-bound: more cores & frequency always help performance…
        let workload = Arc::new(SyntheticWorkload::new("dgemm", ScalingKind::ComputeBound, 2000.0, 1.0));
        let runner = GenericRunner::install(&mut cluster, "/opt/apps/dgemm", workload);
        assert_eq!(runner.name(), "dgemm");

        let mut app = Chronus::new(
            Box::new(RecordStore::open(root.join("d.db")).unwrap()),
            Box::new(LocalBlobStore::new(root.join("b")).unwrap()),
            Box::new(EtcStorage::new(&root)),
        );
        let configs = vec![
            CpuConfig::new(32, 2_500_000, 1),
            CpuConfig::new(32, 2_200_000, 1),
            CpuConfig::new(16, 2_500_000, 1),
        ];
        let benches = app
            .benchmark(
                &mut cluster,
                &runner,
                &mut IpmiService::new(0, 2),
                &LscpuInfo::new(0),
                Some(&configs),
                DEFAULT_SAMPLE_INTERVAL,
            )
            .unwrap();
        assert_eq!(benches.len(), 3);
        // …and for this compute-bound kernel 32c@2.5 is also the most
        // efficient (unlike HPCG): performance scales faster than power
        let best =
            benches.iter().max_by(|a, b| a.gflops_per_watt().partial_cmp(&b.gflops_per_watt()).unwrap()).unwrap();
        assert_eq!(
            best.config,
            CpuConfig::new(32, 2_500_000, 1),
            "{:?}",
            benches.iter().map(|b| (b.config, b.gflops_per_watt())).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_applications_get_different_binary_hashes() {
        let mut cluster = Cluster::single_node(SimNode::sr650());
        let a = GenericRunner::install(
            &mut cluster,
            "/opt/a",
            Arc::new(SyntheticWorkload::new("a", ScalingKind::ComputeBound, 1.0, 1.0)),
        );
        let b = GenericRunner::install(
            &mut cluster,
            "/opt/b",
            Arc::new(SyntheticWorkload::new("b", ScalingKind::MemoryBound, 1.0, 1.0)),
        );
        assert_ne!(a.binary_hash(), b.binary_hash());
    }
}
