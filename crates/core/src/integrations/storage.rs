//! Local Storage (etc-storage) and File Repository (local blob store)
//! integrations.

use crate::domain::Settings;
use crate::error::{ChronusError, Result};
use crate::interfaces::{FileRepository, LocalStorage};
use std::path::{Path, PathBuf};

/// The etc-storage implementation of Local Storage: a `settings.json`
/// under a root directory (the paper's `/etc/chronus/settings.json`).
#[derive(Debug, Clone)]
pub struct EtcStorage {
    root: PathBuf,
}

impl EtcStorage {
    /// Uses `root` as the filesystem root (`root/etc/chronus/settings.json`).
    pub fn new(root: impl AsRef<Path>) -> Self {
        EtcStorage { root: root.as_ref().to_path_buf() }
    }

    /// Full path of the settings file.
    pub fn settings_path(&self) -> PathBuf {
        self.root.join("etc/chronus/settings.json")
    }
}

impl LocalStorage for EtcStorage {
    fn load_settings(&self) -> Result<Settings> {
        let path = self.settings_path();
        if !path.exists() {
            return Ok(Settings::default());
        }
        let content = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&content)?)
    }

    fn save_settings(&self, settings: &Settings) -> Result<()> {
        let path = self.settings_path();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, serde_json::to_string_pretty(settings)?)?;
        Ok(())
    }

    fn resolve(&self, path: &str) -> PathBuf {
        let p = Path::new(path);
        if p.is_absolute() {
            p.to_path_buf()
        } else {
            self.root.join(p.strip_prefix("./").unwrap_or(p))
        }
    }
}

/// The local-directory implementation of File Repository — the paper's
/// "saves models to a folder called ./optimizers"; NFS or S3 would be
/// alternative implementations of the same interface.
#[derive(Debug, Clone)]
pub struct LocalBlobStore {
    root: PathBuf,
}

impl LocalBlobStore {
    /// Stores blobs under `root`.
    pub fn new(root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(LocalBlobStore { root })
    }

    fn full(&self, path: &str) -> Result<PathBuf> {
        if path.contains("..") || Path::new(path).is_absolute() {
            return Err(ChronusError::InvalidInput(format!("blob path must be relative and clean: {path}")));
        }
        Ok(self.root.join(path))
    }
}

impl FileRepository for LocalBlobStore {
    fn put(&mut self, path: &str, bytes: &[u8]) -> Result<()> {
        let full = self.full(path)?;
        if let Some(parent) = full.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(full, bytes)?;
        Ok(())
    }

    fn get(&self, path: &str) -> Result<Vec<u8>> {
        let full = self.full(path)?;
        if !full.exists() {
            return Err(ChronusError::NotFound(format!("blob {path}")));
        }
        Ok(std::fs::read(full)?)
    }

    fn exists(&self, path: &str) -> bool {
        self.full(path).map(|p| p.exists()).unwrap_or(false)
    }

    fn list(&self) -> Result<Vec<String>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            for entry in std::fs::read_dir(&dir)? {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if let Ok(rel) = path.strip_prefix(&self.root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::PluginState;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("eco-storage-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn settings_default_when_missing() {
        let etc = EtcStorage::new(tmpdir("defaults"));
        let s = etc.load_settings().unwrap();
        assert_eq!(s, Settings::default());
    }

    #[test]
    fn settings_roundtrip() {
        let etc = EtcStorage::new(tmpdir("roundtrip"));
        let s = Settings {
            state: PluginState::Active,
            database: "/var/lib/chronus/data.db".into(),
            ..Settings::default()
        };
        etc.save_settings(&s).unwrap();
        assert_eq!(etc.load_settings().unwrap(), s);
        assert!(etc.settings_path().ends_with("etc/chronus/settings.json"));
    }

    #[test]
    fn resolve_relative_and_absolute() {
        let root = tmpdir("resolve");
        let etc = EtcStorage::new(&root);
        assert_eq!(etc.resolve("./database/data.db"), root.join("database/data.db"));
        assert_eq!(etc.resolve("optimizers"), root.join("optimizers"));
        assert_eq!(etc.resolve("/abs/path"), PathBuf::from("/abs/path"));
    }

    #[test]
    fn blob_put_get_exists_list() {
        let mut store = LocalBlobStore::new(tmpdir("blob")).unwrap();
        assert!(!store.exists("models/a.json"));
        store.put("models/a.json", b"hello").unwrap();
        store.put("models/sub/b.json", b"world").unwrap();
        assert!(store.exists("models/a.json"));
        assert_eq!(store.get("models/a.json").unwrap(), b"hello");
        assert_eq!(store.list().unwrap(), vec!["models/a.json".to_string(), "models/sub/b.json".to_string()]);
    }

    #[test]
    fn blob_missing_is_not_found() {
        let store = LocalBlobStore::new(tmpdir("missing")).unwrap();
        assert!(matches!(store.get("nope.bin"), Err(ChronusError::NotFound(_))));
    }

    #[test]
    fn blob_rejects_escaping_paths() {
        let mut store = LocalBlobStore::new(tmpdir("escape")).unwrap();
        assert!(store.put("../evil", b"x").is_err());
        assert!(store.put("/abs", b"x").is_err());
        assert!(!store.exists("../evil"));
    }

    #[test]
    fn blob_overwrite() {
        let mut store = LocalBlobStore::new(tmpdir("overwrite")).unwrap();
        store.put("a", b"1").unwrap();
        store.put("a", b"2").unwrap();
        assert_eq!(store.get("a").unwrap(), b"2");
    }
}
