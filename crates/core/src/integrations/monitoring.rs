//! The System Service (IPMI) and System Info (`lscpu`) integrations —
//! Chronus's window onto the node's sensors and identity.

use crate::domain::EnergySample;
use crate::hash::system_hash;
use crate::interfaces::{SystemInfoProvider, SystemService};
use eco_sim_node::clock::SimTime;
use eco_sim_node::ipmi::Bmc;
use eco_sim_node::sysinfo::SystemFacts;
use eco_slurm_sim::Cluster;

/// The IPMI implementation of the System Service interface: polls the
/// BMC of one cluster node (the paper's §3.1.2 step 2 sampler).
pub struct IpmiService {
    bmc: Bmc,
    node_idx: usize,
    t0: Option<SimTime>,
}

impl IpmiService {
    /// Monitors node `node_idx` through a BMC seeded for deterministic
    /// sensor noise.
    pub fn new(node_idx: usize, seed: u64) -> Self {
        IpmiService { bmc: Bmc::new(seed), node_idx, t0: None }
    }

    /// Resets the sample-relative time origin (call at job start).
    pub fn start_window(&mut self, at: SimTime) {
        self.t0 = Some(at);
    }
}

impl SystemService for IpmiService {
    fn sample(&mut self, cluster: &Cluster) -> EnergySample {
        let node = cluster.node(self.node_idx);
        let reading = self.bmc.read(node);
        let t0 = *self.t0.get_or_insert(reading.time);
        EnergySample {
            t_s: (reading.time - t0).as_secs_f64(),
            system_w: reading.total_power_w as f64,
            cpu_w: reading.cpu_power_w as f64,
            cpu_temp_c: reading.cpu_temp_c as f64,
        }
    }
}

/// The multi-node implementation of the System Service interface — the
/// paper's §3.2 contrast case: "in a multi-node configuration, obtaining
/// power data necessitates an API measuring power consumption across
/// multiple nodes. … That is two different implementations for the same
/// integration interface." One BMC per node, readings summed cluster-wide
/// (temperature reported as the hottest package, the operational metric).
pub struct ClusterPowerApi {
    bmcs: Vec<Bmc>,
    t0: Option<SimTime>,
}

impl ClusterPowerApi {
    /// Monitors `node_count` nodes, one deterministic BMC each.
    pub fn new(node_count: usize, seed: u64) -> Self {
        assert!(node_count >= 1, "need at least one node");
        ClusterPowerApi { bmcs: (0..node_count).map(|i| Bmc::new(seed.wrapping_add(i as u64))).collect(), t0: None }
    }

    /// Resets the sample-relative time origin.
    pub fn start_window(&mut self, at: SimTime) {
        self.t0 = Some(at);
    }
}

impl SystemService for ClusterPowerApi {
    fn sample(&mut self, cluster: &Cluster) -> EnergySample {
        assert_eq!(self.bmcs.len(), cluster.node_count(), "one BMC per node");
        let mut system_w = 0.0;
        let mut cpu_w = 0.0;
        let mut max_temp: f64 = 0.0;
        let mut time = SimTime::ZERO;
        for (idx, bmc) in self.bmcs.iter_mut().enumerate() {
            let r = bmc.read(cluster.node(idx));
            system_w += r.total_power_w as f64;
            cpu_w += r.cpu_power_w as f64;
            max_temp = max_temp.max(r.cpu_temp_c as f64);
            time = r.time;
        }
        let t0 = *self.t0.get_or_insert(time);
        EnergySample { t_s: (time - t0).as_secs_f64(), system_w, cpu_w, cpu_temp_c: max_temp }
    }
}

/// The `lscpu` implementation of the System Info interface.
pub struct LscpuInfo {
    node_idx: usize,
}

impl LscpuInfo {
    /// Reads identity from node `node_idx`.
    pub fn new(node_idx: usize) -> Self {
        LscpuInfo { node_idx }
    }
}

impl SystemInfoProvider for LscpuInfo {
    fn facts(&self, cluster: &Cluster) -> SystemFacts {
        SystemFacts::from_node(cluster.node(self.node_idx))
    }

    fn system_hash(&self, cluster: &Cluster) -> u64 {
        let node = cluster.node(self.node_idx);
        system_hash(node.spec(), node.ram_gb())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_sim_node::clock::SimDuration;
    use eco_sim_node::SimNode;

    fn cluster() -> Cluster {
        Cluster::single_node(SimNode::sr650())
    }

    #[test]
    fn sample_times_are_window_relative() {
        let mut c = cluster();
        c.advance(SimDuration::from_secs(100));
        let mut svc = IpmiService::new(0, 1);
        svc.start_window(c.now());
        let s0 = svc.sample(&c);
        assert_eq!(s0.t_s, 0.0);
        c.advance(SimDuration::from_secs(2));
        let s1 = svc.sample(&c);
        assert_eq!(s1.t_s, 2.0);
    }

    #[test]
    fn sample_without_window_anchors_to_first_read() {
        let mut c = cluster();
        c.advance(SimDuration::from_secs(50));
        let mut svc = IpmiService::new(0, 1);
        assert_eq!(svc.sample(&c).t_s, 0.0);
    }

    #[test]
    fn idle_sample_values_are_plausible() {
        let c = cluster();
        let mut svc = IpmiService::new(0, 1);
        let s = svc.sample(&c);
        assert!(s.system_w > 100.0 && s.system_w < 160.0, "idle sys {}", s.system_w);
        assert!(s.cpu_w > 30.0 && s.cpu_w < 60.0, "idle cpu {}", s.cpu_w);
        assert!(s.cpu_temp_c > 20.0 && s.cpu_temp_c < 35.0, "idle temp {}", s.cpu_temp_c);
    }

    #[test]
    fn cluster_power_api_sums_nodes() {
        let mut c = Cluster::new(vec![SimNode::sr650(), SimNode::sr650()]);
        let mut single = IpmiService::new(0, 1);
        let mut multi = ClusterPowerApi::new(2, 1);
        c.advance(SimDuration::from_secs(5));
        let one = single.sample(&c);
        let all = multi.sample(&c);
        // two idle nodes draw roughly twice one idle node
        assert!((all.system_w / one.system_w - 2.0).abs() < 0.1, "{} vs {}", all.system_w, one.system_w);
        assert!(all.cpu_w > one.cpu_w * 1.8);
    }

    #[test]
    fn cluster_power_api_reports_hottest_package() {
        use eco_hpcg::workload::{ScalingKind, SyntheticWorkload};
        use eco_slurm_sim::JobDescriptor;
        use std::sync::Arc;
        let mut c = Cluster::new(vec![SimNode::sr650(), SimNode::sr650()]);
        c.register_binary(
            "/bin/app",
            Arc::new(SyntheticWorkload::new("app", ScalingKind::ComputeBound, 10_000.0, 1.0)),
        );
        // load only node 0
        let mut d = JobDescriptor::new("hot", "u", "/bin/app");
        d.num_tasks = 32;
        c.submit(d).unwrap();
        c.advance(SimDuration::from_mins(5));
        let mut multi = ClusterPowerApi::new(2, 7);
        let s = multi.sample(&c);
        let hot = c.node(0).telemetry().cpu_temp_c;
        assert!((s.cpu_temp_c - hot).abs() < 2.0, "reported {} vs hottest {}", s.cpu_temp_c, hot);
    }

    #[test]
    #[should_panic(expected = "one BMC per node")]
    fn cluster_power_api_checks_node_count() {
        let c = Cluster::single_node(SimNode::sr650());
        let mut multi = ClusterPowerApi::new(3, 0);
        let _ = multi.sample(&c);
    }

    #[test]
    fn lscpu_facts_and_hash() {
        let c = cluster();
        let info = LscpuInfo::new(0);
        let facts = info.facts(&c);
        assert_eq!(facts.cores, 32);
        assert_eq!(facts.ram_gb, 256);
        // hash is stable and derived from the node identity
        assert_eq!(info.system_hash(&c), info.system_hash(&c));
        assert_eq!(info.system_hash(&c), system_hash(c.node(0).spec(), 256));
    }
}
