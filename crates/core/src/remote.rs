//! Remote prediction: the wire protocol spoken between the eco plugin
//! and the `chronusd` prediction daemon, plus the blocking client and
//! the [`PredictionSource`] port that lets the plugin switch between
//! in-process prediction (today's staged-model path) and a daemon on
//! the head node.
//!
//! ## Framing
//!
//! Every message is a 4-byte big-endian length prefix followed by that
//! many bytes of JSON. Frames above [`MAX_FRAME_LEN`] are a protocol
//! violation and close the connection. Requests travel wrapped in a
//! [`RequestFrame`] so each one can carry an optional deadline budget;
//! responses are a bare [`Response`].
//!
//! ## Transports
//!
//! The client is generic over a [`Transport`] that dials connections and
//! owns every wait the client performs (busy back-off, retry back-off).
//! [`TcpTransport`] is the production path; the `simtest` crate plugs in
//! an in-memory channel whose `sleep` advances a discrete-event clock,
//! so the whole retry/backoff state machine runs on virtual time.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Buf, BytesMut};
use eco_sim_node::cpu::CpuConfig;
use serde::{Deserialize, Serialize};

use crate::application::predict_from_settings;
use crate::error::{ChronusError, Result};
use crate::interfaces::LocalStorage;
use crate::telemetry::{Counter, Telemetry, TraceContext};

/// Upper bound on a single frame's JSON payload (1 MiB).
pub const MAX_FRAME_LEN: usize = 1 << 20;

// ---------------------------------------------------------------------------
// Protocol messages
// ---------------------------------------------------------------------------

/// A request body (the RPC verb).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// "What is the most energy-efficient configuration for this
    /// (system, binary)?" — the plugin's submit-path query.
    Predict { system_hash: u64, binary_hash: u64 },
    /// Stage a model into the daemon's registry ahead of submissions.
    Preload { model_id: i64 },
    /// Fetch the daemon's operational counters.
    Stats,
    /// Test/diagnostics verb: hold a worker for `ms` milliseconds.
    Burn { ms: u64 },
}

/// A request plus its per-request deadline budget. The daemon answers
/// [`Response::DeadlineExceeded`] instead of the real result when
/// handling took longer than `deadline_ms` — the plugin's cue to fall
/// back rather than blow the scheduler's submit budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestFrame {
    /// Time budget in milliseconds, measured from frame receipt.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Propagated trace context, when the caller is traced. Optional
    /// and defaulted on decode, so peers negotiate by presence: an old
    /// client simply never sends it, an old daemon silently ignores it
    /// (unknown fields are skipped), and either way the frame parses.
    /// Untraced frames omit the field entirely, so they cost the same
    /// bytes on the wire as before the header existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<TraceContext>,
    /// The RPC verb.
    pub body: Request,
}

impl RequestFrame {
    /// A frame with no deadline.
    pub fn new(body: Request) -> RequestFrame {
        RequestFrame { deadline_ms: None, trace: None, body }
    }

    /// A frame with a deadline budget in milliseconds.
    pub fn with_deadline(body: Request, deadline_ms: u64) -> RequestFrame {
        RequestFrame { deadline_ms: Some(deadline_ms), trace: None, body }
    }

    /// The same frame carrying a trace context header.
    pub fn traced(mut self, trace: Option<TraceContext>) -> RequestFrame {
        self.trace = trace;
        self
    }
}

/// A response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// The predicted most energy-efficient configuration.
    Config(CpuConfig),
    /// Answer to a successful [`Request::Preload`]. `generation` is the
    /// registry rollout generation the model was committed under (0 from
    /// daemons predating versioned rollout).
    Preloaded {
        model_id: i64,
        model_type: String,
        system_hash: u64,
        binary_hash: u64,
        #[serde(default)]
        generation: u64,
    },
    /// Answer to [`Request::Stats`].
    Stats(StatsSnapshot),
    /// The daemon's connection queue is full; retry after the hint.
    Busy { retry_after_ms: u64 },
    /// No model is resident (or loadable) for this key.
    Miss { system_hash: u64, binary_hash: u64 },
    /// Handling overran the frame's `deadline_ms`.
    DeadlineExceeded,
    /// The daemon hit an internal error serving the request.
    Error { message: String },
    /// Answer to [`Request::Burn`].
    Burned,
}

/// A successful preload acknowledgement, as returned by
/// [`PredictClient::preload_versioned`].
#[derive(Debug, Clone, PartialEq)]
pub struct PreloadAck {
    /// The staged model's repository id.
    pub model_id: i64,
    /// The optimizer type string.
    pub model_type: String,
    /// The system the model answers for.
    pub system_hash: u64,
    /// The binary the model answers for.
    pub binary_hash: u64,
    /// The rollout generation the daemon committed the model under.
    pub generation: u64,
}

/// A point-in-time copy of the daemon's counters (the `stats` RPC).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StatsSnapshot {
    /// Requests handled, all verbs.
    pub requests_total: u64,
    /// `Predict` requests handled.
    pub predictions: u64,
    /// `Predict` answered straight from the registry.
    pub cache_hits: u64,
    /// `Predict` that had to consult the backend (or answered `Miss`).
    pub cache_misses: u64,
    /// Connections bounced with `Busy` because the queue was full.
    pub busy_rejections: u64,
    /// Requests answered `DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Requests answered `Error`.
    pub errors: u64,
    /// Connections waiting in the accept queue right now.
    pub queue_depth: u64,
    /// Accept-queue capacity.
    pub queue_capacity: u64,
    /// Worker threads serving connections.
    pub workers: u64,
    /// Models resident in the registry.
    pub models_resident: u64,
    /// Models evicted by the registry's LRU policy.
    pub evictions: u64,
    /// Latest committed model-rollout generation (0 before any rollout,
    /// and from daemons predating versioned rollout).
    #[serde(default)]
    pub model_generation: u64,
    /// Lookups refused because the resident entry's rollout generation
    /// was never committed (half-rolled-out models are never served).
    #[serde(default)]
    pub stale_generation_hits: u64,
    /// Rollouts that allocated a generation but failed to commit.
    #[serde(default)]
    pub generation_rollbacks: u64,
    /// Median request handling latency (µs, bucket upper bound).
    pub latency_p50_us: u64,
    /// 99th-percentile request handling latency (µs, bucket upper bound).
    pub latency_p99_us: u64,
    /// Worst observed request handling latency (µs, exact).
    pub latency_max_us: u64,
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Serializes `msg` and writes it as one length-prefixed frame.
pub fn write_frame<T: Serialize>(stream: &mut dyn Write, msg: &T) -> std::io::Result<()> {
    let payload =
        serde_json::to_vec(msg).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    if payload.len() > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds the {MAX_FRAME_LEN} byte limit", payload.len()),
        ));
    }
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32(payload.len() as u32);
    buf.put_slice(&payload);
    stream.write_all(&buf)?;
    stream.flush()
}

/// Reads one length-prefixed frame and deserializes it.
pub fn read_frame<T: for<'de> Deserialize<'de>>(stream: &mut dyn Read) -> std::io::Result<T> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    let len = (&header[..]).get_u32() as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("peer announced a {len} byte frame (limit {MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    serde_json::from_slice(&payload).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Extracts the next complete frame from a receive buffer, leaving any
/// trailing bytes in place. Returns `Ok(None)` while the frame is still
/// incomplete and an error on an oversized length prefix.
pub fn take_frame(buf: &mut BytesMut) -> std::io::Result<Option<Vec<u8>>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = (&buf[..4]).get_u32() as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("peer announced a {len} byte frame (limit {MAX_FRAME_LEN})"),
        ));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    buf.advance(4);
    Ok(Some(buf.split_to(len).freeze()))
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

/// A bidirectional byte stream the client can frame messages over.
///
/// Blanket-implemented for anything `Read + Write + Send`, so
/// `TcpStream` and in-memory simulated channels qualify alike.
pub trait Connection: Read + Write + Send {}

impl<T: Read + Write + Send> Connection for T {}

/// How the client reaches the daemon: dials connections and serves
/// every wait the client wants to perform. Production code uses
/// [`TcpTransport`]; deterministic tests substitute a channel whose
/// `sleep` advances simulated time instead of blocking the thread.
pub trait Transport: Send {
    /// Opens a fresh connection to the daemon.
    fn connect(&mut self) -> std::io::Result<Box<dyn Connection>>;

    /// Human-readable endpoint description for logs.
    fn describe(&self) -> String;

    /// Waits out a back-off interval. The default blocks the calling
    /// thread; virtual-time transports advance their clock instead.
    fn sleep(&mut self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// The production transport: plain TCP with connect and I/O timeouts.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    addr: String,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl TcpTransport {
    /// A transport dialing `addr` with the given timeouts. The I/O
    /// timeout applies to both reads and writes on the dialed stream.
    pub fn new(addr: impl Into<String>, connect_timeout: Duration, io_timeout: Duration) -> TcpTransport {
        TcpTransport { addr: addr.into(), connect_timeout, io_timeout }
    }
}

impl Transport for TcpTransport {
    fn connect(&mut self) -> std::io::Result<Box<dyn Connection>> {
        let mut last = std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no addresses resolved");
        for addr in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, self.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.io_timeout))?;
                    stream.set_write_timeout(Some(self.io_timeout))?;
                    let _ = stream.set_nodelay(true);
                    return Ok(Box::new(stream));
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn describe(&self) -> String {
        self.addr.clone()
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Errors the client distinguishes so callers can pick a fallback.
#[derive(Debug)]
pub enum RemoteError {
    /// Could not reach the daemon at all.
    Connect(std::io::Error),
    /// The connection died mid-exchange (includes read timeouts).
    Io(std::io::Error),
    /// The peer sent something that is not the protocol.
    Protocol(String),
    /// The daemon stayed saturated through every retry.
    Busy { retry_after_ms: u64, attempts: u32 },
    /// The daemon gave up on the request's deadline budget.
    DeadlineExceeded,
    /// The daemon has no model for the key.
    Miss { system_hash: u64, binary_hash: u64 },
    /// The daemon reported an internal error.
    Server(String),
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Connect(e) => write!(f, "connect failed: {e}"),
            RemoteError::Io(e) => write!(f, "connection error: {e}"),
            RemoteError::Protocol(m) => write!(f, "protocol violation: {m}"),
            RemoteError::Busy { retry_after_ms, attempts } => {
                write!(f, "daemon busy after {attempts} attempts (retry_after {retry_after_ms} ms)")
            }
            RemoteError::DeadlineExceeded => write!(f, "daemon exceeded the request deadline"),
            RemoteError::Miss { system_hash, binary_hash } => {
                write!(f, "no model resident for system {system_hash:#x} binary {binary_hash:#x}")
            }
            RemoteError::Server(m) => write!(f, "daemon error: {m}"),
        }
    }
}

impl std::error::Error for RemoteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RemoteError::Connect(e) | RemoteError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RemoteError> for ChronusError {
    fn from(e: RemoteError) -> ChronusError {
        match e {
            RemoteError::Miss { system_hash, binary_hash } => {
                ChronusError::NotFound(format!("remote model for system {system_hash:#x} binary {binary_hash:#x}"))
            }
            other => ChronusError::Model(format!("remote prediction failed: {other}")),
        }
    }
}

/// Client knobs. The defaults keep a full worst-case exchange (connect,
/// retries, backoff) comfortably inside the plugin's 100 ms budget.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-response read timeout.
    pub read_timeout: Duration,
    /// Additional attempts after the first (0 = fail fast).
    pub max_retries: u32,
    /// Base backoff between attempts; grows linearly per attempt.
    pub backoff: Duration,
    /// Deadline budget stamped on every request frame, if any.
    pub deadline_ms: Option<u64>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(500),
            max_retries: 2,
            backoff: Duration::from_millis(10),
            deadline_ms: None,
        }
    }
}

/// A blocking client for the chronusd daemon. Holds one persistent
/// connection, reconnecting lazily after any failure; every RPC retries
/// a bounded number of times with linear backoff, honouring the
/// daemon's `Busy { retry_after_ms }` hint. All waiting goes through
/// the [`Transport`], so a simulated transport sees every back-off.
pub struct PredictClient {
    desc: String,
    cfg: ClientConfig,
    transport: Box<dyn Transport>,
    conn: Option<Box<dyn Connection>>,
    tel: Option<ClientTelemetry>,
}

/// The client's cached telemetry handles: counter lookups happen once,
/// at [`PredictClient::set_telemetry`] time, not per request.
struct ClientTelemetry {
    telemetry: Arc<Telemetry>,
    requests: Counter,
    attempts: Counter,
    retries: Counter,
    busy: Counter,
    errors: Counter,
}

fn verb_name(r: &Request) -> &'static str {
    match r {
        Request::Ping => "ping",
        Request::Predict { .. } => "predict",
        Request::Preload { .. } => "preload",
        Request::Stats => "stats",
        Request::Burn { .. } => "burn",
    }
}

impl std::fmt::Debug for PredictClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictClient")
            .field("endpoint", &self.desc)
            .field("cfg", &self.cfg)
            .field("connected", &self.conn.is_some())
            .finish()
    }
}

impl PredictClient {
    /// A client with default [`ClientConfig`]. Does not connect yet —
    /// the first RPC does.
    pub fn new(addr: impl Into<String>) -> PredictClient {
        PredictClient::with_config(addr, ClientConfig::default())
    }

    /// A TCP client with explicit knobs.
    pub fn with_config(addr: impl Into<String>, cfg: ClientConfig) -> PredictClient {
        let transport = TcpTransport::new(addr, cfg.connect_timeout, cfg.read_timeout);
        PredictClient::with_transport(Box::new(transport), cfg)
    }

    /// A client over an arbitrary transport (in-memory, fault-injecting,
    /// ...). The transport owns connect timeouts; `cfg` still governs
    /// retries, backoff and the per-request deadline stamp.
    pub fn with_transport(transport: Box<dyn Transport>, cfg: ClientConfig) -> PredictClient {
        PredictClient { desc: transport.describe(), cfg, transport, conn: None, tel: None }
    }

    /// The daemon endpoint this client talks to.
    pub fn addr(&self) -> &str {
        &self.desc
    }

    /// Attaches telemetry: every RPC from here on bumps `client.*`
    /// counters and records one `client/attempt` span per exchange
    /// (retries included), each carrying its own context on the wire so
    /// daemon-side spans parent under the exact attempt that reached it.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.tel = Some(ClientTelemetry {
            requests: telemetry.counter("client.requests"),
            attempts: telemetry.counter("client.attempts"),
            retries: telemetry.counter("client.retries"),
            busy: telemetry.counter("client.busy"),
            errors: telemetry.counter("client.errors"),
            telemetry,
        });
    }

    fn connect(&mut self) -> std::result::Result<(), RemoteError> {
        if self.conn.is_some() {
            return Ok(());
        }
        self.conn = Some(self.transport.connect().map_err(RemoteError::Connect)?);
        Ok(())
    }

    fn exchange_once(&mut self, frame: &RequestFrame) -> std::result::Result<Response, RemoteError> {
        self.connect()?;
        let conn = self.conn.as_mut().expect("connect() leaves a connection");
        write_frame(conn, frame).map_err(RemoteError::Io)?;
        read_frame(conn).map_err(|e| {
            if e.kind() == std::io::ErrorKind::InvalidData {
                RemoteError::Protocol(e.to_string())
            } else {
                RemoteError::Io(e)
            }
        })
    }

    /// Sends one request, retrying on connection errors and on `Busy`
    /// back-pressure. Any protocol-level answer other than `Busy`
    /// (including `Miss` and `DeadlineExceeded`) is returned as-is.
    pub fn request(&mut self, body: Request) -> std::result::Result<Response, RemoteError> {
        self.request_traced(body, None)
    }

    /// [`PredictClient::request`] joined to a caller's trace: each
    /// attempt opens a `client/attempt` span under `parent` (or roots a
    /// fresh trace when the caller is untraced) and stamps that span's
    /// context on the wire frame. Without telemetry attached, `parent`
    /// still propagates verbatim.
    pub fn request_traced(
        &mut self,
        body: Request,
        parent: Option<TraceContext>,
    ) -> std::result::Result<Response, RemoteError> {
        if let Some(t) = &self.tel {
            t.requests.bump();
        }
        let verb = verb_name(&body);
        let base = RequestFrame { deadline_ms: self.cfg.deadline_ms, trace: parent, body };
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let mut span = self.tel.as_ref().map(|t| {
                t.attempts.bump();
                if attempt > 1 {
                    t.retries.bump();
                }
                let mut s = t.telemetry.span_maybe_under(parent, "client", "attempt");
                s.attr("verb", verb);
                s.attr("attempt", attempt);
                s
            });
            let frame = base.clone().traced(span.as_ref().map(|s| s.context()).or(parent));
            match self.exchange_once(&frame) {
                Ok(Response::Busy { retry_after_ms }) => {
                    // The daemon closes the connection after a Busy bounce.
                    self.conn = None;
                    if let Some(t) = &self.tel {
                        t.busy.bump();
                    }
                    if let Some(s) = span.take() {
                        s.fail(format!("busy retry_after={retry_after_ms}ms"));
                    }
                    if attempt > self.cfg.max_retries {
                        return Err(RemoteError::Busy { retry_after_ms, attempts: attempt });
                    }
                    self.transport.sleep(Duration::from_millis(retry_after_ms.min(50)));
                }
                Ok(resp) => {
                    drop(span);
                    return Ok(resp);
                }
                Err(e) => {
                    self.conn = None;
                    if let Some(t) = &self.tel {
                        t.errors.bump();
                    }
                    if let Some(s) = span.take() {
                        s.fail(e.to_string());
                    }
                    if attempt > self.cfg.max_retries {
                        return Err(e);
                    }
                    let backoff = self.cfg.backoff * attempt;
                    self.transport.sleep(backoff);
                }
            }
        }
    }

    /// Round-trip liveness probe; returns the observed latency.
    pub fn ping(&mut self) -> std::result::Result<Duration, RemoteError> {
        let start = Instant::now();
        match self.request(Request::Ping)? {
            Response::Pong => Ok(start.elapsed()),
            other => Err(RemoteError::Protocol(format!("expected Pong, got {other:?}"))),
        }
    }

    /// The plugin's query: the best configuration for a (system, binary).
    pub fn predict(&mut self, system_hash: u64, binary_hash: u64) -> std::result::Result<CpuConfig, RemoteError> {
        self.predict_traced(system_hash, binary_hash, None)
    }

    /// [`PredictClient::predict`] joined to a caller's trace.
    pub fn predict_traced(
        &mut self,
        system_hash: u64,
        binary_hash: u64,
        parent: Option<TraceContext>,
    ) -> std::result::Result<CpuConfig, RemoteError> {
        match self.request_traced(Request::Predict { system_hash, binary_hash }, parent)? {
            Response::Config(c) => Ok(c),
            Response::Miss { system_hash, binary_hash } => Err(RemoteError::Miss { system_hash, binary_hash }),
            Response::DeadlineExceeded => Err(RemoteError::DeadlineExceeded),
            Response::Error { message } => Err(RemoteError::Server(message)),
            other => Err(RemoteError::Protocol(format!("expected Config, got {other:?}"))),
        }
    }

    /// Asks the daemon to stage a model; returns (model_type, system
    /// hash, binary hash) on success.
    pub fn preload(&mut self, model_id: i64) -> std::result::Result<(String, u64, u64), RemoteError> {
        self.preload_versioned(model_id).map(|ack| (ack.model_type, ack.system_hash, ack.binary_hash))
    }

    /// Like [`PredictClient::preload`] but returns the full
    /// acknowledgement, including the rollout generation the daemon
    /// committed the model under (0 from pre-versioning daemons).
    pub fn preload_versioned(&mut self, model_id: i64) -> std::result::Result<PreloadAck, RemoteError> {
        match self.request(Request::Preload { model_id })? {
            Response::Preloaded { model_id, model_type, system_hash, binary_hash, generation } => {
                Ok(PreloadAck { model_id, model_type, system_hash, binary_hash, generation })
            }
            Response::Error { message } => Err(RemoteError::Server(message)),
            other => Err(RemoteError::Protocol(format!("expected Preloaded, got {other:?}"))),
        }
    }

    /// Fetches the daemon's counters.
    pub fn stats(&mut self) -> std::result::Result<StatsSnapshot, RemoteError> {
        match self.request(Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(RemoteError::Protocol(format!("expected Stats, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// PredictionSource
// ---------------------------------------------------------------------------

/// Where the eco plugin gets its predictions from: the in-process
/// staged-model path (the paper's §3.1.2 pre-load design) or a
/// chronusd daemon on the head node. The plugin treats any error as
/// "leave the job untouched", so a dead or slow source degrades to
/// vanilla Slurm behaviour.
pub trait PredictionSource: Send + Sync {
    /// The best configuration for a (system, binary), or an error when
    /// no answer is available inside the budget.
    fn predict(&self, system_hash: u64, binary_hash: u64) -> Result<CpuConfig>;

    /// [`PredictionSource::predict`] joined to a caller's trace. The
    /// default drops the context — right for purely local sources; the
    /// remote source overrides it to propagate the context on the wire.
    fn predict_traced(&self, system_hash: u64, binary_hash: u64, ctx: Option<TraceContext>) -> Result<CpuConfig> {
        let _ = ctx;
        self.predict(system_hash, binary_hash)
    }

    /// Human-readable description for logs.
    fn describe(&self) -> String;
}

/// The in-process source: loads settings from local storage and runs
/// the staged optimizer, exactly like the CLI's `slurm-config`.
pub struct LocalPrediction {
    storage: Arc<dyn LocalStorage + Send + Sync>,
}

impl LocalPrediction {
    pub fn new(storage: Arc<dyn LocalStorage + Send + Sync>) -> LocalPrediction {
        LocalPrediction { storage }
    }
}

impl PredictionSource for LocalPrediction {
    fn predict(&self, system_hash: u64, binary_hash: u64) -> Result<CpuConfig> {
        let settings = self.storage.load_settings()?;
        predict_from_settings(&settings, system_hash, binary_hash)
    }

    fn describe(&self) -> String {
        "local staged model".to_string()
    }
}

/// The daemon-backed source. Wraps the client in a mutex because the
/// plugin is shared behind an `Arc` while the client's persistent
/// connection needs `&mut`.
pub struct RemotePrediction {
    client: parking_lot::Mutex<PredictClient>,
}

impl RemotePrediction {
    /// A remote source with default client knobs.
    pub fn new(addr: impl Into<String>) -> RemotePrediction {
        RemotePrediction { client: parking_lot::Mutex::new(PredictClient::new(addr)) }
    }

    /// A remote source with explicit client knobs.
    pub fn with_config(addr: impl Into<String>, cfg: ClientConfig) -> RemotePrediction {
        RemotePrediction { client: parking_lot::Mutex::new(PredictClient::with_config(addr, cfg)) }
    }

    /// A remote source over an arbitrary [`Transport`].
    pub fn with_transport(transport: Box<dyn Transport>, cfg: ClientConfig) -> RemotePrediction {
        RemotePrediction { client: parking_lot::Mutex::new(PredictClient::with_transport(transport, cfg)) }
    }

    /// Attaches telemetry to the wrapped client (see
    /// [`PredictClient::set_telemetry`]).
    pub fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        self.client.lock().set_telemetry(telemetry);
    }
}

impl PredictionSource for RemotePrediction {
    fn predict(&self, system_hash: u64, binary_hash: u64) -> Result<CpuConfig> {
        self.predict_traced(system_hash, binary_hash, None)
    }

    fn predict_traced(&self, system_hash: u64, binary_hash: u64, ctx: Option<TraceContext>) -> Result<CpuConfig> {
        let mut client = self.client.lock();
        client.predict_traced(system_hash, binary_hash, ctx).map_err(ChronusError::from)
    }

    fn describe(&self) -> String {
        format!("chronusd at {}", self.client.lock().addr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let frame = RequestFrame::with_deadline(Request::Predict { system_hash: u64::MAX, binary_hash: 7 }, 80);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        assert_eq!(wire.len(), 4 + u32::from_be_bytes(wire[..4].try_into().unwrap()) as usize);
        let back: RequestFrame = read_frame(&mut &wire[..]).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn take_frame_handles_partial_and_back_to_back_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Response::Pong).unwrap();
        write_frame(&mut wire, &Response::Busy { retry_after_ms: 5 }).unwrap();

        let mut buf = BytesMut::new();
        buf.put_slice(&wire[..3]);
        assert!(take_frame(&mut buf).unwrap().is_none(), "3 bytes is not even a header");
        buf.put_slice(&wire[3..]);
        let first: Response = serde_json::from_slice(&take_frame(&mut buf).unwrap().unwrap()).unwrap();
        assert_eq!(first, Response::Pong);
        let second: Response = serde_json::from_slice(&take_frame(&mut buf).unwrap().unwrap()).unwrap();
        assert_eq!(second, Response::Busy { retry_after_ms: 5 });
        assert!(take_frame(&mut buf).unwrap().is_none());
        assert!(buf.is_empty());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32((MAX_FRAME_LEN + 1) as u32);
        assert!(take_frame(&mut buf).is_err());
        let mut wire: &[u8] = &(((MAX_FRAME_LEN + 1) as u32).to_be_bytes());
        assert!(read_frame::<Response>(&mut wire).is_err());
    }

    #[test]
    fn response_json_shape_is_stable() {
        let json = serde_json::to_string(&Response::Config(CpuConfig::new(32, 2_200_000, 1))).unwrap();
        // the paper's JSON field name for the DVFS knob is "frequency"
        assert!(json.contains("\"Config\""), "{json}");
        assert!(json.contains("\"frequency\":2200000"), "{json}");
        assert_eq!(serde_json::to_string(&Response::Pong).unwrap(), "\"Pong\"");
    }

    #[test]
    fn client_fails_fast_against_a_dead_address() {
        let cfg = ClientConfig {
            connect_timeout: Duration::from_millis(50),
            max_retries: 1,
            backoff: Duration::from_millis(1),
            ..ClientConfig::default()
        };
        // bind-then-drop guarantees the port is closed
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let mut client = PredictClient::with_config(format!("127.0.0.1:{port}"), cfg);
        let start = Instant::now();
        let err = client.predict(1, 2).unwrap_err();
        assert!(matches!(err, RemoteError::Connect(_) | RemoteError::Io(_)), "{err}");
        assert!(start.elapsed() < Duration::from_secs(2), "bounded retries must fail fast");
    }

    #[test]
    fn remote_errors_map_into_chronus_errors() {
        let miss: ChronusError = RemoteError::Miss { system_hash: 1, binary_hash: 2 }.into();
        assert!(matches!(miss, ChronusError::NotFound(_)));
        let busy: ChronusError = RemoteError::Busy { retry_after_ms: 5, attempts: 3 }.into();
        assert!(matches!(busy, ChronusError::Model(_)));
    }
}
