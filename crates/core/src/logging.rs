//! Chronus logging — the paper's Figure 1/6 output: timestamped INFO lines
//! mirrored to the terminal buffer and to a log file
//! (`/var/log/chronus.log` in the paper's §3.3).
//!
//! Timestamps come from simulated time so experiment logs are
//! deterministic and match the run they describe.

use eco_sim_node::clock::SimTime;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Severity of a log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Informational (the paper's logs are all INFO).
    Info,
    /// Something degraded but the run continues.
    Warn,
    /// An operation failed.
    Error,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        }
    }
}

/// One captured log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Simulated instant.
    pub time: SimTime,
    /// Severity.
    pub level: Level,
    /// Message text.
    pub message: String,
    /// Source tag (the paper shows `hpcg.py:118`-style origins).
    pub origin: &'static str,
}

impl LogEntry {
    /// Renders the paper's log-line shape:
    /// `[0:14:53] INFO GFLOP/s rating found: 9.34829    hpcg.rs:118`.
    pub fn render(&self) -> String {
        format!("[{}] {} {}    {}", self.time, self.level.tag(), self.message, self.origin)
    }
}

/// The Chronus logger: keeps an in-memory buffer (the "terminal") and
/// optionally appends to a log file.
///
/// An unwritable log file must never take the run down with it (the
/// paper's plugin degrades, it does not crash `slurmctld`), so sink
/// failures are counted and the last error kept inspectable instead of
/// panicking or being silently swallowed.
#[derive(Debug, Default)]
pub struct ChronusLog {
    entries: Vec<LogEntry>,
    file: Option<PathBuf>,
    sink_failures: u64,
    last_sink_error: Option<String>,
}

impl ChronusLog {
    /// A memory-only logger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Also appends every line to `path` (the paper's
    /// `/var/log/chronus.log`).
    pub fn with_file(path: impl AsRef<Path>) -> Self {
        ChronusLog { file: Some(path.as_ref().to_path_buf()), ..ChronusLog::default() }
    }

    fn append_line(path: &Path, entry: &LogEntry) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        writeln!(f, "{}", entry.render())
    }

    /// Logs one line. The in-memory buffer always gets it; a failing
    /// file sink is recorded (see [`ChronusLog::sink_failures`]) and
    /// otherwise ignored.
    pub fn log(&mut self, time: SimTime, level: Level, origin: &'static str, message: impl Into<String>) {
        let entry = LogEntry { time, level, message: message.into(), origin };
        if let Some(path) = &self.file {
            if let Err(e) = Self::append_line(path, &entry) {
                self.sink_failures += 1;
                self.last_sink_error = Some(format!("{}: {e}", path.display()));
            }
        }
        self.entries.push(entry);
    }

    /// How many lines failed to reach the file sink.
    pub fn sink_failures(&self) -> u64 {
        self.sink_failures
    }

    /// The most recent file-sink error, if any.
    pub fn last_sink_error(&self) -> Option<&str> {
        self.last_sink_error.as_deref()
    }

    /// Convenience: INFO.
    pub fn info(&mut self, time: SimTime, origin: &'static str, message: impl Into<String>) {
        self.log(time, Level::Info, origin, message);
    }

    /// Convenience: WARN.
    pub fn warn(&mut self, time: SimTime, origin: &'static str, message: impl Into<String>) {
        self.log(time, Level::Warn, origin, message);
    }

    /// The captured entries, in order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Renders the whole buffer (what the terminal showed).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_paper_shape() {
        let e = LogEntry {
            time: SimTime::from_secs(14 * 3600 + 16 * 60 + 53),
            level: Level::Info,
            message: "GFLOP/s rating found: 9.34829".into(),
            origin: "hpcg.rs:118",
        };
        assert_eq!(e.render(), "[14:16:53] INFO GFLOP/s rating found: 9.34829    hpcg.rs:118");
    }

    #[test]
    fn buffer_captures_in_order() {
        let mut log = ChronusLog::new();
        log.info(SimTime::from_secs(1), "a.rs:1", "first");
        log.warn(SimTime::from_secs(2), "b.rs:2", "second");
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.entries()[0].message, "first");
        assert_eq!(log.entries()[1].level, Level::Warn);
        let text = log.render();
        assert!(text.contains("INFO first"));
        assert!(text.contains("WARN second"));
    }

    #[test]
    fn file_sink_appends() {
        let dir = std::env::temp_dir().join(format!("eco-log-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("var/log/chronus.log");
        let mut log = ChronusLog::with_file(&path);
        log.info(SimTime::from_secs(5), "x.rs:1", "hello");
        log.info(SimTime::from_secs(6), "x.rs:2", "world");
        assert_eq!(log.sink_failures(), 0, "sink error: {:?}", log.last_sink_error());
        let content = match std::fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) => panic!("log file missing at {}: {e}", path.display()),
        };
        assert_eq!(content.lines().count(), 2);
        assert!(content.contains("hello"));
        assert!(content.contains("world"));
    }

    #[test]
    fn unwritable_file_sink_degrades_to_memory() {
        // a path whose parent is a regular file can never be created
        let blocker = std::env::temp_dir().join(format!("eco-log-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").expect("create blocker file");
        let mut log = ChronusLog::with_file(blocker.join("var/chronus.log"));
        log.info(SimTime::from_secs(1), "x.rs:1", "still captured");
        log.warn(SimTime::from_secs(2), "x.rs:2", "and this too");
        assert_eq!(log.entries().len(), 2, "memory buffer must keep working");
        assert_eq!(log.sink_failures(), 2);
        let err = log.last_sink_error().expect("sink error recorded");
        assert!(err.contains("chronus.log"), "{err}");
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn level_tags() {
        assert_eq!(Level::Info.tag(), "INFO");
        assert_eq!(Level::Warn.tag(), "WARN");
        assert_eq!(Level::Error.tag(), "ERROR");
    }
}
