//! The `chronus` command-line interface, runnable against the simulated
//! SR650 testbed (the paper's §3.3 CLI, end to end).
//!
//! State (database, blob storage, settings, staged models) persists in
//! `$CHRONUS_HOME` (default `./chronus-home`), so the paper's workflow
//! works across invocations:
//!
//! ```text
//! chronus benchmark /opt/hpcg/bin/xhpcg --configurations configs.json
//! chronus init-model --model random-tree --system 1
//! chronus load-model --model 1
//! chronus slurm-config <SYSTEM_HASH> <BINARY_HASH>
//! chronus set state active
//! ```
//!
//! The benchmark command drives a freshly booted simulated cluster; the
//! simulated HPCG run length can be scaled with `$CHRONUS_SCALE`
//! (default 0.02 of the paper's 18.5-minute run, for a snappy CLI).

use chronus::application::Chronus;
use chronus::cli::{run_command, CliContext};
use chronus::integrations::hpcg_runner::HpcgRunner;
use chronus::integrations::monitoring::{IpmiService, LscpuInfo};
use chronus::integrations::record_store::RecordStore;
use chronus::integrations::storage::{EtcStorage, LocalBlobStore};
use chronus::interfaces::{ApplicationRunner, SystemInfoProvider};
use eco_hpcg::perf_model::PerfModel;
use eco_hpcg::workload::{HpcgWorkload, PAPER_STANDARD_RUNTIME_S};
use eco_slurm_sim::Cluster;
use eco_sim_node::SimNode;
use std::sync::Arc;

fn main() {
    let home = std::env::var("CHRONUS_HOME").unwrap_or_else(|_| "./chronus-home".to_string());
    let scale: f64 = std::env::var("CHRONUS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.02);
    std::fs::create_dir_all(&home).expect("create CHRONUS_HOME");

    let mut cluster = Cluster::single_node(SimNode::sr650());
    let perf = Arc::new(PerfModel::sr650());
    let work = perf.gflops(&perf.standard_config()) * PAPER_STANDARD_RUNTIME_S * scale;
    let workload = Arc::new(HpcgWorkload::with_work(perf, work, 104));
    let runner = HpcgRunner::install(&mut cluster, "/opt/hpcg/bin/xhpcg", workload);

    let mut app = Chronus::new(
        Box::new(RecordStore::open(format!("{home}/database/data.db")).expect("open database")),
        Box::new(LocalBlobStore::new(format!("{home}/optimizers")).expect("open blob storage")),
        Box::new(EtcStorage::new(&home)),
    );
    let mut sampler = IpmiService::new(0, 0xc11);
    let info = LscpuInfo::new(0);

    let args: Vec<String> = std::env::args().skip(1).collect();
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();

    // convenience: `chronus hashes` prints the identifiers the plugin uses
    if argv.first() == Some(&"hashes") {
        println!("system hash: {}", info.system_hash(&cluster));
        println!("binary hash: {}", runner.binary_hash());
        return;
    }

    let mut ctx = CliContext {
        app: &mut app,
        cluster: &mut cluster,
        runner: &runner,
        sampler: &mut sampler,
        info: &info,
        now_ms: 0,
    };
    match run_command(&mut ctx, &argv) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("chronus: {e}");
            std::process::exit(1);
        }
    }
}
