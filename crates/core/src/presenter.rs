//! The presenter layer — maps application data to what the CLI prints and
//! what `job_submit_eco` consumes (the paper's green ring in Figure 11).

use crate::domain::{Benchmark, ModelMetadata, SystemEntry};
use crate::remote::StatsSnapshot;
use eco_sim_node::cpu::CpuConfig;
use serde_json::json;

/// Renders a configuration as the JSON `slurm-config` returns to the eco
/// plugin — exactly the paper's §3.3 shape:
/// `{"cores": 32, "threads_per_core": 2, "frequency": 2200000}`.
pub fn config_json(config: &CpuConfig) -> String {
    json!({
        "cores": config.cores,
        "threads_per_core": config.threads_per_core,
        "frequency": config.frequency_khz,
    })
    .to_string()
}

/// Parses a configuration from the plugin-protocol JSON.
pub fn config_from_json(s: &str) -> Result<CpuConfig, serde_json::Error> {
    serde_json::from_str(s)
}

/// Parses the `--configurations` file: a JSON array of configurations
/// (the paper's §3.3 example).
pub fn configs_from_json(s: &str) -> Result<Vec<CpuConfig>, serde_json::Error> {
    serde_json::from_str(s)
}

/// Renders the "Available Systems" listing `init-model` shows when no
/// system id is given (paper Figure 8).
pub fn systems_table(systems: &[SystemEntry]) -> String {
    let mut out =
        String::from("Available Systems\nID   CPU                                      Cores  Threads/core  RAM\n");
    for s in systems {
        out.push_str(&format!(
            "{:<4} {:<40} {:<6} {:<13} {} GB\n",
            s.id, s.facts.cpu_name, s.facts.cores, s.facts.threads_per_core, s.facts.ram_gb
        ));
    }
    out.push_str("Specify the system id with --system <id>\n");
    out
}

/// Renders the "Available Models" listing `load-model` shows when no
/// model id is given (paper Figure 9).
pub fn models_table(models: &[ModelMetadata]) -> String {
    let mut out = String::from("Available Models\nID   Type               System  Rows  R2      Blob\n");
    for m in models {
        out.push_str(&format!(
            "{:<4} {:<18} {:<7} {:<5} {:<7.4} {}\n",
            m.id, m.model_type, m.system_id, m.train_rows, m.fit_r2, m.blob_path
        ));
    }
    out.push_str("Specify the model id with --model <id>\n");
    out
}

/// Renders a benchmark sweep as a GFLOPS/W table in the paper's
/// Tables 4–6 format.
pub fn benchmarks_table(benchmarks: &[Benchmark]) -> String {
    let mut rows: Vec<&Benchmark> = benchmarks.iter().collect();
    rows.sort_by(|a, b| b.gflops_per_watt().partial_cmp(&a.gflops_per_watt()).expect("finite gpw"));
    let mut out = String::from("Cores  GHz  GFLOPS p/ watt  Hyper-thread\n");
    for b in rows {
        out.push_str(&format!(
            "{:<6} {:<4.1} {:<15.6} {}\n",
            b.config.cores,
            b.config.ghz(),
            b.gflops_per_watt(),
            if b.config.hyper_threading() { "True" } else { "False" }
        ));
    }
    out
}

/// Renders a daemon counters snapshot for `chronus stats`: the request
/// mix, cache behaviour, queue gauges and the service-latency
/// percentiles the telemetry histogram tracks.
pub fn stats_table(s: &StatsSnapshot) -> String {
    let hit_rate = if s.predictions > 0 { 100.0 * s.cache_hits as f64 / s.predictions as f64 } else { 0.0 };
    let avg_batch = if s.batches > 0 { s.batched_keys as f64 / s.batches as f64 } else { 0.0 };
    let title = if s.replica.is_empty() {
        "chronusd statistics".to_string()
    } else {
        format!("chronusd statistics (replica {})", s.replica)
    };
    let store = if s.store_dir.is_empty() {
        "memory-only (no --store)".to_string()
    } else {
        format!("{} (generation {}, {} catch-ups)", s.store_dir, s.store_generation, s.store_catchups)
    };
    // per-node-class serving counts: a line only when the daemon's store
    // reports classes, so pre-class daemons render byte-identically
    let classes = if s.models_by_class.is_empty() {
        String::new()
    } else {
        let mix = s.models_by_class.iter().map(|(c, n)| format!("{c}={n}")).collect::<Vec<_>>().join(", ");
        format!("model classes       {mix}\n")
    };
    // the adaptation block renders only when the daemon has an
    // adaptation surface at all, so pre-adaptation daemons (every
    // adapt counter zero, no canary controller) print byte-identically
    let adapt_active = s.outcomes_ingested
        + s.outcomes_rejected
        + s.outcome_reservoirs
        + s.drift_trips
        + s.drift_clears
        + s.adapt_refits
        + s.canary_promotions
        + s.canary_rollbacks
        > 0
        || !s.canary_state.is_empty();
    let adapt = if adapt_active {
        format!(
            "outcomes            {} ingested / {} rejected, {} reservoir(s)\n\
             drift               {} trip(s) / {} clear(s), worst score {:.3}\n\
             adaptation          {} refit(s), {} promoted / {} rolled back\n\
             canary              {}\n",
            s.outcomes_ingested,
            s.outcomes_rejected,
            s.outcome_reservoirs,
            s.drift_trips,
            s.drift_clears,
            s.drift_score_milli as f64 / 1_000.0,
            s.adapt_refits,
            s.canary_promotions,
            s.canary_rollbacks,
            if s.canary_state.is_empty() { "idle" } else { &s.canary_state },
        )
    } else {
        String::new()
    };
    format!(
        "{title}\n\
         requests            {}\n\
         predictions         {} ({} hits / {} misses, {hit_rate:.1}% hit rate)\n\
         batched             {} keys over {} PredictMany frames (avg {avg_batch:.1} keys/frame)\n\
         busy rejections     {}\n\
         deadline exceeded   {}\n\
         errors              {}\n\
         queue               {}/{} waiting, {} workers\n\
         models resident     {} ({} evictions)\n\
         model generation    {} ({} stale hits / {} rollbacks)\n\
         store               {store}\n\
         {classes}{adapt}service latency     p50 {}us  p99 {}us  max {}us\n",
        s.requests_total,
        s.predictions,
        s.cache_hits,
        s.cache_misses,
        s.batched_keys,
        s.batches,
        s.busy_rejections,
        s.deadline_exceeded,
        s.errors,
        s.queue_depth,
        s.queue_capacity,
        s.workers,
        s.models_resident,
        s.evictions,
        s.model_generation,
        s.stale_generation_hits,
        s.generation_rollbacks,
        s.latency_p50_us,
        s.latency_p99_us,
        s.latency_max_us,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_sim_node::sysinfo::SystemFacts;

    #[test]
    fn config_json_matches_paper_shape() {
        let c = CpuConfig::new(32, 2_200_000, 2);
        let json = config_json(&c);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["cores"], 32);
        assert_eq!(v["threads_per_core"], 2);
        assert_eq!(v["frequency"], 2_200_000);
    }

    #[test]
    fn config_json_roundtrip() {
        let c = CpuConfig::new(16, 1_500_000, 1);
        assert_eq!(config_from_json(&config_json(&c)).unwrap(), c);
    }

    #[test]
    fn configs_from_json_parses_paper_example() {
        // the paper's §3.3 configuration file
        let s = r#"[
            {"cores": 32, "threads_per_core": 2, "frequency": 2200000}
        ]"#;
        let v = configs_from_json(s).unwrap();
        assert_eq!(v, vec![CpuConfig::new(32, 2_200_000, 2)]);
        assert!(configs_from_json("not json").is_err());
    }

    #[test]
    fn tables_render() {
        let systems = vec![SystemEntry {
            id: 1,
            facts: SystemFacts {
                cpu_name: "AMD EPYC 7502P 32-Core Processor".into(),
                cores: 32,
                threads_per_core: 2,
                frequencies_khz: vec![1_500_000],
                ram_gb: 256,
            },
            system_hash: 5,
        }];
        let t = systems_table(&systems);
        assert!(t.contains("Available Systems"));
        assert!(t.contains("EPYC 7502P"));
        assert!(t.contains("--system <id>"));

        let models = vec![ModelMetadata {
            id: 3,
            model_type: "random-tree".into(),
            system_id: 1,
            binary_hash: 9,
            blob_path: "models/x.json".into(),
            created_at_ms: 0,
            train_rows: 138,
            fit_r2: 0.98,
        }];
        let t = models_table(&models);
        assert!(t.contains("Available Models"));
        assert!(t.contains("random-tree"));
        assert!(t.contains("--model <id>"));
    }

    #[test]
    fn stats_table_shows_counters_and_percentiles() {
        let snap = StatsSnapshot {
            requests_total: 10,
            predictions: 8,
            cache_hits: 6,
            cache_misses: 2,
            latency_p50_us: 4,
            latency_p99_us: 128,
            latency_max_us: 250,
            queue_capacity: 64,
            workers: 4,
            models_resident: 1,
            model_generation: 3,
            stale_generation_hits: 1,
            generation_rollbacks: 2,
            batches: 2,
            batched_keys: 6,
            ..StatsSnapshot::default()
        };
        let t = stats_table(&snap);
        assert!(t.contains("predictions         8 (6 hits / 2 misses, 75.0% hit rate)"), "{t}");
        assert!(t.contains("batched             6 keys over 2 PredictMany frames (avg 3.0 keys/frame)"), "{t}");
        assert!(t.contains("model generation    3 (1 stale hits / 2 rollbacks)"), "{t}");
        assert!(t.contains("p50 4us  p99 128us  max 250us"), "{t}");
        // a replica without --store says so explicitly
        assert!(t.contains("store               memory-only (no --store)"), "{t}");
        // empty snapshot must not divide by zero
        assert!(stats_table(&StatsSnapshot::default()).contains("0.0% hit rate"));
    }

    #[test]
    fn stats_table_shows_adaptation_only_when_active() {
        // a pre-adaptation daemon (all adapt counters zero, no canary
        // controller) renders no adaptation block at all
        let quiet = stats_table(&StatsSnapshot::default());
        assert!(!quiet.contains("adaptation"), "{quiet}");
        assert!(!quiet.contains("canary"), "{quiet}");

        let snap = StatsSnapshot {
            outcomes_ingested: 40,
            outcomes_rejected: 2,
            outcome_reservoirs: 3,
            drift_score_milli: 180,
            drift_trips: 1,
            drift_clears: 1,
            adapt_refits: 2,
            canary_promotions: 1,
            canary_rollbacks: 1,
            canary_state: "canary gen 3 vs 1 (4/8 canary, 5/8 control)".into(),
            ..StatsSnapshot::default()
        };
        let t = stats_table(&snap);
        assert!(t.contains("outcomes            40 ingested / 2 rejected, 3 reservoir(s)"), "{t}");
        assert!(t.contains("drift               1 trip(s) / 1 clear(s), worst score 0.180"), "{t}");
        assert!(t.contains("adaptation          2 refit(s), 1 promoted / 1 rolled back"), "{t}");
        assert!(t.contains("canary              canary gen 3 vs 1 (4/8 canary, 5/8 control)"), "{t}");
    }

    #[test]
    fn stats_table_reports_store_status_per_replica() {
        let snap = StatsSnapshot {
            replica: "r1".into(),
            store_dir: "/var/lib/chronus/store".into(),
            store_generation: 4,
            store_catchups: 2,
            ..StatsSnapshot::default()
        };
        let t = stats_table(&snap);
        assert!(t.contains("chronusd statistics (replica r1)"), "{t}");
        assert!(t.contains("store               /var/lib/chronus/store (generation 4, 2 catch-ups)"), "{t}");
        assert!(!t.contains("model classes"), "no classes reported, no line: {t}");
    }

    #[test]
    fn stats_table_lists_models_by_class_when_reported() {
        let snap = StatsSnapshot {
            models_by_class: vec![("default".into(), 2), ("dense64".into(), 3)],
            ..StatsSnapshot::default()
        };
        let t = stats_table(&snap);
        assert!(t.contains("model classes       default=2, dense64=3"), "{t}");
    }

    #[test]
    fn benchmarks_table_sorted_descending() {
        let mk = |cores: u32, gflops: f64| Benchmark {
            id: -1,
            system_id: 1,
            binary_hash: 1,
            config: CpuConfig::new(cores, 2_200_000, 1),
            gflops,
            runtime_s: 10.0,
            avg_system_w: 100.0,
            avg_cpu_w: 50.0,
            avg_cpu_temp_c: 50.0,
            system_energy_j: 1000.0,
            cpu_energy_j: 500.0,
            sample_count: 5,
        };
        let t = benchmarks_table(&[mk(8, 2.0), mk(32, 9.0)]);
        let first_data_line = t.lines().nth(1).unwrap();
        assert!(first_data_line.starts_with("32"), "{t}");
    }
}
