//! The Chronus command-line interface: the five commands of §3.3 —
//! `benchmark`, `init-model`, `load-model`, `slurm-config`, `set` — parsed
//! from argv-style tokens and executed against a [`CliContext`].

use crate::application::Chronus;
use crate::domain::PluginState;
use crate::error::{ChronusError, Result};
use crate::interfaces::{ApplicationRunner, SystemInfoProvider, SystemService};
use crate::presenter;
use eco_slurm_sim::Cluster;

/// Everything a CLI invocation may touch. The cluster, runner and sampler
/// are only exercised by `benchmark`; the other commands are pure storage
/// operations, mirroring how the real Chronus talks to Slurm only when
/// benchmarking.
pub struct CliContext<'a> {
    /// The application container.
    pub app: &'a mut Chronus,
    /// The cluster benchmarks run on.
    pub cluster: &'a mut Cluster,
    /// The application runner (HPCG).
    pub runner: &'a dyn ApplicationRunner,
    /// The monitoring service (IPMI).
    pub sampler: &'a mut dyn SystemService,
    /// The system-identity provider (lscpu).
    pub info: &'a dyn SystemInfoProvider,
    /// "Now" for model timestamps, milliseconds.
    pub now_ms: u64,
}

/// Top-level usage text.
pub const USAGE: &str = "Usage: chronus COMMAND [ARGS]\n\
Commands:\n\
  benchmark [HPCG_PATH] [--configurations FILE]  Runs benchmarks on different configurations.\n\
  init-model --model TYPE [--system ID]          Initializes the prediction model.\n\
  load-model [--model ID]                        Loads a pre-trained model.\n\
  slurm-config SYSTEM_HASH BINARY_HASH           Executes the main functionality.\n\
  set {database|blob-storage|state|sample-interval} VALUE  Changes the configuration of the plugin.\n";

/// Executes one CLI invocation; returns the text the command prints.
pub fn run_command(ctx: &mut CliContext<'_>, args: &[&str]) -> Result<String> {
    match args.first().copied() {
        Some("benchmark") => cmd_benchmark(ctx, &args[1..]),
        Some("init-model") => cmd_init_model(ctx, &args[1..]),
        Some("load-model") => cmd_load_model(ctx, &args[1..]),
        Some("slurm-config") => cmd_slurm_config(ctx, &args[1..]),
        Some("set") => cmd_set(ctx, &args[1..]),
        Some("--help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(ChronusError::InvalidInput(format!("unknown command '{other}'\n{USAGE}"))),
    }
}

fn flag_value<'a>(args: &[&'a str], flag: &str) -> Option<&'a str> {
    args.iter().position(|&a| a == flag).and_then(|i| args.get(i + 1).copied())
}

fn cmd_benchmark(ctx: &mut CliContext<'_>, args: &[&str]) -> Result<String> {
    if let Some(path) = args.first().filter(|a| !a.starts_with("--")) {
        if *path != ctx.runner.binary_path() {
            return Err(ChronusError::InvalidInput(format!(
                "no application runner installed for '{path}' (have '{}')",
                ctx.runner.binary_path()
            )));
        }
    }
    let configs = match flag_value(args, "--configurations") {
        Some(file) => {
            let content = std::fs::read_to_string(file)
                .map_err(|e| ChronusError::InvalidInput(format!("cannot read {file}: {e}")))?;
            Some(presenter::configs_from_json(&content)?)
        }
        None => None,
    };
    let sample_interval = ctx.app.sample_interval()?.as_duration();
    let benches =
        ctx.app.benchmark(ctx.cluster, ctx.runner, ctx.sampler, ctx.info, configs.as_deref(), sample_interval)?;
    let mut out = presenter::benchmarks_table(&benches);
    out.push_str(&format!("\n{} benchmark(s) complete. Run data has been saved to the database.\n", benches.len()));
    Ok(out)
}

fn cmd_init_model(ctx: &mut CliContext<'_>, args: &[&str]) -> Result<String> {
    let model_type = flag_value(args, "--model").unwrap_or("linear-regression");
    let system: i64 = match flag_value(args, "--system") {
        Some(s) => s.parse().map_err(|_| ChronusError::InvalidInput(format!("bad system id '{s}'")))?,
        None => -1,
    };
    if system < 0 {
        // the paper's Figure 8 behaviour: present the available systems
        return Ok(presenter::systems_table(&ctx.app.repository().systems()?));
    }
    // resolve the binary hash from the system's benchmarks
    let hashes: Vec<u64> = {
        let mut h: Vec<u64> = ctx
            .app
            .repository()
            .all_benchmarks()?
            .into_iter()
            .filter(|b| b.system_id == system)
            .map(|b| b.binary_hash)
            .collect();
        h.sort_unstable();
        h.dedup();
        h
    };
    let binary_hash = match hashes.as_slice() {
        [] => return Err(ChronusError::NotFound(format!("benchmarks for system {system}"))),
        [one] => *one,
        many => {
            return Err(ChronusError::InvalidInput(format!(
                "system {system} has benchmarks for {} binaries; not yet disambiguated",
                many.len()
            )))
        }
    };
    let meta = ctx.app.init_model(model_type, system, binary_hash, ctx.now_ms)?;
    Ok(format!(
        "Initializing model of type {}\ntraining model... done\nModel {} saved to {} (fit R2 {:.4}, {} rows)\n",
        meta.model_type, meta.id, meta.blob_path, meta.fit_r2, meta.train_rows
    ))
}

fn cmd_load_model(ctx: &mut CliContext<'_>, args: &[&str]) -> Result<String> {
    let id: i64 = match flag_value(args, "--model") {
        Some(s) => s.parse().map_err(|_| ChronusError::InvalidInput(format!("bad model id '{s}'")))?,
        None => {
            // the paper's Figure 9 behaviour: present the available models
            return Ok(presenter::models_table(&ctx.app.repository().models()?));
        }
    };
    let loaded = ctx.app.load_model(id)?;
    Ok(format!("Model {} ({}) downloaded to {}\n", loaded.model_id, loaded.model_type, loaded.local_path))
}

fn cmd_slurm_config(ctx: &mut CliContext<'_>, args: &[&str]) -> Result<String> {
    let (sys, bin) = match args {
        [s, b, ..] => (parse_hash(s)?, parse_hash(b)?),
        _ => return Err(ChronusError::InvalidInput("usage: chronus slurm-config SYSTEM_HASH BINARY_HASH".into())),
    };
    let config = ctx.app.slurm_config(sys, bin)?;
    Ok(presenter::config_json(&config))
}

fn parse_hash(s: &str) -> Result<u64> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") { u64::from_str_radix(hex, 16) } else { s.parse() };
    parsed.map_err(|_| ChronusError::InvalidInput(format!("bad hash '{s}'")))
}

fn cmd_set(ctx: &mut CliContext<'_>, args: &[&str]) -> Result<String> {
    match args {
        ["database", path] => {
            ctx.app.set_database(path)?;
            Ok(format!("database = {path}\n"))
        }
        ["blob-storage", path] => {
            ctx.app.set_blob_storage(path)?;
            Ok(format!("blob-storage = {path}\n"))
        }
        ["state", value] => {
            let state = match *value {
                "active" => PluginState::Active,
                "user" => PluginState::User,
                "deactivated" => PluginState::Deactivated,
                other => {
                    return Err(ChronusError::InvalidInput(format!(
                        "unknown state '{other}' (active|user|deactivated)"
                    )))
                }
            };
            ctx.app.set_state(state)?;
            Ok(format!("state = {value}\n"))
        }
        ["sample-interval", value] => {
            let ms: i64 = value
                .parse()
                .map_err(|_| ChronusError::InvalidInput(format!("bad sample interval '{value}' (milliseconds)")))?;
            ctx.app.set_sample_interval(ms)?;
            Ok(format!("sample-interval = {ms} ms\n"))
        }
        ["--help"] | [] => Ok("Usage: chronus set <SETTING> <VALUE>\n\nSettings:\n  blob-storage <path>        Path of the blob storage root.\n  database <path>            Path of the repository database.\n  state <value>              Plugin activation state: 'active' rewrites every job,\n                             'user' only jobs opting in with --comment \"chronus\",\n                             'deactivated' none.\n  sample-interval <ms>       IPMI sampling interval for benchmarks (default 2000).\n".to_string()),
        other => Err(ChronusError::InvalidInput(format!("unknown set command {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrations::hpcg_runner::HpcgRunner;
    use crate::integrations::monitoring::{IpmiService, LscpuInfo};
    use crate::integrations::record_store::RecordStore;
    use crate::integrations::storage::{EtcStorage, LocalBlobStore};
    use eco_hpcg::perf_model::PerfModel;
    use eco_hpcg::workload::HpcgWorkload;
    use eco_sim_node::SimNode;
    use std::path::PathBuf;
    use std::sync::Arc;

    struct Fixture {
        app: Chronus,
        cluster: Cluster,
        runner: HpcgRunner,
        sampler: IpmiService,
        info: LscpuInfo,
        root: PathBuf,
    }

    fn fixture(tag: &str) -> Fixture {
        let root = std::env::temp_dir().join(format!("eco-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        let mut cluster = Cluster::single_node(SimNode::sr650());
        let perf = Arc::new(PerfModel::sr650());
        let work = perf.gflops(&perf.standard_config()) * 20.0;
        let workload = Arc::new(HpcgWorkload::with_work(perf, work, 104));
        let runner = HpcgRunner::install(&mut cluster, "/opt/hpcg/bin/xhpcg", workload);
        let app = Chronus::new(
            Box::new(RecordStore::open(root.join("db/data.db")).unwrap()),
            Box::new(LocalBlobStore::new(root.join("blobs")).unwrap()),
            Box::new(EtcStorage::new(&root)),
        );
        Fixture { app, cluster, runner, sampler: IpmiService::new(0, 9), info: LscpuInfo::new(0), root }
    }

    fn run(f: &mut Fixture, args: &[&str]) -> Result<String> {
        let mut ctx = CliContext {
            app: &mut f.app,
            cluster: &mut f.cluster,
            runner: &f.runner,
            sampler: &mut f.sampler,
            info: &f.info,
            now_ms: 12345,
        };
        run_command(&mut ctx, args)
    }

    #[test]
    fn help_and_unknown_command() {
        let mut f = fixture("help");
        assert!(run(&mut f, &["--help"]).unwrap().contains("benchmark"));
        assert!(run(&mut f, &[]).unwrap().contains("Usage"));
        assert!(run(&mut f, &["frobnicate"]).is_err());
    }

    #[test]
    fn benchmark_with_configurations_file() {
        let mut f = fixture("benchfile");
        let cfg_file = f.root.join("configurations.json");
        std::fs::write(
            &cfg_file,
            r#"[{"cores": 32, "threads_per_core": 1, "frequency": 2200000},
                {"cores": 32, "threads_per_core": 1, "frequency": 2500000}]"#,
        )
        .unwrap();
        let out = run(&mut f, &["benchmark", "/opt/hpcg/bin/xhpcg", "--configurations", cfg_file.to_str().unwrap()])
            .unwrap();
        assert!(out.contains("2 benchmark(s) complete"), "{out}");
        assert!(out.contains("Cores"), "{out}");
    }

    #[test]
    fn benchmark_wrong_binary_path_errors() {
        let mut f = fixture("wrongbin");
        assert!(run(&mut f, &["benchmark", "/bin/other"]).is_err());
    }

    #[test]
    fn full_cli_pipeline() {
        let mut f = fixture("pipeline");
        let cfg_file = f.root.join("c.json");
        std::fs::write(
            &cfg_file,
            r#"[{"cores": 32, "threads_per_core": 1, "frequency": 2200000},
                {"cores": 32, "threads_per_core": 1, "frequency": 2500000},
                {"cores": 16, "threads_per_core": 2, "frequency": 1500000}]"#,
        )
        .unwrap();
        run(&mut f, &["benchmark", "--configurations", cfg_file.to_str().unwrap()]).unwrap();

        // init-model without --system lists systems (Figure 8)
        let listing = run(&mut f, &["init-model", "--model", "brute-force"]).unwrap();
        assert!(listing.contains("Available Systems"), "{listing}");
        assert!(listing.contains("EPYC"), "{listing}");

        let out = run(&mut f, &["init-model", "--model", "brute-force", "--system", "1"]).unwrap();
        assert!(out.contains("Model 1 saved"), "{out}");

        // load-model without --model lists models (Figure 9)
        let listing = run(&mut f, &["load-model"]).unwrap();
        assert!(listing.contains("Available Models"), "{listing}");
        assert!(listing.contains("brute-force"), "{listing}");

        let out = run(&mut f, &["load-model", "--model", "1"]).unwrap();
        assert!(out.contains("downloaded to"), "{out}");

        // slurm-config returns the JSON the plugin consumes
        let sys_hash = f.info.system_hash(&f.cluster);
        let bin_hash = f.runner.binary_hash();
        let sys = format!("{sys_hash}");
        let bin = format!("{bin_hash}");
        let json = run(&mut f, &["slurm-config", &sys, &bin]).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["cores"], 32);
        assert_eq!(v["frequency"], 2_200_000);
    }

    #[test]
    fn slurm_config_accepts_hex_hashes() {
        let mut f = fixture("hex");
        // no model loaded: errors, but the hash parsing path is exercised
        let err = run(&mut f, &["slurm-config", "0xff", "0x10"]).unwrap_err();
        assert!(err.to_string().contains("load-model"), "{err}");
        assert!(run(&mut f, &["slurm-config", "zzz", "1"]).is_err());
        assert!(run(&mut f, &["slurm-config", "1"]).is_err());
    }

    #[test]
    fn set_commands() {
        let mut f = fixture("set");
        assert!(run(&mut f, &["set", "database", "/tmp/x.db"]).unwrap().contains("/tmp/x.db"));
        assert!(run(&mut f, &["set", "blob-storage", "/tmp/blobs"]).unwrap().contains("/tmp/blobs"));
        assert!(run(&mut f, &["set", "state", "active"]).unwrap().contains("active"));
        assert!(run(&mut f, &["set", "state", "sideways"]).is_err());
        assert!(run(&mut f, &["set", "--help"]).unwrap().contains("blob-storage"));
        assert!(run(&mut f, &["set", "bogus"]).is_err());
        let s = f.app.settings().unwrap();
        assert_eq!(s.database, "/tmp/x.db");
        assert_eq!(s.state, crate::domain::PluginState::Active);
    }

    #[test]
    fn set_sample_interval_validates() {
        let mut f = fixture("interval");
        assert!(run(&mut f, &["set", "sample-interval", "500"]).unwrap().contains("500 ms"));
        assert_eq!(f.app.sample_interval().unwrap().as_millis(), 500);
        assert!(run(&mut f, &["set", "sample-interval", "0"]).is_err());
        assert!(run(&mut f, &["set", "sample-interval", "-7"]).is_err());
        assert!(run(&mut f, &["set", "sample-interval", "soon"]).is_err());
        assert_eq!(f.app.sample_interval().unwrap().as_millis(), 500, "rejections leave the setting alone");
        // the benchmark loop honours the configured cadence: a coarser
        // interval collects fewer samples over the same run
        let cfg_file = f.root.join("one.json");
        std::fs::write(&cfg_file, r#"[{"cores": 32, "threads_per_core": 1, "frequency": 2200000}]"#).unwrap();
        run(&mut f, &["benchmark", "--configurations", cfg_file.to_str().unwrap()]).unwrap();
        let fine = f.app.repository().all_benchmarks().unwrap()[0].sample_count;
        run(&mut f, &["set", "sample-interval", "4000"]).unwrap();
        let mut f2 = fixture("interval2");
        run(&mut f2, &["set", "sample-interval", "4000"]).unwrap();
        run(&mut f2, &["benchmark", "--configurations", cfg_file.to_str().unwrap()]).unwrap();
        let coarse = f2.app.repository().all_benchmarks().unwrap()[0].sample_count;
        assert!(coarse < fine, "4000 ms sampling ({coarse}) must collect fewer samples than 500 ms ({fine})");
    }

    #[test]
    fn init_model_bad_args() {
        let mut f = fixture("badargs");
        assert!(run(&mut f, &["init-model", "--system", "abc"]).is_err());
        assert!(run(&mut f, &["init-model", "--model", "bogus", "--system", "1"]).is_err());
        assert!(run(&mut f, &["load-model", "--model", "nan"]).is_err());
    }
}
