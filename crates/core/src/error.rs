//! Chronus error type.

/// Errors surfaced by Chronus services and integrations.
#[derive(Debug)]
pub enum ChronusError {
    /// An I/O failure in a storage integration.
    Io(std::io::Error),
    /// A (de)serialisation failure.
    Serde(serde_json::Error),
    /// The repository has no such entity.
    NotFound(String),
    /// An optimizer was asked to predict before being fitted, or fitting
    /// failed.
    Model(String),
    /// A training set no optimizer can learn from (empty, a single
    /// configuration, or a constant GFLOPS/W surface): fitting would
    /// silently crown an arbitrary configuration.
    DegenerateData(String),
    /// A benchmark run failed inside the workload manager.
    Slurm(eco_slurm_sim::SlurmError),
    /// Invalid input from the CLI or a configuration file.
    InvalidInput(String),
}

impl std::fmt::Display for ChronusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChronusError::Io(e) => write!(f, "io error: {e}"),
            ChronusError::Serde(e) => write!(f, "serialisation error: {e}"),
            ChronusError::NotFound(what) => write!(f, "not found: {what}"),
            ChronusError::Model(m) => write!(f, "model error: {m}"),
            ChronusError::DegenerateData(m) => write!(f, "degenerate training data: {m}"),
            ChronusError::Slurm(e) => write!(f, "slurm error: {e}"),
            ChronusError::InvalidInput(m) => write!(f, "invalid input: {m}"),
        }
    }
}

impl std::error::Error for ChronusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChronusError::Io(e) => Some(e),
            ChronusError::Serde(e) => Some(e),
            ChronusError::Slurm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ChronusError {
    fn from(e: std::io::Error) -> Self {
        ChronusError::Io(e)
    }
}

impl From<serde_json::Error> for ChronusError {
    fn from(e: serde_json::Error) -> Self {
        ChronusError::Serde(e)
    }
}

impl From<eco_slurm_sim::SlurmError> for ChronusError {
    fn from(e: eco_slurm_sim::SlurmError) -> Self {
        ChronusError::Slurm(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ChronusError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ChronusError::NotFound("model 3".into()).to_string().contains("model 3"));
        assert!(ChronusError::Model("unfitted".into()).to_string().contains("unfitted"));
        assert!(ChronusError::InvalidInput("x".into()).to_string().contains("invalid input"));
    }

    #[test]
    fn conversions() {
        let io: ChronusError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(io, ChronusError::Io(_)));
        let slurm: ChronusError = eco_slurm_sim::SlurmError::InvalidScript("bad".into()).into();
        assert!(matches!(slurm, ChronusError::Slurm(_)));
    }
}
