//! Chronus domain entities — the innermost ring of the paper's Clean
//! Architecture (Figure 11). Pure data, no integration dependencies.

use eco_sim_node::cpu::CpuConfig;
use eco_sim_node::sysinfo::SystemFacts;
use serde::{Deserialize, Serialize};

/// A registered system (the paper's `SystemInfo` entity plus its identity
/// hash).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemEntry {
    /// Repository id (`-1` until saved, mirroring the CLI's default).
    pub id: i64,
    /// The facts `lscpu` gathered.
    pub facts: SystemFacts,
    /// The plugin's system hash (§4.2.1).
    pub system_hash: u64,
}

/// One energy sample taken during a benchmark (§3.1.2 step 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergySample {
    /// Seconds since the benchmark job started.
    pub t_s: f64,
    /// System power from the `Total_Power` sensor (W).
    pub system_w: f64,
    /// CPU package power (W).
    pub cpu_w: f64,
    /// CPU temperature (°C).
    pub cpu_temp_c: f64,
}

/// A completed benchmark of one configuration (§3.1.2 step 3: "saves the
/// energy usage and the results of the job to a benchmark in a database").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    /// Repository id (`-1` until saved).
    pub id: i64,
    /// The system the benchmark ran on.
    pub system_id: i64,
    /// Hash of the benchmarked executable.
    pub binary_hash: u64,
    /// The configuration benchmarked.
    pub config: CpuConfig,
    /// Achieved GFLOP/s as the application reported it.
    pub gflops: f64,
    /// Wall runtime in seconds.
    pub runtime_s: f64,
    /// Average system power over the run (W).
    pub avg_system_w: f64,
    /// Average CPU power over the run (W).
    pub avg_cpu_w: f64,
    /// Average CPU temperature over the run (°C).
    pub avg_cpu_temp_c: f64,
    /// Integrated system energy (J).
    pub system_energy_j: f64,
    /// Integrated CPU energy (J).
    pub cpu_energy_j: f64,
    /// Number of IPMI samples the energy integral used.
    pub sample_count: usize,
}

impl Benchmark {
    /// The paper's headline metric: GFLOP/s per watt of average system
    /// power.
    pub fn gflops_per_watt(&self) -> f64 {
        if self.avg_system_w <= 0.0 {
            return 0.0;
        }
        self.gflops / self.avg_system_w
    }
}

/// Metadata for a trained model (§3.1.2 "Model building" step 3: "path in
/// blob storage, time on creation, etc.").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelMetadata {
    /// Repository id (`-1` until saved).
    pub id: i64,
    /// The optimizer type string (the paper's `Model.type`):
    /// `brute-force`, `linear-regression` or `random-tree`.
    pub model_type: String,
    /// The system the model was trained for.
    pub system_id: i64,
    /// Hash of the executable the model predicts for.
    pub binary_hash: u64,
    /// Path of the serialized optimizer in blob storage.
    pub blob_path: String,
    /// Creation time (simulated milliseconds since epoch).
    pub created_at_ms: u64,
    /// Rows the model was fitted on.
    pub train_rows: usize,
    /// Fit quality (R² on the training data; 1.0 for brute force).
    pub fit_r2: f64,
}

/// Plugin activation state (the `chronus set state` command): `active`
/// applies to every job, `user` only to jobs that opt in with
/// `--comment "chronus"`, `deactivated` never.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "lowercase")]
pub enum PluginState {
    /// Rewrite every submitted job.
    Active,
    /// Rewrite only jobs that opt in via comment (the paper's default).
    #[default]
    User,
    /// Never rewrite.
    Deactivated,
}

/// A model staged on the head node's local disk for fast prediction
/// (§3.1.2 "Pre-load model").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadedModel {
    /// The repository id of the model.
    pub model_id: i64,
    /// The optimizer type string.
    pub model_type: String,
    /// Where on local disk the serialized optimizer sits
    /// (`/opt/chronus/optimizer` in the paper).
    pub local_path: String,
    /// The system hash the model belongs to.
    pub system_hash: u64,
    /// The binary hash the model predicts for.
    pub binary_hash: u64,
    /// The system's facts, kept local so prediction can enumerate the
    /// candidate configurations without a database round trip (the whole
    /// point of pre-loading, §3.1.2).
    pub facts: SystemFacts,
    /// Local path of the staged benchmark rows (JSON), used by the
    /// deadline-aware extension (§6.2.1) to bound runtimes at submit time.
    #[serde(default)]
    pub benchmarks_path: Option<String>,
}

/// The paper's IPMI sampling cadence: one reading every 2 seconds.
pub const DEFAULT_SAMPLE_INTERVAL_MS: u64 = 2000;

/// The benchmark sampler's IPMI polling interval, in milliseconds.
/// A newtype so settings files written before the field existed
/// deserialize to the paper's 2 s default rather than to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleIntervalMs(pub u64);

impl Default for SampleIntervalMs {
    fn default() -> Self {
        SampleIntervalMs(DEFAULT_SAMPLE_INTERVAL_MS)
    }
}

impl SampleIntervalMs {
    /// Validates a user-supplied interval: zero and negative values are
    /// rejected (a sampler that never ticks would hang the benchmark
    /// loop; the integral needs time to pass between readings).
    pub fn try_from_millis(ms: i64) -> Result<Self, String> {
        if ms <= 0 {
            return Err(format!("sample interval must be a positive number of milliseconds, got {ms}"));
        }
        Ok(SampleIntervalMs(ms as u64))
    }

    /// The interval in milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// The interval as a simulated duration.
    pub fn as_duration(self) -> eco_sim_node::clock::SimDuration {
        eco_sim_node::clock::SimDuration::from_millis(self.0)
    }
}

/// Chronus settings (`/etc/chronus/settings.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Settings {
    /// Path of the repository database.
    pub database: String,
    /// Path of the blob storage root.
    pub blob_storage: String,
    /// Plugin activation state.
    pub state: PluginState,
    /// The model currently pre-loaded for the plugin, if any.
    pub loaded_model: Option<LoadedModel>,
    /// IPMI sampling interval for benchmark runs
    /// (`chronus set sample-interval`; the paper samples every 2 s).
    #[serde(default)]
    pub sample_interval: SampleIntervalMs,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            database: "./database/data.db".to_string(),
            blob_storage: "./optimizers".to_string(),
            state: PluginState::User,
            loaded_model: None,
            sample_interval: SampleIntervalMs::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(gflops: f64, watts: f64) -> Benchmark {
        Benchmark {
            id: -1,
            system_id: 1,
            binary_hash: 42,
            config: CpuConfig::new(32, 2_200_000, 1),
            gflops,
            runtime_s: 1100.0,
            avg_system_w: watts,
            avg_cpu_w: watts / 2.0,
            avg_cpu_temp_c: 55.0,
            system_energy_j: watts * 1100.0,
            cpu_energy_j: watts * 550.0,
            sample_count: 550,
        }
    }

    #[test]
    fn gflops_per_watt_math() {
        assert!((bench(9.26, 190.0).gflops_per_watt() - 0.048736).abs() < 1e-5);
        assert_eq!(bench(5.0, 0.0).gflops_per_watt(), 0.0, "degenerate power guards");
    }

    #[test]
    fn plugin_state_serde_lowercase() {
        assert_eq!(serde_json::to_string(&PluginState::Active).unwrap(), "\"active\"");
        assert_eq!(serde_json::from_str::<PluginState>("\"deactivated\"").unwrap(), PluginState::Deactivated);
    }

    #[test]
    fn default_settings_match_paper_paths() {
        let s = Settings::default();
        assert_eq!(s.database, "./database/data.db"); // paper Figure 1 log
        assert_eq!(s.blob_storage, "./optimizers"); // paper §3.2 File Repository
        assert_eq!(s.state, PluginState::User); // "by default it will not change any settings"
        assert!(s.loaded_model.is_none());
        assert_eq!(s.sample_interval.as_millis(), 2000); // the paper samples every 2 s
    }

    #[test]
    fn sample_interval_validates_and_converts() {
        assert!(SampleIntervalMs::try_from_millis(0).is_err());
        assert!(SampleIntervalMs::try_from_millis(-5).is_err());
        let i = SampleIntervalMs::try_from_millis(500).unwrap();
        assert_eq!(i.as_millis(), 500);
        assert_eq!(i.as_duration().as_millis(), 500);
    }

    #[test]
    fn settings_without_sample_interval_field_default_to_two_seconds() {
        // a settings file written before the field existed
        let legacy = r#"{"database":"db","blob_storage":"blobs","state":"user","loaded_model":null}"#;
        let s: Settings = serde_json::from_str(legacy).unwrap();
        assert_eq!(s.sample_interval, SampleIntervalMs(2000));
        // and the field round-trips as a bare number
        let json = serde_json::to_string(&Settings { sample_interval: SampleIntervalMs(750), ..Settings::default() })
            .unwrap();
        assert!(json.contains("\"sample_interval\":750"), "{json}");
        assert_eq!(serde_json::from_str::<Settings>(&json).unwrap().sample_interval, SampleIntervalMs(750));
    }

    #[test]
    fn settings_json_roundtrip() {
        let s = Settings {
            loaded_model: Some(LoadedModel {
                model_id: 3,
                model_type: "linear-regression".into(),
                local_path: "/opt/chronus/optimizer".into(),
                system_hash: 7,
                binary_hash: 9,
                facts: SystemFacts {
                    cpu_name: "AMD EPYC 7502P 32-Core Processor".into(),
                    cores: 32,
                    threads_per_core: 2,
                    frequencies_khz: vec![1_500_000, 2_200_000, 2_500_000],
                    ram_gb: 256,
                },
                benchmarks_path: None,
            }),
            ..Settings::default()
        };
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: Settings = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn benchmark_serde_roundtrip() {
        let b = bench(9.0, 200.0);
        let json = serde_json::to_string(&b).unwrap();
        // the config uses the paper's JSON field name "frequency"
        assert!(json.contains("\"frequency\":2200000"), "{json}");
        let back: Benchmark = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}
