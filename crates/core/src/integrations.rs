//! Concrete implementations of the integration interfaces — the outermost
//! ring of the Clean Architecture (paper Figure 5):
//!
//! | Interface        | Implementations here                                |
//! |------------------|-----------------------------------------------------|
//! | Repository       | [`record_store::RecordStore`] (SQLite stand-in), [`csv_repo::CsvRepository`] |
//! | Application Runner | [`hpcg_runner::HpcgRunner`], [`generic_runner::GenericRunner`] |
//! | System Service   | [`monitoring::IpmiService`], [`monitoring::ClusterPowerApi`] |
//! | System Info      | [`monitoring::LscpuInfo`]                           |
//! | Local Storage    | [`storage::EtcStorage`]                             |
//! | File Repository  | [`storage::LocalBlobStore`]                         |

pub mod csv_repo;
pub mod generic_runner;
pub mod hpcg_runner;
pub mod monitoring;
pub mod record_store;
pub mod storage;
