//! Integration interfaces — the ports of the paper's Clean Architecture
//! (Figure 5 / §3.2). The application layer depends only on these traits;
//! concrete backends live in [`crate::integrations`], exactly mirroring
//! the Dependency Inversion structure of the paper's Listing 1.

use crate::domain::{Benchmark, EnergySample, ModelMetadata, Settings, SystemEntry};
use crate::error::Result;
use eco_sim_node::cpu::CpuConfig;
use eco_sim_node::sysinfo::SystemFacts;
use eco_slurm_sim::{Cluster, JobId, JobRecord};
use std::path::PathBuf;

/// **Repository** — "a bridge for remote storage … managing data in the
/// Chronus system". Implementations: CSV files, the embedded record store
/// (the SQLite stand-in).
pub trait Repository {
    /// Persists a system entry; returns the assigned id. Saving the same
    /// system hash again returns the existing id.
    fn save_system(&mut self, entry: &SystemEntry) -> Result<i64>;

    /// All registered systems.
    fn systems(&self) -> Result<Vec<SystemEntry>>;

    /// Looks a system up by its identity hash.
    fn system_by_hash(&self, hash: u64) -> Result<Option<SystemEntry>> {
        Ok(self.systems()?.into_iter().find(|s| s.system_hash == hash))
    }

    /// Persists a benchmark; returns the assigned id.
    fn save_benchmark(&mut self, benchmark: &Benchmark) -> Result<i64>;

    /// Benchmarks of one application on one system.
    fn benchmarks(&self, system_id: i64, binary_hash: u64) -> Result<Vec<Benchmark>>;

    /// Every stored benchmark.
    fn all_benchmarks(&self) -> Result<Vec<Benchmark>>;

    /// Persists model metadata; returns the assigned id.
    fn save_model(&mut self, meta: &ModelMetadata) -> Result<i64>;

    /// All model metadata entries.
    fn models(&self) -> Result<Vec<ModelMetadata>>;

    /// One model's metadata.
    fn model(&self, id: i64) -> Result<Option<ModelMetadata>>;
}

/// Outcome of fitting an optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitReport {
    /// Rows used for fitting.
    pub train_rows: usize,
    /// R² of the fit on its training data (1.0 for brute force).
    pub r2: f64,
}

/// **Optimizer** — "fits different efficiency models that calculate the
/// optimal configuration for energy usage". Implementations: brute force,
/// linear regression, random forest ("random-tree").
pub trait Optimizer {
    /// The type string the CLI and the `ModelFactory` use.
    fn model_type(&self) -> &'static str;

    /// Fits the optimizer on benchmarks of one (system, application) pair.
    fn fit(&mut self, benchmarks: &[Benchmark]) -> Result<FitReport>;

    /// Predicted GFLOPS/W at a configuration.
    fn predict_gpw(&self, config: &CpuConfig) -> Result<f64>;

    /// The most energy-efficient configuration among the candidates,
    /// by predicted GFLOPS/W (ties break toward the earlier candidate).
    fn best_config(&self, candidates: &[CpuConfig]) -> Result<CpuConfig> {
        let mut best: Option<(CpuConfig, f64)> = None;
        for c in candidates {
            let gpw = self.predict_gpw(c)?;
            if best.as_ref().is_none_or(|&(_, b)| gpw > b) {
                best = Some((*c, gpw));
            }
        }
        best.map(|(c, _)| c).ok_or_else(|| crate::error::ChronusError::Model("no candidates".into()))
    }

    /// Serializes the fitted state for blob storage.
    fn to_bytes(&self) -> Result<Vec<u8>>;
}

/// **Application Runner** — "designed to run applications for benchmarking
/// the HPC system". The HPCG implementation submits an sbatch job per
/// configuration (paper Listing 5/6).
pub trait ApplicationRunner {
    /// The application's name (e.g. `"hpcg"`).
    fn name(&self) -> &str;

    /// Filesystem path of the executable inside the cluster.
    fn binary_path(&self) -> &str;

    /// The binary hash identifying the application (§4.2.1).
    fn binary_hash(&self) -> u64;

    /// Submits one benchmark job at the given configuration; returns the
    /// job id to watch.
    fn submit(&self, cluster: &mut Cluster, config: &CpuConfig) -> Result<JobId>;

    /// Extracts the achieved GFLOP/s from a finished job's accounting
    /// record (the application's own performance report).
    fn gflops_from_record(&self, record: &JobRecord) -> f64;
}

/// **System Service** — "the monitoring service … used for data sampling
/// while running benchmarks". Implementation: IPMI via the BMC.
pub trait SystemService {
    /// Takes one telemetry sample of the monitored node.
    fn sample(&mut self, cluster: &Cluster) -> EnergySample;
}

/// **System Info** — "gathers system information such as the number of
/// cores, threads, frequencies and RAM. This is what identifies the
/// system." Implementation: `lscpu`.
pub trait SystemInfoProvider {
    /// Gathers the facts of the monitored node.
    fn facts(&self, cluster: &Cluster) -> SystemFacts;

    /// The identity hash of the monitored node (§4.2.1).
    fn system_hash(&self, cluster: &Cluster) -> u64;
}

/// **Local Storage** — "managing local settings storage … saving and
/// retrieving of settings and conversion of relative paths into full file
/// paths". Implementation: etc-storage.
pub trait LocalStorage {
    /// Reads the settings file (defaults if absent).
    fn load_settings(&self) -> Result<Settings>;

    /// Writes the settings file.
    fn save_settings(&self, settings: &Settings) -> Result<()>;

    /// Converts a possibly-relative path into a full path.
    fn resolve(&self, path: &str) -> PathBuf;
}

/// **File Repository** — "storing optimizers in Chronus, providing a
/// consistent API for managing optimizers". Implementation: a local
/// directory (could equally be NFS or an S3 bucket, per the paper).
pub trait FileRepository {
    /// Stores a blob at a repository-relative path.
    fn put(&mut self, path: &str, bytes: &[u8]) -> Result<()>;

    /// Fetches a blob.
    fn get(&self, path: &str) -> Result<Vec<u8>>;

    /// Whether a blob exists.
    fn exists(&self, path: &str) -> bool;

    /// Lists stored blob paths.
    fn list(&self) -> Result<Vec<String>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ChronusError;

    /// A stub optimizer that scores configurations by core count.
    struct CoresAreBest;
    impl Optimizer for CoresAreBest {
        fn model_type(&self) -> &'static str {
            "stub"
        }
        fn fit(&mut self, _b: &[Benchmark]) -> Result<FitReport> {
            Ok(FitReport { train_rows: 0, r2: 1.0 })
        }
        fn predict_gpw(&self, config: &CpuConfig) -> Result<f64> {
            Ok(config.cores as f64)
        }
        fn to_bytes(&self) -> Result<Vec<u8>> {
            Ok(vec![])
        }
    }

    #[test]
    fn best_config_default_takes_argmax() {
        let opt = CoresAreBest;
        let candidates =
            vec![CpuConfig::new(4, 1_500_000, 1), CpuConfig::new(32, 2_200_000, 1), CpuConfig::new(16, 2_500_000, 2)];
        let best = opt.best_config(&candidates).unwrap();
        assert_eq!(best.cores, 32);
    }

    #[test]
    fn best_config_empty_candidates_errors() {
        let opt = CoresAreBest;
        assert!(matches!(opt.best_config(&[]), Err(ChronusError::Model(_))));
    }

    #[test]
    fn best_config_tie_breaks_to_first() {
        let opt = CoresAreBest;
        let a = CpuConfig::new(8, 1_500_000, 1);
        let b = CpuConfig::new(8, 2_500_000, 2);
        assert_eq!(opt.best_config(&[a, b]).unwrap(), a);
    }
}
