//! The Optimizer implementations: brute force, linear regression and
//! random forest ("random-tree"), matching the paper's
//! `--model [brute-force|linear-regression|random-tree]` CLI options.
//!
//! All three map a [`CpuConfig`] feature vector `(cores, GHz, HT)` to
//! predicted GFLOPS/W and pick the argmax over candidate configurations.
//! [`ModelFactory`] is the paper's Listing 2 type-string dispatch.

use crate::domain::Benchmark;
use crate::error::{ChronusError, Result};
use crate::interfaces::{FitReport, Optimizer};
use eco_ml::{Dataset, Degree, ForestParams, LinearRegression, RandomForest, TreeParams};
use eco_sim_node::cpu::CpuConfig;
use serde::{Deserialize, Serialize};

/// Model-type string for brute force.
pub const BRUTE_FORCE: &str = "brute-force";
/// Model-type string for linear regression.
pub const LINEAR_REGRESSION: &str = "linear-regression";
/// Model-type string for the random forest (the paper's CLI calls it
/// `random-tree`).
pub const RANDOM_TREE: &str = "random-tree";

fn features(config: &CpuConfig) -> Vec<f64> {
    vec![config.cores as f64, config.ghz(), if config.hyper_threading() { 1.0 } else { 0.0 }]
}

/// Rejects training sets no optimizer can learn from. Without this gate
/// a degenerate sweep either panics downstream (zero rows) or fits a
/// flat surface whose argmax silently picks an arbitrary configuration.
pub fn validate_training_set(benchmarks: &[Benchmark]) -> Result<()> {
    if benchmarks.is_empty() {
        return Err(ChronusError::DegenerateData("cannot fit on zero benchmarks".into()));
    }
    let mut configs: Vec<CpuConfig> = benchmarks.iter().map(|b| b.config).collect();
    configs.sort_by_key(|c| (c.cores, c.frequency_khz, c.threads_per_core));
    configs.dedup();
    if configs.len() < 2 {
        return Err(ChronusError::DegenerateData(format!(
            "all {} benchmark(s) measure the single configuration {}; a sweep needs at least two distinct configurations",
            benchmarks.len(),
            configs[0],
        )));
    }
    let targets: Vec<f64> = benchmarks.iter().map(Benchmark::gflops_per_watt).collect();
    let (lo, hi) = targets.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &t| (lo.min(t), hi.max(t)));
    if !lo.is_finite() || !hi.is_finite() {
        return Err(ChronusError::DegenerateData("non-finite GFLOPS/W target in the training set".into()));
    }
    if (hi - lo).abs() <= 1e-12 * hi.abs().max(1.0) {
        return Err(ChronusError::DegenerateData(format!(
            "constant GFLOPS/W surface ({hi:.6} everywhere); every configuration ties and the argmax would be arbitrary"
        )));
    }
    Ok(())
}

fn dataset(benchmarks: &[Benchmark]) -> Result<Dataset> {
    validate_training_set(benchmarks)?;
    let rows: Vec<Vec<f64>> = benchmarks.iter().map(|b| features(&b.config)).collect();
    let targets: Vec<f64> = benchmarks.iter().map(Benchmark::gflops_per_watt).collect();
    Dataset::new(rows, targets)
        .map(|d| d.with_names(&["cores", "ghz", "ht"]))
        .map_err(|e| ChronusError::Model(e.to_string()))
}

fn training_r2(predict: impl Fn(&[f64]) -> f64, data: &Dataset) -> f64 {
    let preds: Vec<f64> = data.features().iter().map(|r| predict(r)).collect();
    eco_ml::r2(&preds, data.targets())
}

// ---------------------------------------------------------------- brute force

/// Brute force: remembers every measured configuration and answers
/// queries by nearest measured neighbour. Its "best configuration" is the
/// literal argmax of the measurements.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BruteForceOptimizer {
    table: Vec<(CpuConfig, f64)>,
}

impl BruteForceOptimizer {
    /// An unfitted optimizer.
    pub fn new() -> Self {
        Self::default()
    }

    fn distance(a: &CpuConfig, b: &CpuConfig) -> f64 {
        // normalised by the sweep's scales: 32 cores, 1 GHz span, HT flag
        let dc = (a.cores as f64 - b.cores as f64) / 32.0;
        let df = a.ghz() - b.ghz();
        let dh = (a.hyper_threading() as u8 as f64) - (b.hyper_threading() as u8 as f64);
        dc * dc + df * df + 0.25 * dh * dh
    }
}

impl Optimizer for BruteForceOptimizer {
    fn model_type(&self) -> &'static str {
        BRUTE_FORCE
    }

    fn fit(&mut self, benchmarks: &[Benchmark]) -> Result<FitReport> {
        validate_training_set(benchmarks)?;
        self.table = benchmarks.iter().map(|b| (b.config, b.gflops_per_watt())).collect();
        Ok(FitReport { train_rows: self.table.len(), r2: 1.0 })
    }

    fn predict_gpw(&self, config: &CpuConfig) -> Result<f64> {
        self.table
            .iter()
            .min_by(|a, b| {
                Self::distance(&a.0, config).partial_cmp(&Self::distance(&b.0, config)).expect("distances are finite")
            })
            .map(|&(_, gpw)| gpw)
            .ok_or_else(|| ChronusError::Model("brute-force optimizer is not fitted".into()))
    }

    /// Brute force answers with the best *measured* configuration: the
    /// candidate list only filters (an off-grid candidate can never win a
    /// measurement it never had).
    fn best_config(&self, candidates: &[CpuConfig]) -> Result<CpuConfig> {
        if self.table.is_empty() {
            return Err(ChronusError::Model("brute-force optimizer is not fitted".into()));
        }
        let measured_in_candidates = self
            .table
            .iter()
            .filter(|(c, _)| candidates.contains(c))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite gpw"));
        match measured_in_candidates {
            Some(&(c, _)) => Ok(c),
            // none of the candidates were measured: fall back to the
            // overall measured best
            None => Ok(self
                .table
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite gpw"))
                .expect("non-empty table")
                .0),
        }
    }

    fn to_bytes(&self) -> Result<Vec<u8>> {
        Ok(serde_json::to_vec(self)?)
    }
}

// ---------------------------------------------------- linear regression

/// Quadratic-feature ridge regression over (cores, GHz, HT).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LinearRegressionOptimizer {
    model: Option<LinearRegression>,
}

impl LinearRegressionOptimizer {
    /// An unfitted optimizer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Optimizer for LinearRegressionOptimizer {
    fn model_type(&self) -> &'static str {
        LINEAR_REGRESSION
    }

    fn fit(&mut self, benchmarks: &[Benchmark]) -> Result<FitReport> {
        let data = dataset(benchmarks)?;
        let model =
            LinearRegression::fit(&data, Degree::Quadratic, 1e-6).map_err(|e| ChronusError::Model(e.to_string()))?;
        let r2 = training_r2(|row| model.predict(row).unwrap_or(f64::NAN), &data);
        self.model = Some(model);
        Ok(FitReport { train_rows: data.len(), r2 })
    }

    fn predict_gpw(&self, config: &CpuConfig) -> Result<f64> {
        let model =
            self.model.as_ref().ok_or_else(|| ChronusError::Model("linear regression is not fitted".into()))?;
        model.predict(&features(config)).map_err(|e| ChronusError::Model(e.to_string()))
    }

    fn to_bytes(&self) -> Result<Vec<u8>> {
        Ok(serde_json::to_vec(self)?)
    }
}

// ------------------------------------------------------- random forest

/// Bagged regression trees over (cores, GHz, HT) — the paper's
/// `RandomForestRegressor` integration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomTreeOptimizer {
    params: ForestParams,
    model: Option<RandomForest>,
}

impl Default for RandomTreeOptimizer {
    fn default() -> Self {
        RandomTreeOptimizer {
            params: ForestParams {
                n_trees: 96,
                tree: TreeParams { max_depth: 10, min_leaf: 1, max_features: Some(2) },
                seed: 0xec0,
            },
            model: None,
        }
    }
}

impl RandomTreeOptimizer {
    /// An unfitted optimizer with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the forest hyperparameters (used by the ablation bench).
    pub fn with_params(params: ForestParams) -> Self {
        RandomTreeOptimizer { params, model: None }
    }
}

impl Optimizer for RandomTreeOptimizer {
    fn model_type(&self) -> &'static str {
        RANDOM_TREE
    }

    fn fit(&mut self, benchmarks: &[Benchmark]) -> Result<FitReport> {
        let data = dataset(benchmarks)?;
        let model = RandomForest::fit(&data, &self.params);
        let r2 = training_r2(|row| model.predict(row), &data);
        self.model = Some(model);
        Ok(FitReport { train_rows: data.len(), r2 })
    }

    fn predict_gpw(&self, config: &CpuConfig) -> Result<f64> {
        let model = self.model.as_ref().ok_or_else(|| ChronusError::Model("random forest is not fitted".into()))?;
        Ok(model.predict(&features(config)))
    }

    fn to_bytes(&self) -> Result<Vec<u8>> {
        Ok(serde_json::to_vec(self)?)
    }
}

// ------------------------------------------------------------- factory

/// Pseudo model-type: cross-validates the three families and picks the
/// best (an extension beyond the paper's fixed `--model` choice).
pub const AUTO: &str = "auto";

/// Selects the best optimizer family for a benchmark set by k-fold
/// cross-validated R² (ties break toward the cheaper family in listing
/// order). Used by `init-model --model auto`.
pub fn select_model_type(benchmarks: &[Benchmark], folds: usize, seed: u64) -> Result<(&'static str, f64)> {
    if benchmarks.len() < folds {
        return Err(ChronusError::Model(format!(
            "auto selection needs at least {folds} benchmarks, have {}",
            benchmarks.len()
        )));
    }
    let data = dataset(benchmarks)?;
    let mut best: Option<(&'static str, f64)> = None;
    for model_type in ModelFactory::model_types() {
        let score = eco_ml::cross_val_r2(&data, folds, seed, |train| {
            // rebuild a Benchmark view of the fold to reuse Optimizer::fit
            let rows: Vec<Benchmark> =
                train.features().iter().zip(train.targets()).map(|(f, &gpw)| synth_benchmark(f, gpw)).collect();
            let mut opt = ModelFactory::create(model_type).expect("known type");
            opt.fit(&rows).expect("fold fit");
            move |row: &[f64]| {
                let config = CpuConfig::new(
                    row[0].round() as u32,
                    (row[1] * 1_000_000.0).round() as u64,
                    if row[2] > 0.5 { 2 } else { 1 },
                );
                opt.predict_gpw(&config).unwrap_or(f64::NAN)
            }
        });
        if best.is_none_or(|(_, b)| score > b) {
            best = Some((model_type, score));
        }
    }
    best.ok_or_else(|| ChronusError::Model("no model families available".into()))
}

/// Reconstructs a minimal benchmark row from a feature vector + target
/// (only the fields `Optimizer::fit` consumes are meaningful).
fn synth_benchmark(features: &[f64], gpw: f64) -> Benchmark {
    let watts = 200.0;
    Benchmark {
        id: -1,
        system_id: 0,
        binary_hash: 0,
        config: CpuConfig::new(
            features[0].round() as u32,
            (features[1] * 1_000_000.0).round() as u64,
            if features[2] > 0.5 { 2 } else { 1 },
        ),
        gflops: gpw * watts,
        runtime_s: 1.0,
        avg_system_w: watts,
        avg_cpu_w: watts / 2.0,
        avg_cpu_temp_c: 50.0,
        system_energy_j: watts,
        cpu_energy_j: watts / 2.0,
        sample_count: 1,
    }
}

/// The paper's Listing 2 `ModelFactory`: maps the model-type string to an
/// optimizer instance.
pub struct ModelFactory;

impl ModelFactory {
    /// A fresh (unfitted) optimizer of the given type.
    pub fn create(model_type: &str) -> Result<Box<dyn Optimizer + Send>> {
        match model_type {
            BRUTE_FORCE => Ok(Box::new(BruteForceOptimizer::new())),
            LINEAR_REGRESSION => Ok(Box::new(LinearRegressionOptimizer::new())),
            RANDOM_TREE => Ok(Box::new(RandomTreeOptimizer::new())),
            other => Err(ChronusError::InvalidInput(format!("unknown optimizer type '{other}'"))),
        }
    }

    /// Deserializes a fitted optimizer previously written by
    /// [`Optimizer::to_bytes`].
    pub fn from_bytes(model_type: &str, bytes: &[u8]) -> Result<Box<dyn Optimizer + Send>> {
        match model_type {
            BRUTE_FORCE => Ok(Box::new(serde_json::from_slice::<BruteForceOptimizer>(bytes)?)),
            LINEAR_REGRESSION => Ok(Box::new(serde_json::from_slice::<LinearRegressionOptimizer>(bytes)?)),
            RANDOM_TREE => Ok(Box::new(serde_json::from_slice::<RandomTreeOptimizer>(bytes)?)),
            other => Err(ChronusError::InvalidInput(format!("unknown optimizer type '{other}'"))),
        }
    }

    /// The valid model-type strings, as the CLI `--help` lists them.
    pub fn model_types() -> [&'static str; 3] {
        [BRUTE_FORCE, LINEAR_REGRESSION, RANDOM_TREE]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_hpcg::paper_data::GFLOPS_PER_WATT;
    use eco_sim_node::cpu::ghz_to_khz;

    /// Benchmarks built straight from the paper's sweep (power fields are
    /// synthesised so gflops/avg_system_w reproduces the paper's GFLOPS/W).
    fn paper_benchmarks() -> Vec<Benchmark> {
        GFLOPS_PER_WATT
            .iter()
            .map(|&(cores, ghz, gpw, ht)| {
                let watts = 150.0 + cores as f64;
                Benchmark {
                    id: -1,
                    system_id: 1,
                    binary_hash: 7,
                    config: CpuConfig::new(cores, ghz_to_khz(ghz), if ht { 2 } else { 1 }),
                    gflops: gpw * watts,
                    runtime_s: 1000.0,
                    avg_system_w: watts,
                    avg_cpu_w: watts / 2.0,
                    avg_cpu_temp_c: 50.0,
                    system_energy_j: watts * 1000.0,
                    cpu_energy_j: watts * 500.0,
                    sample_count: 500,
                }
            })
            .collect()
    }

    fn candidates() -> Vec<CpuConfig> {
        paper_benchmarks().iter().map(|b| b.config).collect()
    }

    #[test]
    fn brute_force_picks_the_papers_best() {
        let mut opt = BruteForceOptimizer::new();
        let report = opt.fit(&paper_benchmarks()).unwrap();
        assert_eq!(report.train_rows, 138);
        assert_eq!(report.r2, 1.0);
        let best = opt.best_config(&candidates()).unwrap();
        assert_eq!(best, CpuConfig::new(32, 2_200_000, 1), "paper Table 1 row 1");
    }

    #[test]
    fn brute_force_nearest_neighbour_off_grid() {
        let mut opt = BruteForceOptimizer::new();
        opt.fit(&paper_benchmarks()).unwrap();
        // 31 cores was not swept: nearest is 32 at the same freq/ht
        let near = opt.predict_gpw(&CpuConfig::new(31, 2_200_000, 1)).unwrap();
        let exact = opt.predict_gpw(&CpuConfig::new(32, 2_200_000, 1)).unwrap();
        assert_eq!(near, exact);
    }

    #[test]
    fn linear_regression_fits_surface_reasonably() {
        let mut opt = LinearRegressionOptimizer::new();
        let report = opt.fit(&paper_benchmarks()).unwrap();
        assert!(report.r2 > 0.85, "r2 {}", report.r2);
        // quadratic surface puts the optimum at high cores
        let best = opt.best_config(&candidates()).unwrap();
        assert!(best.cores >= 28, "best {best}");
    }

    #[test]
    fn random_tree_fits_surface_well() {
        let mut opt = RandomTreeOptimizer::new();
        let report = opt.fit(&paper_benchmarks()).unwrap();
        assert!(report.r2 > 0.95, "r2 {}", report.r2);
        let best = opt.best_config(&candidates()).unwrap();
        // the forest's best must be a top-4 paper configuration
        let top: Vec<CpuConfig> = candidates().into_iter().take(4).collect();
        assert!(top.contains(&best), "best {best} not in paper top-4");
    }

    #[test]
    fn all_optimizers_prefer_32c22_over_standard() {
        // the headline claim must survive every model family
        for model_type in ModelFactory::model_types() {
            let mut opt = ModelFactory::create(model_type).unwrap();
            opt.fit(&paper_benchmarks()).unwrap();
            let best = opt.predict_gpw(&CpuConfig::new(32, 2_200_000, 1)).unwrap();
            let standard = opt.predict_gpw(&CpuConfig::new(32, 2_500_000, 1)).unwrap();
            assert!(best > standard, "{model_type}: {best} !> {standard}");
        }
    }

    #[test]
    fn unfitted_optimizers_error() {
        for model_type in ModelFactory::model_types() {
            let opt = ModelFactory::create(model_type).unwrap();
            let err = opt.predict_gpw(&CpuConfig::new(1, 1_500_000, 1));
            assert!(matches!(err, Err(ChronusError::Model(_))), "{model_type}");
        }
    }

    #[test]
    fn fit_on_empty_errors() {
        for model_type in ModelFactory::model_types() {
            let mut opt = ModelFactory::create(model_type).unwrap();
            assert!(matches!(opt.fit(&[]), Err(ChronusError::DegenerateData(_))), "{model_type}");
        }
    }

    #[test]
    fn fit_on_a_single_configuration_errors() {
        // three repeats of one configuration is still a single-point sweep
        let one = vec![paper_benchmarks().remove(0); 3];
        for model_type in ModelFactory::model_types() {
            let mut opt = ModelFactory::create(model_type).unwrap();
            match opt.fit(&one) {
                Err(ChronusError::DegenerateData(m)) => {
                    assert!(m.contains("single configuration"), "{model_type}: {m}")
                }
                other => panic!("{model_type}: expected DegenerateData, got {other:?}"),
            }
        }
    }

    #[test]
    fn fit_on_a_constant_power_surface_errors() {
        // distinct configurations, but identical GFLOPS/W everywhere: no
        // argmax is better than any other, so fitting must refuse
        let flat: Vec<Benchmark> = paper_benchmarks()
            .into_iter()
            .map(|mut b| {
                b.gflops = 0.05 * b.avg_system_w;
                b
            })
            .collect();
        for model_type in ModelFactory::model_types() {
            let mut opt = ModelFactory::create(model_type).unwrap();
            match opt.fit(&flat) {
                Err(ChronusError::DegenerateData(m)) => {
                    assert!(m.contains("constant GFLOPS/W"), "{model_type}: {m}")
                }
                other => panic!("{model_type}: expected DegenerateData, got {other:?}"),
            }
        }
    }

    #[test]
    fn validate_training_set_accepts_real_sweeps() {
        validate_training_set(&paper_benchmarks()).unwrap();
        validate_training_set(&paper_benchmarks()[..2]).unwrap();
    }

    #[test]
    fn serialization_roundtrip_preserves_predictions() {
        let benches = paper_benchmarks();
        for model_type in ModelFactory::model_types() {
            let mut opt = ModelFactory::create(model_type).unwrap();
            opt.fit(&benches).unwrap();
            let bytes = opt.to_bytes().unwrap();
            let loaded = ModelFactory::from_bytes(model_type, &bytes).unwrap();
            for cfg in candidates().iter().take(10) {
                let a = opt.predict_gpw(cfg).unwrap();
                let b = loaded.predict_gpw(cfg).unwrap();
                assert_eq!(a, b, "{model_type} at {cfg}");
            }
        }
    }

    #[test]
    fn factory_rejects_unknown_type() {
        assert!(ModelFactory::create("neural-net").is_err());
        assert!(ModelFactory::from_bytes("neural-net", b"{}").is_err());
    }

    #[test]
    fn model_type_strings_match_paper_cli() {
        assert_eq!(ModelFactory::model_types(), ["brute-force", "linear-regression", "random-tree"]);
        assert_eq!(BruteForceOptimizer::new().model_type(), "brute-force");
        assert_eq!(LinearRegressionOptimizer::new().model_type(), "linear-regression");
        assert_eq!(RandomTreeOptimizer::new().model_type(), "random-tree");
    }

    #[test]
    fn auto_selection_picks_a_strong_family() {
        let benches = paper_benchmarks();
        let (chosen, score) = select_model_type(&benches, 4, 1).unwrap();
        assert!(ModelFactory::model_types().contains(&chosen), "{chosen}");
        assert!(score > 0.8, "cv score {score}");
        // on the full smooth sweep, the forest or brute force should beat
        // the quadratic surface
        assert_ne!(chosen, LINEAR_REGRESSION, "cv {score}");
    }

    #[test]
    fn auto_selection_needs_enough_rows() {
        let benches: Vec<Benchmark> = paper_benchmarks().into_iter().take(2).collect();
        assert!(select_model_type(&benches, 4, 1).is_err());
    }

    #[test]
    fn random_tree_deterministic_across_fits() {
        let benches = paper_benchmarks();
        let mut a = RandomTreeOptimizer::new();
        let mut b = RandomTreeOptimizer::new();
        a.fit(&benches).unwrap();
        b.fit(&benches).unwrap();
        let cfg = CpuConfig::new(30, 2_200_000, 1);
        assert_eq!(a.predict_gpw(&cfg).unwrap(), b.predict_gpw(&cfg).unwrap());
    }
}
