//! The blocking chronusd client: one or many replicas behind a
//! consistent-hash ring with health-checked failover.
//!
//! ## Fleet mode
//!
//! A client built with several endpoints routes each `Predict` by
//! [`predict_key`]`(system_hash, binary_hash)` on a [`HashRing`], so
//! every client in the cluster sends the same key to the same replica
//! and each daemon's registry stays hot for its share of the keyspace.
//! Transport failures fail over to the next replica in ring order
//! without sleeping; a replica that fails `down_after` consecutive
//! exchanges leaves the ring (negative-result caching: a dead replica
//! then costs one probe per cooldown window, not one timeout per
//! submission). Probes are plain `Ping`s; a probe that answers `Pong`
//! triggers rejoin, and a rejoining replica is first re-preloaded with
//! every fleet-committed model so it never re-enters the ring behind
//! the committed rollout state.
//!
//! With a single endpoint the ring is bypassed entirely and the retry
//! loop is byte-for-byte the original single-daemon state machine, so
//! the warm path costs nothing extra.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eco_sim_node::cpu::CpuConfig;

use super::endpoint::{Endpoint, EndpointParseError};
use super::ring::{predict_key, HashRing};
use super::{
    fastpath, send_msg, Connection, KeyOutcome, ModelSync, ObservedOutcome, PreloadAck, RemoteError, Request,
    RequestFrame, Response, ResponseFrame, StatsSnapshot, Transport, MAX_BATCH_KEYS,
};
use crate::telemetry::{Counter, Histogram, Telemetry, TraceContext};

/// Per-call options for [`PredictClient`] RPCs: the caller's trace
/// context and an optional per-call deadline override.
#[derive(Debug, Clone, Copy, Default)]
pub struct CallOptions {
    /// Propagated trace context; each attempt opens a `client/attempt`
    /// span under it and stamps that span's context on the wire frame.
    pub trace: Option<TraceContext>,
    /// Deadline budget for this call, overriding the client-level
    /// default from [`ClientBuilder::deadline_ms`] when set.
    pub deadline_ms: Option<u64>,
}

impl CallOptions {
    /// Options carrying only a trace context (the common case).
    pub fn traced(trace: Option<TraceContext>) -> CallOptions {
        CallOptions { trace, deadline_ms: None }
    }

    /// The same options with a per-call deadline budget.
    pub fn deadline(mut self, ms: u64) -> CallOptions {
        self.deadline_ms = Some(ms);
        self
    }
}

/// Why [`ClientBuilder::build`] refused a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientBuildError {
    /// No endpoint or transport was supplied.
    NoEndpoints,
    /// A timeout knob was zero (named in the payload).
    ZeroTimeout(&'static str),
    /// `max_retries` above the sanity bound (16).
    RetriesOutOfRange(u32),
    /// `vnodes` outside `1..=1024`.
    VnodesOutOfRange(u32),
    /// `down_after` must be at least 1.
    ZeroDownAfter,
    /// `pipeline_depth` outside `1..=64`.
    PipelineDepthOutOfRange(u32),
    /// An endpoint string that does not parse (named in the payload);
    /// see [`Endpoint`] for the accepted shapes.
    BadEndpoint(EndpointParseError),
}

impl std::fmt::Display for ClientBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientBuildError::NoEndpoints => write!(f, "client needs at least one endpoint or transport"),
            ClientBuildError::ZeroTimeout(which) => write!(f, "{which} timeout must be non-zero"),
            ClientBuildError::RetriesOutOfRange(n) => write!(f, "max_retries {n} exceeds the sanity bound of 16"),
            ClientBuildError::VnodesOutOfRange(n) => write!(f, "vnodes {n} outside 1..=1024"),
            ClientBuildError::ZeroDownAfter => write!(f, "down_after must be at least 1"),
            ClientBuildError::PipelineDepthOutOfRange(n) => write!(f, "pipeline_depth {n} outside 1..=64"),
            ClientBuildError::BadEndpoint(e) => write!(f, "bad endpoint: {e}"),
        }
    }
}

impl std::error::Error for ClientBuildError {}

enum Target {
    /// An endpoint string, parsed by [`Endpoint::parse`] at build time.
    Spec(String),
    /// A caller-supplied transport (in-memory, fault-injecting, ...).
    Transport(Box<dyn Transport>),
}

/// Builds a [`PredictClient`], validating every knob up front. This is
/// the only way to construct a fleet-mode (multi-endpoint) client.
///
/// ```no_run
/// use chronus::remote::PredictClient;
/// let client = PredictClient::builder()
///     .endpoints(["10.0.0.1:4117", "10.0.0.2:4117", "10.0.0.3:4117"])
///     .max_retries(2)
///     .build()
///     .expect("valid config");
/// ```
pub struct ClientBuilder {
    endpoints: Vec<Target>,
    connect_timeout: Duration,
    read_timeout: Duration,
    max_retries: u32,
    backoff: Duration,
    deadline_ms: Option<u64>,
    vnodes: u32,
    down_after: u32,
    probe_cooldown: u32,
    pipeline_depth: u32,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        ClientBuilder {
            endpoints: Vec::new(),
            connect_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(500),
            max_retries: 2,
            backoff: Duration::from_millis(10),
            deadline_ms: None,
            vnodes: 64,
            down_after: 2,
            probe_cooldown: 16,
            pipeline_depth: 4,
        }
    }
}

impl ClientBuilder {
    /// Adds one endpoint: `tcp://host:port`, `shm://path`, or bare
    /// `host:port` (which stays TCP, so pre-scheme configs survive).
    /// Repeatable; two or more endpoints make a fleet-mode client.
    /// Parsing happens — and bad strings are reported — at
    /// [`ClientBuilder::build`] time.
    pub fn endpoint(mut self, addr: impl Into<String>) -> Self {
        self.endpoints.push(Target::Spec(addr.into()));
        self
    }

    /// Adds several endpoints at once (same shapes as
    /// [`ClientBuilder::endpoint`]).
    pub fn endpoints<I, S>(mut self, addrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for a in addrs {
            self.endpoints.push(Target::Spec(a.into()));
        }
        self
    }

    /// Adds a replica reached over an arbitrary [`Transport`]
    /// (in-memory, fault-injecting, ...). Repeatable, and mixable with
    /// [`ClientBuilder::endpoint`].
    pub fn transport(mut self, transport: Box<dyn Transport>) -> Self {
        self.endpoints.push(Target::Transport(transport));
        self
    }

    /// TCP connect timeout (default 200 ms).
    pub fn connect_timeout(mut self, d: Duration) -> Self {
        self.connect_timeout = d;
        self
    }

    /// Per-response read timeout (default 500 ms).
    pub fn read_timeout(mut self, d: Duration) -> Self {
        self.read_timeout = d;
        self
    }

    /// Additional attempts after the first (default 2; 0 = fail fast).
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Base backoff between attempts; grows linearly (default 10 ms).
    pub fn backoff(mut self, d: Duration) -> Self {
        self.backoff = d;
        self
    }

    /// Deadline budget stamped on every request frame (default: none).
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Ring points per replica (default 64).
    pub fn vnodes(mut self, n: u32) -> Self {
        self.vnodes = n;
        self
    }

    /// Consecutive transport failures before a replica leaves the ring
    /// (default 2). The last in-ring replica never leaves.
    pub fn down_after(mut self, n: u32) -> Self {
        self.down_after = n;
        self
    }

    /// Requests to wait between probes of an out-of-ring replica
    /// (default 16). Each probe is one `Ping`, so a dead replica costs
    /// one timeout per window instead of one per submission.
    pub fn probe_cooldown(mut self, n: u32) -> Self {
        self.probe_cooldown = n;
        self
    }

    /// Sub-batches [`PredictClient::predict_many`] may keep in flight
    /// on one connection (default 4; 1 disables pipelining). Only takes
    /// effect against daemons that echo correlation ids; the client
    /// drops to one-at-a-time exchanges against older daemons.
    pub fn pipeline_depth(mut self, n: u32) -> Self {
        self.pipeline_depth = n;
        self
    }

    /// Validates the configuration and constructs the client. Nothing
    /// connects yet — the first RPC does.
    pub fn build(self) -> Result<PredictClient, ClientBuildError> {
        if self.endpoints.is_empty() {
            return Err(ClientBuildError::NoEndpoints);
        }
        if self.connect_timeout.is_zero() {
            return Err(ClientBuildError::ZeroTimeout("connect"));
        }
        if self.read_timeout.is_zero() {
            return Err(ClientBuildError::ZeroTimeout("read"));
        }
        if self.max_retries > 16 {
            return Err(ClientBuildError::RetriesOutOfRange(self.max_retries));
        }
        if self.vnodes == 0 || self.vnodes > 1024 {
            return Err(ClientBuildError::VnodesOutOfRange(self.vnodes));
        }
        if self.down_after == 0 {
            return Err(ClientBuildError::ZeroDownAfter);
        }
        if self.pipeline_depth == 0 || self.pipeline_depth > 64 {
            return Err(ClientBuildError::PipelineDepthOutOfRange(self.pipeline_depth));
        }
        let mut replicas: Vec<Replica> = Vec::with_capacity(self.endpoints.len());
        for e in self.endpoints {
            let transport: Box<dyn Transport> = match e {
                Target::Spec(spec) => Endpoint::parse(&spec)
                    .map_err(ClientBuildError::BadEndpoint)?
                    .transport(self.connect_timeout, self.read_timeout),
                Target::Transport(t) => t,
            };
            replicas.push(Replica {
                desc: transport.describe(),
                local: transport.is_local(),
                transport,
                conn: None,
                in_ring: true,
                consecutive_failures: 0,
                probe_in: 0,
                generation: 0,
                corr_echo: None,
                batch_unsupported: false,
            });
        }
        let mut ring = HashRing::new(self.vnodes);
        ring.rebuild(0..replicas.len() as u32);
        Ok(PredictClient {
            replicas,
            ring,
            knobs: Knobs {
                max_retries: self.max_retries,
                backoff: self.backoff,
                deadline_ms: self.deadline_ms,
                down_after: self.down_after,
                probe_cooldown: self.probe_cooldown,
                pipeline_depth: self.pipeline_depth,
            },
            tel: None,
            rolled_models: Vec::new(),
            rejoining: false,
        })
    }
}

#[derive(Debug, Clone)]
struct Knobs {
    max_retries: u32,
    backoff: Duration,
    deadline_ms: Option<u64>,
    down_after: u32,
    probe_cooldown: u32,
    pipeline_depth: u32,
}

struct Replica {
    desc: String,
    /// Cached [`Transport::is_local`]: local replicas are preferred
    /// over ring routing while they are on the ring.
    local: bool,
    transport: Box<dyn Transport>,
    conn: Option<Box<dyn Connection>>,
    in_ring: bool,
    consecutive_failures: u32,
    /// Requests until the next probe while out of the ring.
    probe_in: u32,
    /// Last rollout generation this replica acknowledged to us.
    generation: u64,
    /// Whether the *current* connection's peer echoes correlation ids:
    /// `None` until the first corr'd exchange answers, then the
    /// verdict. Reset on every fresh dial.
    corr_echo: Option<bool>,
    /// Set once this daemon answers `PredictMany` with a
    /// malformed-request error: an old daemon, batch forever off.
    batch_unsupported: bool,
}

/// One replica's health and rollout state, as the client sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// The replica's endpoint description.
    pub endpoint: String,
    /// Whether the replica is currently on the routing ring.
    pub in_ring: bool,
    /// The last rollout generation it acknowledged (0 = none seen).
    pub generation: u64,
}

/// Per-replica outcome of a fleet-wide model rollout
/// ([`PredictClient::preload_detailed`]).
#[derive(Debug)]
pub struct FleetPreload {
    /// Replicas that committed the model, with their acknowledgements.
    pub acks: Vec<(String, PreloadAck)>,
    /// Replicas that failed, with the error each one produced.
    pub failures: Vec<(String, RemoteError)>,
}

/// A blocking client for one chronusd daemon or a fleet of replicas.
/// Holds one persistent connection per replica, reconnecting lazily
/// after any failure; every RPC retries a bounded number of times with
/// linear backoff, honouring the daemon's `Busy { retry_after_ms }`
/// hint and failing over between replicas in ring order. All waiting
/// goes through each replica's [`Transport`], so a simulated transport
/// sees every back-off.
pub struct PredictClient {
    replicas: Vec<Replica>,
    ring: HashRing,
    knobs: Knobs,
    tel: Option<ClientTelemetry>,
    /// Model ids committed fleet-wide, in rollout order; replayed into
    /// any replica that rejoins the ring.
    rolled_models: Vec<i64>,
    /// Re-entrancy guard: rejoin replays preloads whose own successes
    /// must not recursively trigger another rejoin.
    rejoining: bool,
}

/// The client's cached telemetry handles: counter lookups happen once,
/// at [`PredictClient::set_telemetry`] time, not per request.
struct ClientTelemetry {
    telemetry: Arc<Telemetry>,
    requests: Counter,
    attempts: Counter,
    retries: Counter,
    busy: Counter,
    errors: Counter,
    coalesced: Counter,
    batch_keys: Histogram,
    inflight_depth: Histogram,
    ring_lookups: Counter,
    ring_failovers: Counter,
    ring_rebuilds: Counter,
    ring_probes: Counter,
    ring_repreloads: Counter,
}

fn verb_name(r: &Request) -> &'static str {
    match r {
        Request::Ping => "ping",
        Request::Predict { .. } => "predict",
        Request::PredictMany { .. } => "predict_many",
        Request::Preload { .. } => "preload",
        Request::Stats => "stats",
        Request::SyncModels { .. } => "sync_models",
        Request::Burn { .. } => "burn",
        Request::ReportOutcome { .. } => "report_outcome",
    }
}

/// The routing key for a request body: predictions hash their
/// `(system, binary)` pair; every other verb shares one fixed position.
fn routing_key(body: &Request) -> u64 {
    match body {
        Request::Predict { system_hash, binary_hash } => predict_key(*system_hash, *binary_hash),
        // outcomes follow their prediction key so each replica's drift
        // detector sees the traffic it actually served
        Request::ReportOutcome { system_hash, binary_hash, .. } => predict_key(*system_hash, *binary_hash),
        _ => 0,
    }
}

/// Dials the replica's connection if necessary; a fresh connection's
/// corr-echo verdict is unknown until its first corr'd exchange.
fn ensure_conn(replica: &mut Replica) -> Result<(), RemoteError> {
    if replica.conn.is_none() {
        replica.conn = Some(replica.transport.connect().map_err(RemoteError::Connect)?);
        replica.corr_echo = None;
    }
    Ok(())
}

/// One framed exchange on a replica's persistent connection, dialing
/// first if necessary. Leaves connection cleanup to the caller.
fn exchange_on(replica: &mut Replica, frame: &RequestFrame) -> Result<Response, RemoteError> {
    ensure_conn(replica)?;
    let conn: &mut dyn Connection = &mut **replica.conn.as_mut().expect("connection was just established");
    send_msg(conn, frame).map_err(RemoteError::Io)?;
    let payload = conn.recv_frame().map_err(|e| {
        if e.kind() == std::io::ErrorKind::InvalidData {
            RemoteError::Protocol(e.to_string())
        } else {
            RemoteError::Io(e)
        }
    })?;
    serde_json::from_slice(&payload).map_err(|e| RemoteError::Protocol(e.to_string()))
}

/// Whether `resp` is a shape the daemon could legitimately send for
/// `req`. `Busy`, `Error` and `DeadlineExceeded` answer any verb (that
/// is how old daemons refuse verbs they predate); every other response
/// pairs one-to-one with its request. A mismatched pair means the
/// connection stream is desynced — a duplicated or reordered frame was
/// consumed as this exchange's reply, leaving the real reply queued —
/// and every later exchange on it would read one reply behind, so the
/// caller must drop the connection rather than trust it again.
fn response_matches(req: &Request, resp: &Response) -> bool {
    matches!(
        (req, resp),
        (_, Response::Busy { .. })
            | (_, Response::Error { .. })
            | (_, Response::DeadlineExceeded)
            | (Request::Ping, Response::Pong)
            | (Request::Predict { .. }, Response::Config(_))
            | (Request::Predict { .. }, Response::Miss { .. })
            | (Request::PredictMany { .. }, Response::ManyConfigs { .. })
            | (Request::Preload { .. }, Response::Preloaded { .. })
            | (Request::Stats, Response::Stats(_))
            | (Request::SyncModels { .. }, Response::Models { .. })
            | (Request::Burn { .. }, Response::Burned)
            | (Request::ReportOutcome { .. }, Response::OutcomeAck { .. })
    )
}

/// What came back on a pipelined connection: an envelope (corr-aware
/// daemon) or a bare response (old daemon, or a bare `Busy` bounce
/// from the accept loop, which never reads the request at all).
enum WireReply {
    Bare(Response),
    Enveloped(u64, Response),
}

/// Reads one reply frame and classifies it. The shapes cannot be
/// confused: a fast-path reply opens with the binary magic byte (which
/// JSON never produces), the envelope is an object with `corr` and
/// `body` fields, and a bare [`Response`] is neither (see
/// [`ResponseFrame`]).
fn read_reply(conn: &mut dyn Connection) -> Result<WireReply, RemoteError> {
    let payload = conn.recv_frame().map_err(RemoteError::Io)?;
    if fastpath::is_binary(&payload) {
        let (corr, body) = fastpath::decode_reply(&payload).map_err(|e| RemoteError::Protocol(e.to_string()))?;
        return Ok(WireReply::Enveloped(corr, body));
    }
    if let Ok(envelope) = serde_json::from_slice::<ResponseFrame>(&payload) {
        return Ok(WireReply::Enveloped(envelope.corr, envelope.body));
    }
    match serde_json::from_slice::<Response>(&payload) {
        Ok(r) => Ok(WireReply::Bare(r)),
        Err(e) => Err(RemoteError::Protocol(e.to_string())),
    }
}

impl std::fmt::Debug for PredictClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictClient")
            .field("endpoints", &self.replicas.iter().map(|r| r.desc.as_str()).collect::<Vec<_>>())
            .field("in_ring", &self.replicas_in_ring())
            .field("knobs", &self.knobs)
            .finish()
    }
}

impl PredictClient {
    /// Starts building a client; see [`ClientBuilder`].
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// The first replica's endpoint (the only one in single-daemon
    /// mode); see [`PredictClient::endpoints`] for the whole fleet.
    pub fn addr(&self) -> &str {
        &self.replicas[0].desc
    }

    /// Every replica endpoint this client balances over.
    pub fn endpoints(&self) -> Vec<&str> {
        self.replicas.iter().map(|r| r.desc.as_str()).collect()
    }

    /// Total replicas configured.
    pub fn replicas_total(&self) -> usize {
        self.replicas.len()
    }

    /// Replicas currently on the routing ring.
    pub fn replicas_in_ring(&self) -> usize {
        self.replicas.iter().filter(|r| r.in_ring).count()
    }

    /// Per-replica health and last-acknowledged rollout generation.
    pub fn replica_health(&self) -> Vec<ReplicaStatus> {
        self.replicas
            .iter()
            .map(|r| ReplicaStatus { endpoint: r.desc.clone(), in_ring: r.in_ring, generation: r.generation })
            .collect()
    }

    /// Attaches telemetry: every RPC from here on bumps `client.*` and
    /// `ring.*` counters and records one `client/attempt` span per
    /// exchange (retries included), each carrying its own context on
    /// the wire so daemon-side spans parent under the exact attempt
    /// that reached it.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.tel = Some(ClientTelemetry {
            requests: telemetry.counter("client.requests"),
            attempts: telemetry.counter("client.attempts"),
            retries: telemetry.counter("client.retries"),
            busy: telemetry.counter("client.busy"),
            errors: telemetry.counter("client.errors"),
            coalesced: telemetry.counter("client.coalesced"),
            batch_keys: telemetry.histogram("client.batch_keys"),
            inflight_depth: telemetry.histogram("client.inflight_depth"),
            ring_lookups: telemetry.counter("ring.lookups"),
            ring_failovers: telemetry.counter("ring.failovers"),
            ring_rebuilds: telemetry.counter("ring.rebuilds"),
            ring_probes: telemetry.counter("ring.probes"),
            ring_repreloads: telemetry.counter("ring.repreloads"),
            telemetry,
        });
    }

    /// Sends one request, retrying on connection errors and on `Busy`
    /// back-pressure and failing over between replicas in ring order.
    /// Any protocol-level answer other than `Busy` (including `Miss`
    /// and `DeadlineExceeded`) is returned as-is.
    pub fn request(&mut self, body: Request, opts: &CallOptions) -> Result<Response, RemoteError> {
        if let Some(t) = &self.tel {
            t.requests.bump();
        }
        self.probe_if_due(opts.trace);
        let candidates = self.candidates(routing_key(&body));
        self.drive(body, opts, &candidates)
    }

    /// Round-trip liveness probe; returns the observed latency.
    pub fn ping(&mut self) -> Result<Duration, RemoteError> {
        let start = Instant::now();
        match self.request(Request::Ping, &CallOptions::default())? {
            Response::Pong => Ok(start.elapsed()),
            other => Err(RemoteError::Protocol(format!("expected Pong, got {other:?}"))),
        }
    }

    /// The plugin's query: the best configuration for a (system,
    /// binary). Routed by consistent hash of the pair in fleet mode.
    pub fn predict(
        &mut self,
        system_hash: u64,
        binary_hash: u64,
        opts: &CallOptions,
    ) -> Result<CpuConfig, RemoteError> {
        match self.request(Request::Predict { system_hash, binary_hash }, opts)? {
            Response::Config(c) => Ok(c),
            Response::Miss { system_hash, binary_hash } => Err(RemoteError::Miss { system_hash, binary_hash }),
            Response::DeadlineExceeded => Err(RemoteError::DeadlineExceeded),
            Response::Error { message } => Err(RemoteError::Server(message)),
            other => Err(RemoteError::Protocol(format!("expected Config, got {other:?}"))),
        }
    }

    /// The batched query: one result per key, in key order, always
    /// `keys.len()` of them. Keys are grouped by their ring owner
    /// (fleet mode fans one batch out across replicas and re-merges),
    /// each group is split into sub-batches of at most
    /// [`MAX_BATCH_KEYS`], and up to [`ClientBuilder::pipeline_depth`]
    /// sub-batches ride one connection concurrently via correlation
    /// ids. Any key a batched exchange fails to answer falls back to
    /// the single-key path with its full retry/failover machinery — a
    /// key is never silently dropped, only answered or given a typed
    /// error. Old daemons (no `PredictMany`) degrade to sequential
    /// singles automatically.
    pub fn predict_many(&mut self, keys: &[(u64, u64)], opts: &CallOptions) -> Vec<Result<CpuConfig, RemoteError>> {
        if let Some(t) = &self.tel {
            t.requests.bump();
            t.batch_keys.record_us(keys.len() as u64);
        }
        if keys.is_empty() {
            return Vec::new();
        }
        if keys.len() == 1 {
            let (s, b) = keys[0];
            return vec![self.predict(s, b, opts)];
        }
        self.probe_if_due(opts.trace);
        // ring-aware splitter: each key goes to its first-choice
        // replica — except that a healthy local (shm) replica owns the
        // whole batch: every key is cheapest there, and splitting a
        // batch between a daemon's shm and tcp endpoints would route
        // half the keys the slow way to the same process
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.replicas.len()];
        let local = self.replicas.iter().position(|r| r.local && r.in_ring);
        if let Some(owner) = local.or((self.replicas.len() == 1).then_some(0)) {
            groups[owner] = (0..keys.len()).collect();
        } else {
            if let Some(t) = &self.tel {
                t.ring_lookups.bump();
            }
            for (i, &(s, b)) in keys.iter().enumerate() {
                let owner = self.ring.ordered(predict_key(s, b)).first().copied().unwrap_or_default() as usize;
                groups[owner.min(self.replicas.len() - 1)].push(i);
            }
        }
        let mut results: Vec<Option<Result<CpuConfig, RemoteError>>> = (0..keys.len()).map(|_| None).collect();
        for (idx, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            self.batch_on(idx, keys, &group, opts, &mut results);
        }
        // per-key fallback for anything a batch left unanswered
        for i in 0..keys.len() {
            if results[i].is_none() {
                let (s, b) = keys[i];
                results[i] = Some(self.predict(s, b, opts));
            }
        }
        results.into_iter().map(|r| r.expect("every key answered or fallen back")).collect()
    }

    /// Records that `n` concurrent callers rode one coalesced batch
    /// (`n - 1` of them saved a round trip of their own).
    pub fn note_coalesced(&self, n: usize) {
        if n > 1 {
            if let Some(t) = &self.tel {
                t.coalesced.add(n as u64 - 1);
            }
        }
    }

    /// Sends one group of key indices to one replica as pipelined
    /// `PredictMany` sub-batches and fills their result slots. Slots
    /// left `None` (connection died mid-batch, daemon too old, bare
    /// `Busy` bounce) are picked up by the caller's per-key fallback.
    fn batch_on(
        &mut self,
        idx: usize,
        keys: &[(u64, u64)],
        group: &[usize],
        opts: &CallOptions,
        results: &mut [Option<Result<CpuConfig, RemoteError>>],
    ) {
        if self.replicas[idx].batch_unsupported {
            return;
        }
        let deadline_ms = opts.deadline_ms.or(self.knobs.deadline_ms);
        let depth_cap = self.knobs.pipeline_depth as usize;
        let mut chunks: VecDeque<Vec<usize>> = group.chunks(MAX_BATCH_KEYS).map(|c| c.to_vec()).collect();
        let mut in_flight: VecDeque<(u64, Vec<usize>)> = VecDeque::new();
        let mut next_corr: u64 = 1;
        let mut answered = 0usize;

        if ensure_conn(&mut self.replicas[idx]).is_err() {
            self.note_failure(idx);
            return;
        }
        while !chunks.is_empty() || !in_flight.is_empty() {
            // a connection whose corr support is unconfirmed (or absent)
            // carries one frame at a time
            let allowed = match self.replicas[idx].corr_echo {
                Some(true) => depth_cap,
                _ => 1,
            };
            while in_flight.len() < allowed && !chunks.is_empty() {
                let chunk = chunks.pop_front().expect("checked non-empty");
                let chunk_keys: Vec<(u64, u64)> = chunk.iter().map(|&i| keys[i]).collect();
                let corr = next_corr;
                let corr_wanted = self.replicas[idx].corr_echo != Some(false);
                if corr_wanted {
                    next_corr += 1;
                }
                let conn: &mut dyn Connection = &mut **self.replicas[idx].conn.as_mut().expect("dialed above");
                // The binary fast path needs a correlation id, so it
                // waits for the connection's corr verdict like
                // pipelining does; until then the frame goes as JSON.
                let sent = if corr_wanted && conn.fast_batch() {
                    let wire = fastpath::encode_request(corr, deadline_ms, &chunk_keys);
                    conn.send_frame(&wire)
                } else {
                    let frame = RequestFrame {
                        deadline_ms,
                        trace: opts.trace,
                        corr: corr_wanted.then_some(corr),
                        body: Request::PredictMany { keys: chunk_keys },
                    };
                    send_msg(conn, &frame)
                };
                if sent.is_err() {
                    self.replicas[idx].conn = None;
                    self.note_failure(idx);
                    return;
                }
                in_flight.push_back((corr, chunk));
                if let Some(t) = &self.tel {
                    t.attempts.bump();
                    t.inflight_depth.record_us(in_flight.len() as u64);
                }
            }
            let reply = {
                let conn: &mut dyn Connection = &mut **self.replicas[idx].conn.as_mut().expect("dialed above");
                read_reply(conn)
            };
            let (slot, response) = match reply {
                Ok(WireReply::Enveloped(corr, response)) => {
                    self.replicas[idx].corr_echo = Some(true);
                    match in_flight.iter().position(|(c, _)| *c == corr) {
                        Some(pos) => (in_flight.remove(pos).expect("position just found"), response),
                        None => {
                            // echo of a corr we never sent: unrecoverable
                            self.replicas[idx].conn = None;
                            self.note_failure(idx);
                            return;
                        }
                    }
                }
                Ok(WireReply::Bare(Response::Busy { .. })) => {
                    // accept-loop bounce: the daemon hung up without
                    // reading anything; every in-flight key falls back
                    self.replicas[idx].conn = None;
                    if let Some(t) = &self.tel {
                        t.busy.bump();
                    }
                    return;
                }
                Ok(WireReply::Bare(response)) => {
                    // an old daemon answers in order, and we never
                    // pipeline until corr echo is confirmed
                    self.replicas[idx].corr_echo = Some(false);
                    match in_flight.pop_front() {
                        Some(sent) => (sent, response),
                        None => {
                            self.replicas[idx].conn = None;
                            self.note_failure(idx);
                            return;
                        }
                    }
                }
                Err(_) => {
                    self.replicas[idx].conn = None;
                    self.note_failure(idx);
                    return;
                }
            };
            let (_, chunk) = slot;
            match response {
                Response::ManyConfigs { results: outcomes } if outcomes.len() == chunk.len() => {
                    for (&key_index, outcome) in chunk.iter().zip(outcomes) {
                        let (system_hash, binary_hash) = keys[key_index];
                        results[key_index] = Some(match outcome {
                            KeyOutcome::Config(c) => Ok(c),
                            KeyOutcome::Miss => Err(RemoteError::Miss { system_hash, binary_hash }),
                            KeyOutcome::Error { message } => Err(RemoteError::Server(message)),
                        });
                        answered += 1;
                    }
                }
                Response::ManyConfigs { .. } => {
                    // wrong cardinality is a protocol violation; the
                    // unanswered keys fall back rather than misalign
                    self.replicas[idx].conn = None;
                    self.note_failure(idx);
                    return;
                }
                Response::Busy { .. } => {
                    // service-level busy for this sub-batch: fall back
                    if let Some(t) = &self.tel {
                        t.busy.bump();
                    }
                    self.replicas[idx].conn = None;
                    return;
                }
                Response::DeadlineExceeded => {
                    for &key_index in &chunk {
                        results[key_index] = Some(Err(RemoteError::DeadlineExceeded));
                        answered += 1;
                    }
                }
                Response::Error { message } => {
                    if message.contains("malformed request") {
                        // an old daemon that has never heard of
                        // PredictMany: degrade to singles, forever
                        self.replicas[idx].batch_unsupported = true;
                        return;
                    }
                    for &key_index in &chunk {
                        results[key_index] = Some(Err(RemoteError::Server(message.clone())));
                        answered += 1;
                    }
                }
                _ => {
                    self.replicas[idx].conn = None;
                    self.note_failure(idx);
                    return;
                }
            }
        }
        if answered > 0 {
            self.note_success(idx, opts.trace);
        }
    }

    /// Stages a model on every replica (fan-out in fleet mode) and
    /// returns the highest-generation acknowledgement. Succeeds when at
    /// least one replica commits; per-replica outcomes are available
    /// through [`PredictClient::preload_detailed`]. The committed model
    /// is remembered and replayed into any replica that later rejoins
    /// the ring behind it.
    pub fn preload(&mut self, model_id: i64, opts: &CallOptions) -> Result<PreloadAck, RemoteError> {
        let fleet = self.preload_detailed(model_id, opts);
        match fleet.acks.into_iter().map(|(_, a)| a).max_by_key(|a| a.generation) {
            Some(ack) => Ok(ack),
            None => Err(fleet
                .failures
                .into_iter()
                .next()
                .map(|(_, e)| e)
                .unwrap_or_else(|| RemoteError::Protocol("preload fan-out produced no outcome".into()))),
        }
    }

    /// Stages a model on every replica, reporting each replica's
    /// outcome — the campaign layer's quorum decisions build on this.
    pub fn preload_detailed(&mut self, model_id: i64, opts: &CallOptions) -> FleetPreload {
        if let Some(t) = &self.tel {
            t.requests.bump();
        }
        let mut acks = Vec::new();
        let mut failures = Vec::new();
        for idx in 0..self.replicas.len() {
            let desc = self.replicas[idx].desc.clone();
            match self.preload_on(idx, model_id, opts) {
                Ok(ack) => {
                    self.replicas[idx].generation = ack.generation;
                    acks.push((desc, ack));
                }
                Err(e) => failures.push((desc, e)),
            }
        }
        if !acks.is_empty() && !self.rolled_models.contains(&model_id) {
            self.rolled_models.push(model_id);
        }
        FleetPreload { acks, failures }
    }

    /// Anti-entropy pull: asks a replica (the ring's choice in fleet
    /// mode) for every committed model newer than `have_generation`.
    /// A freshly booted store-less daemon uses this to catch up from a
    /// ring peer instead of waiting for a client to re-preload it.
    pub fn sync_models(&mut self, have_generation: u64, opts: &CallOptions) -> Result<Vec<ModelSync>, RemoteError> {
        match self.request(Request::SyncModels { have_generation }, opts)? {
            Response::Models { models } => Ok(models),
            Response::Error { message } => Err(RemoteError::Server(message)),
            other => Err(RemoteError::Protocol(format!("expected Models, got {other:?}"))),
        }
    }

    /// Reports one production observation for a served prediction
    /// (routed to the replica that owns the key, like `Predict`).
    /// Returns whether the daemon accepted the outcome; an old daemon
    /// that cannot parse the frame answers a malformed-request
    /// `Error`, which maps to `Ok(false)` — outcome reporting
    /// degrades, it never fails the caller.
    pub fn report_outcome(
        &mut self,
        system_hash: u64,
        binary_hash: u64,
        outcome: &ObservedOutcome,
    ) -> Result<bool, RemoteError> {
        let body = Request::ReportOutcome { system_hash, binary_hash, outcome: outcome.clone() };
        match self.request(body, &CallOptions::default())? {
            Response::OutcomeAck { accepted } => Ok(accepted),
            // old daemon: unknown variant fails its decode, it answers
            // a malformed-request Error — treat as "unsupported"
            Response::Error { .. } => Ok(false),
            Response::DeadlineExceeded => Err(RemoteError::DeadlineExceeded),
            other => Err(RemoteError::Protocol(format!("expected OutcomeAck, got {other:?}"))),
        }
    }

    /// Fetches one replica's counters (the ring's choice in fleet
    /// mode); see [`PredictClient::stats_all`] for the whole fleet.
    pub fn stats(&mut self) -> Result<StatsSnapshot, RemoteError> {
        match self.request(Request::Stats, &CallOptions::default())? {
            Response::Stats(s) => Ok(*s),
            other => Err(RemoteError::Protocol(format!("expected Stats, got {other:?}"))),
        }
    }

    /// Fetches every replica's counters, keyed by endpoint. Replicas
    /// that cannot answer report their error instead.
    pub fn stats_all(&mut self) -> Vec<(String, Result<StatsSnapshot, RemoteError>)> {
        if let Some(t) = &self.tel {
            t.requests.bump();
        }
        (0..self.replicas.len())
            .map(|idx| {
                let desc = self.replicas[idx].desc.clone();
                let res = self.drive(Request::Stats, &CallOptions::default(), &[idx]).and_then(|resp| match resp {
                    Response::Stats(s) => Ok(*s),
                    other => Err(RemoteError::Protocol(format!("expected Stats, got {other:?}"))),
                });
                (desc, res)
            })
            .collect()
    }

    // -- fleet internals ---------------------------------------------------

    /// The replica try-order for a key: healthy local (shm) replicas
    /// first — the fallback ladder shm → tcp → caller's local model —
    /// then ring members clockwise from the key, then out-of-ring
    /// replicas as a last resort. Single-replica clients skip the ring
    /// entirely (the warm-path fast path).
    fn candidates(&mut self, key: u64) -> Vec<usize> {
        if self.replicas.len() == 1 {
            return vec![0];
        }
        if let Some(t) = &self.tel {
            t.ring_lookups.bump();
        }
        let mut out: Vec<usize> = self.ring.ordered(key).into_iter().map(|m| m as usize).collect();
        // stable: local in-ring members jump the queue, everyone else
        // keeps ring order
        out.sort_by_key(|&i| !self.replicas[i].local);
        for (i, r) in self.replicas.iter().enumerate() {
            if !r.in_ring {
                out.push(i);
            }
        }
        out
    }

    /// The retry/failover state machine. With a single candidate this
    /// is exactly the original single-daemon loop: `max_retries + 1`
    /// attempts, busy hints honoured, linear backoff between attempts.
    /// With several candidates, a failed exchange moves to the next
    /// candidate immediately (the failed dial/read already cost its
    /// timeout); backoff only applies when the whole list wraps around.
    fn drive(&mut self, body: Request, opts: &CallOptions, candidates: &[usize]) -> Result<Response, RemoteError> {
        let verb = verb_name(&body);
        let parent = opts.trace;
        let deadline_ms = opts.deadline_ms.or(self.knobs.deadline_ms);
        let base = RequestFrame { deadline_ms, trace: parent, corr: None, body };
        let fleet = self.replicas.len() > 1;
        let max_attempts = self.knobs.max_retries + candidates.len() as u32;
        let mut attempt: u32 = 0;
        let mut pos: usize = 0;
        loop {
            attempt += 1;
            let idx = candidates[pos];
            let mut span = self.tel.as_ref().map(|t| {
                t.attempts.bump();
                if attempt > 1 {
                    t.retries.bump();
                }
                let mut s = t.telemetry.span_maybe_under(parent, "client", "attempt");
                s.attr("verb", verb);
                s.attr("attempt", attempt);
                if fleet {
                    s.attr("replica", &self.replicas[idx].desc);
                }
                s
            });
            let frame = base.clone().traced(span.as_ref().map(|s| s.context()).or(parent));
            // A reply whose shape cannot answer this verb means the
            // stream is desynced (the real reply is still queued behind
            // whatever we just read); funnel it into the error arm so
            // the connection is dropped and the retry redials clean.
            let exchanged = exchange_on(&mut self.replicas[idx], &frame).and_then(|resp| {
                if response_matches(&base.body, &resp) {
                    Ok(resp)
                } else {
                    Err(RemoteError::Protocol(format!("desynced reply to {verb}: got {resp:?}")))
                }
            });
            match exchanged {
                Ok(Response::Busy { retry_after_ms }) => {
                    // The daemon closes the connection after a Busy bounce.
                    self.replicas[idx].conn = None;
                    if let Some(t) = &self.tel {
                        t.busy.bump();
                    }
                    if let Some(s) = span.take() {
                        s.fail(format!("busy retry_after={retry_after_ms}ms"));
                    }
                    if attempt >= max_attempts {
                        return Err(RemoteError::Busy { retry_after_ms, attempts: attempt });
                    }
                    if pos + 1 < candidates.len() {
                        self.note_failover(idx, candidates[pos + 1], "busy", parent);
                        pos += 1;
                    } else {
                        pos = 0;
                        self.replicas[idx].transport.sleep(Duration::from_millis(retry_after_ms.min(50)));
                    }
                }
                Ok(resp) => {
                    drop(span);
                    self.note_success(idx, parent);
                    return Ok(resp);
                }
                Err(e) => {
                    self.replicas[idx].conn = None;
                    if let Some(t) = &self.tel {
                        t.errors.bump();
                    }
                    if let Some(s) = span.take() {
                        s.fail(e.to_string());
                    }
                    self.note_failure(idx);
                    if attempt >= max_attempts {
                        return Err(e);
                    }
                    if pos + 1 < candidates.len() {
                        self.note_failover(idx, candidates[pos + 1], "error", parent);
                        pos += 1;
                    } else {
                        pos = 0;
                        let backoff = self.knobs.backoff * attempt;
                        self.replicas[idx].transport.sleep(backoff);
                    }
                }
            }
        }
    }

    /// A bounded preload against one specific replica.
    fn preload_on(&mut self, idx: usize, model_id: i64, opts: &CallOptions) -> Result<PreloadAck, RemoteError> {
        match self.drive(Request::Preload { model_id }, opts, &[idx])? {
            Response::Preloaded { model_id, model_type, system_hash, binary_hash, generation } => {
                Ok(PreloadAck { model_id, model_type, system_hash, binary_hash, generation })
            }
            Response::Error { message } => Err(RemoteError::Server(message)),
            other => Err(RemoteError::Protocol(format!("expected Preloaded, got {other:?}"))),
        }
    }

    fn in_ring_count(&self) -> usize {
        self.replicas.iter().filter(|r| r.in_ring).count()
    }

    fn rebuild_ring(&mut self) {
        let members =
            self.replicas.iter().enumerate().filter(|(_, r)| r.in_ring).map(|(i, _)| i as u32).collect::<Vec<_>>();
        self.ring.rebuild(members);
        if let Some(t) = &self.tel {
            t.ring_rebuilds.bump();
        }
    }

    /// A transport-level failure: after `down_after` in a row the
    /// replica leaves the ring — unless it is the last one standing.
    fn note_failure(&mut self, idx: usize) {
        self.replicas[idx].consecutive_failures += 1;
        if self.replicas[idx].in_ring
            && self.replicas[idx].consecutive_failures >= self.knobs.down_after
            && self.in_ring_count() > 1
        {
            self.replicas[idx].in_ring = false;
            self.replicas[idx].probe_in = self.knobs.probe_cooldown;
            self.rebuild_ring();
        }
    }

    /// A successful exchange: reset health, and rejoin the ring if the
    /// replica had been voted out.
    fn note_success(&mut self, idx: usize, parent: Option<TraceContext>) {
        self.replicas[idx].consecutive_failures = 0;
        if !self.replicas[idx].in_ring && !self.rejoining {
            self.rejoining = true;
            self.rejoin(idx, parent);
            self.rejoining = false;
        }
    }

    /// Brings a recovered replica back onto the ring. If the fleet has
    /// committed rollouts the replica may have missed (it may have
    /// restarted with an empty registry), every committed model is
    /// re-preloaded first — the replica never serves ring traffic
    /// behind the committed generation.
    ///
    /// A replica running with `--store` catches itself up from its own
    /// store at boot; its `Stats` then already show a committed
    /// generation and a configured store directory, and the re-preload
    /// replay is skipped (the store replaces the client-driven path).
    fn rejoin(&mut self, idx: usize, parent: Option<TraceContext>) {
        if !self.rolled_models.is_empty() {
            match self.drive(Request::Stats, &CallOptions::traced(parent), &[idx]) {
                Ok(Response::Stats(s)) if !s.store_dir.is_empty() && s.model_generation >= 1 => {
                    self.replicas[idx].generation = s.model_generation;
                    self.replicas[idx].in_ring = true;
                    self.rebuild_ring();
                    return;
                }
                Ok(_) => {} // memory-only or still cold: replay below
                Err(_) => {
                    // not healthy enough to answer Stats: stay out, probe later
                    self.replicas[idx].probe_in = self.knobs.probe_cooldown;
                    return;
                }
            }
        }
        let models = self.rolled_models.clone();
        for model_id in models {
            match self.preload_on(idx, model_id, &CallOptions::traced(parent)) {
                Ok(ack) => {
                    self.replicas[idx].generation = ack.generation;
                    if let Some(t) = &self.tel {
                        t.ring_repreloads.bump();
                    }
                }
                Err(_) => {
                    // not healthy enough to catch up: stay out, probe later
                    self.replicas[idx].probe_in = self.knobs.probe_cooldown;
                    return;
                }
            }
        }
        self.replicas[idx].in_ring = true;
        self.rebuild_ring();
    }

    /// Counts down out-of-ring cooldowns and pings at most one replica
    /// whose window expired. A `Pong` starts the rejoin flow; anything
    /// else re-arms the cooldown.
    fn probe_if_due(&mut self, parent: Option<TraceContext>) {
        if self.replicas.len() == 1 {
            return;
        }
        let mut due: Option<usize> = None;
        for (i, r) in self.replicas.iter_mut().enumerate() {
            if !r.in_ring {
                if r.probe_in == 0 {
                    due.get_or_insert(i);
                } else {
                    r.probe_in -= 1;
                }
            }
        }
        let Some(idx) = due else { return };
        if let Some(t) = &self.tel {
            t.ring_probes.bump();
        }
        let frame = RequestFrame::new(Request::Ping).traced(parent);
        match exchange_on(&mut self.replicas[idx], &frame) {
            Ok(Response::Pong) => self.note_success(idx, parent),
            _ => {
                self.replicas[idx].conn = None;
                self.replicas[idx].probe_in = self.knobs.probe_cooldown;
            }
        }
    }

    fn note_failover(&mut self, from: usize, to: usize, why: &str, parent: Option<TraceContext>) {
        if let Some(t) = &self.tel {
            t.ring_failovers.bump();
            if let Some(ctx) = parent {
                let mut s = t.telemetry.span_under(ctx, "client", "failover");
                s.attr("from", &self.replicas[from].desc);
                s.attr("to", &self.replicas[to].desc);
                s.attr("why", why);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_knobs() {
        assert_eq!(PredictClient::builder().build().unwrap_err(), ClientBuildError::NoEndpoints);
        assert_eq!(
            PredictClient::builder().endpoint("a:1").connect_timeout(Duration::ZERO).build().unwrap_err(),
            ClientBuildError::ZeroTimeout("connect")
        );
        assert_eq!(
            PredictClient::builder().endpoint("a:1").read_timeout(Duration::ZERO).build().unwrap_err(),
            ClientBuildError::ZeroTimeout("read")
        );
        assert_eq!(
            PredictClient::builder().endpoint("a:1").max_retries(99).build().unwrap_err(),
            ClientBuildError::RetriesOutOfRange(99)
        );
        assert_eq!(
            PredictClient::builder().endpoint("a:1").vnodes(0).build().unwrap_err(),
            ClientBuildError::VnodesOutOfRange(0)
        );
        assert_eq!(
            PredictClient::builder().endpoint("a:1").down_after(0).build().unwrap_err(),
            ClientBuildError::ZeroDownAfter
        );
        assert!(matches!(
            PredictClient::builder().endpoint("gopher://a:1").build().unwrap_err(),
            ClientBuildError::BadEndpoint(EndpointParseError::UnknownScheme(_))
        ));
        assert!(matches!(
            PredictClient::builder().endpoint("noport").build().unwrap_err(),
            ClientBuildError::BadEndpoint(EndpointParseError::BadAddr(_))
        ));
    }

    #[test]
    fn scheme_endpoints_build_and_describe() {
        let client = PredictClient::builder().endpoint("tcp://h1:4117").endpoint("shm:///run/c.shm").build().unwrap();
        assert_eq!(client.endpoints(), vec!["h1:4117", "shm:///run/c.shm"]);
        assert_eq!(client.replicas_total(), 2);
    }

    #[test]
    fn local_replicas_lead_every_candidate_list() {
        let mut client = PredictClient::builder()
            .endpoint("h1:4117")
            .endpoint("shm:///run/c.shm")
            .endpoint("h2:4117")
            .build()
            .unwrap();
        for key in [0u64, 1, 99, u64::MAX] {
            let order = client.candidates(key);
            assert_eq!(order[0], 1, "shm replica must lead for key {key}");
            assert_eq!(order.len(), 3);
        }
    }

    #[test]
    fn builder_accepts_a_fleet_and_reports_endpoints() {
        let client = PredictClient::builder().endpoints(["h1:4117", "h2:4117"]).endpoint("h3:4117").build().unwrap();
        assert_eq!(client.endpoints(), vec!["h1:4117", "h2:4117", "h3:4117"]);
        assert_eq!(client.addr(), "h1:4117");
        assert_eq!(client.replicas_total(), 3);
        assert_eq!(client.replicas_in_ring(), 3, "everyone starts on the ring");
        for s in client.replica_health() {
            assert!(s.in_ring);
            assert_eq!(s.generation, 0);
        }
    }

    #[test]
    fn client_fails_fast_against_a_dead_address() {
        // bind-then-drop guarantees the port is closed
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let mut client = PredictClient::builder()
            .endpoint(format!("127.0.0.1:{port}"))
            .connect_timeout(Duration::from_millis(50))
            .max_retries(1)
            .backoff(Duration::from_millis(1))
            .build()
            .unwrap();
        let start = Instant::now();
        let err = client.predict(1, 2, &CallOptions::default()).unwrap_err();
        assert!(matches!(err, RemoteError::Connect(_) | RemoteError::Io(_)), "{err}");
        assert!(start.elapsed() < Duration::from_secs(2), "bounded retries must fail fast");
    }

    #[test]
    fn fleet_client_exhausts_every_replica_before_failing() {
        let dead = || {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            format!("127.0.0.1:{}", l.local_addr().unwrap().port())
        };
        let mut client = PredictClient::builder()
            .endpoints([dead(), dead(), dead()])
            .connect_timeout(Duration::from_millis(20))
            .max_retries(1)
            .backoff(Duration::from_millis(1))
            .build()
            .unwrap();
        let start = Instant::now();
        let err = client.predict(7, 9, &CallOptions::default()).unwrap_err();
        assert!(matches!(err, RemoteError::Connect(_) | RemoteError::Io(_)), "{err}");
        assert!(start.elapsed() < Duration::from_secs(2), "failover must stay bounded");
        // repeated failures voted replicas off the ring, but never the last one
        assert!(client.replicas_in_ring() >= 1);
    }
}
