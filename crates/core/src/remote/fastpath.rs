//! The binary `PredictMany` fast path.
//!
//! JSON costs real CPU at 1M+ keys/s: serializing a 512-key batch and
//! parsing its reply caps a single core near the throughput target all
//! by itself. Frame-level transports that negotiate it (see
//! [`super::Connection::fast_batch`] — today only the shared-memory
//! ring) carry `PredictMany` exchanges in a fixed little-endian binary
//! layout instead. The encoding is deliberately boring: no varints, no
//! compression, every field a fixed-width copy, so encode/decode is a
//! handful of `memcpy`s.
//!
//! A binary frame is distinguished from JSON by its first byte,
//! [`MAGIC`] (`0xB1`), which can never open a JSON document. Everything
//! else on a fast-path connection (preloads, stats, pings) stays JSON;
//! only the hot batch verb gets the treatment.
//!
//! ## Layout (all integers little-endian)
//!
//! Request: `B1 01 | corr u64 | flags u8 (bit0 = has deadline) |
//! deadline_ms u64 | n u32 | n × (system u64, binary u64)`
//!
//! Reply: `B1 02 | corr u64 | n u32 | n × outcome` where an outcome is
//! `00 cores u32 freq_khz u64 threads u32` (config), `01` (miss) or
//! `02 len u32 utf8` (per-key error). A whole-request failure is
//! `B1 03 | corr u64 | len u32 | utf8` (error) or `B1 04 | corr u64`
//! (deadline exceeded).

use eco_sim_node::cpu::CpuConfig;

use super::{KeyOutcome, Response, MAX_BATCH_KEYS};

/// First byte of every fast-path frame. JSON never produces it.
pub const MAGIC: u8 = 0xB1;

const VERB_REQUEST: u8 = 0x01;
const VERB_MANY: u8 = 0x02;
const VERB_ERROR: u8 = 0x03;
const VERB_DEADLINE: u8 = 0x04;

/// Whether `payload` is a fast-path frame (as opposed to JSON).
pub fn is_binary(payload: &[u8]) -> bool {
    payload.first() == Some(&MAGIC)
}

/// A decoded fast-path request: a correlated `PredictMany`.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// Correlation id echoed in the reply (fast-path exchanges are
    /// always correlated — the ring pipelines).
    pub corr: u64,
    /// Optional deadline budget, as on [`super::RequestFrame`].
    pub deadline_ms: Option<u64>,
    /// The prediction keys, at most [`MAX_BATCH_KEYS`].
    pub keys: Vec<(u64, u64)>,
}

fn err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> std::io::Result<u8> {
        let (&b, rest) = self.0.split_first().ok_or_else(|| err("fast-path frame truncated"))?;
        self.0 = rest;
        Ok(b)
    }

    fn u32(&mut self) -> std::io::Result<u32> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn u64(&mut self) -> std::io::Result<u64> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn take(&mut self, n: usize) -> std::io::Result<&'a [u8]> {
        if self.0.len() < n {
            return Err(err("fast-path frame truncated"));
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head)
    }

    fn done(&self) -> std::io::Result<()> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(err(format!("{} trailing bytes after fast-path frame", self.0.len())))
        }
    }
}

/// Encodes a `PredictMany` request.
pub fn encode_request(corr: u64, deadline_ms: Option<u64>, keys: &[(u64, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + 8 + 1 + 8 + 4 + keys.len() * 16);
    out.push(MAGIC);
    out.push(VERB_REQUEST);
    out.extend_from_slice(&corr.to_le_bytes());
    out.push(deadline_ms.is_some() as u8);
    out.extend_from_slice(&deadline_ms.unwrap_or(0).to_le_bytes());
    out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
    for &(system, binary) in keys {
        out.extend_from_slice(&system.to_le_bytes());
        out.extend_from_slice(&binary.to_le_bytes());
    }
    out
}

/// Decodes a request frame. Rejects anything that is not a well-formed
/// fast-path request within [`MAX_BATCH_KEYS`].
pub fn decode_request(payload: &[u8]) -> std::io::Result<BatchRequest> {
    let mut c = Cursor(payload);
    if c.u8()? != MAGIC || c.u8()? != VERB_REQUEST {
        return Err(err("not a fast-path request"));
    }
    let corr = c.u64()?;
    let flags = c.u8()?;
    let raw_deadline = c.u64()?;
    let deadline_ms = (flags & 1 != 0).then_some(raw_deadline);
    let n = c.u32()? as usize;
    if n > MAX_BATCH_KEYS {
        return Err(err(format!("fast-path batch of {n} keys exceeds the {MAX_BATCH_KEYS} cap")));
    }
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        keys.push((c.u64()?, c.u64()?));
    }
    c.done()?;
    Ok(BatchRequest { corr, deadline_ms, keys })
}

/// Encodes the daemon's reply to a fast-path request. `ManyConfigs`,
/// `Error` and `DeadlineExceeded` are the only responses the daemon
/// produces for a `PredictMany`.
pub fn encode_reply(corr: u64, response: &Response) -> Vec<u8> {
    match response {
        Response::ManyConfigs { results } => {
            let mut out = Vec::with_capacity(2 + 8 + 4 + results.len() * 17);
            out.push(MAGIC);
            out.push(VERB_MANY);
            out.extend_from_slice(&corr.to_le_bytes());
            out.extend_from_slice(&(results.len() as u32).to_le_bytes());
            for outcome in results {
                match outcome {
                    KeyOutcome::Config(c) => {
                        out.push(0);
                        out.extend_from_slice(&c.cores.to_le_bytes());
                        out.extend_from_slice(&c.frequency_khz.to_le_bytes());
                        out.extend_from_slice(&c.threads_per_core.to_le_bytes());
                    }
                    KeyOutcome::Miss => out.push(1),
                    KeyOutcome::Error { message } => {
                        out.push(2);
                        out.extend_from_slice(&(message.len() as u32).to_le_bytes());
                        out.extend_from_slice(message.as_bytes());
                    }
                }
            }
            out
        }
        Response::DeadlineExceeded => {
            let mut out = Vec::with_capacity(10);
            out.push(MAGIC);
            out.push(VERB_DEADLINE);
            out.extend_from_slice(&corr.to_le_bytes());
            out
        }
        other => {
            let message = match other {
                Response::Error { message } => message.clone(),
                unexpected => format!("unexpected fast-path response {unexpected:?}"),
            };
            let mut out = Vec::with_capacity(2 + 8 + 4 + message.len());
            out.push(MAGIC);
            out.push(VERB_ERROR);
            out.extend_from_slice(&corr.to_le_bytes());
            out.extend_from_slice(&(message.len() as u32).to_le_bytes());
            out.extend_from_slice(message.as_bytes());
            out
        }
    }
}

/// Decodes a reply frame into `(corr, response)` — the same shape the
/// JSON [`super::ResponseFrame`] envelope decodes to, so the client's
/// pipelining logic is codec-agnostic.
pub fn decode_reply(payload: &[u8]) -> std::io::Result<(u64, Response)> {
    let mut c = Cursor(payload);
    if c.u8()? != MAGIC {
        return Err(err("not a fast-path reply"));
    }
    let verb = c.u8()?;
    let corr = c.u64()?;
    let response = match verb {
        VERB_MANY => {
            let n = c.u32()? as usize;
            if n > MAX_BATCH_KEYS {
                return Err(err(format!("fast-path reply of {n} outcomes exceeds the {MAX_BATCH_KEYS} cap")));
            }
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                results.push(match c.u8()? {
                    0 => {
                        let cores = c.u32()?;
                        let frequency_khz = c.u64()?;
                        let threads = c.u32()?;
                        KeyOutcome::Config(CpuConfig::new(cores, frequency_khz, threads))
                    }
                    1 => KeyOutcome::Miss,
                    2 => {
                        let len = c.u32()? as usize;
                        let raw = c.take(len)?;
                        let message = std::str::from_utf8(raw).map_err(|_| err("fast-path error not utf-8"))?;
                        KeyOutcome::Error { message: message.to_string() }
                    }
                    tag => return Err(err(format!("unknown fast-path outcome tag {tag}"))),
                });
            }
            Response::ManyConfigs { results }
        }
        VERB_ERROR => {
            let len = c.u32()? as usize;
            let raw = c.take(len)?;
            let message = std::str::from_utf8(raw).map_err(|_| err("fast-path error not utf-8"))?;
            Response::Error { message: message.to_string() }
        }
        VERB_DEADLINE => Response::DeadlineExceeded,
        tag => return Err(err(format!("unknown fast-path reply verb {tag}"))),
    };
    c.done()?;
    Ok((corr, response))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<(u64, u64)> {
        (0..n as u64).map(|i| (i * 7 + 1, i * 13 + 2)).collect()
    }

    #[test]
    fn request_round_trips() {
        for deadline in [None, Some(0), Some(250)] {
            let req = BatchRequest { corr: 42, deadline_ms: deadline, keys: keys(5) };
            let wire = encode_request(req.corr, req.deadline_ms, &req.keys);
            assert!(is_binary(&wire));
            assert_eq!(decode_request(&wire).unwrap(), req);
        }
    }

    #[test]
    fn reply_round_trips_every_outcome() {
        let response = Response::ManyConfigs {
            results: vec![
                KeyOutcome::Config(CpuConfig::new(16, 2_600_000, 2)),
                KeyOutcome::Miss,
                KeyOutcome::Error { message: "backend exploded".into() },
            ],
        };
        let wire = encode_reply(7, &response);
        assert!(is_binary(&wire));
        assert_eq!(decode_reply(&wire).unwrap(), (7, response));

        let wire = encode_reply(8, &Response::DeadlineExceeded);
        assert_eq!(decode_reply(&wire).unwrap(), (8, Response::DeadlineExceeded));

        let wire = encode_reply(9, &Response::Error { message: "malformed".into() });
        assert_eq!(decode_reply(&wire).unwrap(), (9, Response::Error { message: "malformed".into() }));
    }

    #[test]
    fn json_is_never_mistaken_for_binary() {
        assert!(!is_binary(b"{\"Ping\":null}"));
        assert!(!is_binary(b"\"Pong\""));
        assert!(!is_binary(b""));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let wire = encode_request(1, Some(5), &keys(3));
        for cut in 1..wire.len() {
            assert!(decode_request(&wire[..cut]).is_err(), "cut at {cut} accepted");
        }
        let mut padded = wire.clone();
        padded.push(0);
        assert!(decode_request(&padded).is_err());
        assert!(decode_request(b"").is_err());
    }

    #[test]
    fn oversized_batches_are_rejected() {
        let wire = encode_request(1, None, &keys(MAX_BATCH_KEYS + 1));
        assert!(decode_request(&wire).is_err());
    }
}
