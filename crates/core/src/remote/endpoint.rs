//! Scheme-addressed daemon endpoints.
//!
//! Everywhere the code used to take a bare `host:port` string — the
//! client builder, `chronus serve`, `slurm-config --remote`, fleet
//! comma-lists — it now takes an [`Endpoint`]: `tcp://host:port` for
//! the network path, `shm://path` for the shared-memory local fast
//! path. A bare `host:port` keeps parsing as TCP so every existing
//! config line and flag value survives unchanged.

use std::time::Duration;

use super::shm::ShmTransport;
use super::{TcpTransport, Transport};

/// One way to reach a chronusd daemon, parsed from a scheme-addressed
/// string. [`Endpoint`] round-trips through [`std::fmt::Display`] and
/// [`std::str::FromStr`]: `parse(display(e)) == e` for every valid
/// endpoint (property-tested in `endpoint_proptest`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The network path: a `host:port` address.
    Tcp(String),
    /// The shared-memory local fast path: a filesystem path to the
    /// daemon's ring file (see [`super::shm`]).
    Shm(String),
}

/// Why an endpoint string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndpointParseError {
    /// The string was empty (or only a scheme).
    Empty,
    /// A `scheme://` prefix the protocol does not know.
    UnknownScheme(String),
    /// A TCP endpoint without a `host:port` shape.
    BadAddr(String),
}

impl std::fmt::Display for EndpointParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EndpointParseError::Empty => write!(f, "empty endpoint"),
            EndpointParseError::UnknownScheme(s) => {
                write!(f, "unknown endpoint scheme {s:?} (expected tcp:// or shm://)")
            }
            EndpointParseError::BadAddr(a) => {
                write!(f, "tcp endpoint {a:?} is not host:port")
            }
        }
    }
}

impl std::error::Error for EndpointParseError {}

impl Endpoint {
    /// Parses `tcp://host:port`, `shm://path`, or bare `host:port`
    /// (which stays TCP for compatibility with pre-scheme configs).
    pub fn parse(s: &str) -> Result<Endpoint, EndpointParseError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(EndpointParseError::Empty);
        }
        if let Some(path) = s.strip_prefix("shm://") {
            if path.is_empty() {
                return Err(EndpointParseError::Empty);
            }
            return Ok(Endpoint::Shm(path.to_string()));
        }
        let addr = if let Some(rest) = s.strip_prefix("tcp://") {
            rest
        } else if let Some((scheme, _)) = s.split_once("://") {
            return Err(EndpointParseError::UnknownScheme(scheme.to_string()));
        } else {
            s
        };
        // host:port — the port must be the last colon-separated piece
        // and a valid u16, the host non-empty.
        match addr.rsplit_once(':') {
            Some((host, port)) if !host.is_empty() && port.parse::<u16>().is_ok() => {
                Ok(Endpoint::Tcp(addr.to_string()))
            }
            _ => Err(EndpointParseError::BadAddr(addr.to_string())),
        }
    }

    /// Whether this endpoint reaches a co-located daemon over a local
    /// fast path (see [`Transport::is_local`]).
    pub fn is_local(&self) -> bool {
        matches!(self, Endpoint::Shm(_))
    }

    /// Builds the transport that dials this endpoint. The I/O timeout
    /// bounds both stream reads/writes (TCP) and ring waits (shm).
    pub fn transport(&self, connect_timeout: Duration, io_timeout: Duration) -> Box<dyn Transport> {
        match self {
            Endpoint::Tcp(addr) => Box::new(TcpTransport::new(addr.clone(), connect_timeout, io_timeout)),
            Endpoint::Shm(path) => Box::new(ShmTransport::new(path.clone(), connect_timeout, io_timeout)),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Shm(path) => write!(f, "shm://{path}"),
        }
    }
}

impl std::str::FromStr for Endpoint {
    type Err = EndpointParseError;

    fn from_str(s: &str) -> Result<Endpoint, EndpointParseError> {
        Endpoint::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_host_port_stays_tcp() {
        assert_eq!(Endpoint::parse("head:4117"), Ok(Endpoint::Tcp("head:4117".into())));
        assert_eq!(Endpoint::parse("10.0.0.1:1"), Ok(Endpoint::Tcp("10.0.0.1:1".into())));
    }

    #[test]
    fn schemes_parse_and_display_round_trip() {
        for raw in ["tcp://head:4117", "shm:///run/chronus.shm"] {
            let ep: Endpoint = raw.parse().unwrap();
            assert_eq!(ep.to_string(), raw);
            assert_eq!(raw.parse::<Endpoint>().unwrap(), ep);
        }
    }

    #[test]
    fn bad_endpoints_are_rejected() {
        assert_eq!(Endpoint::parse(""), Err(EndpointParseError::Empty));
        assert_eq!(Endpoint::parse("shm://"), Err(EndpointParseError::Empty));
        assert_eq!(Endpoint::parse("udp://x:1"), Err(EndpointParseError::UnknownScheme("udp".into())));
        assert_eq!(Endpoint::parse("justahost"), Err(EndpointParseError::BadAddr("justahost".into())));
        assert_eq!(Endpoint::parse("tcp://host:notaport"), Err(EndpointParseError::BadAddr("host:notaport".into())));
        assert_eq!(Endpoint::parse(":4117"), Err(EndpointParseError::BadAddr(":4117".into())));
    }

    #[test]
    fn ipv6_with_port_parses() {
        assert_eq!(Endpoint::parse("[::1]:4117"), Ok(Endpoint::Tcp("[::1]:4117".into())));
    }

    #[test]
    fn only_shm_is_local() {
        assert!(Endpoint::Shm("/tmp/x".into()).is_local());
        assert!(!Endpoint::Tcp("a:1".into()).is_local());
    }
}
