//! Consistent-hash ring over fleet replicas.
//!
//! The ring maps a prediction key — derived from `(system_hash,
//! binary_hash)` — to a replica index, so every client in the fleet
//! routes the same key to the same daemon and each daemon's registry
//! stays hot for its share of the keyspace. Each member contributes
//! `vnodes` points whose positions depend only on `(member, vnode)`,
//! never on who else is present, which gives the classic consistent
//! hashing guarantee: adding or removing one member only moves the keys
//! that land on (or leave) that member's points.

/// A 64-bit finalizer (splitmix64) used for ring points and keys. Good
/// avalanche, no allocation, stable across platforms and rebuilds.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The routing key for a prediction request. Both hashes are already
/// high-entropy FNV-style digests; one extra mix round decorrelates them
/// from the ring-point hashes.
pub fn predict_key(system_hash: u64, binary_hash: u64) -> u64 {
    mix64(system_hash ^ binary_hash.rotate_left(32))
}

/// A consistent-hash ring over member indices. Members are dense `u32`
/// indices into the caller's replica table; the ring itself holds no
/// endpoint state, so rebuilding it on health changes is cheap and
/// allocation is bounded by `members × vnodes` points.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted (point hash, member) pairs.
    points: Vec<(u64, u32)>,
    vnodes: u32,
}

impl HashRing {
    /// An empty ring whose members will each contribute `vnodes` points.
    pub fn new(vnodes: u32) -> HashRing {
        HashRing { points: Vec::new(), vnodes: vnodes.max(1) }
    }

    /// Points per member.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Number of members currently on the ring.
    pub fn members(&self) -> usize {
        if self.vnodes == 0 {
            0
        } else {
            self.points.len() / self.vnodes as usize
        }
    }

    /// True when no member is on the ring.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Rebuilds the ring from the given member indices. Point positions
    /// depend only on `(member, vnode)`, so a member's points are
    /// identical across rebuilds — the minimal-movement property.
    pub fn rebuild(&mut self, members: impl IntoIterator<Item = u32>) {
        self.points.clear();
        for m in members {
            for v in 0..self.vnodes {
                let point = mix64((u64::from(m) << 32) | u64::from(v));
                self.points.push((point, m));
            }
        }
        self.points.sort_unstable();
    }

    /// The member owning `key`: the first point clockwise from the key's
    /// position. `None` on an empty ring.
    pub fn primary(&self, key: u64) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let i = self.points.partition_point(|&(p, _)| p < key);
        let (_, member) = self.points[i % self.points.len()];
        Some(member)
    }

    /// All distinct members in clockwise preference order starting at
    /// `key` — the failover order for that key.
    pub fn ordered(&self, key: u64) -> Vec<u32> {
        let n = self.members();
        let mut out = Vec::with_capacity(n);
        if self.points.is_empty() {
            return out;
        }
        let start = self.points.partition_point(|&(p, _)| p < key);
        for off in 0..self.points.len() {
            let (_, member) = self.points[(start + off) % self.points.len()];
            if !out.contains(&member) {
                out.push(member);
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_member_owns_everything() {
        let mut ring = HashRing::new(64);
        ring.rebuild([3u32]);
        for k in 0..100u64 {
            assert_eq!(ring.primary(predict_key(k, k * 7)), Some(3));
        }
        assert_eq!(ring.ordered(42), vec![3]);
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(64);
        assert_eq!(ring.primary(1), None);
        assert!(ring.ordered(1).is_empty());
        assert!(ring.is_empty());
    }

    #[test]
    fn ordered_starts_at_primary_and_covers_all_members() {
        let mut ring = HashRing::new(64);
        ring.rebuild(0..5u32);
        for k in 0..200u64 {
            let key = predict_key(k, !k);
            let order = ring.ordered(key);
            assert_eq!(order.len(), 5);
            assert_eq!(order[0], ring.primary(key).unwrap());
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "ordered() must list distinct members");
        }
    }

    #[test]
    fn rebuild_is_deterministic() {
        let mut a = HashRing::new(32);
        let mut b = HashRing::new(32);
        a.rebuild([0u32, 1, 2]);
        b.rebuild([2u32, 0, 1]);
        for k in 0..64u64 {
            assert_eq!(a.primary(k), b.primary(k), "member insertion order must not matter");
        }
    }
}
