//! The shared-memory local transport: a lock-free SPSC ring-buffer
//! pair over a memory-mapped file, for clients co-located with the
//! daemon (the eco plugin on the head node).
//!
//! ## File layout
//!
//! One 4 KiB header page, then two slot arrays: the client→daemon ring
//! (`c2s`) and the daemon→client ring (`s2c`). Each ring has
//! [`SLOTS`] slots of a 64-byte slot header plus [`SLOT_PAYLOAD`]
//! payload bytes — sized so a maximum `PredictMany` frame fits with
//! room to spare. A frame that exceeds a slot is refused client-side
//! with `InvalidData`, which the failover loop treats like any other
//! I/O failure and routes over TCP.
//!
//! ## Ring protocol
//!
//! Single producer, single consumer, Vyukov-style per-slot sequence
//! numbers: slot `i` starts at `seq = i`; the writer at absolute
//! position `p` waits for `seq == p`, fills the payload, publishes
//! `len`/`check`, then `Release`-stores `seq = p + 1`; the reader at
//! `p` requires exactly `seq == p + 1` (`Acquire`), validates the
//! header with [`validate_slot`], copies the payload out and
//! `Release`-stores `seq = p + SLOTS` to free the slot for the next
//! lap. `SLOTS` (64) equals the client's maximum pipeline depth, so a
//! full ring means a stuck peer, never a live protocol state.
//!
//! The reader's wait is spin-then-park: a bounded `spin_loop` burst
//! for the warm path (a co-located daemon answers in microseconds),
//! then a futex wait on the ring's doorbell word in short ticks,
//! re-checking peer liveness and the I/O deadline between ticks. The
//! writer bumps the doorbell after every publish and issues a
//! `FUTEX_WAKE` only when the waiter count says someone is parked.
//!
//! ## Sessions and liveness
//!
//! The header stamps the daemon's pid and a boot epoch, and carries a
//! one-seat session word: a client claims the seat by CAS-ing
//! `IDLE → CLAIM`, writes its pid, and publishes `ACTIVE`; dropping
//! the connection publishes `DONE`. Ring resets are solely the
//! daemon's job — it re-arms the slot sequences and counters and only
//! then stores `IDLE`, so a new session never reads a predecessor's
//! slots. The daemon detects a dead client with `kill(pid, 0)`; the
//! client detects a dead daemon the same way (plus the epoch stamp)
//! and surfaces `ConnectionReset`, which sends the PR-5 failover loop
//! to the next endpoint — TCP, if the operator configured the
//! recommended `shm://…,tcp://…` pair. A restarting daemon recreates
//! the file via temp+rename, so stale client mappings keep pointing at
//! the orphaned inode and fail fast instead of corrupting the new one.

mod sys;

use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use super::{Connection, Transport, MAX_FRAME_LEN};

/// Slots per ring. Equal to the client builder's maximum
/// `pipeline_depth` (64): with at most `SLOTS` requests in flight, a
/// producer can only find the ring full when the consumer has stopped
/// consuming — which the liveness ticks then detect — never as a
/// transient state of a healthy session. (Smaller rings genuinely
/// deadlock: at depth 16 over 8 slots, the client blocks publishing
/// request #9 while the daemon blocks publishing replies the client
/// is not yet reading.)
pub const SLOTS: u64 = 64;

/// Payload capacity of one slot (256 KiB): a worst-case 1024-key
/// `PredictMany` JSON reply measures ~70 KiB, so even pathological
/// frames fit; anything larger is refused and falls back to TCP.
pub const SLOT_PAYLOAD: u32 = 256 * 1024;

const MAGIC: u64 = 0x4348_524F_4E53_484D; // "CHRONSHM"
const VERSION: u32 = 1;

const HEADER_LEN: usize = 4096;
const SLOT_HDR_LEN: usize = 64;

// Header field offsets.
const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 8;
const OFF_SLOTS: usize = 12;
const OFF_SLOT_PAYLOAD: usize = 16;
const OFF_STATE: usize = 20;
const OFF_EPOCH: usize = 24;
const OFF_DAEMON_PID: usize = 32;
const OFF_CLIENT_PID: usize = 36;
// Per-ring control blocks (c2s, then s2c), cache-line separated.
const OFF_C2S_CTL: usize = 64;
const OFF_S2C_CTL: usize = 128;
const CTL_PRODUCED: usize = 0;
const CTL_CONSUMED: usize = 8;
const CTL_DOORBELL: usize = 16;
const CTL_WAITERS: usize = 20;

// Session seat states.
const IDLE: u32 = 0;
const CLAIM: u32 = 1;
const ACTIVE: u32 = 2;
const DONE: u32 = 3;

/// Spin budget before parking on the doorbell futex. Sized so a
/// co-located daemon's typical turnaround lands inside the burst.
const SPIN: u32 = 5000;

/// Futex park tick: between ticks the waiter re-checks peer liveness,
/// session state and its I/O deadline.
const PARK_TICK: Duration = Duration::from_millis(5);

// ---------------------------------------------------------------------------
// Slot-header codec (pure — the proptest surface)
// ---------------------------------------------------------------------------

/// The integrity word stored beside a slot's payload length. Mixing
/// the publishing sequence number in means a stale header from an
/// earlier lap — or any torn combination of old and new words — fails
/// validation instead of yielding a phantom frame.
pub fn slot_check(seq: u64, len: u32) -> u32 {
    (seq as u32) ^ ((seq >> 32) as u32) ^ len.rotate_left(16) ^ 0x9E37_79B9
}

/// Validates a slot header as the reader at `expect_seq - 1` sees it:
/// the sequence must match exactly, the length must fit the slot, and
/// the check word must agree. Returns the payload length, or `None`
/// for anything torn, stale, or corrupt.
pub fn validate_slot(expect_seq: u64, seq: u64, len: u32, check: u32, max_len: u32) -> Option<u32> {
    (seq == expect_seq && len <= max_len && check == slot_check(seq, len)).then_some(len)
}

/// Encodes the 16 meaningful bytes of a slot header as they live in
/// the file: `seq u64 | len u32 | check u32`, little-endian.
pub fn encode_slot_header(seq: u64, len: u32) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&seq.to_le_bytes());
    out[8..12].copy_from_slice(&len.to_le_bytes());
    out[12..].copy_from_slice(&slot_check(seq, len).to_le_bytes());
    out
}

/// Decodes and validates a raw slot header (see [`validate_slot`]).
pub fn decode_slot_header(raw: &[u8; 16], expect_seq: u64, max_len: u32) -> Option<u32> {
    let seq = u64::from_le_bytes(raw[..8].try_into().unwrap());
    let len = u32::from_le_bytes(raw[8..12].try_into().unwrap());
    let check = u32::from_le_bytes(raw[12..].try_into().unwrap());
    validate_slot(expect_seq, seq, len, check, max_len)
}

// ---------------------------------------------------------------------------
// Mapping
// ---------------------------------------------------------------------------

fn io_err(kind: std::io::ErrorKind, msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(kind, msg.into())
}

/// Geometry read from (or written to) the header, kept dynamic so a
/// client can speak to a daemon built with different ring constants.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    slots: u64,
    slot_payload: u32,
}

impl Geometry {
    fn stride(&self) -> usize {
        SLOT_HDR_LEN + self.slot_payload as usize
    }

    fn ring_len(&self) -> usize {
        self.slots as usize * self.stride()
    }

    fn total_len(&self) -> usize {
        HEADER_LEN + 2 * self.ring_len()
    }

    fn validate(&self) -> std::io::Result<()> {
        if self.slots == 0
            || self.slots > 4096
            || self.slot_payload == 0
            || self.slot_payload as usize > MAX_FRAME_LEN
        {
            return Err(io_err(std::io::ErrorKind::InvalidData, "shm header advertises absurd ring geometry"));
        }
        Ok(())
    }
}

/// An mmap-ed ring file. All access goes through atomics or
/// `copy_nonoverlapping` on offsets this module computes, so the raw
/// pointer is never handed out.
struct ShmMap {
    ptr: *mut u8,
    len: usize,
    _file: File,
}

// The mapping is plain shared memory addressed through atomics; the
// struct itself is just a pointer + length.
unsafe impl Send for ShmMap {}
unsafe impl Sync for ShmMap {}

impl Drop for ShmMap {
    fn drop(&mut self) {
        unsafe { sys::unmap(self.ptr, self.len) };
    }
}

impl ShmMap {
    fn map(file: File, len: usize) -> std::io::Result<ShmMap> {
        use std::os::unix::io::AsRawFd;
        let ptr = sys::map_shared(file.as_raw_fd(), len)?;
        Ok(ShmMap { ptr, len, _file: file })
    }

    fn atomic_u32(&self, off: usize) -> &AtomicU32 {
        debug_assert!(off + 4 <= self.len && off.is_multiple_of(4));
        unsafe { &*(self.ptr.add(off) as *const AtomicU32) }
    }

    fn atomic_u64(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off + 8 <= self.len && off.is_multiple_of(8));
        unsafe { &*(self.ptr.add(off) as *const AtomicU64) }
    }

    fn write_bytes(&self, off: usize, src: &[u8]) {
        debug_assert!(off + src.len() <= self.len);
        unsafe { std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(off), src.len()) };
    }

    fn read_bytes(&self, off: usize, dst: &mut [u8]) {
        debug_assert!(off + dst.len() <= self.len);
        unsafe { std::ptr::copy_nonoverlapping(self.ptr.add(off), dst.as_mut_ptr(), dst.len()) };
    }

    fn geometry(&self) -> Geometry {
        Geometry {
            slots: self.atomic_u32(OFF_SLOTS).load(Ordering::Relaxed) as u64,
            slot_payload: self.atomic_u32(OFF_SLOT_PAYLOAD).load(Ordering::Relaxed),
        }
    }

    fn daemon_pid(&self) -> u32 {
        self.atomic_u32(OFF_DAEMON_PID).load(Ordering::Relaxed)
    }

    fn epoch(&self) -> u64 {
        self.atomic_u64(OFF_EPOCH).load(Ordering::Relaxed)
    }

    fn state(&self) -> &AtomicU32 {
        self.atomic_u32(OFF_STATE)
    }
}

// ---------------------------------------------------------------------------
// Ring endpoints
// ---------------------------------------------------------------------------

/// One directional ring as seen from this process: offsets into the
/// map plus the geometry needed to locate slots.
#[derive(Clone, Copy)]
struct Ring {
    base: usize,
    ctl: usize,
    geo: Geometry,
}

impl Ring {
    fn c2s(geo: Geometry) -> Ring {
        Ring { base: HEADER_LEN, ctl: OFF_C2S_CTL, geo }
    }

    fn s2c(geo: Geometry) -> Ring {
        Ring { base: HEADER_LEN + geo.ring_len(), ctl: OFF_S2C_CTL, geo }
    }

    fn slot_off(&self, pos: u64) -> usize {
        self.base + (pos % self.geo.slots) as usize * self.geo.stride()
    }

    fn reset(&self, map: &ShmMap) {
        for i in 0..self.geo.slots {
            map.atomic_u64(self.slot_off(i)).store(i, Ordering::Relaxed);
        }
        map.atomic_u64(self.ctl + CTL_PRODUCED).store(0, Ordering::Relaxed);
        map.atomic_u64(self.ctl + CTL_CONSUMED).store(0, Ordering::Relaxed);
        map.atomic_u32(self.ctl + CTL_WAITERS).store(0, Ordering::Relaxed);
    }

    /// Publishes `payload` at absolute position `pos`. `tick` is
    /// called between waits while the target slot is still occupied
    /// (only possible with a stuck peer — see [`SLOTS`]); it returns
    /// an error to abort the send.
    fn send(
        &self,
        map: &ShmMap,
        pos: u64,
        payload: &[u8],
        tick: &mut dyn FnMut() -> std::io::Result<()>,
    ) -> std::io::Result<()> {
        if payload.len() > self.geo.slot_payload as usize {
            return Err(io_err(
                std::io::ErrorKind::InvalidData,
                format!("frame of {} bytes exceeds the {} byte shm slot", payload.len(), self.geo.slot_payload),
            ));
        }
        let slot = self.slot_off(pos);
        let seq = map.atomic_u64(slot);
        let mut spun = 0u32;
        while seq.load(Ordering::Acquire) != pos {
            if spun < SPIN {
                spun += 1;
                std::hint::spin_loop();
            } else {
                tick()?;
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        map.write_bytes(slot + SLOT_HDR_LEN, payload);
        let publish = pos + 1;
        let len = payload.len() as u32;
        map.atomic_u32(slot + 8).store(len, Ordering::Relaxed);
        map.atomic_u32(slot + 12).store(slot_check(publish, len), Ordering::Relaxed);
        seq.store(publish, Ordering::Release);
        map.atomic_u64(self.ctl + CTL_PRODUCED).store(publish, Ordering::SeqCst);
        let doorbell = map.atomic_u32(self.ctl + CTL_DOORBELL);
        doorbell.fetch_add(1, Ordering::SeqCst);
        if map.atomic_u32(self.ctl + CTL_WAITERS).load(Ordering::SeqCst) > 0 {
            sys::futex_wake(doorbell, u32::MAX);
        }
        Ok(())
    }

    /// Receives the frame at absolute position `pos`, spin-then-park
    /// waiting for the producer. `tick` runs between parks; its error
    /// aborts the wait (deadline, dead peer, closed session).
    fn recv(
        &self,
        map: &ShmMap,
        pos: u64,
        tick: &mut dyn FnMut() -> std::io::Result<()>,
    ) -> std::io::Result<Vec<u8>> {
        let produced = map.atomic_u64(self.ctl + CTL_PRODUCED);
        let doorbell = map.atomic_u32(self.ctl + CTL_DOORBELL);
        let waiters = map.atomic_u32(self.ctl + CTL_WAITERS);
        let mut spun = 0u32;
        while produced.load(Ordering::Acquire) <= pos {
            if spun < SPIN {
                spun += 1;
                std::hint::spin_loop();
                continue;
            }
            waiters.fetch_add(1, Ordering::SeqCst);
            let snap = doorbell.load(Ordering::SeqCst);
            if produced.load(Ordering::SeqCst) <= pos {
                sys::futex_wait(doorbell, snap, PARK_TICK);
            }
            waiters.fetch_sub(1, Ordering::SeqCst);
            tick()?;
        }
        let slot = self.slot_off(pos);
        let seq = map.atomic_u64(slot).load(Ordering::Acquire);
        let len = map.atomic_u32(slot + 8).load(Ordering::Relaxed);
        let check = map.atomic_u32(slot + 12).load(Ordering::Relaxed);
        let len = validate_slot(pos + 1, seq, len, check, self.geo.slot_payload)
            .ok_or_else(|| io_err(std::io::ErrorKind::ConnectionReset, "torn shm slot"))?;
        let mut out = vec![0u8; len as usize];
        map.read_bytes(slot + SLOT_HDR_LEN, &mut out);
        map.atomic_u64(slot).store(pos + self.geo.slots, Ordering::Release);
        map.atomic_u64(self.ctl + CTL_CONSUMED).store(pos + 1, Ordering::Release);
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// The client half of the shared-memory transport: dials the daemon's
/// ring file. Plugs into [`super::PredictClient`] like any transport;
/// [`Transport::is_local`] makes the client prefer it over ring
/// routing while healthy.
#[derive(Debug, Clone)]
pub struct ShmTransport {
    path: String,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl ShmTransport {
    /// A transport dialing the ring file at `path`. `connect_timeout`
    /// bounds how long to wait for the session seat; `io_timeout`
    /// bounds each frame wait, like a TCP read timeout.
    pub fn new(path: impl Into<String>, connect_timeout: Duration, io_timeout: Duration) -> ShmTransport {
        ShmTransport { path: path.into(), connect_timeout, io_timeout }
    }
}

impl Transport for ShmTransport {
    fn connect(&mut self) -> std::io::Result<Box<dyn Connection>> {
        Ok(Box::new(ShmConnection::dial(&self.path, self.connect_timeout, self.io_timeout)?))
    }

    fn describe(&self) -> String {
        format!("shm://{}", self.path)
    }

    fn is_local(&self) -> bool {
        true
    }
}

/// One claimed session over the ring file.
pub struct ShmConnection {
    map: ShmMap,
    c2s: Ring,
    s2c: Ring,
    send_pos: u64,
    recv_pos: u64,
    daemon_pid: u32,
    epoch: u64,
    io_timeout: Duration,
}

impl ShmConnection {
    fn dial(path: &str, connect_timeout: Duration, io_timeout: Duration) -> std::io::Result<ShmConnection> {
        let start = Instant::now();
        loop {
            let file = OpenOptions::new().read(true).write(true).open(path)?;
            let map = ShmMap::map(file, HEADER_LEN)?;
            if map.atomic_u64(OFF_MAGIC).load(Ordering::Relaxed) != MAGIC
                || map.atomic_u32(OFF_VERSION).load(Ordering::Relaxed) != VERSION
            {
                return Err(io_err(std::io::ErrorKind::InvalidData, "not a chronusd shm ring file"));
            }
            let geo = map.geometry();
            geo.validate()?;
            let daemon_pid = map.daemon_pid();
            if !sys::process_alive(daemon_pid) {
                return Err(io_err(std::io::ErrorKind::ConnectionRefused, "shm daemon is dead"));
            }
            // Remap at full ring length now that the geometry is known.
            drop(map);
            let file = OpenOptions::new().read(true).write(true).open(path)?;
            if (file.metadata()?.len() as usize) < geo.total_len() {
                return Err(io_err(std::io::ErrorKind::InvalidData, "shm ring file shorter than its header claims"));
            }
            let map = ShmMap::map(file, geo.total_len())?;
            if map.state().compare_exchange(IDLE, CLAIM, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
                map.atomic_u32(OFF_CLIENT_PID).store(std::process::id(), Ordering::SeqCst);
                map.state().store(ACTIVE, Ordering::Release);
                // Ring the c2s doorbell so the daemon's acceptor wakes.
                let doorbell = map.atomic_u32(OFF_C2S_CTL + CTL_DOORBELL);
                doorbell.fetch_add(1, Ordering::SeqCst);
                sys::futex_wake(doorbell, u32::MAX);
                let epoch = map.epoch();
                return Ok(ShmConnection {
                    map,
                    c2s: Ring::c2s(geo),
                    s2c: Ring::s2c(geo),
                    send_pos: 0,
                    recv_pos: 0,
                    daemon_pid,
                    epoch,
                    io_timeout,
                });
            }
            drop(map);
            if start.elapsed() >= connect_timeout {
                return Err(io_err(std::io::ErrorKind::WouldBlock, "shm session seat is busy"));
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// The client's between-parks check: daemon still the one we
    /// dialed and alive, session still ours, deadline not blown.
    fn liveness_tick(&self, deadline: Instant) -> std::io::Result<()> {
        if self.map.daemon_pid() != self.daemon_pid
            || self.map.epoch() != self.epoch
            || !sys::process_alive(self.daemon_pid)
        {
            return Err(io_err(std::io::ErrorKind::ConnectionReset, "shm daemon died"));
        }
        if self.map.state().load(Ordering::Acquire) != ACTIVE {
            return Err(io_err(std::io::ErrorKind::ConnectionReset, "shm session was reset by the daemon"));
        }
        if Instant::now() >= deadline {
            return Err(io_err(std::io::ErrorKind::TimedOut, "shm exchange timed out"));
        }
        Ok(())
    }
}

impl Connection for ShmConnection {
    fn send_frame(&mut self, payload: &[u8]) -> std::io::Result<()> {
        let deadline = Instant::now() + self.io_timeout;
        let (map, pos) = (&self.map, self.send_pos);
        let conn = &*self;
        self.c2s.send(map, pos, payload, &mut || conn.liveness_tick(deadline))?;
        self.send_pos += 1;
        Ok(())
    }

    fn recv_frame(&mut self) -> std::io::Result<Vec<u8>> {
        let deadline = Instant::now() + self.io_timeout;
        let conn = &*self;
        let out = self.s2c.recv(&self.map, self.recv_pos, &mut || conn.liveness_tick(deadline))?;
        self.recv_pos += 1;
        Ok(out)
    }

    fn fast_batch(&self) -> bool {
        true
    }
}

impl Drop for ShmConnection {
    fn drop(&mut self) {
        // Hand the seat back only if it is still ours — the daemon may
        // already have reseated another client after declaring us dead.
        if self.map.atomic_u32(OFF_CLIENT_PID).load(Ordering::SeqCst) == std::process::id()
            && self.map.state().compare_exchange(ACTIVE, DONE, Ordering::SeqCst, Ordering::SeqCst).is_ok()
        {
            let doorbell = self.map.atomic_u32(OFF_C2S_CTL + CTL_DOORBELL);
            doorbell.fetch_add(1, Ordering::SeqCst);
            sys::futex_wake(doorbell, u32::MAX);
        }
    }
}

// ---------------------------------------------------------------------------
// Daemon side
// ---------------------------------------------------------------------------

/// Why [`ShmListener::serve_session`] returned.
#[derive(Debug, PartialEq, Eq)]
pub enum SessionEnd {
    /// `should_stop` asked the daemon loop to wind down.
    Stopped,
    /// The client closed (or died); the seat was reset for the next one.
    ClientGone,
}

/// The daemon half: owns the ring file (created fresh via temp+rename
/// at boot so stale clients keep their orphaned mapping) and serves
/// one client session at a time.
pub struct ShmListener {
    map: ShmMap,
    path: PathBuf,
    c2s: Ring,
    s2c: Ring,
}

impl ShmListener {
    /// Creates the ring file at `path` and becomes its daemon.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<ShmListener> {
        let path = path.as_ref().to_path_buf();
        let geo = Geometry { slots: SLOTS, slot_payload: SLOT_PAYLOAD };
        let tmp = {
            let mut name = path.as_os_str().to_os_string();
            name.push(format!(".tmp.{}", std::process::id()));
            PathBuf::from(name)
        };
        let _ = std::fs::remove_file(&tmp);
        let file = OpenOptions::new().read(true).write(true).create_new(true).open(&tmp)?;
        file.set_len(geo.total_len() as u64)?;
        let map = ShmMap::map(file, geo.total_len())?;
        map.atomic_u32(OFF_VERSION).store(VERSION, Ordering::Relaxed);
        map.atomic_u32(OFF_SLOTS).store(geo.slots as u32, Ordering::Relaxed);
        map.atomic_u32(OFF_SLOT_PAYLOAD).store(geo.slot_payload, Ordering::Relaxed);
        let epoch = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
            ^ u64::from(std::process::id()).rotate_left(32);
        map.atomic_u64(OFF_EPOCH).store(epoch, Ordering::Relaxed);
        map.atomic_u32(OFF_DAEMON_PID).store(std::process::id(), Ordering::Relaxed);
        let (c2s, s2c) = (Ring::c2s(geo), Ring::s2c(geo));
        c2s.reset(&map);
        s2c.reset(&map);
        map.state().store(IDLE, Ordering::Relaxed);
        // Publish the magic last: a concurrent early client sees either
        // no file (pre-rename) or a fully initialized one.
        map.atomic_u64(OFF_MAGIC).store(MAGIC, Ordering::SeqCst);
        std::fs::rename(&tmp, &path)?;
        Ok(ShmListener { map, path, c2s, s2c })
    }

    /// Waits for a client to claim the seat, then answers its frames
    /// with `handle` until it leaves, dies, or `should_stop` says to
    /// wind down; the seat is reset before returning. Run this in a
    /// loop on a dedicated daemon thread.
    pub fn serve_session(
        &self,
        should_stop: &mut dyn FnMut() -> bool,
        handle: &mut dyn FnMut(&[u8]) -> Vec<u8>,
    ) -> std::io::Result<SessionEnd> {
        let doorbell = self.map.atomic_u32(OFF_C2S_CTL + CTL_DOORBELL);
        let waiters = self.map.atomic_u32(OFF_C2S_CTL + CTL_WAITERS);
        let mut claim_ticks = 0u32;
        loop {
            if should_stop() {
                return Ok(SessionEnd::Stopped);
            }
            match self.map.state().load(Ordering::Acquire) {
                ACTIVE => break,
                DONE => {
                    self.reset_seat();
                    claim_ticks = 0;
                }
                CLAIM => {
                    // A claimant that never went ACTIVE: give it ~1s,
                    // then reclaim the seat if its process is gone.
                    claim_ticks += 1;
                    let pid = self.map.atomic_u32(OFF_CLIENT_PID).load(Ordering::SeqCst);
                    if claim_ticks > 200 && !sys::process_alive(pid) {
                        self.reset_seat();
                        claim_ticks = 0;
                    }
                }
                _ => claim_ticks = 0,
            }
            waiters.fetch_add(1, Ordering::SeqCst);
            let snap = doorbell.load(Ordering::SeqCst);
            if self.map.state().load(Ordering::SeqCst) == IDLE || self.map.state().load(Ordering::SeqCst) == CLAIM {
                sys::futex_wait(doorbell, snap, PARK_TICK);
            }
            waiters.fetch_sub(1, Ordering::SeqCst);
        }

        let client_pid = self.map.atomic_u32(OFF_CLIENT_PID).load(Ordering::SeqCst);
        let mut recv_pos = 0u64;
        let mut send_pos = 0u64;
        let end = loop {
            let mut tick = || -> std::io::Result<()> {
                if should_stop() {
                    return Err(io_err(std::io::ErrorKind::Interrupted, "daemon shutting down"));
                }
                let state = self.map.state().load(Ordering::Acquire);
                if state == DONE || !sys::process_alive(client_pid) {
                    return Err(io_err(std::io::ErrorKind::UnexpectedEof, "shm client left"));
                }
                Ok(())
            };
            let payload = match self.c2s.recv(&self.map, recv_pos, &mut tick) {
                Ok(p) => p,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => break SessionEnd::Stopped,
                Err(_) => break SessionEnd::ClientGone,
            };
            recv_pos += 1;
            let reply = handle(&payload);
            let mut tick = || -> std::io::Result<()> {
                if should_stop() {
                    return Err(io_err(std::io::ErrorKind::Interrupted, "daemon shutting down"));
                }
                let state = self.map.state().load(Ordering::Acquire);
                if state == DONE || !sys::process_alive(client_pid) {
                    return Err(io_err(std::io::ErrorKind::UnexpectedEof, "shm client left"));
                }
                Ok(())
            };
            match self.s2c.send(&self.map, send_pos, &reply, &mut tick) {
                Ok(()) => send_pos += 1,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => break SessionEnd::Stopped,
                Err(_) => break SessionEnd::ClientGone,
            }
        };
        self.reset_seat();
        Ok(end)
    }

    /// Re-arms both rings and frees the seat. Solely the daemon's job:
    /// clients never touch sequence words or counters on exit, so a
    /// half-dead client cannot corrupt the next session.
    fn reset_seat(&self) {
        self.c2s.reset(&self.map);
        self.s2c.reset(&self.map);
        self.map.atomic_u32(OFF_CLIENT_PID).store(0, Ordering::SeqCst);
        self.map.state().store(IDLE, Ordering::Release);
    }

    /// The filesystem path clients dial.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ShmListener {
    fn drop(&mut self) {
        // Remove the file so dialing clients fail fast (NotFound) and
        // fall back to TCP instead of camping on a dead ring.
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn temp_ring(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("chronus-shm-test-{}-{tag}-{n}.ring", std::process::id()))
    }

    /// Skips ring tests on platforms without the syscall layer.
    fn listener_or_skip(path: &Path) -> Option<ShmListener> {
        match ShmListener::create(path) {
            Ok(l) => Some(l),
            Err(e) if e.kind() == std::io::ErrorKind::Unsupported => None,
            Err(e) => panic!("shm listener failed: {e}"),
        }
    }

    fn echo_daemon(listener: Arc<ShmListener>, stop: Arc<AtomicBool>) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let mut should_stop = || stop.load(Ordering::SeqCst);
                let mut handle = |payload: &[u8]| {
                    let mut reply = b"echo:".to_vec();
                    reply.extend_from_slice(payload);
                    reply
                };
                listener.serve_session(&mut should_stop, &mut handle).unwrap();
            }
        })
    }

    #[test]
    fn frames_round_trip_and_sessions_turn_over() {
        let path = temp_ring("roundtrip");
        let Some(listener) = listener_or_skip(&path) else { return };
        let listener = Arc::new(listener);
        let stop = Arc::new(AtomicBool::new(false));
        let daemon = echo_daemon(listener.clone(), stop.clone());

        let mut transport =
            ShmTransport::new(path.to_str().unwrap(), Duration::from_millis(500), Duration::from_secs(2));
        assert!(transport.is_local());
        for session in 0..3 {
            let mut conn = transport.connect().unwrap_or_else(|e| panic!("session {session}: {e}"));
            assert!(conn.fast_batch());
            for i in 0..200u32 {
                let msg = vec![i as u8; (i as usize * 131) % 4096 + 1];
                conn.send_frame(&msg).unwrap();
                let reply = conn.recv_frame().unwrap();
                assert_eq!(&reply[..5], b"echo:");
                assert_eq!(&reply[5..], &msg[..]);
            }
        }

        stop.store(true, Ordering::SeqCst);
        daemon.join().unwrap();
    }

    #[test]
    fn pipelined_frames_keep_order_across_ring_laps() {
        let path = temp_ring("pipeline");
        let Some(listener) = listener_or_skip(&path) else { return };
        let listener = Arc::new(listener);
        let stop = Arc::new(AtomicBool::new(false));
        let daemon = echo_daemon(listener.clone(), stop.clone());

        let mut transport =
            ShmTransport::new(path.to_str().unwrap(), Duration::from_millis(500), Duration::from_secs(2));
        let mut conn = transport.connect().unwrap();
        // Keep SLOTS frames in flight for several laps of the ring.
        let depth = SLOTS as u32;
        for wave in 0..10u32 {
            for i in 0..depth {
                conn.send_frame(&(wave * depth + i).to_le_bytes()).unwrap();
            }
            for i in 0..depth {
                let reply = conn.recv_frame().unwrap();
                assert_eq!(reply[5..9], (wave * depth + i).to_le_bytes());
            }
        }
        drop(conn);
        stop.store(true, Ordering::SeqCst);
        daemon.join().unwrap();
    }

    #[test]
    fn oversized_frames_are_refused_without_touching_the_ring() {
        let path = temp_ring("oversize");
        let Some(listener) = listener_or_skip(&path) else { return };
        let listener = Arc::new(listener);
        let stop = Arc::new(AtomicBool::new(false));
        let daemon = echo_daemon(listener.clone(), stop.clone());

        let mut transport =
            ShmTransport::new(path.to_str().unwrap(), Duration::from_millis(500), Duration::from_secs(2));
        let mut conn = transport.connect().unwrap();
        let huge = vec![0u8; SLOT_PAYLOAD as usize + 1];
        assert_eq!(conn.send_frame(&huge).unwrap_err().kind(), std::io::ErrorKind::InvalidData);
        // The ring is still usable afterwards.
        conn.send_frame(b"still alive").unwrap();
        assert_eq!(conn.recv_frame().unwrap(), b"echo:still alive");

        drop(conn);
        stop.store(true, Ordering::SeqCst);
        daemon.join().unwrap();
    }

    #[test]
    fn missing_ring_file_fails_fast() {
        let path = temp_ring("missing");
        let mut transport =
            ShmTransport::new(path.to_str().unwrap(), Duration::from_millis(50), Duration::from_millis(50));
        let err = match transport.connect() {
            Err(e) => e,
            Ok(_) => panic!("dialing a missing ring file must fail"),
        };
        assert!(
            matches!(err.kind(), std::io::ErrorKind::NotFound | std::io::ErrorKind::Unsupported),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn unanswered_exchange_times_out() {
        let path = temp_ring("timeout");
        let Some(_listener) = listener_or_skip(&path) else { return };
        // No serving thread: the claim succeeds (the seat is free) but
        // nothing ever answers.
        let mut transport =
            ShmTransport::new(path.to_str().unwrap(), Duration::from_millis(100), Duration::from_millis(80));
        let mut conn = transport.connect().unwrap();
        conn.send_frame(b"anyone?").unwrap();
        assert_eq!(conn.recv_frame().unwrap_err().kind(), std::io::ErrorKind::TimedOut);
    }

    #[test]
    fn second_client_waits_for_the_seat() {
        let path = temp_ring("seat");
        let Some(listener) = listener_or_skip(&path) else { return };
        let listener = Arc::new(listener);
        let stop = Arc::new(AtomicBool::new(false));
        let daemon = echo_daemon(listener.clone(), stop.clone());

        let mut transport =
            ShmTransport::new(path.to_str().unwrap(), Duration::from_millis(60), Duration::from_secs(1));
        let _held = transport.connect().unwrap();
        let err = match transport.connect() {
            Err(e) => e,
            Ok(_) => panic!("second client must not share the seat"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);

        drop(_held);
        stop.store(true, Ordering::SeqCst);
        daemon.join().unwrap();
    }

    #[test]
    fn slot_header_codec_round_trips_and_rejects_tears() {
        for (seq, len) in [(1u64, 0u32), (64, 1), (u64::MAX, SLOT_PAYLOAD)] {
            let raw = encode_slot_header(seq, len);
            assert_eq!(decode_slot_header(&raw, seq, SLOT_PAYLOAD), Some(len));
            // Any single flipped byte must invalidate the header.
            for i in 0..raw.len() {
                let mut torn = raw;
                torn[i] ^= 0x41;
                assert_eq!(decode_slot_header(&torn, seq, SLOT_PAYLOAD), None, "byte {i} tear accepted");
            }
            // A stale header from the previous lap never validates.
            assert_eq!(decode_slot_header(&raw, seq.wrapping_add(SLOTS), SLOT_PAYLOAD), None);
        }
        assert_eq!(decode_slot_header(&encode_slot_header(5, SLOT_PAYLOAD + 1), 5, SLOT_PAYLOAD), None);
    }
}
