//! The thin raw-syscall layer under the shared-memory transport.
//!
//! The vendored dependency tree deliberately carries no `libc` or
//! `memmap`, so the four kernel services the ring needs — `mmap`,
//! `munmap`, `futex`, and `kill(pid, 0)` for peer liveness — are
//! invoked directly via `asm!` on Linux x86_64/aarch64. Every other
//! platform gets honest stubs: mapping fails with
//! [`std::io::ErrorKind::Unsupported`] (so `ShmTransport::connect`
//! errors cleanly and the client falls back to TCP), and the futex
//! helpers degrade to short sleeps so shared code stays portable.

use std::sync::atomic::AtomicU32;
use std::time::Duration;

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod imp {
    use super::*;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const MMAP: usize = 9;
        pub const MUNMAP: usize = 11;
        pub const KILL: usize = 62;
        pub const FUTEX: usize = 202;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const MMAP: usize = 222;
        pub const MUNMAP: usize = 215;
        pub const KILL: usize = 129;
        pub const FUTEX: usize = 98;
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc 0",
            inlateout("x0") a as isize => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            in("x8") n,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> std::io::Result<usize> {
        if (-4095..0).contains(&ret) {
            Err(std::io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    const PROT_READ: usize = 1;
    const PROT_WRITE: usize = 2;
    const MAP_SHARED: usize = 1;
    const FUTEX_WAIT: usize = 0;
    const FUTEX_WAKE: usize = 1;
    const ESRCH: i32 = 3;

    pub fn map_shared(fd: i32, len: usize) -> std::io::Result<*mut u8> {
        let ret = unsafe { syscall6(nr::MMAP, 0, len, PROT_READ | PROT_WRITE, MAP_SHARED, fd as usize, 0) };
        check(ret).map(|addr| addr as *mut u8)
    }

    /// # Safety
    /// `ptr..ptr+len` must be a live mapping returned by [`map_shared`]
    /// with no outstanding references into it.
    pub unsafe fn unmap(ptr: *mut u8, len: usize) {
        let _ = syscall6(nr::MUNMAP, ptr as usize, len, 0, 0, 0, 0);
    }

    /// Sleeps until `word` no longer holds `expected`, a wake arrives,
    /// or `timeout` elapses — the classic futex wait. Spurious returns
    /// are fine; every caller loops around a state re-check.
    pub fn futex_wait(word: &AtomicU32, expected: u32, timeout: Duration) {
        let ts = Timespec { tv_sec: timeout.as_secs() as i64, tv_nsec: timeout.subsec_nanos() as i64 };
        // Not FUTEX_PRIVATE: the word is shared between processes.
        let _ = unsafe {
            syscall6(
                nr::FUTEX,
                word.as_ptr() as usize,
                FUTEX_WAIT,
                expected as usize,
                &ts as *const Timespec as usize,
                0,
                0,
            )
        };
    }

    /// Wakes up to `n` waiters parked on `word`.
    pub fn futex_wake(word: &AtomicU32, n: u32) {
        let _ = unsafe { syscall6(nr::FUTEX, word.as_ptr() as usize, FUTEX_WAKE, n as usize, 0, 0, 0) };
    }

    /// Whether `pid` names a live process (`kill(pid, 0)`): alive on
    /// success *or* `EPERM` (exists but unsignalable); dead on `ESRCH`.
    pub fn process_alive(pid: u32) -> bool {
        if pid == 0 {
            return false;
        }
        let ret = unsafe { syscall6(nr::KILL, pid as usize, 0, 0, 0, 0, 0) };
        ret != -(ESRCH as isize)
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod imp {
    use super::*;

    pub fn map_shared(_fd: i32, _len: usize) -> std::io::Result<*mut u8> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "shared-memory transport requires linux x86_64/aarch64",
        ))
    }

    /// # Safety
    /// Never called: [`map_shared`] never hands out a mapping here.
    pub unsafe fn unmap(_ptr: *mut u8, _len: usize) {}

    pub fn futex_wait(_word: &AtomicU32, _expected: u32, timeout: Duration) {
        std::thread::sleep(timeout.min(Duration::from_millis(1)));
    }

    pub fn futex_wake(_word: &AtomicU32, _n: u32) {}

    pub fn process_alive(_pid: u32) -> bool {
        true
    }
}

pub use imp::{futex_wait, futex_wake, map_shared, process_alive, unmap};
