//! Remote prediction: the wire protocol spoken between the eco plugin
//! and the `chronusd` prediction daemon, plus the blocking client and
//! the [`PredictionSource`] port that lets the plugin switch between
//! in-process prediction (today's staged-model path) and a daemon on
//! the head node.
//!
//! ## Framing
//!
//! Every message is a 4-byte big-endian length prefix followed by that
//! many bytes of JSON. Frames above [`MAX_FRAME_LEN`] are a protocol
//! violation and close the connection. Requests travel wrapped in a
//! [`RequestFrame`] so each one can carry an optional deadline budget;
//! responses are a bare [`Response`] — unless the request carried a
//! correlation id, in which case the daemon echoes it back in a
//! [`ResponseFrame`] envelope so several requests can be in flight on
//! one connection at once (pipelining, out-of-order completion).
//!
//! ## Batching and pipelining
//!
//! [`Request::PredictMany`] answers up to [`MAX_BATCH_KEYS`] prediction
//! keys in one round trip with [`Response::ManyConfigs`]: one
//! [`KeyOutcome`] per key, in request order, always the same length as
//! the key list. Both extensions are additive: `corr` is an optional
//! frame field old daemons skip (they answer bare, and the client falls
//! back to one-at-a-time exchanges), and an old daemon answers
//! `PredictMany` with a malformed-request `Error`, which the client
//! treats as "batch unsupported" and degrades to sequential singles.
//!
//! ## Transports
//!
//! The client is generic over a [`Transport`] that dials connections and
//! owns every wait the client performs (busy back-off, retry back-off).
//! [`TcpTransport`] is the production path; the `simtest` crate plugs in
//! an in-memory channel whose `sleep` advances a discrete-event clock,
//! so the whole retry/backoff state machine runs on virtual time.
//!
//! ## Fleet mode
//!
//! A [`PredictClient`] built with several endpoints routes predictions
//! over a consistent-hash [`ring::HashRing`] keyed by `(system_hash,
//! binary_hash)`, with health-checked failover between replicas; see the
//! [`client`](self::PredictClient) docs for the full protocol.

mod client;
mod endpoint;
pub mod fastpath;
pub mod ring;
pub mod shm;

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use bytes::{Buf, BytesMut};
use eco_sim_node::cpu::CpuConfig;
use serde::{Deserialize, Serialize};

use crate::application::predict_from_settings;
use crate::error::{ChronusError, Result};
use crate::interfaces::LocalStorage;
use crate::telemetry::{Telemetry, TraceContext};

pub use client::{CallOptions, ClientBuildError, ClientBuilder, FleetPreload, PredictClient, ReplicaStatus};
pub use endpoint::{Endpoint, EndpointParseError};
pub use ring::{predict_key, HashRing};
pub use shm::{SessionEnd, ShmListener, ShmTransport};

/// Upper bound on a single frame's JSON payload (1 MiB).
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Upper bound on the keys one [`Request::PredictMany`] may carry.
/// Chosen so a worst-case reply (one full `Config` per key) stays far
/// under [`MAX_FRAME_LEN`]; bigger batches are split by the client and
/// rejected with an `Error` by the daemon.
pub const MAX_BATCH_KEYS: usize = 1024;

// ---------------------------------------------------------------------------
// Protocol messages
// ---------------------------------------------------------------------------

/// A request body (the RPC verb).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// "What is the most energy-efficient configuration for this
    /// (system, binary)?" — the plugin's submit-path query.
    Predict { system_hash: u64, binary_hash: u64 },
    /// The batched form of [`Request::Predict`]: up to
    /// [`MAX_BATCH_KEYS`] `(system_hash, binary_hash)` keys answered in
    /// one round trip by [`Response::ManyConfigs`], one [`KeyOutcome`]
    /// per key in request order. Counted as one request but `keys.len()`
    /// predictions in the daemon's stats.
    PredictMany { keys: Vec<(u64, u64)> },
    /// Stage a model into the daemon's registry ahead of submissions.
    Preload { model_id: i64 },
    /// Fetch the daemon's operational counters.
    Stats,
    /// Anti-entropy: "send me every committed model newer than my
    /// generation high-water mark". A store-less replica pulls missing
    /// generations from a ring peer at boot instead of waiting for a
    /// client to re-preload it. Answered with [`Response::Models`].
    SyncModels { have_generation: u64 },
    /// Test/diagnostics verb: hold a worker for `ms` milliseconds.
    Burn { ms: u64 },
    /// The adaptation loop's outcome feed: the plugin reports what a
    /// served prediction actually did in production. Answered with
    /// [`Response::OutcomeAck`]. Additive like `PredictMany`: an old
    /// daemon answers with a malformed-request `Error`, which the
    /// client maps to "outcome reporting unsupported" — never a
    /// failure on the submit path.
    ReportOutcome { system_hash: u64, binary_hash: u64, outcome: ObservedOutcome },
}

/// One production observation of a served prediction: what the job
/// actually achieved under the configuration the plugin applied. The
/// daemon folds these into per-key reservoirs that feed the drift
/// detector and the incremental re-fit (see `chronusd::adapt`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservedOutcome {
    /// The configuration the job actually ran under (the served
    /// prediction, or whatever the operator overrode it to).
    pub config: CpuConfig,
    /// Achieved compute throughput.
    pub gflops: f64,
    /// Average system power draw over the job.
    pub watts: f64,
    /// Wall-clock duration of the job in seconds.
    pub duration_s: f64,
    /// The node class the job ran on (empty = the unnamed default
    /// class, and from plugins predating node classes).
    #[serde(default)]
    pub node_class: String,
}

impl ObservedOutcome {
    /// Observed energy efficiency, the drift detector's statistic.
    /// `None` when the observation is degenerate (non-positive or
    /// non-finite power).
    pub fn gflops_per_watt(&self) -> Option<f64> {
        if self.watts > 0.0 && self.watts.is_finite() && self.gflops.is_finite() {
            Some(self.gflops / self.watts)
        } else {
            None
        }
    }

    /// Whether the observation is well-formed enough to ingest:
    /// finite, non-negative measurements with positive power and
    /// duration. Malformed outcomes are acked `accepted: false` and
    /// counted, never folded into a reservoir.
    pub fn is_valid(&self) -> bool {
        self.gflops.is_finite()
            && self.gflops >= 0.0
            && self.watts.is_finite()
            && self.watts > 0.0
            && self.duration_s.is_finite()
            && self.duration_s > 0.0
    }
}

/// One committed model as shipped by the anti-entropy
/// [`Request::SyncModels`] exchange: enough for the receiving replica
/// to install it as resident (the key, the answer, and the lineage),
/// plus the store content address so provenance survives the hop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSync {
    /// The model's repository id.
    pub model_id: i64,
    /// The optimizer type string.
    pub model_type: String,
    /// The system the model answers for.
    pub system_hash: u64,
    /// The binary the model answers for.
    pub binary_hash: u64,
    /// The model parameters.
    pub config: CpuConfig,
    /// The sender's committed rollout generation for this model.
    pub generation: u64,
    /// Content address of the model's blob in the sender's store
    /// (empty from memory-only senders).
    #[serde(default)]
    pub blob_hash: String,
}

/// A request plus its per-request deadline budget. The daemon answers
/// [`Response::DeadlineExceeded`] instead of the real result when
/// handling took longer than `deadline_ms` — the plugin's cue to fall
/// back rather than blow the scheduler's submit budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestFrame {
    /// Time budget in milliseconds, measured from frame receipt.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Propagated trace context, when the caller is traced. Optional
    /// and defaulted on decode, so peers negotiate by presence: an old
    /// client simply never sends it, an old daemon silently ignores it
    /// (unknown fields are skipped), and either way the frame parses.
    /// Untraced frames omit the field entirely, so they cost the same
    /// bytes on the wire as before the header existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<TraceContext>,
    /// Correlation id for pipelined connections. When present, the
    /// daemon wraps its answer in a [`ResponseFrame`] echoing this id,
    /// so the client may have several frames in flight and match
    /// replies out of order. Negotiated additively like `trace`: old
    /// daemons skip the field and answer bare, which a corr-aware
    /// client detects on the first exchange and disables pipelining
    /// for that connection.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub corr: Option<u64>,
    /// The RPC verb.
    pub body: Request,
}

impl RequestFrame {
    /// A frame with no deadline.
    pub fn new(body: Request) -> RequestFrame {
        RequestFrame { deadline_ms: None, trace: None, corr: None, body }
    }

    /// A frame with a deadline budget in milliseconds.
    pub fn with_deadline(body: Request, deadline_ms: u64) -> RequestFrame {
        RequestFrame { deadline_ms: Some(deadline_ms), trace: None, corr: None, body }
    }

    /// The same frame carrying a trace context header.
    pub fn traced(mut self, trace: Option<TraceContext>) -> RequestFrame {
        self.trace = trace;
        self
    }

    /// The same frame carrying a correlation id (asks the daemon to
    /// answer with a [`ResponseFrame`] envelope).
    pub fn with_corr(mut self, corr: u64) -> RequestFrame {
        self.corr = Some(corr);
        self
    }
}

/// A response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// The predicted most energy-efficient configuration.
    Config(CpuConfig),
    /// Answer to a successful [`Request::Preload`]. `generation` is the
    /// registry rollout generation the model was committed under (0 from
    /// daemons predating versioned rollout).
    Preloaded {
        model_id: i64,
        model_type: String,
        system_hash: u64,
        binary_hash: u64,
        #[serde(default)]
        generation: u64,
    },
    /// Answer to [`Request::Stats`]. Boxed: the snapshot is by far the
    /// largest payload, and the box keeps every other `Response` small
    /// on the submit path (serde is transparent to the box).
    Stats(Box<StatsSnapshot>),
    /// Answer to [`Request::PredictMany`]: one [`KeyOutcome`] per
    /// requested key, in request order, always exactly as many as the
    /// request carried keys — a key is never silently dropped.
    ManyConfigs { results: Vec<KeyOutcome> },
    /// Answer to [`Request::SyncModels`]: every committed model newer
    /// than the asker's high-water mark, oldest generation first.
    Models { models: Vec<ModelSync> },
    /// The daemon's connection queue is full; retry after the hint.
    Busy { retry_after_ms: u64 },
    /// No model is resident (or loadable) for this key.
    Miss { system_hash: u64, binary_hash: u64 },
    /// Handling overran the frame's `deadline_ms`.
    DeadlineExceeded,
    /// The daemon hit an internal error serving the request.
    Error { message: String },
    /// Answer to [`Request::Burn`].
    Burned,
    /// Answer to [`Request::ReportOutcome`]. `accepted` is false when
    /// the outcome was malformed (non-finite or non-positive
    /// measurements) or the daemon has no adaptation monitor; either
    /// way the submit path is unaffected.
    OutcomeAck { accepted: bool },
}

/// The per-key result inside [`Response::ManyConfigs`]. A batch never
/// fails half-silently: every key comes back as exactly one of these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KeyOutcome {
    /// The predicted most energy-efficient configuration for this key.
    Config(CpuConfig),
    /// No model is resident (or loadable) for this key.
    Miss,
    /// The daemon hit an internal error serving this key; the rest of
    /// the batch is unaffected.
    Error { message: String },
}

/// The pipelining envelope: a [`Response`] plus the correlation id of
/// the [`RequestFrame`] it answers. Sent **only** when the request
/// carried [`RequestFrame::corr`]; plain requests keep the bare
/// [`Response`] wire shape, so old clients never see an envelope. The
/// two shapes cannot be confused on decode: a bare `Response` is a
/// string or a single-variant-key object, never an object with `corr`
/// and `body` fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseFrame {
    /// Echo of the request's correlation id.
    pub corr: u64,
    /// The answer itself.
    pub body: Response,
}

/// A successful preload acknowledgement, as returned by
/// [`PredictClient::preload`].
#[derive(Debug, Clone, PartialEq)]
pub struct PreloadAck {
    /// The staged model's repository id.
    pub model_id: i64,
    /// The optimizer type string.
    pub model_type: String,
    /// The system the model answers for.
    pub system_hash: u64,
    /// The binary the model answers for.
    pub binary_hash: u64,
    /// The rollout generation the daemon committed the model under.
    pub generation: u64,
}

/// A point-in-time copy of the daemon's counters (the `stats` RPC).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StatsSnapshot {
    /// Requests handled, all verbs.
    pub requests_total: u64,
    /// `Predict` requests handled.
    pub predictions: u64,
    /// `Predict` answered straight from the registry.
    pub cache_hits: u64,
    /// `Predict` that had to consult the backend (or answered `Miss`).
    pub cache_misses: u64,
    /// Connections bounced with `Busy` because the queue was full.
    pub busy_rejections: u64,
    /// Requests answered `DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Requests answered `Error`.
    pub errors: u64,
    /// Connections waiting in the accept queue right now.
    pub queue_depth: u64,
    /// Accept-queue capacity.
    pub queue_capacity: u64,
    /// Worker threads serving connections.
    pub workers: u64,
    /// Models resident in the registry.
    pub models_resident: u64,
    /// Models evicted by the registry's LRU policy.
    pub evictions: u64,
    /// Latest committed model-rollout generation (0 before any rollout,
    /// and from daemons predating versioned rollout).
    #[serde(default)]
    pub model_generation: u64,
    /// Lookups refused because the resident entry's rollout generation
    /// was never committed (half-rolled-out models are never served).
    #[serde(default)]
    pub stale_generation_hits: u64,
    /// Rollouts that allocated a generation but failed to commit.
    #[serde(default)]
    pub generation_rollbacks: u64,
    /// `Preload` requests handled (committed or rolled back).
    #[serde(default)]
    pub preloads: u64,
    /// Models installed outside any `Preload` RPC: boot catch-up from
    /// the configured store plus anti-entropy `SyncModels` pulls.
    #[serde(default)]
    pub store_catchups: u64,
    /// The daemon's configured store directory (empty = memory-only).
    #[serde(default)]
    pub store_dir: String,
    /// The store's committed-generation high-water mark as of this
    /// snapshot (0 = no store configured, or an empty store).
    #[serde(default)]
    pub store_generation: u64,
    /// `PredictMany` frames handled (each also counts once in
    /// `requests_total`; its keys count in `predictions`).
    #[serde(default)]
    pub batches: u64,
    /// Keys carried by all `PredictMany` frames handled.
    #[serde(default)]
    pub batched_keys: u64,
    /// The reporting replica's identity (empty from daemons predating
    /// fleet mode, or daemons never given one).
    #[serde(default)]
    pub replica: String,
    /// Serving-model counts per node class, sorted by class name; the
    /// unnamed legacy class reports as `default`. Empty when no store is
    /// configured (and from daemons predating node classes).
    #[serde(default)]
    pub models_by_class: Vec<(String, u64)>,
    /// `ReportOutcome` observations folded into adaptation reservoirs.
    #[serde(default)]
    pub outcomes_ingested: u64,
    /// `ReportOutcome` observations rejected as malformed.
    #[serde(default)]
    pub outcomes_rejected: u64,
    /// Distinct `(system, binary)` reservoirs currently populated.
    #[serde(default)]
    pub outcome_reservoirs: u64,
    /// Worst current drift score across keys, in milli-units of
    /// absolute mean relative error (0 = no drift or too few samples).
    #[serde(default)]
    pub drift_score_milli: u64,
    /// Drift detector trips (sustained efficiency divergence).
    #[serde(default)]
    pub drift_trips: u64,
    /// Drift detector clears (divergence subsided below hysteresis).
    #[serde(default)]
    pub drift_clears: u64,
    /// Adaptation re-fits committed to the store.
    #[serde(default)]
    pub adapt_refits: u64,
    /// Canary verdicts that promoted the candidate fleet-wide.
    #[serde(default)]
    pub canary_promotions: u64,
    /// Canary verdicts that rolled the candidate back.
    #[serde(default)]
    pub canary_rollbacks: u64,
    /// The canary controller's current state (empty = no controller,
    /// and from daemons predating adaptation).
    #[serde(default)]
    pub canary_state: String,
    /// Median request handling latency (µs, bucket upper bound).
    pub latency_p50_us: u64,
    /// 99th-percentile request handling latency (µs, bucket upper bound).
    pub latency_p99_us: u64,
    /// Worst observed request handling latency (µs, exact).
    pub latency_max_us: u64,
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Serializes `msg` and writes it as one length-prefixed frame.
pub fn write_frame<T: Serialize>(stream: &mut dyn Write, msg: &T) -> std::io::Result<()> {
    let payload =
        serde_json::to_vec(msg).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    if payload.len() > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds the {MAX_FRAME_LEN} byte limit", payload.len()),
        ));
    }
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32(payload.len() as u32);
    buf.put_slice(&payload);
    stream.write_all(&buf)?;
    stream.flush()
}

/// Reads one length-prefixed frame and deserializes it.
pub fn read_frame<T: for<'de> Deserialize<'de>>(stream: &mut dyn Read) -> std::io::Result<T> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    let len = (&header[..]).get_u32() as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("peer announced a {len} byte frame (limit {MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    serde_json::from_slice(&payload).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Extracts the next complete frame from a receive buffer, leaving any
/// trailing bytes in place. Returns `Ok(None)` while the frame is still
/// incomplete and an error on an oversized length prefix.
pub fn take_frame(buf: &mut BytesMut) -> std::io::Result<Option<Vec<u8>>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = (&buf[..4]).get_u32() as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("peer announced a {len} byte frame (limit {MAX_FRAME_LEN})"),
        ));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    buf.advance(4);
    Ok(Some(buf.split_to(len).freeze()))
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

/// A bidirectional *frame* pipe the client exchanges messages over.
///
/// The unit of transfer is a whole payload (`Vec<u8>`), not a byte
/// stream: transports that already move discrete messages — the
/// shared-memory ring in [`shm`], simulated channels — implement the
/// two methods directly and never see length prefixes, while anything
/// `Read + Write + Send` (e.g. `TcpStream`) gets them via the blanket
/// impl below, which speaks the classic 4-byte big-endian
/// length-prefixed framing on the stream.
pub trait Connection: Send {
    /// Sends one complete frame. Payloads above [`MAX_FRAME_LEN`] are
    /// rejected with `InvalidData` without transmitting anything.
    fn send_frame(&mut self, payload: &[u8]) -> std::io::Result<()>;

    /// Receives the next complete frame.
    fn recv_frame(&mut self) -> std::io::Result<Vec<u8>>;

    /// Whether this connection understands the binary `PredictMany`
    /// fast path (see [`fastpath`]). Byte-stream transports answer
    /// `false` and stay on JSON; the shared-memory ring answers `true`.
    fn fast_batch(&self) -> bool {
        false
    }
}

/// Byte streams frame themselves: 4-byte big-endian length prefix,
/// then the payload. This preserves the exact wire format `TcpStream`
/// and the simtest channels spoke before the frame-level redesign.
impl<T: Read + Write + Send> Connection for T {
    fn send_frame(&mut self, payload: &[u8]) -> std::io::Result<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("frame of {} bytes exceeds the {MAX_FRAME_LEN} byte limit", payload.len()),
            ));
        }
        let mut buf = BytesMut::with_capacity(4 + payload.len());
        buf.put_u32(payload.len() as u32);
        buf.put_slice(payload);
        self.write_all(&buf)?;
        self.flush()
    }

    fn recv_frame(&mut self) -> std::io::Result<Vec<u8>> {
        let mut header = [0u8; 4];
        self.read_exact(&mut header)?;
        let len = u32::from_be_bytes(header) as usize;
        if len > MAX_FRAME_LEN {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("peer announced a {len} byte frame (limit {MAX_FRAME_LEN})"),
            ));
        }
        let mut payload = vec![0u8; len];
        self.read_exact(&mut payload)?;
        Ok(payload)
    }
}

/// Serializes `msg` as JSON and sends it as one frame.
pub fn send_msg<T: Serialize>(conn: &mut dyn Connection, msg: &T) -> std::io::Result<()> {
    let payload =
        serde_json::to_vec(msg).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    conn.send_frame(&payload)
}

/// How the client reaches the daemon: dials connections and serves
/// every wait the client wants to perform. Production code uses
/// [`TcpTransport`] or [`ShmTransport`]; deterministic tests substitute
/// a channel whose `sleep` advances simulated time instead of blocking
/// the thread.
pub trait Transport: Send {
    /// Opens a fresh connection to the daemon.
    fn connect(&mut self) -> std::io::Result<Box<dyn Connection>>;

    /// Human-readable endpoint description for logs.
    fn describe(&self) -> String;

    /// Waits out a back-off interval. The default blocks the calling
    /// thread; virtual-time transports advance their clock instead.
    fn sleep(&mut self, d: Duration) {
        std::thread::sleep(d);
    }

    /// Whether this transport reaches a co-located daemon over a local
    /// fast path (shared memory). The client prefers local replicas
    /// over ring routing while they are healthy — the whole point of a
    /// local transport is that *every* key is cheapest there — and
    /// falls back to the ring (TCP) when the local peer dies.
    fn is_local(&self) -> bool {
        false
    }
}

/// The production transport: plain TCP with connect and I/O timeouts.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    addr: String,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl TcpTransport {
    /// A transport dialing `addr` with the given timeouts. The I/O
    /// timeout applies to both reads and writes on the dialed stream.
    pub fn new(addr: impl Into<String>, connect_timeout: Duration, io_timeout: Duration) -> TcpTransport {
        TcpTransport { addr: addr.into(), connect_timeout, io_timeout }
    }
}

impl Transport for TcpTransport {
    fn connect(&mut self) -> std::io::Result<Box<dyn Connection>> {
        let mut last = std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no addresses resolved");
        for addr in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, self.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.io_timeout))?;
                    stream.set_write_timeout(Some(self.io_timeout))?;
                    let _ = stream.set_nodelay(true);
                    return Ok(Box::new(stream));
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn describe(&self) -> String {
        self.addr.clone()
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Errors the client distinguishes so callers can pick a fallback.
#[derive(Debug)]
pub enum RemoteError {
    /// Could not reach the daemon at all.
    Connect(std::io::Error),
    /// The connection died mid-exchange (includes read timeouts).
    Io(std::io::Error),
    /// The peer sent something that is not the protocol.
    Protocol(String),
    /// The daemon stayed saturated through every retry.
    Busy { retry_after_ms: u64, attempts: u32 },
    /// The daemon gave up on the request's deadline budget.
    DeadlineExceeded,
    /// The daemon has no model for the key.
    Miss { system_hash: u64, binary_hash: u64 },
    /// The daemon reported an internal error.
    Server(String),
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Connect(e) => write!(f, "connect failed: {e}"),
            RemoteError::Io(e) => write!(f, "connection error: {e}"),
            RemoteError::Protocol(m) => write!(f, "protocol violation: {m}"),
            RemoteError::Busy { retry_after_ms, attempts } => {
                write!(f, "daemon busy after {attempts} attempts (retry_after {retry_after_ms} ms)")
            }
            RemoteError::DeadlineExceeded => write!(f, "daemon exceeded the request deadline"),
            RemoteError::Miss { system_hash, binary_hash } => {
                write!(f, "no model resident for system {system_hash:#x} binary {binary_hash:#x}")
            }
            RemoteError::Server(m) => write!(f, "daemon error: {m}"),
        }
    }
}

impl std::error::Error for RemoteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RemoteError::Connect(e) | RemoteError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RemoteError> for ChronusError {
    fn from(e: RemoteError) -> ChronusError {
        match e {
            RemoteError::Miss { system_hash, binary_hash } => {
                ChronusError::NotFound(format!("remote model for system {system_hash:#x} binary {binary_hash:#x}"))
            }
            other => ChronusError::Model(format!("remote prediction failed: {other}")),
        }
    }
}

// ---------------------------------------------------------------------------
// PredictionSource
// ---------------------------------------------------------------------------

/// Where the eco plugin gets its predictions from: the in-process
/// staged-model path (the paper's §3.1.2 pre-load design) or a
/// chronusd daemon on the head node. The plugin treats any error as
/// "leave the job untouched", so a dead or slow source degrades to
/// vanilla Slurm behaviour.
pub trait PredictionSource: Send + Sync {
    /// The best configuration for a (system, binary), or an error when
    /// no answer is available inside the budget.
    fn predict(&self, system_hash: u64, binary_hash: u64) -> Result<CpuConfig>;

    /// [`PredictionSource::predict`] joined to a caller's trace. The
    /// default drops the context — right for purely local sources; the
    /// remote source overrides it to propagate the context on the wire.
    fn predict_traced(&self, system_hash: u64, binary_hash: u64, ctx: Option<TraceContext>) -> Result<CpuConfig> {
        let _ = ctx;
        self.predict(system_hash, binary_hash)
    }

    /// Predicts a whole set of keys, one result per key in order. The
    /// default answers them one at a time; sources with a batched fast
    /// path ([`RemotePrediction`] over the daemon's `PredictMany`
    /// frame) override it to amortize round trips.
    fn predict_many(&self, keys: &[(u64, u64)]) -> Vec<Result<CpuConfig>> {
        keys.iter().map(|&(s, b)| self.predict(s, b)).collect()
    }

    /// Reports what a served prediction actually did in production
    /// (the adaptation loop's outcome feed). Returns `Ok(true)` when
    /// the daemon accepted the observation, `Ok(false)` when outcome
    /// reporting is unsupported (local sources, old daemons) — the
    /// plugin treats both as success because outcome loss must never
    /// perturb the submit path.
    fn report_outcome(&self, system_hash: u64, binary_hash: u64, outcome: &ObservedOutcome) -> Result<bool> {
        let _ = (system_hash, binary_hash, outcome);
        Ok(false)
    }

    /// Human-readable description for logs.
    fn describe(&self) -> String;
}

/// The in-process source: loads settings from local storage and runs
/// the staged optimizer, exactly like the CLI's `slurm-config`.
pub struct LocalPrediction {
    storage: Arc<dyn LocalStorage + Send + Sync>,
}

impl LocalPrediction {
    pub fn new(storage: Arc<dyn LocalStorage + Send + Sync>) -> LocalPrediction {
        LocalPrediction { storage }
    }
}

impl PredictionSource for LocalPrediction {
    fn predict(&self, system_hash: u64, binary_hash: u64) -> Result<CpuConfig> {
        let settings = self.storage.load_settings()?;
        predict_from_settings(&settings, system_hash, binary_hash)
    }

    fn describe(&self) -> String {
        "local staged model".to_string()
    }
}

/// One caller's seat in the [`RemotePrediction`] coalescer: a ticket
/// waiting in `pending` until some leader drains it into a batch and
/// posts its result into `done`.
struct BatchQueue {
    next_ticket: u64,
    pending: Vec<(u64, (u64, u64), Option<TraceContext>)>,
    done: std::collections::HashMap<u64, std::result::Result<CpuConfig, RemoteError>>,
}

/// The daemon-backed source. Wraps the client in a mutex because the
/// plugin is shared behind an `Arc` while the client's persistent
/// connection needs `&mut`.
///
/// Concurrent callers coalesce: whichever caller wins the client lock
/// becomes the batch leader, drains every waiting key into one
/// `PredictMany` exchange and posts the per-key results back; the
/// others just wait on their ticket. Under submit storms this turns N
/// lock-serialized round trips into one batched round trip.
pub struct RemotePrediction {
    client: parking_lot::Mutex<PredictClient>,
    queue: std::sync::Mutex<BatchQueue>,
    ready: std::sync::Condvar,
}

impl RemotePrediction {
    /// A remote source with default client knobs, talking to one daemon.
    pub fn new(addr: impl Into<String>) -> RemotePrediction {
        let client = PredictClient::builder().endpoint(addr).build().expect("default client configuration is valid");
        RemotePrediction::from_client(client)
    }

    /// A remote source from a comma-separated endpoint list — the shape
    /// plugin configuration carries (`shm:///run/chronusd.shm,head:4517`).
    /// Each entry is an [`Endpoint`]; when a `shm://` ring of a same-host
    /// daemon is listed, the client prefers it and keeps the TCP entries
    /// as failover, so the submit path rides shared memory while the
    /// daemon is up and degrades to the network when it is not.
    pub fn from_endpoints(addrs: &str) -> std::result::Result<RemotePrediction, client::ClientBuildError> {
        let client =
            PredictClient::builder().endpoints(addrs.split(',').map(str::trim).filter(|a| !a.is_empty())).build()?;
        Ok(RemotePrediction::from_client(client))
    }

    /// A remote source wrapping an already-built client — the path for
    /// custom knobs and for fleet-mode (multi-replica) clients; see
    /// [`PredictClient::builder`].
    pub fn from_client(client: PredictClient) -> RemotePrediction {
        RemotePrediction {
            client: parking_lot::Mutex::new(client),
            queue: std::sync::Mutex::new(BatchQueue {
                next_ticket: 0,
                pending: Vec::new(),
                done: std::collections::HashMap::new(),
            }),
            ready: std::sync::Condvar::new(),
        }
    }

    /// Attaches telemetry to the wrapped client (see
    /// [`PredictClient::set_telemetry`]).
    pub fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        self.client.lock().set_telemetry(telemetry);
    }

    /// Leads one batch: drains up to [`MAX_BATCH_KEYS`] waiting tickets
    /// into a single `PredictMany` exchange and posts the results.
    fn lead_batch(&self, client: &mut PredictClient) {
        let batch: Vec<(u64, (u64, u64), Option<TraceContext>)> = {
            let mut q = self.queue.lock().expect("batch queue poisoned");
            let take = q.pending.len().min(MAX_BATCH_KEYS);
            q.pending.drain(..take).collect()
        };
        if batch.is_empty() {
            return;
        }
        let keys: Vec<(u64, u64)> = batch.iter().map(|e| e.1).collect();
        let ctx = batch.iter().find_map(|e| e.2);
        client.note_coalesced(batch.len());
        let results = client.predict_many(&keys, &CallOptions::traced(ctx));
        let mut q = self.queue.lock().expect("batch queue poisoned");
        for ((ticket, _, _), result) in batch.into_iter().zip(results) {
            q.done.insert(ticket, result);
        }
        self.ready.notify_all();
    }
}

impl PredictionSource for RemotePrediction {
    fn predict(&self, system_hash: u64, binary_hash: u64) -> Result<CpuConfig> {
        self.predict_traced(system_hash, binary_hash, None)
    }

    fn predict_traced(&self, system_hash: u64, binary_hash: u64, ctx: Option<TraceContext>) -> Result<CpuConfig> {
        let ticket = {
            let mut q = self.queue.lock().expect("batch queue poisoned");
            let ticket = q.next_ticket;
            q.next_ticket += 1;
            q.pending.push((ticket, (system_hash, binary_hash), ctx));
            ticket
        };
        loop {
            if let Some(result) = self.queue.lock().expect("batch queue poisoned").done.remove(&ticket) {
                return result.map_err(ChronusError::from);
            }
            if let Some(mut client) = self.client.try_lock() {
                self.lead_batch(&mut client);
                continue;
            }
            // a leader is mid-exchange; wait for it to post results
            // (the timeout bounds any lost-wakeup window)
            let q = self.queue.lock().expect("batch queue poisoned");
            if !q.done.contains_key(&ticket) {
                let _ = self.ready.wait_timeout(q, Duration::from_millis(5)).expect("batch queue poisoned");
            }
        }
    }

    fn predict_many(&self, keys: &[(u64, u64)]) -> Vec<Result<CpuConfig>> {
        let mut client = self.client.lock();
        client
            .predict_many(keys, &CallOptions::default())
            .into_iter()
            .map(|r| r.map_err(ChronusError::from))
            .collect()
    }

    fn report_outcome(&self, system_hash: u64, binary_hash: u64, outcome: &ObservedOutcome) -> Result<bool> {
        let mut client = self.client.lock();
        client.report_outcome(system_hash, binary_hash, outcome).map_err(ChronusError::from)
    }

    fn describe(&self) -> String {
        format!("chronusd at {}", self.client.lock().endpoints().join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let frame = RequestFrame::with_deadline(Request::Predict { system_hash: u64::MAX, binary_hash: 7 }, 80);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        assert_eq!(wire.len(), 4 + u32::from_be_bytes(wire[..4].try_into().unwrap()) as usize);
        let back: RequestFrame = read_frame(&mut &wire[..]).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn take_frame_handles_partial_and_back_to_back_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Response::Pong).unwrap();
        write_frame(&mut wire, &Response::Busy { retry_after_ms: 5 }).unwrap();

        let mut buf = BytesMut::new();
        buf.put_slice(&wire[..3]);
        assert!(take_frame(&mut buf).unwrap().is_none(), "3 bytes is not even a header");
        buf.put_slice(&wire[3..]);
        let first: Response = serde_json::from_slice(&take_frame(&mut buf).unwrap().unwrap()).unwrap();
        assert_eq!(first, Response::Pong);
        let second: Response = serde_json::from_slice(&take_frame(&mut buf).unwrap().unwrap()).unwrap();
        assert_eq!(second, Response::Busy { retry_after_ms: 5 });
        assert!(take_frame(&mut buf).unwrap().is_none());
        assert!(buf.is_empty());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32((MAX_FRAME_LEN + 1) as u32);
        assert!(take_frame(&mut buf).is_err());
        let mut wire: &[u8] = &(((MAX_FRAME_LEN + 1) as u32).to_be_bytes());
        assert!(read_frame::<Response>(&mut wire).is_err());
    }

    #[test]
    fn response_json_shape_is_stable() {
        let json = serde_json::to_string(&Response::Config(CpuConfig::new(32, 2_200_000, 1))).unwrap();
        // the paper's JSON field name for the DVFS knob is "frequency"
        assert!(json.contains("\"Config\""), "{json}");
        assert!(json.contains("\"frequency\":2200000"), "{json}");
        assert_eq!(serde_json::to_string(&Response::Pong).unwrap(), "\"Pong\"");
    }

    #[test]
    fn store_stats_fields_are_additive_on_the_wire() {
        // A pre-store daemon's Stats answer parses with the new fields
        // defaulted — the client never requires them.
        let old = serde_json::to_string(&Response::Stats(Box::default())).unwrap();
        let stripped = old
            .replace(",\"preloads\":0", "")
            .replace(",\"store_catchups\":0", "")
            .replace(",\"store_dir\":\"\"", "")
            .replace(",\"store_generation\":0", "")
            .replace(",\"models_by_class\":[]", "");
        assert_ne!(old, stripped, "the strip must actually remove the new fields");
        let back: Response = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, Response::Stats(Box::default()));

        // And the anti-entropy exchange round-trips.
        let sync = Response::Models {
            models: vec![ModelSync {
                model_id: 7,
                model_type: "brute-force".into(),
                system_hash: 1,
                binary_hash: 2,
                config: CpuConfig::new(16, 2_200_000, 1),
                generation: 3,
                blob_hash: "00ff".into(),
            }],
        };
        let json = serde_json::to_string(&sync).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), sync);
    }

    #[test]
    fn batched_frames_round_trip_through_a_buffer() {
        let frame = RequestFrame::new(Request::PredictMany { keys: vec![(1, 2), (u64::MAX, 0)] }).with_corr(42);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let back: RequestFrame = read_frame(&mut &wire[..]).unwrap();
        assert_eq!(back, frame);

        let reply = ResponseFrame {
            corr: 42,
            body: Response::ManyConfigs {
                results: vec![
                    KeyOutcome::Config(CpuConfig::new(32, 2_200_000, 1)),
                    KeyOutcome::Miss,
                    KeyOutcome::Error { message: "backend exploded".into() },
                ],
            },
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &reply).unwrap();
        let back: ResponseFrame = read_frame(&mut &wire[..]).unwrap();
        assert_eq!(back, reply);
    }

    #[test]
    fn envelope_and_bare_responses_cannot_be_confused() {
        // a bare Response never parses as an envelope...
        for bare in [Response::Pong, Response::Busy { retry_after_ms: 5 }] {
            let json = serde_json::to_vec(&bare).unwrap();
            assert!(serde_json::from_slice::<ResponseFrame>(&json).is_err(), "bare {bare:?} parsed as envelope");
        }
        // ...and an envelope never parses as a bare Response
        let envelope = ResponseFrame { corr: 7, body: Response::Pong };
        let json = serde_json::to_vec(&envelope).unwrap();
        assert!(serde_json::from_slice::<Response>(&json).is_err(), "envelope parsed as bare Response");
    }

    #[test]
    fn corr_field_is_additive_on_the_wire() {
        // an un-corr'd frame carries an explicit null, exactly like the
        // `trace` header before it — old decoders skip unknown fields,
        // null or not, so the shape stays additive
        let frame = RequestFrame::new(Request::Ping);
        let json = serde_json::to_string(&frame).unwrap();
        assert!(json.contains("\"corr\":null"), "{json}");
        // a frame from an old writer (no corr key at all) parses as un-corr'd
        let corrd = serde_json::to_string(&frame.clone().with_corr(9)).unwrap();
        let stripped = corrd.replace("\"corr\":9,", "").replace(",\"corr\":9", "");
        assert_ne!(corrd, stripped);
        assert_eq!(serde_json::from_str::<RequestFrame>(&stripped).unwrap(), frame);
        // and a null corr from a new writer parses the same as absent
        let nulled = corrd.replace("\"corr\":9", "\"corr\":null");
        assert_eq!(serde_json::from_str::<RequestFrame>(&nulled).unwrap(), frame);
    }

    #[test]
    fn batch_stats_fields_are_additive_on_the_wire() {
        let old = serde_json::to_string(&Response::Stats(Box::default())).unwrap();
        let stripped = old.replace(",\"batches\":0", "").replace(",\"batched_keys\":0", "");
        assert_ne!(old, stripped, "the strip must actually remove the new fields");
        let back: Response = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, Response::Stats(Box::default()));
    }

    #[test]
    fn remote_errors_map_into_chronus_errors() {
        let miss: ChronusError = RemoteError::Miss { system_hash: 1, binary_hash: 2 }.into();
        assert!(matches!(miss, ChronusError::NotFound(_)));
        let busy: ChronusError = RemoteError::Busy { retry_after_ms: 5, attempts: 3 }.into();
        assert!(matches!(busy, ChronusError::Model(_)));
    }
}
