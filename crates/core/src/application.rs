//! The application layer — Chronus's four functions (§3.1.2) plus
//! settings management, behind the [`Chronus`] container that wires the
//! integration interfaces together (the paper's `main.py` entry point).
//!
//! 1. **Benchmarking** — [`Chronus::benchmark`]
//! 2. **Model building** — [`Chronus::init_model`]
//! 3. **Pre-load model** — [`Chronus::load_model`]
//! 4. **Predict energy-efficient configuration** — [`Chronus::slurm_config`]
//! 5. **Settings** — [`Chronus::set_state`] and friends (`chronus set`)

use crate::domain::{
    Benchmark, EnergySample, LoadedModel, ModelMetadata, PluginState, SampleIntervalMs, Settings, SystemEntry,
};
use crate::error::{ChronusError, Result};
use crate::interfaces::{
    ApplicationRunner, FileRepository, LocalStorage, Repository, SystemInfoProvider, SystemService,
};
use crate::logging::ChronusLog;
use crate::optimizers::ModelFactory;
use crate::telemetry::{Span, Telemetry};
use eco_sim_node::clock::SimDuration;
use eco_sim_node::cpu::{CpuConfig, CpuSpec};
use eco_slurm_sim::Cluster;
use std::sync::Arc;

/// The assembled Chronus application.
pub struct Chronus {
    repository: Box<dyn Repository + Send>,
    blob: Box<dyn FileRepository + Send>,
    local: Box<dyn LocalStorage + Send>,
    log: ChronusLog,
    telemetry: Arc<Telemetry>,
}

/// The paper samples the BMC "at a 2-second interval" (§3.1.2 step 2).
pub const DEFAULT_SAMPLE_INTERVAL: SimDuration = SimDuration(2000);

impl Chronus {
    /// Wires the application from its three storage integrations.
    pub fn new(
        repository: Box<dyn Repository + Send>,
        blob: Box<dyn FileRepository + Send>,
        local: Box<dyn LocalStorage + Send>,
    ) -> Self {
        Chronus { repository, blob, local, log: ChronusLog::new(), telemetry: Arc::new(Telemetry::wall()) }
    }

    /// Mirrors every log line to a file (the paper's
    /// `/var/log/chronus.log`).
    pub fn with_log_file(mut self, path: impl AsRef<std::path::Path>) -> Self {
        self.log = ChronusLog::with_file(path);
        self
    }

    /// Emits application spans through an externally owned [`Telemetry`]
    /// (so `benchmark`/`init_model`/… traces land in the same timeline
    /// as the submit path and the daemon).
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The telemetry the application functions trace through.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The captured log (what the terminal showed).
    pub fn log(&self) -> &ChronusLog {
        &self.log
    }

    /// Read access to the repository.
    pub fn repository(&self) -> &dyn Repository {
        self.repository.as_ref()
    }

    /// The current settings.
    pub fn settings(&self) -> Result<Settings> {
        self.local.load_settings()
    }

    // ------------------------------------------------------ benchmarking

    /// Runs the benchmark sweep (`chronus benchmark`): registers the
    /// system, then for each configuration submits a job, samples the BMC
    /// at `sample_interval` while the job runs, and saves a [`Benchmark`].
    /// `configs = None` sweeps "all configurations based on the system
    /// CPU".
    pub fn benchmark(
        &mut self,
        cluster: &mut Cluster,
        runner: &dyn ApplicationRunner,
        sampler: &mut dyn SystemService,
        system_info: &dyn SystemInfoProvider,
        configs: Option<&[CpuConfig]>,
        sample_interval: SimDuration,
    ) -> Result<Vec<Benchmark>> {
        assert!(!sample_interval.is_zero(), "sampling interval must be positive");
        let telemetry = Arc::clone(&self.telemetry);
        let mut span = telemetry.root_span("app", "benchmark");
        match self.benchmark_under(&span, cluster, runner, sampler, system_info, configs, sample_interval) {
            Ok(out) => {
                span.attr("benchmarks", out.len());
                Ok(out)
            }
            Err(e) => {
                span.set_error(e.to_string());
                Err(e)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn benchmark_under(
        &mut self,
        span: &Span,
        cluster: &mut Cluster,
        runner: &dyn ApplicationRunner,
        sampler: &mut dyn SystemService,
        system_info: &dyn SystemInfoProvider,
        configs: Option<&[CpuConfig]>,
        sample_interval: SimDuration,
    ) -> Result<Vec<Benchmark>> {
        let facts = system_info.facts(cluster);
        let hash = system_info.system_hash(cluster);
        let system_id =
            self.repository.save_system(&SystemEntry { id: -1, facts: facts.clone(), system_hash: hash })?;

        let spec = cluster.node(0).spec().clone();
        let sweep: Vec<CpuConfig> = match configs {
            Some(c) => c.to_vec(),
            None => spec.all_configurations(),
        };

        let mut out = Vec::with_capacity(sweep.len());
        for config in &sweep {
            spec.validate(config).map_err(|e| ChronusError::InvalidInput(e.to_string()))?;
            let mut trial = span.child("app", "trial");
            trial.attr("config", config);
            match self.run_one(cluster, runner, sampler, system_id, config, sample_interval) {
                Ok(benchmark) => {
                    trial.attr("gflops", format!("{:.3}", benchmark.gflops));
                    trial.attr("samples", benchmark.sample_count);
                    out.push(benchmark);
                }
                Err(e) => {
                    trial.set_error(e.to_string());
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    fn run_one(
        &mut self,
        cluster: &mut Cluster,
        runner: &dyn ApplicationRunner,
        sampler: &mut dyn SystemService,
        system_id: i64,
        config: &CpuConfig,
        sample_interval: SimDuration,
    ) -> Result<Benchmark> {
        let job_id = runner.submit(cluster, config)?;
        self.log.info(cluster.now(), "benchmark_service.rs:run", format!("Job started with id: {job_id} ({config})"));
        let mut samples = Vec::new();
        samples.push(sampler.sample(cluster));
        // Sample while the job runs. The final partial interval is not
        // sampled — once the job terminates the node is idle and a reading
        // there would pollute the averages (at most one interval of energy
        // is left out of the integral, as with the real Chronus sampler).
        let max_iters = 10_000_000u64;
        let mut iters = 0;
        loop {
            cluster.advance(sample_interval);
            if cluster.job(job_id)?.state.is_terminal() {
                break;
            }
            samples.push(sampler.sample(cluster));
            iters += 1;
            if iters > max_iters {
                return Err(ChronusError::Model("benchmark job never finished".into()));
            }
        }
        let record = cluster
            .accounting()
            .get(job_id)
            .ok_or_else(|| ChronusError::NotFound(format!("accounting record for job {job_id}")))?
            .clone();
        let gflops = runner.gflops_from_record(&record);
        let runtime_s = match (record.start_time, record.end_time) {
            (Some(s), Some(e)) => (e - s).as_secs_f64(),
            _ => 0.0,
        };

        let benchmark = Benchmark {
            id: -1,
            system_id,
            binary_hash: runner.binary_hash(),
            config: *config,
            gflops,
            runtime_s,
            avg_system_w: mean(&samples, |s| s.system_w),
            avg_cpu_w: mean(&samples, |s| s.cpu_w),
            avg_cpu_temp_c: mean(&samples, |s| s.cpu_temp_c),
            system_energy_j: trapezoid(&samples, |s| s.system_w),
            cpu_energy_j: trapezoid(&samples, |s| s.cpu_w),
            sample_count: samples.len(),
        };
        self.log.info(cluster.now(), "hpcg.rs:rating", format!("GFLOP/s rating found: {gflops:.5}"));
        let id = self.repository.save_benchmark(&benchmark)?;
        self.log.info(cluster.now(), "sqlite_repository.rs:save", "Run data has been saved to the database.");
        Ok(Benchmark { id, ..benchmark })
    }

    /// Like [`Chronus::benchmark`], but skips configurations already
    /// benchmarked for this (system, binary) — so an interrupted sweep
    /// ("the benchmarking process can take a while", §3.3) resumes where
    /// it stopped. Returns only the newly measured benchmarks.
    pub fn benchmark_missing(
        &mut self,
        cluster: &mut Cluster,
        runner: &dyn ApplicationRunner,
        sampler: &mut dyn SystemService,
        system_info: &dyn SystemInfoProvider,
        configs: Option<&[CpuConfig]>,
        sample_interval: SimDuration,
    ) -> Result<Vec<Benchmark>> {
        let facts = system_info.facts(cluster);
        let hash = system_info.system_hash(cluster);
        let system_id = self.repository.save_system(&SystemEntry { id: -1, facts, system_hash: hash })?;
        let done: std::collections::HashSet<CpuConfig> =
            self.repository.benchmarks(system_id, runner.binary_hash())?.into_iter().map(|b| b.config).collect();
        let spec = cluster.node(0).spec().clone();
        let sweep: Vec<CpuConfig> = match configs {
            Some(c) => c.to_vec(),
            None => spec.all_configurations(),
        };
        let todo: Vec<CpuConfig> = sweep.into_iter().filter(|c| !done.contains(c)).collect();
        if !done.is_empty() {
            self.log.info(
                cluster.now(),
                "benchmark_service.rs:resume",
                format!("resuming sweep: {} configuration(s) already benchmarked, {} to go", done.len(), todo.len()),
            );
        }
        self.benchmark(cluster, runner, sampler, system_info, Some(&todo), sample_interval)
    }

    // --------------------------------------------------- model building

    /// Builds a prediction model (`chronus init-model`): loads the
    /// system's benchmarks, fits the requested optimizer, uploads the
    /// serialized model to blob storage and saves its metadata.
    pub fn init_model(
        &mut self,
        model_type: &str,
        system_id: i64,
        binary_hash: u64,
        now_ms: u64,
    ) -> Result<ModelMetadata> {
        let telemetry = Arc::clone(&self.telemetry);
        let mut span = telemetry.root_span("app", "init_model");
        span.attr("model_type", model_type);
        span.attr("system_id", system_id);
        match self.init_model_inner(model_type, system_id, binary_hash, now_ms) {
            Ok(meta) => {
                span.attr("model_id", meta.id);
                span.attr("resolved_type", &meta.model_type);
                Ok(meta)
            }
            Err(e) => {
                span.set_error(e.to_string());
                Err(e)
            }
        }
    }

    fn init_model_inner(
        &mut self,
        model_type: &str,
        system_id: i64,
        binary_hash: u64,
        now_ms: u64,
    ) -> Result<ModelMetadata> {
        let benchmarks = self.repository.benchmarks(system_id, binary_hash)?;
        if benchmarks.is_empty() {
            return Err(ChronusError::NotFound(format!("benchmarks for system {system_id} / binary {binary_hash}")));
        }
        // `auto` cross-validates the families and picks the best
        let model_type: &str = if model_type == crate::optimizers::AUTO {
            crate::optimizers::select_model_type(&benchmarks, 4.min(benchmarks.len()).max(2), 0xc5)?.0
        } else {
            model_type
        };
        let mut optimizer = ModelFactory::create(model_type)?;
        let report = optimizer.fit(&benchmarks)?;
        let blob_path = format!("models/{system_id}/{model_type}-{binary_hash}-{now_ms}.json");
        self.blob.put(&blob_path, &optimizer.to_bytes()?)?;
        let meta = ModelMetadata {
            id: -1,
            model_type: model_type.to_string(),
            system_id,
            binary_hash,
            blob_path,
            created_at_ms: now_ms,
            train_rows: report.train_rows,
            fit_r2: report.r2,
        };
        let id = self.repository.save_model(&meta)?;
        Ok(ModelMetadata { id, ..meta })
    }

    // ------------------------------------------------------- pre-load

    /// Pre-loads a model (`chronus load-model`): fetches the blob, writes
    /// it to local disk on the head node (the paper's
    /// `/opt/chronus/optimizer`) and records it in the settings, so the
    /// submit-time prediction never touches the database or blob storage.
    pub fn load_model(&mut self, model_id: i64) -> Result<LoadedModel> {
        let telemetry = Arc::clone(&self.telemetry);
        let mut span = telemetry.root_span("app", "load_model");
        span.attr("model_id", model_id);
        match self.load_model_inner(model_id) {
            Ok(loaded) => {
                span.attr("model_type", &loaded.model_type);
                Ok(loaded)
            }
            Err(e) => {
                span.set_error(e.to_string());
                Err(e)
            }
        }
    }

    fn load_model_inner(&mut self, model_id: i64) -> Result<LoadedModel> {
        let meta =
            self.repository.model(model_id)?.ok_or_else(|| ChronusError::NotFound(format!("model {model_id}")))?;
        let system = self
            .repository
            .systems()?
            .into_iter()
            .find(|s| s.id == meta.system_id)
            .ok_or_else(|| ChronusError::NotFound(format!("system {}", meta.system_id)))?;

        let bytes = self.blob.get(&meta.blob_path)?;
        let local_path = self.local.resolve(&format!("opt/chronus/optimizers/model-{model_id}.json"));
        if let Some(parent) = local_path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&local_path, &bytes)?;

        // also stage the benchmark rows: the deadline-aware extension
        // (§6.2.1) needs measured runtimes on the submit path
        let benchmarks = self.repository.benchmarks(meta.system_id, meta.binary_hash)?;
        let benchmarks_path = self.local.resolve(&format!("opt/chronus/optimizers/benchmarks-{model_id}.json"));
        std::fs::write(&benchmarks_path, serde_json::to_vec(&benchmarks)?)?;

        let loaded = LoadedModel {
            model_id,
            model_type: meta.model_type.clone(),
            local_path: local_path.to_string_lossy().into_owned(),
            system_hash: system.system_hash,
            binary_hash: meta.binary_hash,
            facts: system.facts.clone(),
            benchmarks_path: Some(benchmarks_path.to_string_lossy().into_owned()),
        };
        let mut settings = self.local.load_settings()?;
        settings.loaded_model = Some(loaded.clone());
        self.local.save_settings(&settings)?;
        Ok(loaded)
    }

    // ------------------------------------------------------- predict

    /// Predicts the energy-efficient configuration
    /// (`chronus slurm-config SYSTEM_HASH BINARY_HASH`). Only reads the
    /// pre-loaded model from local disk — this is the call on Slurm's
    /// submit path.
    pub fn slurm_config(&self, system_hash: u64, binary_hash: u64) -> Result<CpuConfig> {
        let mut span = self.telemetry.root_span("app", "slurm_config");
        span.attr("system_hash", format!("{system_hash:#x}"));
        span.attr("binary_hash", format!("{binary_hash:#x}"));
        let result = self.local.load_settings().and_then(|s| predict_from_settings(&s, system_hash, binary_hash));
        match &result {
            Ok(config) => span.attr("config", config),
            Err(e) => span.set_error(e.to_string()),
        }
        result
    }

    // ------------------------------------------------------- settings

    /// `chronus set database PATH`.
    pub fn set_database(&mut self, path: &str) -> Result<()> {
        let mut s = self.local.load_settings()?;
        s.database = path.to_string();
        self.local.save_settings(&s)
    }

    /// `chronus set blob-storage PATH`.
    pub fn set_blob_storage(&mut self, path: &str) -> Result<()> {
        let mut s = self.local.load_settings()?;
        s.blob_storage = path.to_string();
        self.local.save_settings(&s)
    }

    /// `chronus set state {active|user|deactivated}`.
    pub fn set_state(&mut self, state: PluginState) -> Result<()> {
        let mut s = self.local.load_settings()?;
        s.state = state;
        self.local.save_settings(&s)
    }

    /// `chronus set sample-interval MS` — the benchmark sampler's IPMI
    /// polling cadence. Zero and negative values are rejected.
    pub fn set_sample_interval(&mut self, ms: i64) -> Result<()> {
        let interval = SampleIntervalMs::try_from_millis(ms).map_err(ChronusError::InvalidInput)?;
        let mut s = self.local.load_settings()?;
        s.sample_interval = interval;
        self.local.save_settings(&s)
    }

    /// The configured IPMI sample interval (the paper's 2 s unless
    /// `chronus set sample-interval` changed it).
    pub fn sample_interval(&self) -> Result<SampleIntervalMs> {
        Ok(self.local.load_settings()?.sample_interval)
    }
}

/// The submit-path prediction, standalone so the eco plugin can run it
/// against a settings snapshot without owning a [`Chronus`] instance.
pub fn predict_from_settings(settings: &Settings, system_hash: u64, binary_hash: u64) -> Result<CpuConfig> {
    let loaded = settings
        .loaded_model
        .as_ref()
        .ok_or_else(|| ChronusError::Model("no model is pre-loaded; run `chronus load-model`".into()))?;
    if loaded.system_hash != system_hash {
        return Err(ChronusError::Model(format!(
            "pre-loaded model is for system {:#x}, job is on system {:#x}",
            loaded.system_hash, system_hash
        )));
    }
    if loaded.binary_hash != binary_hash {
        return Err(ChronusError::Model(format!(
            "pre-loaded model is for binary {:#x}, job runs binary {:#x}",
            loaded.binary_hash, binary_hash
        )));
    }
    let bytes = std::fs::read(&loaded.local_path)?;
    let optimizer = ModelFactory::from_bytes(&loaded.model_type, &bytes)?;
    let spec = CpuSpec {
        name: loaded.facts.cpu_name.clone(),
        cores: loaded.facts.cores,
        threads_per_core: loaded.facts.threads_per_core,
        frequencies_khz: loaded.facts.frequencies_khz.clone(),
    };
    optimizer.best_config(&spec.all_configurations())
}

fn mean(samples: &[EnergySample], f: impl Fn(&EnergySample) -> f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(f).sum::<f64>() / samples.len() as f64
}

fn trapezoid(samples: &[EnergySample], f: impl Fn(&EnergySample) -> f64) -> f64 {
    samples.windows(2).map(|w| (w[1].t_s - w[0].t_s) * (f(&w[0]) + f(&w[1])) / 2.0).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrations::hpcg_runner::HpcgRunner;
    use crate::integrations::monitoring::{IpmiService, LscpuInfo};
    use crate::integrations::record_store::RecordStore;
    use crate::integrations::storage::{EtcStorage, LocalBlobStore};
    use eco_hpcg::perf_model::PerfModel;
    use eco_hpcg::workload::HpcgWorkload;
    use eco_sim_node::SimNode;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("eco-chronus-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn chronus(root: &PathBuf) -> Chronus {
        Chronus::new(
            Box::new(RecordStore::open(root.join("database/data.db")).unwrap()),
            Box::new(LocalBlobStore::new(root.join("blobs")).unwrap()),
            Box::new(EtcStorage::new(root)),
        )
    }

    fn setup(root: &PathBuf) -> (Chronus, Cluster, HpcgRunner, IpmiService, LscpuInfo) {
        let mut cluster = Cluster::single_node(SimNode::sr650());
        let perf = Arc::new(PerfModel::sr650());
        // small work so each benchmark takes ~20-30 simulated seconds
        let work = perf.gflops(&perf.standard_config()) * 25.0;
        let workload = Arc::new(HpcgWorkload::with_work(perf, work, 104));
        let runner = HpcgRunner::install(&mut cluster, "/opt/hpcg/bin/xhpcg", workload);
        (chronus(root), cluster, runner, IpmiService::new(0, 42), LscpuInfo::new(0))
    }

    fn small_sweep() -> Vec<CpuConfig> {
        vec![
            CpuConfig::new(32, 2_500_000, 1),
            CpuConfig::new(32, 2_200_000, 1),
            CpuConfig::new(32, 1_500_000, 1),
            CpuConfig::new(16, 2_200_000, 1),
            CpuConfig::new(16, 2_200_000, 2),
            CpuConfig::new(8, 2_500_000, 2),
        ]
    }

    #[test]
    fn benchmark_sweep_produces_saved_benchmarks() {
        let root = tmpdir("sweep");
        let (mut app, mut cluster, runner, mut sampler, info) = setup(&root);
        let benches = app
            .benchmark(&mut cluster, &runner, &mut sampler, &info, Some(&small_sweep()), DEFAULT_SAMPLE_INTERVAL)
            .unwrap();
        assert_eq!(benches.len(), 6);
        for b in &benches {
            assert!(b.id > 0, "saved with an id");
            assert!(b.gflops > 0.0);
            assert!(b.avg_system_w > 100.0);
            assert!(b.system_energy_j > 0.0);
            assert!(b.sample_count >= 2);
            assert!(b.gflops_per_watt() > 0.0);
        }
        // persisted
        assert_eq!(app.repository().all_benchmarks().unwrap().len(), 6);
        assert_eq!(app.repository().systems().unwrap().len(), 1);
    }

    #[test]
    fn benchmark_reproduces_headline_ordering() {
        let root = tmpdir("ordering");
        let (mut app, mut cluster, runner, mut sampler, info) = setup(&root);
        let configs = vec![CpuConfig::new(32, 2_500_000, 1), CpuConfig::new(32, 2_200_000, 1)];
        let benches = app
            .benchmark(&mut cluster, &runner, &mut sampler, &info, Some(&configs), DEFAULT_SAMPLE_INTERVAL)
            .unwrap();
        let std_gpw = benches[0].gflops_per_watt();
        let best_gpw = benches[1].gflops_per_watt();
        let gain = best_gpw / std_gpw;
        assert!(gain > 1.05 && gain < 1.22, "measured gain {gain} should be near the paper's 1.13");
    }

    #[test]
    fn full_pipeline_benchmark_model_load_predict() {
        let root = tmpdir("pipeline");
        let (mut app, mut cluster, runner, mut sampler, info) = setup(&root);
        app.benchmark(&mut cluster, &runner, &mut sampler, &info, Some(&small_sweep()), DEFAULT_SAMPLE_INTERVAL)
            .unwrap();

        let meta = app.init_model("brute-force", 1, runner.binary_hash(), 1_000).unwrap();
        assert!(meta.id > 0);
        assert_eq!(meta.train_rows, 6);

        let loaded = app.load_model(meta.id).unwrap();
        assert!(std::path::Path::new(&loaded.local_path).exists());

        let sys_hash = info.system_hash(&cluster);
        let predicted = app.slurm_config(sys_hash, runner.binary_hash()).unwrap();
        // with the small sweep the measured best is 32c @ 2.2 GHz no-HT
        assert_eq!(predicted, CpuConfig::new(32, 2_200_000, 1));
    }

    #[test]
    fn init_model_auto_selects_a_family() {
        let root = tmpdir("auto");
        let (mut app, mut cluster, runner, mut sampler, info) = setup(&root);
        app.benchmark(&mut cluster, &runner, &mut sampler, &info, Some(&small_sweep()), DEFAULT_SAMPLE_INTERVAL)
            .unwrap();
        let meta = app.init_model("auto", 1, runner.binary_hash(), 5).unwrap();
        assert_ne!(meta.model_type, "auto", "auto resolves to a concrete family");
        assert!(crate::optimizers::ModelFactory::model_types().contains(&meta.model_type.as_str()));
        // the stored model loads and predicts
        let loaded = app.load_model(meta.id).unwrap();
        assert_eq!(loaded.model_type, meta.model_type);
    }

    #[test]
    fn init_model_without_benchmarks_errors() {
        let root = tmpdir("nobench");
        let mut app = chronus(&root);
        assert!(matches!(app.init_model("brute-force", 1, 7, 0), Err(ChronusError::NotFound(_))));
    }

    #[test]
    fn load_model_unknown_id_errors() {
        let root = tmpdir("nomodel");
        let mut app = chronus(&root);
        assert!(matches!(app.load_model(42), Err(ChronusError::NotFound(_))));
    }

    #[test]
    fn slurm_config_without_loaded_model_errors() {
        let root = tmpdir("nopredict");
        let app = chronus(&root);
        let err = app.slurm_config(1, 2).unwrap_err();
        assert!(err.to_string().contains("load-model"), "{err}");
    }

    #[test]
    fn slurm_config_wrong_hashes_error() {
        let root = tmpdir("wronghash");
        let (mut app, mut cluster, runner, mut sampler, info) = setup(&root);
        app.benchmark(&mut cluster, &runner, &mut sampler, &info, Some(&small_sweep()[..2]), DEFAULT_SAMPLE_INTERVAL)
            .unwrap();
        let meta = app.init_model("brute-force", 1, runner.binary_hash(), 0).unwrap();
        app.load_model(meta.id).unwrap();
        let sys_hash = info.system_hash(&cluster);
        assert!(app.slurm_config(sys_hash + 1, runner.binary_hash()).is_err());
        assert!(app.slurm_config(sys_hash, runner.binary_hash() + 1).is_err());
        assert!(app.slurm_config(sys_hash, runner.binary_hash()).is_ok());
    }

    #[test]
    fn benchmark_missing_resumes_a_sweep() {
        let root = tmpdir("resume");
        let (mut app, mut cluster, runner, mut sampler, info) = setup(&root);
        let sweep = small_sweep();
        // first pass: only two configs measured (simulating an interrupt)
        app.benchmark(&mut cluster, &runner, &mut sampler, &info, Some(&sweep[..2]), DEFAULT_SAMPLE_INTERVAL)
            .unwrap();
        // resume over the full list: only the remaining four run
        let new = app
            .benchmark_missing(&mut cluster, &runner, &mut sampler, &info, Some(&sweep), DEFAULT_SAMPLE_INTERVAL)
            .unwrap();
        assert_eq!(new.len(), sweep.len() - 2);
        assert_eq!(app.repository().all_benchmarks().unwrap().len(), sweep.len());
        // resuming again is a no-op
        let again = app
            .benchmark_missing(&mut cluster, &runner, &mut sampler, &info, Some(&sweep), DEFAULT_SAMPLE_INTERVAL)
            .unwrap();
        assert!(again.is_empty());
        // the resume was logged
        assert!(app.log().render().contains("resuming sweep"), "{}", app.log().render());
    }

    #[test]
    fn benchmark_run_logs_figure_1_lines() {
        let root = tmpdir("logs");
        let (mut app, mut cluster, runner, mut sampler, info) = setup(&root);
        app.benchmark(&mut cluster, &runner, &mut sampler, &info, Some(&small_sweep()[..1]), DEFAULT_SAMPLE_INTERVAL)
            .unwrap();
        let text = app.log().render();
        assert!(text.contains("Job started with id:"), "{text}");
        assert!(text.contains("GFLOP/s rating found:"), "{text}");
        assert!(text.contains("Run data has been saved"), "{text}");
    }

    #[test]
    fn log_file_mirrors_entries() {
        let root = tmpdir("logfile");
        let log_path = root.join("var/log/chronus.log");
        let (app, mut cluster, runner, mut sampler, info) = setup(&root);
        let mut app = app.with_log_file(&log_path);
        app.benchmark(&mut cluster, &runner, &mut sampler, &info, Some(&small_sweep()[..1]), DEFAULT_SAMPLE_INTERVAL)
            .unwrap();
        let content = std::fs::read_to_string(&log_path).unwrap();
        assert!(content.contains("GFLOP/s rating found:"), "{content}");
    }

    #[test]
    fn settings_commands_persist() {
        let root = tmpdir("set");
        let mut app = chronus(&root);
        app.set_database("/var/db/x.db").unwrap();
        app.set_blob_storage("/blobs").unwrap();
        app.set_state(PluginState::Active).unwrap();
        let s = app.settings().unwrap();
        assert_eq!(s.database, "/var/db/x.db");
        assert_eq!(s.blob_storage, "/blobs");
        assert_eq!(s.state, PluginState::Active);
    }

    #[test]
    fn sample_interval_setting_persists_and_rejects_nonpositive() {
        let root = tmpdir("interval");
        let mut app = chronus(&root);
        assert_eq!(app.sample_interval().unwrap().as_millis(), 2000, "paper default");
        app.set_sample_interval(500).unwrap();
        assert_eq!(app.sample_interval().unwrap().as_millis(), 500);
        assert!(matches!(app.set_sample_interval(0), Err(ChronusError::InvalidInput(_))));
        assert!(matches!(app.set_sample_interval(-3), Err(ChronusError::InvalidInput(_))));
        // rejected values must not clobber the stored setting
        assert_eq!(app.sample_interval().unwrap().as_millis(), 500);
    }

    #[test]
    fn application_functions_record_telemetry_spans() {
        use crate::telemetry::Telemetry;

        let root = tmpdir("appspans");
        let telemetry = Arc::new(Telemetry::wall());
        let (app, mut cluster, runner, mut sampler, info) = setup(&root);
        let mut app = app.with_telemetry(Arc::clone(&telemetry));
        app.benchmark(&mut cluster, &runner, &mut sampler, &info, Some(&small_sweep()[..2]), DEFAULT_SAMPLE_INTERVAL)
            .unwrap();
        let meta = app.init_model("brute-force", 1, runner.binary_hash(), 0).unwrap();
        app.load_model(meta.id).unwrap();
        let sys_hash = info.system_hash(&cluster);
        app.slurm_config(sys_hash, runner.binary_hash()).unwrap();

        let spans = telemetry.recorder().events();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        for expect in ["benchmark", "trial", "init_model", "load_model", "slurm_config"] {
            assert!(names.contains(&expect), "missing app span {expect}: {names:?}");
        }
        // one trial span per configuration, parented under the sweep span
        let bench = spans.iter().find(|s| s.name == "benchmark").unwrap();
        let trials: Vec<_> = spans.iter().filter(|s| s.name == "trial").collect();
        assert_eq!(trials.len(), 2);
        for t in &trials {
            assert_eq!(t.trace, bench.trace, "trials share the benchmark trace");
            assert_eq!(t.parent, Some(bench.span), "trials parent under the sweep span");
            assert!(t.is_ok(), "trial succeeded: {}", t.outcome);
        }
        // failures mark the span
        app.load_model(9999).unwrap_err();
        let spans = telemetry.recorder().events();
        let failed = spans.iter().rev().find(|s| s.name == "load_model").unwrap();
        assert!(!failed.is_ok(), "error spans record set_error");
    }

    #[test]
    fn energy_integral_matches_runtime_times_power() {
        let root = tmpdir("energy");
        let (mut app, mut cluster, runner, mut sampler, info) = setup(&root);
        let configs = vec![CpuConfig::new(32, 2_500_000, 1)];
        let b = &app
            .benchmark(&mut cluster, &runner, &mut sampler, &info, Some(&configs), DEFAULT_SAMPLE_INTERVAL)
            .unwrap()[0];
        let approx = b.avg_system_w * b.runtime_s;
        let rel = (b.system_energy_j - approx).abs() / approx;
        assert!(rel < 0.15, "integral {} vs avg*t {approx}", b.system_energy_j);
    }

    #[test]
    fn trapezoid_and_mean_helpers() {
        let samples = vec![
            EnergySample { t_s: 0.0, system_w: 100.0, cpu_w: 50.0, cpu_temp_c: 40.0 },
            EnergySample { t_s: 2.0, system_w: 200.0, cpu_w: 100.0, cpu_temp_c: 60.0 },
        ];
        assert_eq!(trapezoid(&samples, |s| s.system_w), 300.0);
        assert_eq!(mean(&samples, |s| s.cpu_temp_c), 50.0);
        assert_eq!(mean(&[], |s: &EnergySample| s.cpu_w), 0.0);
    }
}
